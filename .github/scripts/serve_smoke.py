"""CI smoke gate for the ``repro serve`` simulation farm.

Boots a real ``python -m repro serve`` subprocess (the exact artifact a
user runs, not an in-process harness) over a scratch cache and asserts
the service contract end to end:

1. **cold** — each distinct request simulates exactly once,
2. **storm** — concurrent duplicates of one unseen key coalesce onto a
   single machine-run,
3. **warm** — re-firing every request answers from the cache with zero
   further simulation,
4. **fidelity** — every served ``result`` payload is byte-identical to
   a direct in-process ``RunScheduler`` run of the same request,
5. **hygiene** — zero 5xx errors; malformed jobs get a 400 without
   touching the pool.

Run from the repo root with ``PYTHONPATH=src``; exits non-zero with a
readable message on the first violated invariant.
"""

import json
import os
import socket
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

SERVICE_NAME = "repro-sim-server"
COLD_SET = [
    {"benchmark": "LU", "width": 4},
    {"benchmark": "FFT", "width": 8},
    {"benchmark": "FIR", "program_kind": "baseline"},
]
STORM_REQUEST = {"benchmark": "FIR", "width": 16}
STORM_SIZE = 8


def fail(message: str) -> None:
    print(f"serve-smoke: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def get_stats(url: str) -> dict:
    with urllib.request.urlopen(f"{url}/stats", timeout=10) as resp:
        return json.loads(resp.read())


def post_run(url: str, payload: dict) -> dict:
    req = urllib.request.Request(
        f"{url}/v1/runs", data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(req, timeout=120) as resp:
        return json.loads(resp.read())


def wait_ready(url: str, deadline: float = 30.0) -> None:
    end = time.time() + deadline
    while time.time() < end:
        try:
            payload = get_stats(url)
        except (OSError, ValueError):
            time.sleep(0.2)
            continue
        if payload.get("service") != SERVICE_NAME:
            fail(f"unexpected service at {url}: "
                 f"{payload.get('service')!r}")
        return
    fail(f"server at {url} not ready within {deadline}s")


def direct_results() -> dict:
    """Telemetry-stripped wire dicts from a direct in-process run."""
    from repro.evaluation.runner import RunScheduler
    from repro.evaluation.simserver import parse_run_request

    scheduler = RunScheduler(jobs=1, cache=None)
    wires = {}
    for payload in COLD_SET + [STORM_REQUEST]:
        wire = scheduler.run(parse_run_request(payload)).to_dict()
        wire.pop("telemetry", None)
        wires[json.dumps(payload, sort_keys=True)] = wire
    return wires


def main() -> None:
    port = free_port()
    url = f"http://127.0.0.1:{port}"
    scratch = tempfile.mkdtemp(prefix="repro-serve-smoke-")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", str(port),
         "--jobs", "2", "--cache-dir", scratch],
        env={**os.environ, "PYTHONPATH": str(Path("src").resolve())})
    try:
        wait_ready(url)

        # Phase 1: distinct cold requests simulate exactly once each.
        for payload in COLD_SET:
            reply = post_run(url, payload)
            if reply["source"] != "cold":
                fail(f"first request for {payload} answered "
                     f"{reply['source']!r}, expected cold")
        stats = get_stats(url)["stats"]
        if stats["executed"] != len(COLD_SET):
            fail(f"cold set of {len(COLD_SET)} executed "
                 f"{stats['executed']} machine-runs")

        # Phase 2: a concurrent identical-request storm on an unseen
        # key coalesces onto one machine-run.
        with ThreadPoolExecutor(max_workers=STORM_SIZE) as pool:
            replies = list(pool.map(
                lambda _: post_run(url, STORM_REQUEST),
                range(STORM_SIZE)))
        stats = get_stats(url)["stats"]
        storm_runs = stats["executed"] - len(COLD_SET)
        if storm_runs != 1:
            fail(f"{STORM_SIZE} identical concurrent requests cost "
                 f"{storm_runs} machine-runs, expected 1")
        if sum(1 for r in replies if r["source"] == "cold") != 1:
            fail("storm must contain exactly one cold response")
        if len({json.dumps(r["result"], sort_keys=True)
                for r in replies}) != 1:
            fail("storm waiters received differing payloads")

        # Phase 3: warm re-fires simulate nothing further.
        executed_before = stats["executed"]
        warm_replies = {}
        for payload in COLD_SET + [STORM_REQUEST]:
            reply = post_run(url, payload)
            if reply["source"] != "hit":
                fail(f"warm re-fire of {payload} answered "
                     f"{reply['source']!r}, expected hit")
            warm_replies[json.dumps(payload, sort_keys=True)] = \
                reply["result"]
        stats = get_stats(url)["stats"]
        if stats["executed"] != executed_before:
            fail("warm re-fires raised the machine-run count")

        # Phase 4: served payloads are byte-identical to direct runs.
        for name, wire in direct_results().items():
            served = json.dumps(warm_replies[name], sort_keys=True)
            direct = json.dumps(wire, sort_keys=True)
            if served != direct:
                fail(f"served result for {name} differs from a "
                     f"direct scheduler run")

        # Phase 5: hygiene.
        try:
            post_run(url, {"benchmark": "definitely-not-real"})
        except urllib.error.HTTPError as exc:
            if exc.code != 400:
                fail(f"malformed job got {exc.code}, expected 400")
        else:
            fail("malformed job was accepted")
        stats = get_stats(url)["stats"]
        if stats["errors"] != 0:
            fail(f"server recorded {stats['errors']} 5xx errors")

        print(f"serve-smoke: OK — {stats['executed']} machine-runs for "
              f"{stats['requests']} requests "
              f"({stats['hits']} hits, {stats['coalesced']} coalesced, "
              f"{stats['bad_requests']} rejected)")
    finally:
        process.terminate()
        try:
            process.wait(timeout=10)
        except subprocess.TimeoutExpired:
            process.kill()


if __name__ == "__main__":
    main()
