#!/usr/bin/env python3
"""Forward (and backward) migration across SIMD accelerator generations.

The paper's motivation: a binary compiled for one SIMD generation is
stranded when the accelerator changes.  A Liquid binary is not — this
script takes ONE binary for a media kernel (saturating arithmetic +
permutations) and runs it unmodified on five machine generations:

* ``legacy``   — no SIMD hardware at all (the binary just runs scalar),
* ``gen1``     — 4 lanes, no saturating ops (translation of the
  saturating loop aborts; it stays scalar; everything else accelerates),
* ``gen2``     — 8 lanes, full Neon-like repertoire,
* ``gen3``     — 16 lanes, same repertoire (wider),
* ``future``   — 16 lanes but a *reduced permutation repertoire* (a
  hypothetical redesign): permutation loops degrade gracefully.

Every generation produces bit-identical results — binary compatibility
across the whole family, with performance scaling to whatever the
hardware offers.

Run:  python examples/accelerator_migration.py
"""

from repro import (
    AcceleratorConfig,
    Machine,
    MachineConfig,
    arrays_equal,
    build_baseline_program,
    build_liquid_program,
)
from repro.kernels.suite import build_kernel
from repro.simd.permutations import PermPattern


def machine_for(accelerator) -> Machine:
    return Machine(MachineConfig(accelerator=accelerator))


def main() -> None:
    kernel = build_kernel("MPEG2 Dec.")  # saturating adds + a reverse perm
    liquid = build_liquid_program(kernel)
    reference = Machine(MachineConfig()).run(build_baseline_program(kernel))

    generations = [
        ("legacy (no SIMD)", None),
        ("gen1: 4 lanes, no saturation",
         AcceleratorConfig(width=4, supports_saturation=False, name="gen1")),
        ("gen2: 8 lanes, full repertoire",
         AcceleratorConfig(width=8, name="gen2")),
        ("gen3: 16 lanes, full repertoire",
         AcceleratorConfig(width=16, name="gen3")),
        ("future: 16 lanes, rotations only",
         AcceleratorConfig(width=16, name="future",
                           permutations=(PermPattern("rot", 4, 1),
                                         PermPattern("rot", 8, 1)))),
    ]

    print(f"one Liquid binary: {liquid.name!r} "
          f"({len(liquid.instructions)} instructions, "
          f"{len(liquid.outlined_functions)} outlined hot loops)\n")
    print(f"{'generation':<34}{'cycles':>10}{'speedup':>9}"
          f"{'translated':>12}{'aborted':>9}{'results':>9}")
    for label, accelerator in generations:
        config = MachineConfig(accelerator=accelerator)
        run = Machine(config).run(liquid)
        ok = sum(1 for t in run.translations if t.ok)
        bad = sum(1 for t in run.translations if not t.ok)
        match = "match" if arrays_equal(reference, run) else "DIVERGED"
        print(f"{label:<34}{run.cycles:>10,}"
              f"{run.speedup_over(reference):>9.2f}{ok:>12}{bad:>9}"
              f"{match:>9}")
        for t in run.translations:
            if not t.ok:
                print(f"    - {t.function}: stayed scalar "
                      f"({t.reason.value})")

    print("\nEvery generation computed identical results from the same "
          "binary; no recompilation, no new ISA.")


if __name__ == "__main__":
    main()
