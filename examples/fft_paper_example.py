#!/usr/bin/env python3
"""The paper's worked example, end to end (Figures 2-4 and Table 4).

Section 3.4 of the paper walks an FFT butterfly stage through the whole
Liquid SIMD flow:

1. the SIMD loop (Figure 4A) with shuffled loads and a mid-dataflow
   butterfly,
2. its scalar representation (Figure 4B): offset (`bfly`) arrays, mask
   arrays, and the loop *fission* that moves the butterfly to a memory
   boundary,
3. the dynamic translation back into SIMD microcode (Table 4), with the
   redundant offset loads collapsed by the microcode buffer's alignment
   network.

This script reproduces each step and prints the artifacts.

Run:  python examples/fft_paper_example.py
"""

from repro import (
    Machine,
    MachineConfig,
    arrays_equal,
    build_baseline_program,
    build_liquid_program,
    config_for_width,
    scalarize_loop,
)
from repro.kernels.suite import build_kernel


def main() -> None:
    kernel = build_kernel("FFT")
    stage = kernel.stage("fft_stage")

    print("=" * 68)
    print("Step 1 — the SIMD loop (compare paper Figure 4A)")
    print("=" * 68)
    for instr in stage.body:
        print(f"    {instr}")

    print()
    print("=" * 68)
    print("Step 2 — the scalar representation (compare paper Figure 4B)")
    print("=" * 68)
    scalarized = scalarize_loop(stage, mvl=16)
    print(f"fissioned into {len(scalarized.segments)} loops "
          f"(the paper's Top_of_loop_1 / Top_of_loop_2)\n")
    for index, segment in enumerate(scalarized.segments):
        print(f"  loop {index + 1}:")
        for instr in segment:
            print(f"    {instr}")
    print("\n  synthesized read-only/temporary arrays:")
    for array in scalarized.new_arrays:
        kind = "read-only" if array.read_only else "temporary"
        print(f"    {array.name:<28}{array.elem}[{len(array)}]  ({kind})  "
              f"first values: {array.values[:8]}")

    print()
    print("=" * 68)
    print("Step 3 — dynamic translation on an 8-wide machine "
          "(compare paper Table 4)")
    print("=" * 68)
    liquid = build_liquid_program(kernel)
    machine = Machine(MachineConfig(accelerator=config_for_width(8)))
    run = machine.run(liquid)
    translation = next(t for t in run.translations
                       if t.function == "fft_stage_fn")
    assert translation.ok, translation.reason
    entry = translation.entry
    print(f"observed {entry.static_instructions} scalar instructions, "
          f"generated {entry.simd_instruction_count} SIMD instructions "
          f"at effective width {entry.width}:\n")
    print(entry.fragment.listing())

    print()
    print("=" * 68)
    print("Step 4 — correctness: scalar baseline vs. translated execution")
    print("=" * 68)
    baseline = Machine(MachineConfig()).run(build_baseline_program(kernel))
    print(f"scalar baseline : {baseline.cycles:,} cycles")
    print(f"liquid on simd8 : {run.cycles:,} cycles "
          f"(speedup {run.speedup_over(baseline):.2f})")
    print(f"results         : "
          f"{'bit-identical' if arrays_equal(baseline, run) else 'DIVERGED'}")


if __name__ == "__main__":
    main()
