#!/usr/bin/env python3
"""Regenerate the paper's evaluation tables and figures from the CLI.

Runs any subset of the eight experiments (see DESIGN.md section 4) and
prints each artifact in the paper's table format.

Examples:
    python examples/run_evaluation.py --experiments table2 table5
    python examples/run_evaluation.py --benchmarks FIR "MPEG2 Dec." \\
        --experiments figure6 table6
    python examples/run_evaluation.py --all            # everything (slow)
"""

import sys

from repro.evaluation.cli import run

if __name__ == "__main__":
    sys.exit(run())
