#!/usr/bin/env python3
"""Cross-compiling a legacy scalar binary into a Liquid SIMD binary.

The paper (section 2) allows the SIMD-to-scalar conversion to happen "at
compile time or by using a post-compilation cross compiler".  The most
interesting corollary: a binary that was never SIMD to begin with — a
plain scalar element loop IS the scalar representation — can be made
Liquid by just outlining its hot loops.  The dynamic translator then
vectorizes it at run time, on whatever accelerator the machine has.

This script writes a small DSP routine in *assembly*, with no vector
instruction anywhere, cross-compiles it, and runs the result across
accelerator widths.

Run:  python examples/cross_compile_legacy.py
"""

from repro import Machine, MachineConfig, arrays_equal, assemble, config_for_width
from repro.core.scalarize import cross_compile, find_candidate_loops

LEGACY_SOURCE = """
; A scalar biquad-ish filter + energy scan, as a compiler in 2007 might
; have emitted it.  No SIMD instructions, no annotations.
.data samples f32 256 = 0.35
.data state   f32 256 = 0.1
.data out_buf f32 256 = 0.0
.data energy  f32 1   = 0.0

main:
    mov r7, #0
frame_loop:
    fmov f1, #0.0
    mov r0, #0
filter_loop:
    ldf f2, [samples + r0]
    ldf f3, [state + r0]
    fmul f4, f2, f3
    fadd f5, f4, f2
    fmul f5, f5, #0.5
    stf f5, [out_buf + r0]
    fadd f1, f1, f5
    add r0, r0, #1
    cmp r0, #256
    blt filter_loop
    stf f1, [energy + #0]
    add r7, r7, #1
    cmp r7, #12
    blt frame_loop
    halt
"""


def main() -> None:
    legacy = assemble(LEGACY_SOURCE, name="legacy_dsp")
    print(f"legacy scalar binary: {len(legacy.instructions)} instructions, "
          "0 vector instructions\n")

    regions = find_candidate_loops(legacy)
    print("cross-compiler found candidate loops:")
    for region in regions:
        print(f"  instructions [{region.start}..{region.end}] "
              f"trip={region.trip} induction={region.induction}")

    liquid = cross_compile(legacy)
    print(f"\ncross-compiled binary: {len(liquid.instructions)} instructions, "
          f"outlined: {liquid.outlined_functions}\n")

    reference = Machine(MachineConfig()).run(legacy)
    print(f"{'machine':<16}{'cycles':>10}{'speedup':>9}{'results':>10}")
    print(f"{'scalar (orig)':<16}{reference.cycles:>10,}{1.0:>9.2f}"
          f"{'—':>10}")
    for width in (2, 4, 8, 16):
        machine = Machine(MachineConfig(accelerator=config_for_width(width)))
        run = machine.run(liquid)
        ok = "match" if arrays_equal(reference, run) else "DIVERGED"
        print(f"{'simd' + str(width):<16}{run.cycles:>10,}"
              f"{run.speedup_over(reference):>9.2f}{ok:>10}")

    print("\nA binary with no SIMD in it now exploits every SIMD "
          "generation — the translator did the vectorization at run time.")


if __name__ == "__main__":
    main()
