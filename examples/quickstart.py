#!/usr/bin/env python3
"""Quickstart: one SIMD loop, three binaries, four accelerator widths.

Builds a small vector kernel with the LoopBuilder DSL, compiles it three
ways (scalar baseline / native SIMD / Liquid SIMD), and runs the single
Liquid binary on machines with 2-, 4-, 8- and 16-wide accelerators —
demonstrating the paper's headline: one binary, every SIMD generation,
bit-identical results, near-native performance after translation.

Run:  python examples/quickstart.py
"""

from repro import (
    DataArray,
    Kernel,
    LoopBuilder,
    Machine,
    MachineConfig,
    arrays_equal,
    build_baseline_program,
    build_liquid_program,
    build_native_program,
    config_for_width,
)


def build_kernel() -> Kernel:
    """out[i] = saturate-free f32 blend: (x*0.75 + y*0.25), plus a sum."""
    builder = LoopBuilder("blend", trip=256, elem="f32")
    x = builder.load("x")
    y = builder.load("y")
    blended = builder.add(builder.mul(x, builder.imm(0.75)),
                          builder.mul(y, builder.imm(0.25)))
    builder.store("out", blended)
    builder.reduce("sum", blended, acc="f1", init=0.0, store_to="total")
    return Kernel(
        name="quickstart",
        arrays=[
            DataArray("x", "f32", [0.01 * i for i in range(256)]),
            DataArray("y", "f32", [0.02 * (255 - i) for i in range(256)]),
            DataArray("out", "f32", [0.0] * 256),
            DataArray("total", "f32", [0.0]),
        ],
        stages=[builder.build()],
        schedule=["blend"],
        repeats=12,
    )


def main() -> None:
    kernel = build_kernel()
    baseline = build_baseline_program(kernel)
    liquid = build_liquid_program(kernel)

    print("The Liquid binary's outlined hot loop (scalar representation):")
    print("-" * 64)
    listing = liquid.listing().splitlines()
    start = next(i for i, line in enumerate(listing) if "blend_fn:" in line)
    print("\n".join(listing[start:start + 14]))
    print("-" * 64)

    scalar_machine = Machine(MachineConfig())
    base_run = scalar_machine.run(baseline)
    print(f"\nScalar baseline: {base_run.cycles:,} cycles")

    print(f"\n{'machine':<12}{'cycles':>12}{'speedup':>9}{'results':>10}")
    for width in (2, 4, 8, 16):
        machine = Machine(MachineConfig(accelerator=config_for_width(width)))
        run = machine.run(liquid)
        ok = "match" if arrays_equal(base_run, run) else "DIVERGED"
        print(f"simd{width:<8}{run.cycles:>12,}"
              f"{run.speedup_over(base_run):>9.2f}{ok:>10}")
        translation = run.translations[0]
        assert translation.ok, translation.reason

    # The same binary also runs (unmodified) on machines with no SIMD
    # hardware at all — the paper's third deployment scenario.
    plain = scalar_machine.run(liquid)
    print(f"\nno accelerator: {plain.cycles:,} cycles "
          f"({'match' if arrays_equal(base_run, plain) else 'DIVERGED'})")

    # And a native-SIMD compile of the same kernel, for reference.
    native = Machine(MachineConfig(accelerator=config_for_width(8))).run(
        build_native_program(kernel, width=8))
    print(f"native w8 binary: {native.cycles:,} cycles "
          f"({'match' if arrays_equal(base_run, native) else 'DIVERGED'})")


if __name__ == "__main__":
    main()
