#!/usr/bin/env python3
"""Debugging a Liquid SIMD translation with the tracer and run summaries.

Shows the observability surface a systems developer would actually use:

1. trace the interleaved scalar/microcode retirement stream of a hot
   loop (first call scalar, later calls injected SIMD),
2. read the run summary (CPI, stall breakdown, per-loop translation
   outcomes, microcode-cache behaviour),
3. diagnose an abort: run the same binary on an accelerator generation
   that lacks an opcode and see exactly which loop stayed scalar and why.

Run:  python examples/debugging_translation.py
"""

from repro import Machine, MachineConfig, build_liquid_program, config_for_width
from repro.kernels.suite import build_kernel
from repro.simd.accelerator import first_generation
from repro.system import TraceRecorder


def main() -> None:
    kernel = build_kernel("GSM Enc.")  # saturating + abs/max reductions
    liquid = build_liquid_program(kernel)

    print("=" * 68)
    print("1. Tracing the first two calls of a hot loop")
    print("=" * 68)
    tracer = TraceRecorder(limit=24,
                           opcodes={"blo", "ldh", "sth", "vld", "vst",
                                    "vqsub", "vredmax"})
    machine = Machine(MachineConfig(accelerator=config_for_width(8)),
                      tracer=tracer)
    result = machine.run(liquid)
    print(tracer.render())
    print("\ncaptured opcode mix:", tracer.opcode_histogram())

    print()
    print("=" * 68)
    print("2. Run summary")
    print("=" * 68)
    print(result.summary())

    print()
    print("=" * 68)
    print("3. Diagnosing an abort on an older accelerator generation")
    print("=" * 68)
    gen1 = first_generation(8)
    old = Machine(MachineConfig(accelerator=gen1)).run(liquid)
    print(old.summary())
    print("\nabort details:")
    for translation in old.translations:
        if not translation.ok:
            print(f"  {translation.function}: {translation.reason.value}"
                  f"  ({translation.detail})")


if __name__ == "__main__":
    main()
