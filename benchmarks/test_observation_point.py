"""E10 (extension) — decode-time vs. post-retirement translation.

Section 4 of the paper lists both hardware tap points and chooses
post-retirement because it is "far off the critical path of the
processor".  There is a second reason the paper leaves implicit, which
this ablation surfaces: the decode stage never sees *data values*, and
Table 3's permutation (rules 3/5/8) and constant (rule 7) recognition
work from previously-loaded values.  A decode-time translator therefore
forfeits every permutation loop.
"""

from repro.evaluation.experiments import observation_point_comparison


def test_decode_vs_retirement(benchmark):
    rows = benchmark.pedantic(
        observation_point_comparison,
        args=(("FFT", "FIR", "093.nasa7", "MPEG2 Dec.", "171.swim"), 8),
        rounds=1, iterations=1)
    print(f"\n{'Benchmark':<14}{'retire cyc':>12}{'decode cyc':>12}"
          f"{'penalty':>9}{'translated (r/d)':>18}")
    for row in rows:
        print(f"{row['benchmark']:<14}{row['retirement_cycles']:>12,}"
              f"{row['decode_cycles']:>12,}"
              f"{row['decode_penalty_pct']:>8.1f}%"
              f"{row['retirement_translated']:>10}/"
              f"{row['decode_translated']}")
    by_name = {r["benchmark"]: r for r in rows}

    # Decode-time can never translate more loops than retirement-time.
    for row in rows:
        assert row["decode_translated"] <= row["retirement_translated"]
        assert row["decode_cycles"] >= row["retirement_cycles"]

    # Permutation-free loops lose nothing at decode time...
    assert by_name["FIR"]["decode_penalty_pct"] < 1.0
    assert by_name["171.swim"]["decode_penalty_pct"] < 1.0
    # ...but permutation users forfeit those loops entirely.
    for name in ("FFT", "093.nasa7", "MPEG2 Dec."):
        assert by_name[name]["decode_translated"] < \
            by_name[name]["retirement_translated"], name
        assert by_name[name]["decode_penalty_pct"] > 10.0, name
