"""E11 (extension) — memory-system sensitivity of the Figure 6 extremes.

The paper attributes 179.art's bottom-of-the-chart speedup to cache
misses in its hot loops, and FIR's top speedup partly to having almost
none.  Sweeping the cache miss penalty turns that attribution causal:
on an ideal memory system art's SIMD speedup nearly doubles, while
FIR's barely moves.
"""

from repro.evaluation.experiments import memory_sensitivity


def test_art_is_memory_bound_fir_is_not(benchmark):
    rows = benchmark.pedantic(memory_sensitivity,
                              args=(("179.art", "FIR"), 8, (0, 30, 100)),
                              rounds=1, iterations=1)
    by_name = {r["benchmark"]: r["speedups"] for r in rows}
    print(f"\n{'benchmark':<12}{'ideal mem':>11}{'30-cyc miss':>13}"
          f"{'100-cyc miss':>14}")
    for name, speedups in by_name.items():
        print(f"{name:<12}{speedups[0]:>11.2f}{speedups[30]:>13.2f}"
              f"{speedups[100]:>14.2f}")

    art, fir = by_name["179.art"], by_name["FIR"]
    # art's speedup is gated by the memory system: removing the miss
    # penalty recovers most of the width-8 potential...
    assert art[0] > art[30] * 1.5
    # ...while FIR is compute-bound: near-insensitive to the penalty.
    assert fir[0] < fir[30] * 1.15
    # Harsher memory widens the gap in the same direction.
    assert art[100] < art[30] < art[0]
    assert fir[100] < fir[0]
