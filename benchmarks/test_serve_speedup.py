"""Sim-server loadtest benchmark: request dedup under concurrency.

Boots one in-process :class:`~repro.evaluation.simserver.SimServer`
over a scratch cache and drives the full ``repro loadtest`` harness
against it — warmup, an identical-request storm, and a high-volume warm
mixed phase — recording the results in ``benchmarks/BENCH_serve.json``.

Acceptance (ISSUE 10): the identical-request storm costs exactly one
machine-run (dedup ratio >= 0.9), the warm mixed phase simulates
nothing, and no request errors.  The gated records are deterministic
machine-run ratios — requests answered per simulation paid — following
the BENCH_shard precedent; p50/p99 latency, throughput, and the log2
latency histogram ride along ungated.
"""

from __future__ import annotations

from repro.evaluation.loadtest import (
    LoadtestPlan,
    loadtest_ok,
    render_summary,
    run_loadtest,
)
from repro.evaluation.runcache import RunCache
from repro.evaluation.simserver import SimServer

REQUESTS = 400
CONCURRENCY = 32
STORM = 48
JOBS = 2  # explicit: CI runners and this container report 1-2 CPUs


def test_serve_loadtest(tmp_path, serve_bench_records):
    server = SimServer(jobs=JOBS,
                       cache=RunCache(tmp_path / "serve-bench")).start()
    try:
        plan = LoadtestPlan(requests=REQUESTS, concurrency=CONCURRENCY,
                            storm=STORM)
        payload = run_loadtest(server.url, plan)
    finally:
        server.shutdown()

    records = payload["records"]
    dedup = records["serve_dedup"]
    warm = records["serve_warm"]

    # The storm's dedup claim: N identical in-flight requests, one run.
    assert dedup["machine_runs"] == 1, \
        f"identical-request storm cost {dedup['machine_runs']} runs"
    assert dedup["duplicate_machine_runs"] == 0
    assert dedup["dedup_ratio"] >= 0.9
    # The warm phase answers everything from cache/memo.
    assert warm["machine_runs"] == 0, \
        f"warm phase simulated {warm['machine_runs']} times"
    assert warm["requests"] == REQUESTS
    assert records["serve_errors"]["errors"] == 0
    assert loadtest_ok(payload)

    serve_bench_records.update(records)
    print("\n" + render_summary(payload))
