"""E3 — Table 6: cycles between the first two calls of outlined hot loops.

Paper: every benchmark except MPEG2 encode/decode has >300 cycles
between consecutive calls of its hot loops, which is what gives the
post-retirement translator its latency budget.  179.art's distances are
the largest by far (its scalar phases are cache-miss bound).

Our schedules are shortened for simulation time, so absolute means are
smaller than the paper's (which range up to 2.1M cycles for art); the
*bucket structure* — MPEG2 short, everything else >300, art the largest
— is the reproduced result.
"""

from repro.evaluation.experiments import table6_call_distances
from repro.evaluation.report import render_table6


def test_table6(benchmark, ctx):
    rows = benchmark.pedantic(table6_call_distances, args=(ctx, 8),
                              rounds=1, iterations=1)
    print("\n" + render_table6(rows))
    by_name = {r["benchmark"]: r for r in rows}

    # MPEG2 is the only benchmark family with sub-300-cycle distances.
    for name, row in by_name.items():
        if name.startswith("MPEG2"):
            assert row["lt150"] + row["lt300"] >= 1, name
        else:
            assert row["lt150"] + row["lt300"] == 0, name
            assert row["mean"] > 300, name

    # art has the largest mean distance of all benchmarks.
    art = by_name["179.art"]["mean"]
    assert art == max(r["mean"] for r in rows)

    # The >300-cycle window is what makes translation latency harmless
    # (cross-checked quantitatively by the latency ablation).
    slow = [r for r in rows if r["mean"] > 300]
    assert len(slow) >= 13
