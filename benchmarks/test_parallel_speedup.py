"""Scheduler micro-benchmark: parallel fan-out and warm-cache skips.

Runs the full fifteen-kernel liquid suite (width 8) through the
:class:`RunScheduler` three ways and records the timings in
``benchmarks/BENCH_parallel.json`` via the session fixture in conftest:

* cold cache, ``jobs=1``   — today's sequential in-process behavior,
* cold cache, ``jobs=4``   — the ProcessPoolExecutor fan-out,
* warm cache, ``jobs=1``   — every run answered from disk.

Acceptance (ISSUE 2): parallel and sequential schedules produce
identical results; the warm-cache pass performs **zero**
``Machine.run`` calls; and on a machine with >= 4 real cores the cold
``jobs=4`` pass is >= 2x faster than ``jobs=1``.  The speedup
assertion is gated on ``os.cpu_count()`` — a single-core container can
demonstrate correctness and cache behavior but not physical
parallelism — and whatever ratio was measured is always recorded.
"""

from __future__ import annotations

import os
import time

from repro.evaluation.experiments import EvalContext
from repro.evaluation.runcache import RunCache
from repro.evaluation.runner import RunScheduler
from repro.kernels.suite import BENCHMARK_ORDER
from repro.system.machine import Machine

WIDTH = 8
PARALLEL_JOBS = 4
MIN_SPEEDUP = 2.0


def _suite_requests(ctx):
    return [ctx.liquid_request(name, WIDTH) for name in BENCHMARK_ORDER]


def _run_suite(jobs, cache_dir):
    scheduler = RunScheduler(jobs=jobs, cache=RunCache(cache_dir))
    ctx = EvalContext(scheduler=scheduler)
    requests = _suite_requests(ctx)
    start = time.perf_counter()
    ctx.prefetch(requests)
    seconds = time.perf_counter() - start
    cycles = {r.benchmark: ctx.run_request(r).cycles for r in requests}
    return seconds, cycles, scheduler.stats


def test_parallel_and_warm_cache_speedup(tmp_path, parallel_bench_records,
                                         monkeypatch):
    seq_seconds, seq_cycles, _ = _run_suite(1, tmp_path / "seq")
    par_seconds, par_cycles, par_stats = _run_suite(
        PARALLEL_JOBS, tmp_path / "par")

    # Identical results whichever schedule produced them.
    assert par_cycles == seq_cycles
    assert par_stats.executed == len(BENCHMARK_ORDER)

    # Warm cache: a fresh scheduler over the parallel run's cache dir
    # answers everything from disk — zero simulations.
    machine_runs = []
    real_run = Machine.run
    monkeypatch.setattr(
        Machine, "run",
        lambda self, program: machine_runs.append(program.name)
        or real_run(self, program))
    warm_seconds, warm_cycles, warm_stats = _run_suite(1, tmp_path / "par")
    assert machine_runs == [], \
        f"warm cache still simulated: {machine_runs}"
    assert warm_stats.cache_hits == len(BENCHMARK_ORDER)
    assert warm_stats.executed == 0
    assert warm_cycles == seq_cycles

    speedup = seq_seconds / par_seconds if par_seconds else float("inf")
    cores = os.cpu_count() or 1
    parallel_bench_records["parallel_speedup"] = {
        "kernels": list(BENCHMARK_ORDER),
        "width": WIDTH,
        "cpu_count": cores,
        "jobs": PARALLEL_JOBS,
        "cold_jobs1_seconds": round(seq_seconds, 3),
        f"cold_jobs{PARALLEL_JOBS}_seconds": round(par_seconds, 3),
        "speedup": round(speedup, 2),
        "warm_seconds": round(warm_seconds, 3),
        "warm_machine_runs": len(machine_runs),
    }
    print(f"\ncold jobs=1 {seq_seconds:.2f}s  "
          f"cold jobs={PARALLEL_JOBS} {par_seconds:.2f}s  "
          f"speedup {speedup:.2f}x  warm {warm_seconds:.3f}s "
          f"({cores} cores)")

    # Warm cache must be dramatically faster than simulating.
    assert warm_seconds < seq_seconds / 5

    if cores >= PARALLEL_JOBS:
        assert speedup >= MIN_SPEEDUP, \
            f"parallel scheduler only {speedup:.2f}x over sequential " \
            f"on {cores} cores (required: {MIN_SPEEDUP}x)"
