"""E4 — Figure 6: speedup over the scalar baseline at widths 2/4/8/16.

Paper shape properties this harness checks:

* speedup never decreases with width (modulo noise),
* FIR is the best case (~94% vectorizable hot loop, few misses),
* 179.art is the worst case (hot loops miss the data cache),
* MPEG2 Decode gains nothing from 8 -> 16 lanes (8-element rows),
* loops whose permutations exceed the hardware width simply stay scalar
  (Liquid's graceful degradation) — visible as flat FFT speedup below
  width 8.

Absolute factors differ from the paper (different core model, synthetic
workloads); the ordering and crossover structure is the result.
"""

from repro.evaluation.experiments import DEFAULT_WIDTHS, figure6_speedups
from repro.evaluation.report import render_figure6


def test_figure6(benchmark, ctx):
    rows = benchmark.pedantic(figure6_speedups,
                              args=(ctx, DEFAULT_WIDTHS),
                              rounds=1, iterations=1)
    print("\n" + render_figure6(rows, DEFAULT_WIDTHS))
    by_name = {r["benchmark"]: r["speedups"] for r in rows}

    # Monotone non-decreasing in width (2% tolerance).
    for name, speedups in by_name.items():
        values = [speedups[w] for w in DEFAULT_WIDTHS]
        for narrow, wide in zip(values, values[1:]):
            assert wide >= narrow * 0.98, (name, values)

    # Everyone benefits at width 16.
    assert all(s[16] > 1.0 for s in by_name.values())

    # FIR is the best case; art the worst (the paper's extremes).
    w16 = {name: s[16] for name, s in by_name.items()}
    assert max(w16, key=w16.get) == "FIR"
    assert min(w16, key=w16.get) == "179.art"
    assert w16["FIR"] > 4.0
    assert w16["179.art"] < 1.5

    # MPEG2 Decode saturates at width 8 (8-element block rows).
    mpeg = by_name["MPEG2 Dec."]
    assert abs(mpeg[16] - mpeg[8]) / mpeg[8] < 0.02

    # FFT's bfly8 permutation cannot run below width 8: the butterfly
    # stage stays scalar on narrow machines (only the scale loop
    # accelerates), then snaps up once the hardware is wide enough.
    fft = by_name["FFT"]
    assert fft[8] > fft[4] * 1.5
