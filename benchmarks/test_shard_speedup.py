"""Sharded-sweep benchmark: cold vs. sharded vs. incremental re-bench.

Runs one paper-figure sweep (a benchmark subset across the width sweep)
three ways through ``run_sweep`` and records the wall-clocks and
machine-run counts in ``benchmarks/BENCH_shard.json``:

* **cold**        — one unsharded invocation against an empty cache,
* **sharded**     — two ``--shard K/2`` invocations against one shared
  cache directory, then ``merge_sweeps`` verifying the fleet contract,
* **incremental** — the same sweep against the now-warm cache.

Acceptance (ISSUE 9): the merged sharded sweep is byte-identical to the
cold unsharded one with zero duplicate machine-runs; the incremental
pass performs **zero** machine-runs and exactly one cache probe
round-trip.  The *gated* speedup record is derived from machine-run
counts — ``(cold_runs + 1) / (incremental_runs + 1)`` — a deterministic
quantity, unlike wall-clock ratios on shared CI hardware; the raw
wall-clocks ride along ungated.
"""

from __future__ import annotations

import time

from repro.evaluation.runcache import RunCache
from repro.evaluation.runner import RunScheduler
from repro.evaluation.shard import ShardSpec, merge_sweeps, run_sweep
from repro.system.machine import Machine

BENCHMARKS = ["MPEG2 Dec.", "GSM Enc.", "LU", "FFT", "FIR"]
WIDTHS = (2, 4, 8, 16)
SHARDS = 2


def _timed_sweep(cache_dir, **kwargs):
    scheduler = RunScheduler(jobs=1, cache=RunCache(cache_dir))
    start = time.perf_counter()
    manifest = run_sweep(BENCHMARKS, WIDTHS, scheduler=scheduler, **kwargs)
    return time.perf_counter() - start, manifest


def test_sharded_and_incremental_sweep(tmp_path, shard_bench_records,
                                       monkeypatch):
    cold_seconds, cold = _timed_sweep(tmp_path / "cold")

    # Sharded fleet: disjoint slices against one shared directory.
    shard_walls, shards = [], []
    for index in range(1, SHARDS + 1):
        seconds, manifest = _timed_sweep(
            tmp_path / "shared", shard=ShardSpec(index, SHARDS))
        shard_walls.append(seconds)
        shards.append(manifest)
    merged = merge_sweeps(shards)

    # Byte-identical to the unsharded run, zero duplicate machine-runs.
    assert merged["entries"] == cold["entries"], \
        "merged shard digests must match the unsharded sweep exactly"
    assert merged["speedups"] == cold["speedups"]
    total_runs = sum(m["stats"]["machine_runs"] for m in shards)
    assert total_runs == cold["coverage"]["total_requests"], \
        "the fleet must simulate each key exactly once"

    # Incremental pass over the warm shared cache: zero machine-runs,
    # one probe round-trip.
    machine_runs = []
    real_run = Machine.run
    monkeypatch.setattr(
        Machine, "run",
        lambda self, program: machine_runs.append(program.name)
        or real_run(self, program))
    incr_seconds, incr = _timed_sweep(tmp_path / "shared",
                                      incremental=True)
    assert machine_runs == [], \
        f"incremental sweep on warm cache still simulated {machine_runs}"
    assert incr["stats"]["machine_runs"] == 0
    assert incr["stats"]["probe_calls"] == 1
    assert incr["entries"] == cold["entries"]

    cold_runs = cold["stats"]["machine_runs"]
    incr_runs = incr["stats"]["machine_runs"]
    # Deterministic gate: machine-runs avoided, not wall-clock measured.
    runs_avoided_ratio = (cold_runs + 1) / (incr_runs + 1)
    shard_bench_records["shard_sweep"] = {
        "benchmarks": BENCHMARKS,
        "widths": list(WIDTHS),
        "shards": SHARDS,
        "total_requests": cold["coverage"]["total_requests"],
        "cold_machine_runs": cold_runs,
        "sharded_machine_runs": total_runs,
        "incremental_machine_runs": incr_runs,
        "incremental_probe_calls": incr["stats"]["probe_calls"],
        "speedup": round(runs_avoided_ratio, 2),
    }
    shard_bench_records["shard_wall_clock"] = {
        "cold_seconds": round(cold_seconds, 3),
        "shard_seconds": [round(s, 3) for s in shard_walls],
        "max_shard_seconds": round(max(shard_walls), 3),
        "incremental_seconds": round(incr_seconds, 3),
        "wall_ratio_cold_over_incremental": round(
            cold_seconds / incr_seconds, 2) if incr_seconds else None,
    }
    print(f"\ncold {cold_seconds:.2f}s ({cold_runs} runs)  "
          f"shards {[f'{s:.2f}s' for s in shard_walls]} "
          f"({total_runs} runs total)  "
          f"incremental {incr_seconds:.3f}s ({incr_runs} runs)")

    # The incremental pass must be dramatically cheaper than cold.
    assert incr_seconds < cold_seconds / 5
    # And the balanced fleet finishes faster than one cold worker.
    assert max(shard_walls) < cold_seconds
