"""E7 — microcode cache sizing sweep.

Paper: "supporting eight or more SIMD code sequences (i.e., hot loops)
in the control cache is sufficient to capture the working set in all of
the benchmarks", giving the 8 x 64 x 32-bit = 2 KB control cache.

The sweep runs the benchmark with the most distinct hot loops (LU has
four elimination loops) and FFT through caches of 1..16 entries.
"""

from repro.evaluation.experiments import ucode_cache_ablation
from repro.evaluation.report import render_ablation


def test_ucode_cache_capacity_lu(benchmark):
    rows = benchmark.pedantic(ucode_cache_ablation,
                              args=("LU", 8, (1, 2, 4, 8, 16)),
                              rounds=1, iterations=1)
    print("\n" + render_ablation(rows, "entries",
                                 "Microcode cache sweep (LU, 4 hot loops)"))
    by_entries = {r["entries"]: r for r in rows}
    # A too-small cache thrashes: with 4 hot loops in round-robin, a
    # 1-entry cache evicts before reuse.
    assert by_entries[1]["evictions"] > 0
    # 8 entries capture the working set with room to spare (paper claim).
    assert by_entries[8]["evictions"] == 0
    assert by_entries[8]["simd_run_fraction"] > 0.8
    # No benefit beyond the working set.
    assert by_entries[16]["cycles"] == by_entries[8]["cycles"]
    # Cycles never increase with a bigger cache.
    cycles = [by_entries[n]["cycles"] for n in (1, 2, 4, 8, 16)]
    assert all(a >= b for a, b in zip(cycles, cycles[1:]))


def test_ucode_cache_capacity_fft(benchmark):
    rows = benchmark.pedantic(ucode_cache_ablation,
                              args=("FFT", 8, (1, 2, 8)),
                              rounds=1, iterations=1)
    print("\n" + render_ablation(rows, "entries",
                                 "Microcode cache sweep (FFT)"))
    by_entries = {r["entries"]: r for r in rows}
    assert by_entries[8]["evictions"] == 0
    assert by_entries[8]["simd_run_fraction"] > 0.7
