"""E7 — microcode cache sizing sweep, plus the persistent-store arm.

Paper: "supporting eight or more SIMD code sequences (i.e., hot loops)
in the control cache is sufficient to capture the working set in all of
the benchmarks", giving the 8 x 64 x 32-bit = 2 KB control cache.

The sweep runs the benchmark with the most distinct hot loops (LU has
four elimination loops) and FFT through caches of 1..16 entries.

The second half ablates the *persistent* fragment store
(docs/retranslation.md): eviction policy (lru vs fifo) under a bounded
``max_entries``, and the warm-over-cold sweep speedup of an unbounded
store, emitted as ``BENCH_fragstore.json``.
"""

import os
import time

from repro.core.scalarize import build_liquid_program
from repro.core.translate.fragstore import FragmentStore
from repro.evaluation.crosswidth import (
    retranslate_at_width,
    translate_at_width,
)
from repro.evaluation.experiments import ucode_cache_ablation
from repro.evaluation.report import render_ablation
from repro.kernels.suite import build_kernel
from repro.simd.accelerator import config_for_width
from repro.system.machine import MachineConfig


def test_ucode_cache_capacity_lu(benchmark):
    rows = benchmark.pedantic(ucode_cache_ablation,
                              args=("LU", 8, (1, 2, 4, 8, 16)),
                              rounds=1, iterations=1)
    print("\n" + render_ablation(rows, "entries",
                                 "Microcode cache sweep (LU, 4 hot loops)"))
    by_entries = {r["entries"]: r for r in rows}
    # A too-small cache thrashes: with 4 hot loops in round-robin, a
    # 1-entry cache evicts before reuse.
    assert by_entries[1]["evictions"] > 0
    # 8 entries capture the working set with room to spare (paper claim).
    assert by_entries[8]["evictions"] == 0
    assert by_entries[8]["simd_run_fraction"] > 0.8
    # No benefit beyond the working set.
    assert by_entries[16]["cycles"] == by_entries[8]["cycles"]
    # Cycles never increase with a bigger cache.
    cycles = [by_entries[n]["cycles"] for n in (1, 2, 4, 8, 16)]
    assert all(a >= b for a, b in zip(cycles, cycles[1:]))


def test_ucode_cache_capacity_fft(benchmark):
    rows = benchmark.pedantic(ucode_cache_ablation,
                              args=("FFT", 8, (1, 2, 8)),
                              rounds=1, iterations=1)
    print("\n" + render_ablation(rows, "entries",
                                 "Microcode cache sweep (FFT)"))
    by_entries = {r["entries"]: r for r in rows}
    assert by_entries[8]["evictions"] == 0
    assert by_entries[8]["simd_run_fraction"] > 0.7


# ---------------------------------------------------------------------------
# Persistent fragment-store ablation (docs/retranslation.md)
# ---------------------------------------------------------------------------

_SWEEP_BENCHES = ("FIR", "FFT", "LU")  # 2 + 3 + 8 = 13 store entries
_SOURCE_WIDTH, _TARGET_WIDTH = 4, 8
# One entry short of the full sweep, so exactly one eviction fires and
# its victim is what tells the policies apart.
_BOUND = 12


def _sweep(store: FragmentStore, benches=_SWEEP_BENCHES) -> None:
    """Translate at W, retranslate to 2W, all through the store."""
    target_tcfg = MachineConfig(
        accelerator=config_for_width(_TARGET_WIDTH)).translator_config()
    for bench in benches:
        program = build_liquid_program(build_kernel(bench))
        config = MachineConfig(accelerator=config_for_width(_SOURCE_WIDTH),
                               engine="fast")
        translations = translate_at_width(program, config, store)
        entries = [t.entry for t in translations.values()
                   if t.ok and t.entry is not None]
        retranslate_at_width(entries, _TARGET_WIDTH, target_tcfg, store)


def _age(paths, mtime: float) -> None:
    """Pin mtimes so eviction order is deterministic, not wall-clock."""
    for path in paths:
        os.utime(path, (mtime, mtime))


def _bounded_run(root, policy: str) -> dict:
    """FIR+FFT fill, touch FIR, then LU overflows by one entry.

    Under ``lru`` the touch refreshes FIR's recency so the one victim
    is an FFT entry; under ``fifo`` FIR is first-in and loses one —
    the warm FIR hit count is the observable difference.
    """
    store = FragmentStore(root, max_entries=_BOUND, eviction=policy)
    _sweep(store, benches=("FIR",))
    fir_paths = set(store.entry_paths())
    _age(fir_paths, 1_000.0)
    _sweep(store, benches=("FFT",))
    _age(set(store.entry_paths()) - fir_paths, 2_000.0)
    _sweep(store, benches=("FIR",))  # pure loads: the recency touch
    _sweep(store, benches=("LU",))
    hits_before = store.stats.hits
    _sweep(store, benches=("FIR",))
    return {
        "policy": policy,
        "max_entries": _BOUND,
        "stores": store.stats.stores,
        "evictions": store.stats.evictions,
        "resident": store.entry_count(),
        "fir_warm_hits": store.stats.hits - hits_before,
        "fir_entries": len(fir_paths),
    }


def test_fragstore_eviction_ablation(benchmark, tmp_path,
                                     fragstore_bench_records):
    def run():
        unbounded = FragmentStore(tmp_path / "unbounded")
        t0 = time.perf_counter()
        _sweep(unbounded)
        cold = time.perf_counter() - t0
        cold_stores = unbounded.stats.stores
        t0 = time.perf_counter()
        _sweep(unbounded)
        warm = time.perf_counter() - t0
        record = {
            "benches": list(_SWEEP_BENCHES),
            "from_width": _SOURCE_WIDTH,
            "to_width": _TARGET_WIDTH,
            "entries": cold_stores,
            "warm_hits": unbounded.stats.hits,
            "evictions": unbounded.stats.evictions,
            "cold_seconds": cold,
            "warm_seconds": warm,
            "speedup": cold / warm,
            "policies": [_bounded_run(tmp_path / policy, policy)
                         for policy in ("lru", "fifo")],
        }
        return record

    record = benchmark.pedantic(run, rounds=1, iterations=1)
    fragstore_bench_records["fragstore_warm_over_cold"] = record

    header = (f"{'store':<12}{'stores':>8}{'evict':>7}{'resident':>10}"
              f"{'FIR warm hits':>15}")
    lines = ["Fragment-store eviction ablation "
             f"(w{_SOURCE_WIDTH} -> w{_TARGET_WIDTH}, "
             f"bound {_BOUND})", header,
             f"{'unbounded':<12}{record['entries']:>8}"
             f"{record['evictions']:>7}{record['entries']:>10}"
             f"{'-':>15}"]
    for row in record["policies"]:
        lines.append(f"{row['policy']:<12}{row['stores']:>8}"
                     f"{row['evictions']:>7}{row['resident']:>10}"
                     f"{row['fir_warm_hits']:>15}")
    print("\n" + "\n".join(lines))

    # Unbounded: the warm sweep is pure hits — no machine re-runs.
    assert record["evictions"] == 0
    assert record["warm_hits"] == record["entries"]
    assert record["speedup"] > 1.0
    by_policy = {row["policy"]: row for row in record["policies"]}
    for row in by_policy.values():
        # Saturated stores stay exactly at the bound, one eviction per
        # over-capacity store.
        assert row["resident"] == _BOUND
        assert row["evictions"] == row["stores"] - _BOUND
    # The recency touch saves FIR under lru: the warm re-sweep is pure
    # hits and triggers no new work.
    assert by_policy["lru"]["fir_warm_hits"] == \
        by_policy["lru"]["fir_entries"]
    assert by_policy["lru"]["stores"] == record["entries"]
    # fifo ignores the touch, evicts first-in FIR, and pays for it with
    # recomputation (extra stores) on the warm re-sweep.
    assert by_policy["fifo"]["fir_warm_hits"] < \
        by_policy["fifo"]["fir_entries"]
    assert by_policy["fifo"]["stores"] > record["entries"]
