"""E8 — translation latency tolerance sweep.

Paper: post-retirement placement means translation "could have taken
tens of cycles per scalar instruction without affecting performance",
because hot-loop call distances exceed 300 cycles (Table 6).  The sweep
varies the translator's cycles-per-observed-instruction from 1 to 500
and measures whole-program slowdown.
"""

from repro.evaluation.experiments import translation_latency_ablation
from repro.evaluation.report import render_ablation


def test_translation_latency_tolerance(benchmark):
    rows = benchmark.pedantic(
        translation_latency_ablation,
        args=("171.swim", 8, (1, 10, 50, 100, 500, 5000)),
        rounds=1, iterations=1)
    print("\n" + render_ablation(rows, "cycles_per_instruction",
                                 "Translation latency sweep (171.swim)"))
    by_cpi = {r["cycles_per_instruction"]: r for r in rows}
    # Tens of cycles per instruction: performance unaffected (paper claim).
    assert by_cpi[10]["slowdown_pct"] < 1.0
    assert by_cpi[50]["slowdown_pct"] < 3.0
    assert by_cpi[100]["slowdown_pct"] < 3.0
    # Slowdown grows monotonically once latency exceeds call distances.
    slowdowns = [by_cpi[n]["slowdown_pct"]
                 for n in (1, 10, 50, 100, 500, 5000)]
    assert all(a <= b + 0.01 for a, b in zip(slowdowns, slowdowns[1:]))
    # A pathologically slow translator finally costs extra scalar runs.
    assert by_cpi[5000]["scalar_runs"] > by_cpi[1]["scalar_runs"]
    assert by_cpi[5000]["slowdown_pct"] > 0.0


def test_latency_tolerance_on_short_distance_benchmark(benchmark):
    """MPEG2's back-to-back calls are the worst case for slow translation."""
    rows = benchmark.pedantic(translation_latency_ablation,
                              args=("MPEG2 Dec.", 8, (1, 10, 100)),
                              rounds=1, iterations=1)
    print("\n" + render_ablation(rows, "cycles_per_instruction",
                                 "Translation latency sweep (MPEG2 Dec.)"))
    by_cpi = {r["cycles_per_instruction"]: r for r in rows}
    # Short call distances make MPEG2 pay for slow translation earlier
    # than swim does — the flip side of Table 6.
    assert by_cpi[100]["scalar_runs"] >= by_cpi[1]["scalar_runs"]
