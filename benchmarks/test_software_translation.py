"""E9 (extension) — hardware vs. software (JIT) dynamic translation.

The paper implements hardware translation but explicitly leaves the
door open: "Nothing about our virtualization technique precludes
software-based translation" (section 2), arguing hardware's advantage
is efficiency and not needing "a separate translation process to share
the CPU".  This ablation quantifies that argument: the JIT variant
steals core cycles once per hot loop but produces identical microcode.
"""

from repro.evaluation.experiments import software_translation_comparison


def test_hardware_vs_software_translation(benchmark):
    rows = benchmark.pedantic(
        software_translation_comparison,
        args=(("MPEG2 Dec.", "GSM Enc.", "LU", "FIR", "FFT"), 8),
        rounds=1, iterations=1)
    print(f"\n{'Benchmark':<14}{'HW cycles':>12}{'JIT cycles':>12}"
          f"{'JIT cost':>10}")
    for row in rows:
        print(f"{row['benchmark']:<14}{row['hardware_cycles']:>12,}"
              f"{row['software_cycles']:>12,}{row['jit_cost_pct']:>9.2f}%")
    by_name = {r["benchmark"]: r for r in rows}
    for row in rows:
        # The JIT can only cost cycles, never correctness or coverage.
        assert row["software_cycles"] >= row["hardware_cycles"]
        assert row["sw_simd_runs"] >= row["hw_simd_runs"] - 1
    # Coarse-grained hot loops amortize the JIT easily...
    for name in ("GSM Enc.", "LU", "FIR", "FFT"):
        assert by_name[name]["jit_cost_pct"] < 20.0, name
    # ...but MPEG2's fine-grained 8-element loops do not: sharing the CPU
    # with a software translator "may be unacceptable in embedded
    # systems" (paper section 2) — here is that claim, quantified.
    assert by_name["MPEG2 Dec."]["jit_cost_pct"] > 10.0
    assert by_name["MPEG2 Dec."]["jit_cost_pct"] == max(
        r["jit_cost_pct"] for r in rows)


def test_software_translation_scales_with_jit_speed(benchmark):
    def sweep():
        return [software_translation_comparison(("LU",), 8, cpi)[0]
                for cpi in (10, 30, 100)]
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    costs = [r["jit_cost_pct"] for r in rows]
    print(f"\nJIT cycles/instruction 10/30/100 -> cost {costs}")
    assert costs == sorted(costs)
