"""Engine micro-benchmark: fast pre-decoded engine vs. reference.

Runs the full fifteen-kernel liquid suite at hardware width 8 under both
engines and asserts the fast engine's >= 2x wall-clock speedup (the
tentpole acceptance criterion).  The measured numbers are recorded in
``benchmarks/BENCH_engine.json`` via the session fixture in conftest.

The differential suite (``tests/test_engine_differential.py``) already
proves the two engines bit-identical, so this file only measures time;
it still cross-checks cycle counts as a cheap sanity net.
"""

from __future__ import annotations

import time

from repro.core.scalarize import build_liquid_program
from repro.kernels.suite import BENCHMARK_ORDER, build_kernel
from repro.simd.accelerator import config_for_width
from repro.system.machine import Machine, MachineConfig

WIDTH = 8
MIN_SPEEDUP = 2.0


def _run_suite(programs, engine):
    accel = config_for_width(WIDTH)
    cycles = 0
    start = time.perf_counter()
    for program in programs:
        result = Machine(MachineConfig(accelerator=accel,
                                       engine=engine)).run(program)
        cycles += result.cycles
    return time.perf_counter() - start, cycles


def test_engine_speedup(engine_bench_records):
    programs = [build_liquid_program(build_kernel(name))
                for name in BENCHMARK_ORDER]

    _run_suite(programs, "fast")  # warm caches and decode tables
    fast_seconds, fast_cycles = min(
        _run_suite(programs, "fast") for _ in range(2))
    ref_seconds, ref_cycles = _run_suite(programs, "reference")

    assert fast_cycles == ref_cycles, \
        "engines disagree on simulated cycles; run the differential suite"

    speedup = ref_seconds / fast_seconds
    engine_bench_records["engine_speedup"] = {
        "kernels": list(BENCHMARK_ORDER),
        "width": WIDTH,
        "fast_seconds": round(fast_seconds, 3),
        "reference_seconds": round(ref_seconds, 3),
        "speedup": round(speedup, 2),
    }
    print(f"\nfast {fast_seconds:.2f}s  reference {ref_seconds:.2f}s  "
          f"speedup {speedup:.2f}x")
    assert speedup >= MIN_SPEEDUP, \
        f"fast engine only {speedup:.2f}x over reference " \
        f"(required: {MIN_SPEEDUP}x)"
