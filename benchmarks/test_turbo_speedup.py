"""Turbo micro-benchmark: superblock-fused engine vs. fast engine.

Runs the Figure 6 sweep (the full fifteen-kernel liquid suite at
hardware width 8) under both engines, asserts the turbo engine's >= 2x
*geomean* wall-clock speedup (the ISSUE 3 acceptance criterion), and
records per-kernel timings in ``benchmarks/BENCH_turbo.json`` via the
shared writer in conftest.

The three-way differential suite (``tests/test_engine_differential.py``)
already proves the engines bit-identical, so the timing half of this
file only measures; it still cross-checks cycle counts as a cheap
sanity net.  The second test pins the other ISSUE 3 cache property:
run-cache keys are engine-invariant, so entries written under one
engine are byte-identical to — and directly answer — the same requests
under another.
"""

from __future__ import annotations

import math
import time

from repro.core.scalarize import build_liquid_program
from repro.evaluation.experiments import EvalContext
from repro.evaluation.runcache import RunCache, run_key
from repro.evaluation.runner import RunScheduler, build_request_program
from repro.kernels.suite import BENCHMARK_ORDER, build_kernel
from repro.simd.accelerator import config_for_width
from repro.system.machine import Machine, MachineConfig

WIDTH = 8
MIN_GEOMEAN_SPEEDUP = 2.0
MEASURED_PASSES = 2


def _time_kernel(program, engine, accel):
    """(best wall-clock seconds, simulated cycles) for one kernel."""
    best = math.inf
    cycles = None
    for _ in range(MEASURED_PASSES):
        config = MachineConfig(accelerator=accel, engine=engine)
        start = time.perf_counter()
        result = Machine(config).run(program)
        best = min(best, time.perf_counter() - start)
        cycles = result.cycles
    return best, cycles


def test_turbo_geomean_speedup(turbo_bench_records):
    accel = config_for_width(WIDTH)
    programs = {name: build_liquid_program(build_kernel(name))
                for name in BENCHMARK_ORDER}

    # Warmup: decode tables, superblock compilation, allocator state.
    for program in programs.values():
        for engine in ("fast", "turbo"):
            Machine(MachineConfig(accelerator=accel,
                                  engine=engine)).run(program)

    kernels = {}
    ratios = []
    fast_total = turbo_total = 0.0
    for name, program in programs.items():
        fast_s, fast_cycles = _time_kernel(program, "fast", accel)
        turbo_s, turbo_cycles = _time_kernel(program, "turbo", accel)
        assert fast_cycles == turbo_cycles, \
            f"{name}: engines disagree on cycles; run the differential suite"
        ratio = fast_s / turbo_s
        ratios.append(ratio)
        fast_total += fast_s
        turbo_total += turbo_s
        kernels[name] = {
            "fast_seconds": round(fast_s, 4),
            "turbo_seconds": round(turbo_s, 4),
            "speedup": round(ratio, 2),
        }

    geomean = math.exp(sum(map(math.log, ratios)) / len(ratios))
    turbo_bench_records["turbo_speedup"] = {
        "kernels": kernels,
        "width": WIDTH,
        "fast_seconds": round(fast_total, 3),
        "turbo_seconds": round(turbo_total, 3),
        "speedup": round(geomean, 2),
        "aggregate_speedup": round(fast_total / turbo_total, 2),
    }
    print(f"\nfast {fast_total:.2f}s  turbo {turbo_total:.2f}s  "
          f"geomean {geomean:.2f}x  "
          f"aggregate {fast_total / turbo_total:.2f}x")
    assert geomean >= MIN_GEOMEAN_SPEEDUP, \
        f"turbo engine only {geomean:.2f}x geomean over fast " \
        f"(required: {MIN_GEOMEAN_SPEEDUP}x)"


def _prefetch_suite(engine, cache_dir):
    scheduler = RunScheduler(jobs=1, cache=RunCache(cache_dir))
    ctx = EvalContext(engine=engine, scheduler=scheduler)
    requests = [ctx.liquid_request(name, WIDTH) for name in BENCHMARK_ORDER]
    ctx.prefetch(requests)
    return ctx, requests, scheduler


def test_run_cache_engine_invariant(tmp_path, monkeypatch):
    """Cache entries are shared — and byte-identical — across engines."""
    fast_dir = tmp_path / "fast"
    turbo_dir = tmp_path / "turbo"
    _, fast_requests, _ = _prefetch_suite("fast", fast_dir)
    _, turbo_requests, _ = _prefetch_suite("turbo", turbo_dir)

    fast_cache = RunCache(fast_dir)
    turbo_cache = RunCache(turbo_dir)
    for fast_req, turbo_req in zip(fast_requests, turbo_requests):
        fast_key = run_key(build_request_program(fast_req), fast_req.config)
        turbo_key = run_key(build_request_program(turbo_req),
                            turbo_req.config)
        assert fast_key == turbo_key, "run keys must be engine-invariant"
        assert fast_cache.path_for(fast_key).read_bytes() == \
            turbo_cache.path_for(turbo_key).read_bytes(), \
            f"{fast_req.benchmark}: cached bytes differ across engines"

    # A turbo context over the cache the *fast* engine populated answers
    # everything from disk: zero simulations.
    machine_runs = []
    real_run = Machine.run
    monkeypatch.setattr(
        Machine, "run",
        lambda self, program: machine_runs.append(program.name)
        or real_run(self, program))
    warm_ctx, warm_requests, warm_scheduler = _prefetch_suite(
        "turbo", fast_dir)
    assert machine_runs == [], \
        f"turbo re-simulated despite fast-engine cache: {machine_runs}"
    assert warm_scheduler.stats.cache_hits == len(BENCHMARK_ORDER)
    assert warm_scheduler.stats.executed == 0
    warm_cycles = {r.benchmark: warm_ctx.run_request(r).cycles
                   for r in warm_requests}
    assert set(warm_cycles) == set(BENCHMARK_ORDER)
