"""E6 — code size overhead of Liquid binaries.

Paper: the Liquid binary grows by less than 1% (maximum: hydro2d),
because outlining adds only a branch-and-link/return pair per hot loop,
idioms add a handful of instructions, and data alignment pads arrays to
the maximum vectorizable length.
"""

from repro.evaluation.experiments import code_size_overhead
from repro.evaluation.report import render_code_size


def test_code_size(benchmark, ctx):
    rows = benchmark(code_size_overhead, ctx)
    print("\n" + render_code_size(rows))
    for row in rows:
        assert row["liquid_bytes"] >= row["baseline_bytes"], row
        assert row["overhead_pct"] < 1.0, row  # paper: < 1% everywhere
    worst = max(rows, key=lambda r: r["overhead_pct"])
    print(f"\nworst overhead: {worst['benchmark']} "
          f"({worst['overhead_pct']:.2f}%)")
