"""E2 — Table 5: scalar instructions per outlined function (mean/max).

Paper: means range from 11 (LU, FIR) to 46.2 (172.mgrid), maxima up to
62; everything fits the 64-entry microcode buffer, with the biggest
loops (tomcatv, mgrid) having been fissioned by the compiler to fit.
Our synthetic kernels land in the same band and respect the same cap.
"""

from repro.evaluation.experiments import table5_outlined_sizes
from repro.evaluation.report import render_table5

#: Paper's Table 5 means, for side-by-side reporting.
PAPER_MEANS = {
    "052.alvinn": 12.5, "056.ear": 34.5, "093.nasa7": 45.5,
    "101.tomcatv": 35.5, "104.hydro2d": 27.2, "171.swim": 37.8,
    "172.mgrid": 46.2, "179.art": 12.8, "MPEG2 Dec.": 12.5,
    "MPEG2 Enc.": 14.5, "GSM Dec.": 25.0, "GSM Enc.": 19.5,
    "LU": 11.0, "FIR": 11.0, "FFT": 31.3,
}


def test_table5(benchmark, ctx):
    rows = benchmark(table5_outlined_sizes, ctx)
    print("\n" + render_table5(rows))
    print(f"{'Benchmark':<14}{'paper mean':>12}{'measured':>10}")
    for row in rows:
        print(f"{row['benchmark']:<14}{PAPER_MEANS[row['benchmark']]:>12}"
              f"{row['mean']:>10}")
    by_name = {r["benchmark"]: r for r in rows}
    # Every hot loop fits the 64-instruction microcode buffer.
    assert all(r["max"] <= 64 for r in rows)
    # Smallest-loop benchmarks (paper: LU/FIR at 11) stay small here too.
    assert by_name["LU"]["mean"] <= 15
    assert by_name["FIR"]["mean"] <= 15
    # FFT's fissioned stage is among the larger functions, as in the paper.
    assert by_name["FFT"]["max"] >= 30
