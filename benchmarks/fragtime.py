"""Shared fragment-phase timing harness for the engine benchmarks.

``test_macro_speedup.py`` and ``test_codegen_speedup.py`` measure the
same quantity — wall-clock spent inside ``Machine._run_fragment``, the
phase the macro layer rewrites — so the patching timer and the
best-of-N measurement loop live here once.  The scalar driver loop and
the in-flight translation windows execute identical code under both
engines (the macro engine *is* the turbo engine outside fragments), so
timing the whole run would mostly measure work the macro layer doesn't
touch; end-to-end seconds are returned alongside for context.
"""

from __future__ import annotations

import math
import time

from repro.system.machine import Machine, MachineConfig


class FragmentTimer:
    """Wraps ``Machine._run_fragment`` to accumulate its wall-clock."""

    def __init__(self):
        self.seconds = 0.0
        self._original = None

    def __enter__(self):
        original = Machine._run_fragment
        self._original = original
        timer = self

        def timed(machine, *args, **kwargs):
            start = time.perf_counter()
            try:
                return original(machine, *args, **kwargs)
            finally:
                timer.seconds += time.perf_counter() - start

        Machine._run_fragment = timed
        return self

    def __exit__(self, *exc):
        Machine._run_fragment = self._original
        return False


def time_kernel(program, engine, accel, passes):
    """(best fragment-phase s, best total s, cycles) for one kernel."""
    best_fragment = best_total = math.inf
    cycles = None
    for _ in range(passes):
        config = MachineConfig(accelerator=accel, engine=engine)
        with FragmentTimer() as timer:
            start = time.perf_counter()
            result = Machine(config).run(program)
            total = time.perf_counter() - start
        if timer.seconds < best_fragment:
            best_fragment = timer.seconds
        best_total = min(best_total, total)
        cycles = result.cycles
    return best_fragment, best_total, cycles
