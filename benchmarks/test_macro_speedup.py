"""Macro-kernel micro-benchmark: whole-loop fragment execution vs. turbo.

Runs the Figure 6 sweep (the full fifteen-kernel liquid suite) at
hardware width 16 — the fragment-heaviest configuration — under the
turbo and macro engines and asserts the macro engine's >= 2x *geomean*
speedup of the translated-fragment execution phase (the ISSUE 4
acceptance criterion), recording per-kernel timings in
``benchmarks/BENCH_macro.json`` via the shared writer in conftest.

The measured quantity is the wall-clock spent inside
``Machine._run_fragment`` — the phase the macro layer rewrites — via
the shared harness in ``benchmarks/fragtime.py``.  The four-way
differential suite (``tests/test_engine_differential.py``) proves the
engines bit-identical; this file cross-checks simulated cycles as a
cheap sanity net.
"""

from __future__ import annotations

import math

from fragtime import time_kernel

from repro.core.scalarize import build_liquid_program
from repro.kernels.suite import BENCHMARK_ORDER, build_kernel
from repro.simd.accelerator import config_for_width
from repro.system.machine import Machine, MachineConfig

WIDTH = 16
MIN_GEOMEAN_SPEEDUP = 2.0
MEASURED_PASSES = 2


def test_macro_geomean_speedup(macro_bench_records):
    accel = config_for_width(WIDTH)
    programs = {name: build_liquid_program(build_kernel(name))
                for name in BENCHMARK_ORDER}

    # Warmup: decode tables, fused blocks, macro plans, allocator state.
    for program in programs.values():
        for engine in ("turbo", "macro"):
            Machine(MachineConfig(accelerator=accel,
                                  engine=engine)).run(program)

    kernels = {}
    ratios = []
    turbo_total = macro_total = 0.0
    for name, program in programs.items():
        turbo_frag, turbo_s, turbo_cycles = time_kernel(
            program, "turbo", accel, MEASURED_PASSES)
        macro_frag, macro_s, macro_cycles = time_kernel(
            program, "macro", accel, MEASURED_PASSES)
        assert turbo_cycles == macro_cycles, \
            f"{name}: engines disagree on cycles; run the differential suite"
        ratio = turbo_frag / macro_frag
        ratios.append(ratio)
        turbo_total += turbo_frag
        macro_total += macro_frag
        kernels[name] = {
            "turbo_fragment_seconds": round(turbo_frag, 4),
            "macro_fragment_seconds": round(macro_frag, 4),
            "turbo_seconds": round(turbo_s, 4),
            "macro_seconds": round(macro_s, 4),
            "speedup": round(ratio, 2),
        }

    geomean = math.exp(sum(map(math.log, ratios)) / len(ratios))
    macro_bench_records["macro_speedup"] = {
        "kernels": kernels,
        "width": WIDTH,
        "turbo_fragment_seconds": round(turbo_total, 3),
        "macro_fragment_seconds": round(macro_total, 3),
        "speedup": round(geomean, 2),
        "aggregate_speedup": round(turbo_total / macro_total, 2),
    }
    print(f"\nfragment phase: turbo {turbo_total:.2f}s  "
          f"macro {macro_total:.2f}s  geomean {geomean:.2f}x  "
          f"aggregate {turbo_total / macro_total:.2f}x")
    assert geomean >= MIN_GEOMEAN_SPEEDUP, \
        f"macro engine only {geomean:.2f}x geomean over turbo " \
        f"(required: {MIN_GEOMEAN_SPEEDUP}x)"
