"""E5 — Figure 6 callout: Liquid SIMD vs. built-in ISA support.

Paper: replacing dynamic translation with native SIMD execution from the
first call improved speedup by at most 0.001 (worst case FIR) — i.e.
virtualization overhead is negligible once hot loops execute many times.

Our schedules repeat orders of magnitude fewer times than SPEC runs, so
the experiment separates the one-time translation cost (first call or
two run scalar) from the steady-state cost.  The paper-comparable number
is the steady-state slowdown, which is **exactly zero** here by
construction: after translation, the injected microcode is identical to
what a native-ISA machine executes.
"""

from repro.evaluation.experiments import native_overhead
from repro.evaluation.report import render_native_overhead


def test_native_overhead(benchmark, ctx):
    rows = benchmark.pedantic(native_overhead, args=(ctx, 16),
                              rounds=1, iterations=1)
    print("\n" + render_native_overhead(rows))
    for row in rows:
        # Steady-state overhead ~0: the paper's headline claim.
        assert abs(row["steady_slowdown_pct"]) < 0.5, row
        # Translation can only cost, never gain.
        assert row["one_time_cycles"] >= 0
        assert row["native_speedup"] >= row["liquid_speedup"] * 0.999

    # The one-time cost is bounded by a couple of scalar executions of
    # each hot loop — microscopic against a real benchmark's lifetime.
    worst = max(rows, key=lambda r: r["one_time_cycles"])
    print(f"\nworst one-time translation cost: {worst['benchmark']} "
          f"({worst['one_time_cycles']:,} cycles)")
