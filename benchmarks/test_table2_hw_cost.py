"""E1 — Table 2: dynamic translator synthesis results.

Paper (90 nm IBM cells, 8-wide): 16 gates critical path, 1.51 ns,
174,117 cells, <0.2 mm^2, >650 MHz.  The calibrated analytic model
reproduces the row exactly and extrapolates a width sweep (ablation).
"""

from repro.core.translate.hw_model import TranslatorHardwareModel
from repro.evaluation.experiments import table2_hw_cost
from repro.evaluation.report import render_breakdown, render_table2


def test_table2_reference_configuration(benchmark):
    rows = benchmark(table2_hw_cost, (8,))
    row = rows[0]
    print("\n" + render_table2(rows))
    print(render_breakdown(row["breakdown"]))
    assert row["area_cells"] == 174_117            # paper: 174,117 cells
    assert row["crit_path_gates"] == 16            # paper: 16 gates
    assert abs(row["delay_ns"] - 1.51) < 0.01      # paper: 1.51 ns
    assert row["area_mm2"] <= 0.2                  # paper: < 0.2 mm^2
    assert row["frequency_mhz"] > 650              # paper: > 650 MHz


def test_table2_width_ablation(benchmark):
    """DESIGN.md ablation: area scales ~linearly with accelerator width."""
    rows = benchmark(table2_hw_cost, (2, 4, 8, 16, 32))
    print("\n" + render_table2(rows))
    areas = {r["description"]: r["area_cells"] for r in rows}
    assert areas["2-wide Translator"] < areas["8-wide Translator"]
    assert areas["32-wide Translator"] > 2 * areas["8-wide Translator"] * 0.8
    # Wider value histories lengthen the register-state read path.
    assert rows[-1]["crit_path_gates"] > rows[0]["crit_path_gates"]


def test_table2_buffer_ablation(benchmark):
    """Halving the microcode buffer saves ~38 k cells (SRAM + collapse net)."""
    def sweep():
        return [TranslatorHardwareModel(buffer_entries=n).total_cells()
                for n in (16, 32, 64)]
    cells = benchmark(sweep)
    assert cells[0] < cells[1] < cells[2]
    assert cells[2] == 174_117
