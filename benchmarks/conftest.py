"""Shared state for the benchmark harness.

The :class:`EvalContext` memoizes machine runs, so experiments that need
the same simulations (Figure 6, Table 6, the overhead callout) share
them across benchmark modules instead of re-simulating.  The context
rides a :class:`RunScheduler` backed by the persistent run cache
(docs/evaluation-runner.md), so a benchmark session that follows an
``evaluate --all`` — or a previous benchmark session — skips those
simulations entirely; set ``REPRO_CACHE_DIR`` to relocate the cache or
``REPRO_JOBS`` to bound worker processes.

The ``engine_bench_records`` / ``parallel_bench_records`` fixtures
collect timing records (filled in by ``test_engine_speedup.py`` and
``test_parallel_speedup.py``) and write them to ``BENCH_engine.json`` /
``BENCH_parallel.json`` at session teardown, so successive runs leave a
machine-readable record of the measured speedups.
"""

import json
import os
from pathlib import Path

import pytest

from repro.evaluation.experiments import EvalContext
from repro.evaluation.runcache import RunCache
from repro.evaluation.runner import RunScheduler

ENGINE_BENCH_PATH = Path(__file__).resolve().parent / "BENCH_engine.json"
PARALLEL_BENCH_PATH = Path(__file__).resolve().parent / "BENCH_parallel.json"


def _bench_jobs():
    env = os.environ.get("REPRO_JOBS")
    return int(env) if env else None  # None -> os.cpu_count()


@pytest.fixture(scope="session")
def ctx() -> EvalContext:
    """One evaluation context (all fifteen benchmarks) per session."""
    scheduler = RunScheduler(jobs=_bench_jobs(), cache=RunCache.default())
    return EvalContext(scheduler=scheduler)


def _records_fixture(path: Path):
    records = {}
    yield records
    if records:
        path.write_text(json.dumps(records, indent=2, sort_keys=True) + "\n")


@pytest.fixture(scope="session")
def engine_bench_records():
    """Mutable dict of engine-timing records, dumped as BENCH_engine.json."""
    yield from _records_fixture(ENGINE_BENCH_PATH)


@pytest.fixture(scope="session")
def parallel_bench_records():
    """Scheduler/cache timing records, dumped as BENCH_parallel.json."""
    yield from _records_fixture(PARALLEL_BENCH_PATH)
