"""Shared state for the benchmark harness.

The :class:`EvalContext` memoizes machine runs, so experiments that need
the same simulations (Figure 6, Table 6, the overhead callout) share
them across benchmark modules instead of re-simulating.

The ``engine_bench_records`` fixture collects fast-vs-reference engine
timings (filled in by ``test_engine_speedup.py``) and writes them to
``benchmarks/BENCH_engine.json`` at session teardown, so successive runs
leave a machine-readable record of the measured speedup.
"""

import json
from pathlib import Path

import pytest

from repro.evaluation.experiments import EvalContext

ENGINE_BENCH_PATH = Path(__file__).resolve().parent / "BENCH_engine.json"


@pytest.fixture(scope="session")
def ctx() -> EvalContext:
    """One evaluation context (all fifteen benchmarks) per session."""
    return EvalContext()


@pytest.fixture(scope="session")
def engine_bench_records():
    """Mutable dict of engine-timing records, dumped as BENCH_engine.json."""
    records = {}
    yield records
    if records:
        ENGINE_BENCH_PATH.write_text(json.dumps(records, indent=2,
                                                sort_keys=True) + "\n")
