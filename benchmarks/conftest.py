"""Shared state for the benchmark harness.

The :class:`EvalContext` memoizes machine runs, so experiments that need
the same simulations (Figure 6, Table 6, the overhead callout) share
them across benchmark modules instead of re-simulating.
"""

import pytest

from repro.evaluation.experiments import EvalContext


@pytest.fixture(scope="session")
def ctx() -> EvalContext:
    """One evaluation context (all fifteen benchmarks) per session."""
    return EvalContext()
