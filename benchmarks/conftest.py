"""Shared state for the benchmark harness.

The :class:`EvalContext` memoizes machine runs, so experiments that need
the same simulations (Figure 6, Table 6, the overhead callout) share
them across benchmark modules instead of re-simulating.  The context
rides a :class:`RunScheduler` backed by the persistent run cache
(docs/evaluation-runner.md), so a benchmark session that follows an
``evaluate --all`` — or a previous benchmark session — skips those
simulations entirely; set ``REPRO_CACHE_DIR`` to relocate the cache or
``REPRO_JOBS`` to bound worker processes.

The ``engine_bench_records`` / ``parallel_bench_records`` /
``turbo_bench_records`` / ``macro_bench_records`` /
``fragstore_bench_records`` / ``codegen_bench_records`` fixtures
collect timing records (filled in by ``test_engine_speedup.py``,
``test_parallel_speedup.py``, ``test_turbo_speedup.py``,
``test_macro_speedup.py``, ``test_codegen_speedup.py`` and the
fragment-store ablation in ``test_ucode_cache_ablation.py``) and write
them through one shared
:func:`write_bench_json` at session teardown, so successive runs leave
machine-readable ``BENCH_*.json`` records with a common schema::

    {
      "machine":  {platform, python, cpu_count, processor},
      "records":  {<record name>: {...timings...}, ...},
      "speedups": {<record name>: <derived speedup>, ...}
    }
"""

import json
import os
import platform
import sys
from pathlib import Path

import pytest

from repro.evaluation.experiments import EvalContext
from repro.evaluation.runcache import RunCache
from repro.evaluation.runner import RunScheduler

_BENCH_DIR = Path(__file__).resolve().parent
ENGINE_BENCH_PATH = _BENCH_DIR / "BENCH_engine.json"
PARALLEL_BENCH_PATH = _BENCH_DIR / "BENCH_parallel.json"
TURBO_BENCH_PATH = _BENCH_DIR / "BENCH_turbo.json"
MACRO_BENCH_PATH = _BENCH_DIR / "BENCH_macro.json"
FRAGSTORE_BENCH_PATH = _BENCH_DIR / "BENCH_fragstore.json"
CODEGEN_BENCH_PATH = _BENCH_DIR / "BENCH_codegen.json"
SHARD_BENCH_PATH = _BENCH_DIR / "BENCH_shard.json"
SERVE_BENCH_PATH = _BENCH_DIR / "BENCH_serve.json"


def _bench_jobs():
    env = os.environ.get("REPRO_JOBS")
    return int(env) if env else None  # None -> os.cpu_count()


def machine_info() -> dict:
    """Hardware/software context a timing record is meaningless without."""
    return {
        "platform": platform.platform(),
        "python": sys.version.split()[0],
        "cpu_count": os.cpu_count(),
        "processor": platform.processor() or platform.machine(),
    }


def write_bench_json(path: Path, records: dict) -> None:
    """Write one BENCH_*.json: machine info, timings, derived speedups."""
    payload = {
        "machine": machine_info(),
        "records": records,
        "speedups": {
            name: record["speedup"]
            for name, record in records.items()
            if isinstance(record, dict) and "speedup" in record
        },
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


@pytest.fixture(scope="session")
def ctx() -> EvalContext:
    """One evaluation context (all fifteen benchmarks) per session."""
    scheduler = RunScheduler(jobs=_bench_jobs(), cache=RunCache.default())
    return EvalContext(scheduler=scheduler)


def _records_fixture(path: Path):
    records = {}
    yield records
    if records:
        write_bench_json(path, records)


@pytest.fixture(scope="session")
def engine_bench_records():
    """Mutable dict of engine-timing records, dumped as BENCH_engine.json."""
    yield from _records_fixture(ENGINE_BENCH_PATH)


@pytest.fixture(scope="session")
def parallel_bench_records():
    """Scheduler/cache timing records, dumped as BENCH_parallel.json."""
    yield from _records_fixture(PARALLEL_BENCH_PATH)


@pytest.fixture(scope="session")
def turbo_bench_records():
    """Turbo-engine timing records, dumped as BENCH_turbo.json."""
    yield from _records_fixture(TURBO_BENCH_PATH)


@pytest.fixture(scope="session")
def macro_bench_records():
    """Macro-kernel timing records, dumped as BENCH_macro.json."""
    yield from _records_fixture(MACRO_BENCH_PATH)


@pytest.fixture(scope="session")
def fragstore_bench_records():
    """Fragment-store ablation records, dumped as BENCH_fragstore.json."""
    yield from _records_fixture(FRAGSTORE_BENCH_PATH)


@pytest.fixture(scope="session")
def codegen_bench_records():
    """Codegen-layer speedup records, dumped as BENCH_codegen.json."""
    yield from _records_fixture(CODEGEN_BENCH_PATH)


@pytest.fixture(scope="session")
def shard_bench_records():
    """Sharded/incremental sweep records, dumped as BENCH_shard.json."""
    yield from _records_fixture(SHARD_BENCH_PATH)


@pytest.fixture(scope="session")
def serve_bench_records():
    """Sim-server loadtest records, dumped as BENCH_serve.json."""
    yield from _records_fixture(SERVE_BENCH_PATH)
