"""Permutation patterns, their offset-array encodings, and the CAM.

The scalar representation encodes a permutation as a read-only array of
*offsets* added to the loop induction variable (paper Table 1,
categories 7/8): iteration ``i`` touches element ``i + off[i]`` instead
of element ``i``.  Offsets — rather than absolute indices — keep the
encoding independent of the hardware vector width.

A pattern is defined by a *kind* and a *period* ``p`` (plus a rotation
amount for ``rot``): it permutes lanes within each aligned group of
``p`` elements and therefore tiles any hardware width ``W`` that ``p``
divides.  A width-``W`` accelerator recognizes a pattern by looking up
the first ``W`` observed offsets in a content-addressable memory
(:class:`PermutationCAM`), exactly as section 4.1 describes; a miss
aborts translation and the loop keeps running in scalar form.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.memory.alignment import is_power_of_two

PERM_KINDS = ("bfly", "rev", "rot")


@dataclass(frozen=True)
class PermPattern:
    """A named intra-group lane permutation.

    Attributes:
        kind: ``"bfly"`` (swap group halves), ``"rev"`` (reverse group),
            or ``"rot"`` (rotate group left by :attr:`amount`).
        period: group size ``p`` (a power of two, >= 2).
        amount: rotation amount for ``rot`` (ignored otherwise).
    """

    kind: str
    period: int
    amount: int = 0

    def __post_init__(self) -> None:
        if self.kind not in PERM_KINDS:
            raise ValueError(f"unknown permutation kind {self.kind!r}")
        if self.period < 2 or not is_power_of_two(self.period):
            raise ValueError(f"period must be a power of two >= 2: {self.period}")
        if self.kind == "rot" and not 0 < self.amount < self.period:
            raise ValueError("rot amount must satisfy 0 < amount < period")

    @property
    def name(self) -> str:
        if self.kind == "rot":
            return f"rot{self.period}_{self.amount}"
        return f"{self.kind}{self.period}"

    def source_lane(self, lane: int) -> int:
        """The input lane that output *lane* reads (a gather map)."""
        group = lane - lane % self.period
        j = lane % self.period
        if self.kind == "bfly":
            half = self.period // 2
            src = j + half if j < half else j - half
        elif self.kind == "rev":
            src = self.period - 1 - j
        else:  # rot left by amount
            src = (j + self.amount) % self.period
        return group + src

    def lane_map(self, width: int) -> List[int]:
        """Gather map for a *width*-lane vector; requires period | width."""
        if width % self.period != 0:
            raise ValueError(
                f"pattern {self.name} (period {self.period}) does not tile "
                f"width {width}"
            )
        return [self.source_lane(i) for i in range(width)]

    def apply(self, lanes: Sequence) -> List:
        """Permute a concrete lane vector."""
        mapping = self.lane_map(len(lanes))
        return [lanes[src] for src in mapping]

    def inverse(self) -> "PermPattern":
        """The pattern undoing this one (needed for store-side permutes).

        ``bfly`` and ``rev`` are involutions; ``rot k`` inverts to
        ``rot (p - k)``.
        """
        if self.kind == "rot":
            return PermPattern("rot", self.period, self.period - self.amount)
        return self

    def offsets(self, count: int) -> List[int]:
        """Offset-array values for a *count*-element data array.

        ``off[i] = source_lane(i) - i`` evaluated periodically, which is
        what the compiler stores in the read-only ``bfly`` array.
        """
        return [self.source_lane(i) - i for i in range(count)]


def offsets_for_pattern(pattern: PermPattern, count: int) -> List[int]:
    """Module-level convenience alias of :meth:`PermPattern.offsets`."""
    return pattern.offsets(count)


def standard_patterns(max_period: int = 16) -> List[PermPattern]:
    """The permutation repertoire of the modeled accelerator family.

    Butterfly and reverse at every power-of-two period up to
    *max_period*, and single-step rotations (the patterns a Neon-class
    ISA can express with ``VREV``/``VEXT``-style instructions).
    """
    patterns: List[PermPattern] = []
    period = 2
    while period <= max_period:
        patterns.append(PermPattern("bfly", period))
        patterns.append(PermPattern("rev", period))
        patterns.append(PermPattern("rot", period, 1))
        if period > 2:
            patterns.append(PermPattern("rot", period, period - 1))
        period *= 2
    return patterns


#: Default repertoire shared by the scalarizer and the translator CAM.
STANDARD_PATTERNS: Tuple[PermPattern, ...] = tuple(standard_patterns())


class PermutationCAM:
    """Offset-signature -> pattern lookup used by the dynamic translator.

    For a hardware width ``W`` the CAM precomputes, for every supported
    pattern whose period divides ``W``, the expected first-``W`` offset
    signature, and matches observed signatures against it.  Signatures
    of patterns wider than the hardware (period > W) are absent, so such
    permutations miss — the precise mechanism by which a too-narrow
    accelerator declines a loop and leaves it scalar.
    """

    def __init__(self, width: int,
                 patterns: Sequence[PermPattern] = STANDARD_PATTERNS) -> None:
        if not is_power_of_two(width):
            raise ValueError(f"hardware width must be a power of two: {width}")
        self.width = width
        self._table: Dict[Tuple[int, ...], PermPattern] = {}
        for pattern in patterns:
            if width % pattern.period != 0:
                continue
            signature = tuple(pattern.offsets(width))
            # First pattern registered for a signature wins; duplicate
            # signatures (e.g. bfly2 == rev2) are equivalent permutations.
            self._table.setdefault(signature, pattern)

    def lookup(self, offsets: Sequence[int]) -> Optional[PermPattern]:
        """Return the pattern whose width-long signature matches, if any."""
        if len(offsets) != self.width:
            return None
        return self._table.get(tuple(int(v) for v in offsets))

    def __len__(self) -> int:
        return len(self._table)
