"""Lane-wise semantics of the vector instruction set.

Every vector operation is expressed in terms of the *same* scalar
arithmetic helpers (:mod:`repro.arith`) the scalar interpreter uses, so a
SIMD instruction and its Table 1 scalar expansion produce bit-identical
lane values by construction.
"""

from __future__ import annotations

from typing import Callable, List, Sequence, Union

import numpy as np

from repro import arith

Number = Union[int, float]

#: vector opcode -> integer-lane scalar opcode
_INT_BINARY = {
    "vadd": "add",
    "vsub": "sub",
    "vmul": "mul",
    "vand": "and",
    "vorr": "orr",
    "veor": "eor",
    "vbic": "bic",
    "vshl": "lsl",
    "vshr": "asr",
    "vmin": "min",
    "vmax": "max",
    "vqadd": "qadd",
    "vqsub": "qsub",
}

#: vector opcode -> float-lane scalar opcode
_FLOAT_BINARY = {
    "vadd": "fadd",
    "vsub": "fsub",
    "vmul": "fmul",
    "vmin": "fmin",
    "vmax": "fmax",
}

#: float-lane bitwise ops take an integer mask per lane
_FLOAT_BITWISE = {"vand", "vorr", "vmask"}

_UNARY_INT = {"vabs": abs, "vneg": lambda v: -v}


def _broadcast(value, width: int) -> List:
    if isinstance(value, (list, tuple)):
        if len(value) != width:
            raise ValueError(
                f"lane-count mismatch: expected {width}, got {len(value)}"
            )
        return list(value)
    return [value] * width


def vector_binary(opcode: str, a: Sequence[Number], b, elem: str) -> List[Number]:
    """Element-wise binary operation; *b* may be lanes or a broadcast scalar."""
    width = len(a)
    b_lanes = _broadcast(b, width)
    if elem == "f32":
        return _float_binary(opcode, a, b_lanes)
    return _int_binary(opcode, a, b_lanes, elem)


def _int_binary(opcode: str, a, b, elem: str) -> List[int]:
    if opcode == "vmask":
        return [arith.int_op("and", x, y, elem) for x, y in zip(a, b)]
    if opcode == "vabd":
        return [
            arith.wrap_int(abs(int(x) - int(y)), elem) for x, y in zip(a, b)
        ]
    try:
        scalar_op = _INT_BINARY[opcode]
    except KeyError:
        raise ValueError(f"unknown integer vector op {opcode!r}") from None
    return [arith.int_op(scalar_op, x, y, elem) for x, y in zip(a, b)]


def _float_binary(opcode: str, a, b) -> List[float]:
    if opcode in _FLOAT_BITWISE:
        lanes = []
        for x, y in zip(a, b):
            if isinstance(y, float):
                y_bits = arith.float_bits(y)
            else:
                y_bits = int(y)
            op = "fand" if opcode in ("vand", "vmask") else "forr"
            lanes.append(arith.float_bitwise(op, float(x), y_bits))
        return lanes
    if opcode == "vabd":
        return [arith.float_op("fabs", arith.float_op("fsub", x, y))
                for x, y in zip(a, b)]
    try:
        scalar_op = _FLOAT_BINARY[opcode]
    except KeyError:
        raise ValueError(f"unknown float vector op {opcode!r}") from None
    return [arith.float_op(scalar_op, x, y) for x, y in zip(a, b)]


def vector_unary(opcode: str, a: Sequence[Number], elem: str) -> List[Number]:
    """Element-wise unary operation (``vabs``/``vneg``)."""
    if elem == "f32":
        op = {"vabs": "fabs", "vneg": "fneg"}.get(opcode)
        if op is None:
            raise ValueError(f"unknown float unary vector op {opcode!r}")
        return [arith.float_op(op, x) for x in a]
    fn = _UNARY_INT.get(opcode)
    if fn is None:
        raise ValueError(f"unknown integer unary vector op {opcode!r}")
    return [arith.wrap_int(fn(int(x)), elem) for x in a]


def vector_reduce(opcode: str, acc: Number, lanes: Sequence[Number],
                  elem: str) -> Number:
    """Fold *lanes* into the loop-carried scalar accumulator *acc*.

    Matches the scalar loop's semantics exactly: the scalar loop applies
    the reduction operator once per element in lane order, so the vector
    form folds lanes in order too (important for float sums, where
    association order changes rounding).
    """
    if elem == "f32":
        ops = {"vredsum": "fadd", "vredmin": "fmin", "vredmax": "fmax"}
        op = ops.get(opcode)
        if op is None:
            raise ValueError(f"unknown float reduction {opcode!r}")
        result = float(acc)
        for lane in lanes:
            result = arith.float_op(op, result, lane)
        return result
    ops = {"vredsum": "add", "vredmin": "min", "vredmax": "max"}
    op = ops.get(opcode)
    if op is None:
        raise ValueError(f"unknown integer reduction {opcode!r}")
    result = int(acc)
    for lane in lanes:
        result = arith.int_op(op, result, lane, "i32")
    return result


# ---------------------------------------------------------------------------
# numpy-backed fast lowerings
#
# The pre-decoded engine (repro.isa.decoded) binds one of these closures
# per vector instruction at decode time.  Every lowering is constructed
# to be *bit-identical* to the reference functions above:
#
# * integer lanes are computed in int64 and truncated with
#   ``astype(<elem dtype>)``, which is exactly ``wrap_int``'s
#   two's-complement wrap (sums/products of 32-bit values cannot
#   overflow int64);
# * saturating ops clip in int64 against ``arith.INT_BOUNDS``;
# * float lanes are computed in float32, matching ``arith.float_op``'s
#   one-rounding-per-op rule, and ``fmin``/``fmax`` use ``np.where``
#   comparisons that reproduce Python ``min``/``max`` tie/NaN ordering;
# * float bitwise ops reinterpret through ``view(uint32)`` exactly like
#   ``arith.float_bits``/``bits_float``;
# * anything numpy cannot reproduce exactly (f32 reductions, whose
#   sequential rounding numpy's pairwise summation would change;
#   unknown opcode/elem combinations, which must raise the reference
#   error) falls back to the reference implementation.
#
# The differential suite (tests/test_engine_differential.py) and the
# property tests (tests/test_engine_properties.py) enforce the contract.
# ---------------------------------------------------------------------------

_NP_INT_DTYPE = {"i8": np.int8, "i16": np.int16, "i32": np.int32}

_NP_INT_BINARY = {
    "vadd": lambda a, b: a + b,
    "vsub": lambda a, b: a - b,
    "vmul": lambda a, b: a * b,
    "vand": lambda a, b: a & b,
    "vmask": lambda a, b: a & b,
    "vorr": lambda a, b: a | b,
    "veor": lambda a, b: a ^ b,
    "vbic": lambda a, b: a & ~b,
    "vshl": lambda a, b: a << (b & 31),
    "vshr": lambda a, b: a >> (b & 31),
    "vmin": np.minimum,
    "vmax": np.maximum,
    "vabd": lambda a, b: np.abs(a - b),
}

_NP_FLOAT_BINARY = {
    "vadd": np.add,
    "vsub": np.subtract,
    "vmul": np.multiply,
}


def _mask_lanes(b_lanes: Sequence) -> "np.ndarray":
    """Per-lane 32-bit mask patterns (floats reinterpreted, ints masked)."""
    return np.array(
        [(arith.float_bits(y) if isinstance(y, float) else int(y))
         & 0xFFFFFFFF for y in b_lanes],
        dtype=np.uint32,
    )


def binary_fast_fn(opcode: str, elem: str) -> Callable:
    """A pre-bound fast implementation of ``vector_binary(opcode, .., elem)``.

    The returned closure takes ``(a, b)`` — lanes plus lanes-or-scalar —
    and produces the same lane list as the reference.  Combinations the
    numpy lowering cannot reproduce bit-identically return a closure over
    the reference implementation instead, so callers never need to care.
    """
    reference = lambda a, b: vector_binary(opcode, a, b, elem)  # noqa: E731
    if elem == "f32":
        if opcode in _FLOAT_BITWISE:
            want_and = opcode in ("vand", "vmask")

            def fast(a, b, _and=want_and):
                bits = np.asarray(a, dtype=np.float32).view(np.uint32)
                masks = _mask_lanes(_broadcast(b, len(a)))
                out = (bits & masks) if _and else (bits | masks)
                return out.view(np.float32).tolist()
            return fast
        if opcode == "vabd":
            def fast(a, b):
                aa = np.asarray(a, dtype=np.float32)
                bb = np.asarray(_broadcast(b, len(a)), dtype=np.float32)
                return np.abs(aa - bb).tolist()
            return fast
        if opcode in ("vmin", "vmax"):
            want_min = opcode == "vmin"

            def fast(a, b, _min=want_min):
                aa = np.asarray(a, dtype=np.float32)
                bb = np.asarray(_broadcast(b, len(a)), dtype=np.float32)
                out = np.where(bb < aa, bb, aa) if _min else \
                    np.where(bb > aa, bb, aa)
                return out.tolist()
            return fast
        np_op = _NP_FLOAT_BINARY.get(opcode)
        if np_op is None:
            return reference

        def fast(a, b, _op=np_op):
            aa = np.asarray(a, dtype=np.float32)
            bb = np.asarray(_broadcast(b, len(a)), dtype=np.float32)
            return _op(aa, bb).tolist()
        return fast

    dtype = _NP_INT_DTYPE.get(elem)
    if dtype is None:
        return reference
    if opcode in ("vqadd", "vqsub"):
        lo, hi = arith.INT_BOUNDS[elem]
        want_add = opcode == "vqadd"

        def fast(a, b, _lo=lo, _hi=hi, _add=want_add):
            aa = np.asarray(a, dtype=np.int64)
            bb = np.asarray(_broadcast(b, len(a)), dtype=np.int64)
            raw = aa + bb if _add else aa - bb
            return np.clip(raw, _lo, _hi).astype(dtype).tolist()
        return fast
    np_op = _NP_INT_BINARY.get(opcode)
    if np_op is None:
        return reference

    def fast(a, b, _op=np_op, _dtype=dtype):
        aa = np.asarray(a, dtype=np.int64)
        bb = np.asarray(_broadcast(b, len(a)), dtype=np.int64)
        return _op(aa, bb).astype(_dtype).tolist()
    return fast


def unary_fast_fn(opcode: str, elem: str) -> Callable:
    """A pre-bound fast implementation of ``vector_unary(opcode, .., elem)``."""
    reference = lambda a: vector_unary(opcode, a, elem)  # noqa: E731
    if elem == "f32":
        np_op = {"vabs": np.abs, "vneg": np.negative}.get(opcode)
        if np_op is None:
            return reference

        def fast(a, _op=np_op):
            return _op(np.asarray(a, dtype=np.float32)).tolist()
        return fast
    dtype = _NP_INT_DTYPE.get(elem)
    np_op = {"vabs": np.abs, "vneg": np.negative}.get(opcode)
    if dtype is None or np_op is None:
        return reference

    def fast(a, _op=np_op, _dtype=dtype):
        return _op(np.asarray(a, dtype=np.int64)).astype(_dtype).tolist()
    return fast


def reduce_fast_fn(opcode: str, elem: str) -> Callable:
    """A pre-bound fast implementation of ``vector_reduce(opcode, .., elem)``.

    f32 reductions delegate to the reference fold: the scalar loop rounds
    after every element, and numpy's pairwise summation would associate
    differently.  The integer sum is computed wide and wrapped once,
    which is congruent (mod 2**32) to the reference's per-step wrap.
    """
    reference = lambda acc, lanes: vector_reduce(opcode, acc, lanes, elem)  # noqa: E731
    if elem == "f32" or opcode not in ("vredsum", "vredmin", "vredmax"):
        return reference
    if opcode == "vredsum":
        def fast(acc, lanes):
            return arith.wrap_int(int(acc) + sum(int(v) for v in lanes))
        return fast
    pick = min if opcode == "vredmin" else max

    def fast(acc, lanes, _pick=pick):
        result = int(acc)
        for lane in lanes:
            result = arith.wrap_int(_pick(result, int(lane)))
        return result
    return fast


#: Map from a scalar data-processing opcode (as it appears in the scalar
#: representation) to the vector opcode the translator should generate.
#: This is the "dp -> vdp" correspondence of Table 3.
SCALAR_TO_VECTOR = {
    "add": "vadd",
    "sub": "vsub",
    "mul": "vmul",
    "and": "vand",
    "orr": "vorr",
    "eor": "veor",
    "bic": "vbic",
    "lsl": "vshl",
    "asr": "vshr",
    "min": "vmin",
    "max": "vmax",
    "fadd": "vadd",
    "fsub": "vsub",
    "fmul": "vmul",
    "fmin": "vmin",
    "fmax": "vmax",
    "fand": "vand",
    "forr": "vorr",
    "fneg": "vneg",
    "fabs": "vabs",
}

#: Scalar reduction opcode -> vector reduction opcode (Table 3, rule 9).
SCALAR_TO_REDUCTION = {
    "add": "vredsum",
    "fadd": "vredsum",
    "min": "vredmin",
    "fmin": "vredmin",
    "max": "vredmax",
    "fmax": "vredmax",
}
