"""Lane-wise semantics of the vector instruction set.

Every vector operation is expressed in terms of the *same* scalar
arithmetic helpers (:mod:`repro.arith`) the scalar interpreter uses, so a
SIMD instruction and its Table 1 scalar expansion produce bit-identical
lane values by construction.
"""

from __future__ import annotations

from typing import List, Sequence, Union

from repro import arith

Number = Union[int, float]

#: vector opcode -> integer-lane scalar opcode
_INT_BINARY = {
    "vadd": "add",
    "vsub": "sub",
    "vmul": "mul",
    "vand": "and",
    "vorr": "orr",
    "veor": "eor",
    "vbic": "bic",
    "vshl": "lsl",
    "vshr": "asr",
    "vmin": "min",
    "vmax": "max",
    "vqadd": "qadd",
    "vqsub": "qsub",
}

#: vector opcode -> float-lane scalar opcode
_FLOAT_BINARY = {
    "vadd": "fadd",
    "vsub": "fsub",
    "vmul": "fmul",
    "vmin": "fmin",
    "vmax": "fmax",
}

#: float-lane bitwise ops take an integer mask per lane
_FLOAT_BITWISE = {"vand", "vorr", "vmask"}

_UNARY_INT = {"vabs": abs, "vneg": lambda v: -v}


def _broadcast(value, width: int) -> List:
    if isinstance(value, (list, tuple)):
        if len(value) != width:
            raise ValueError(
                f"lane-count mismatch: expected {width}, got {len(value)}"
            )
        return list(value)
    return [value] * width


def vector_binary(opcode: str, a: Sequence[Number], b, elem: str) -> List[Number]:
    """Element-wise binary operation; *b* may be lanes or a broadcast scalar."""
    width = len(a)
    b_lanes = _broadcast(b, width)
    if elem == "f32":
        return _float_binary(opcode, a, b_lanes)
    return _int_binary(opcode, a, b_lanes, elem)


def _int_binary(opcode: str, a, b, elem: str) -> List[int]:
    if opcode == "vmask":
        return [arith.int_op("and", x, y, elem) for x, y in zip(a, b)]
    if opcode == "vabd":
        return [
            arith.wrap_int(abs(int(x) - int(y)), elem) for x, y in zip(a, b)
        ]
    try:
        scalar_op = _INT_BINARY[opcode]
    except KeyError:
        raise ValueError(f"unknown integer vector op {opcode!r}") from None
    return [arith.int_op(scalar_op, x, y, elem) for x, y in zip(a, b)]


def _float_binary(opcode: str, a, b) -> List[float]:
    if opcode in _FLOAT_BITWISE:
        lanes = []
        for x, y in zip(a, b):
            if isinstance(y, float):
                y_bits = arith.float_bits(y)
            else:
                y_bits = int(y)
            op = "fand" if opcode in ("vand", "vmask") else "forr"
            lanes.append(arith.float_bitwise(op, float(x), y_bits))
        return lanes
    if opcode == "vabd":
        return [arith.float_op("fabs", arith.float_op("fsub", x, y))
                for x, y in zip(a, b)]
    try:
        scalar_op = _FLOAT_BINARY[opcode]
    except KeyError:
        raise ValueError(f"unknown float vector op {opcode!r}") from None
    return [arith.float_op(scalar_op, x, y) for x, y in zip(a, b)]


def vector_unary(opcode: str, a: Sequence[Number], elem: str) -> List[Number]:
    """Element-wise unary operation (``vabs``/``vneg``)."""
    if elem == "f32":
        op = {"vabs": "fabs", "vneg": "fneg"}.get(opcode)
        if op is None:
            raise ValueError(f"unknown float unary vector op {opcode!r}")
        return [arith.float_op(op, x) for x in a]
    fn = _UNARY_INT.get(opcode)
    if fn is None:
        raise ValueError(f"unknown integer unary vector op {opcode!r}")
    return [arith.wrap_int(fn(int(x)), elem) for x in a]


def vector_reduce(opcode: str, acc: Number, lanes: Sequence[Number],
                  elem: str) -> Number:
    """Fold *lanes* into the loop-carried scalar accumulator *acc*.

    Matches the scalar loop's semantics exactly: the scalar loop applies
    the reduction operator once per element in lane order, so the vector
    form folds lanes in order too (important for float sums, where
    association order changes rounding).
    """
    if elem == "f32":
        ops = {"vredsum": "fadd", "vredmin": "fmin", "vredmax": "fmax"}
        op = ops.get(opcode)
        if op is None:
            raise ValueError(f"unknown float reduction {opcode!r}")
        result = float(acc)
        for lane in lanes:
            result = arith.float_op(op, result, lane)
        return result
    ops = {"vredsum": "add", "vredmin": "min", "vredmax": "max"}
    op = ops.get(opcode)
    if op is None:
        raise ValueError(f"unknown integer reduction {opcode!r}")
    result = int(acc)
    for lane in lanes:
        result = arith.int_op(op, result, lane, "i32")
    return result


#: Map from a scalar data-processing opcode (as it appears in the scalar
#: representation) to the vector opcode the translator should generate.
#: This is the "dp -> vdp" correspondence of Table 3.
SCALAR_TO_VECTOR = {
    "add": "vadd",
    "sub": "vsub",
    "mul": "vmul",
    "and": "vand",
    "orr": "vorr",
    "eor": "veor",
    "bic": "vbic",
    "lsl": "vshl",
    "asr": "vshr",
    "min": "vmin",
    "max": "vmax",
    "fadd": "vadd",
    "fsub": "vsub",
    "fmul": "vmul",
    "fmin": "vmin",
    "fmax": "vmax",
    "fand": "vand",
    "forr": "vorr",
    "fneg": "vneg",
    "fabs": "vabs",
}

#: Scalar reduction opcode -> vector reduction opcode (Table 3, rule 9).
SCALAR_TO_REDUCTION = {
    "add": "vredsum",
    "fadd": "vredsum",
    "min": "vredmin",
    "fmin": "vredmin",
    "max": "vredmax",
    "fmax": "vredmax",
}
