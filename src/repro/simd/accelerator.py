"""The parameterized SIMD accelerator: configuration and vector registers.

The accelerator matches the paper's hardware assumptions (section 3.1):
it is a separate pipeline sharing the front end, with its own register
file, a memory-to-memory interface, and a power-of-two vector width.
Generations differ along exactly the two axes the paper names — vector
width and opcode repertoire — so :class:`AcceleratorConfig` captures
both, and the evaluation sweeps width over {2, 4, 8, 16}.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.isa.registers import VEC_FLOAT_REGS, VEC_INT_REGS
from repro.memory.alignment import is_power_of_two
from repro.simd.permutations import STANDARD_PATTERNS, PermPattern


#: Every vector opcode the full (latest-generation) accelerator implements.
FULL_VECTOR_OPS = frozenset({
    "vld", "vst",
    "vadd", "vsub", "vmul", "vand", "vorr", "veor", "vbic",
    "vshl", "vshr", "vmin", "vmax", "vqadd", "vqsub", "vmask",
    "vabs", "vneg", "vabd",
    "vbfly", "vrev", "vrot",
    "vredsum", "vredmin", "vredmax",
})

#: A first-generation repertoire, modelled on the paper's motivation that
#: the ARM SIMD opcode count doubled between ISA v6 and v7: basic
#: arithmetic and memory only — no saturation, no absolute difference, no
#: min/max reductions.
BASIC_VECTOR_OPS = frozenset({
    "vld", "vst",
    "vadd", "vsub", "vmul", "vand", "vorr", "veor",
    "vshl", "vshr", "vmask", "vneg",
    "vbfly", "vrev", "vrot",
    "vredsum",
})


@dataclass(frozen=True)
class AcceleratorConfig:
    """One generation of the SIMD accelerator family.

    Generations differ along the two axes the paper names: vector
    *width* and opcode *repertoire* (the ARM SIMD opcode count went from
    60 to 120+ between ISA versions 6 and 7).  The dynamic translator
    consults both — a loop needing an op or permutation this generation
    lacks simply stays in scalar form.

    Attributes:
        width: vector length in elements (power of two).
        permutations: supported permutation repertoire (drives the CAM).
        vector_ops: supported vector opcodes (defaults to the full set).
        supports_saturation: convenience switch that removes
            ``vqadd``/``vqsub`` from the repertoire.
        name: display name for reports.
    """

    width: int
    permutations: Tuple[PermPattern, ...] = STANDARD_PATTERNS
    vector_ops: frozenset = FULL_VECTOR_OPS
    supports_saturation: bool = True
    name: str = ""

    def __post_init__(self) -> None:
        if not is_power_of_two(self.width) or self.width < 2:
            raise ValueError(f"width must be a power of two >= 2: {self.width}")
        unknown = self.vector_ops - FULL_VECTOR_OPS
        if unknown:
            raise ValueError(f"unknown vector opcodes: {sorted(unknown)}")

    @property
    def display_name(self) -> str:
        return self.name or f"simd{self.width}"

    def effective_vector_ops(self) -> frozenset:
        """The repertoire with the saturation switch applied."""
        ops = self.vector_ops
        if not self.supports_saturation:
            ops = ops - {"vqadd", "vqsub"}
        return ops

    def supports_op(self, opcode: str) -> bool:
        return opcode in self.effective_vector_ops()


class VectorRegisterFile:
    """Vector register state: 16 integer + 16 float vector registers.

    Each register holds *width* lanes plus an element-type tag; reads of
    a register with a mismatched lane count indicate a translator bug
    and raise rather than silently truncating.
    """

    def __init__(self, width: int) -> None:
        self.width = width
        self._lanes: Dict[str, List] = {}
        self._elem: Dict[str, Optional[str]] = {}
        for name in VEC_INT_REGS + VEC_FLOAT_REGS:
            self._lanes[name] = [0] * width
            self._elem[name] = None

    def read(self, name: str) -> List:
        try:
            return list(self._lanes[name])
        except KeyError:
            raise KeyError(f"unknown vector register {name!r}") from None

    def elem_of(self, name: str) -> Optional[str]:
        """Element type last written to *name* (None if never written)."""
        return self._elem[name]

    def write(self, name: str, lanes: Sequence, elem: Optional[str]) -> None:
        if name not in self._lanes:
            raise KeyError(f"unknown vector register {name!r}")
        if len(lanes) != self.width:
            raise ValueError(
                f"vector register {name} expects {self.width} lanes, "
                f"got {len(lanes)}"
            )
        self._lanes[name] = list(lanes)
        self._elem[name] = elem

    def snapshot(self) -> Dict[str, List]:
        return {name: list(lanes) for name, lanes in self._lanes.items()}


#: Pre-built generations used throughout the evaluation, mirroring the
#: paper's width sweep.  All share the standard permutation repertoire.
GENERATIONS: Dict[str, AcceleratorConfig] = {
    f"simd{w}": AcceleratorConfig(width=w, name=f"simd{w}") for w in (2, 4, 8, 16)
}


def config_for_width(width: int) -> AcceleratorConfig:
    """The standard-generation config of a given vector width."""
    key = f"simd{width}"
    if key in GENERATIONS:
        return GENERATIONS[key]
    return AcceleratorConfig(width=width)


def first_generation(width: int) -> AcceleratorConfig:
    """A v6-class generation: same width options, half the opcodes.

    Useful for demonstrating *backward* migration: a Liquid binary using
    newer opcodes still runs (scalar) on this generation, while its
    basic loops accelerate.
    """
    return AcceleratorConfig(
        width=width,
        vector_ops=BASIC_VECTOR_OPS,
        supports_saturation=False,
        permutations=tuple(p for p in STANDARD_PATTERNS if p.period <= width),
        name=f"simd{width}-gen1",
    )
