"""Neon-like SIMD substrate: vector semantics, permutations, accelerator."""

from repro.simd.accelerator import (
    AcceleratorConfig,
    BASIC_VECTOR_OPS,
    FULL_VECTOR_OPS,
    VectorRegisterFile,
    config_for_width,
    first_generation,
)
from repro.simd.permutations import (
    PermPattern,
    PermutationCAM,
    STANDARD_PATTERNS,
    offsets_for_pattern,
)
from repro.simd.vector_ops import vector_binary, vector_reduce, vector_unary

__all__ = [
    "AcceleratorConfig",
    "BASIC_VECTOR_OPS",
    "FULL_VECTOR_OPS",
    "VectorRegisterFile",
    "config_for_width",
    "first_generation",
    "PermPattern",
    "PermutationCAM",
    "STANDARD_PATTERNS",
    "offsets_for_pattern",
    "vector_binary",
    "vector_reduce",
    "vector_unary",
]
