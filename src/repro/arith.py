"""Shared arithmetic semantics for the scalar ISA and the SIMD lanes.

Both the scalar interpreter and the vector-lane implementations call
into this module, which guarantees that a scalarized Liquid SIMD loop,
the native SIMD loop, and the dynamically translated microcode all
produce **bit-identical** results — the property the paper's correctness
argument rests on ("the translator is simply converting between
functionally equivalent representations").

Integer operations wrap to the signed width of their element type;
float operations round through IEEE binary32 (``numpy.float32``) so the
simulated 32-bit FPU matches real SIMD hardware lane behaviour.
"""

from __future__ import annotations

import struct
from typing import Union

import numpy as np

Number = Union[int, float]

#: Signed bounds per integer element type.
INT_BOUNDS = {
    "i8": (-128, 127),
    "i16": (-32768, 32767),
    "i32": (-(1 << 31), (1 << 31) - 1),
}

_WIDTH_BITS = {"i8": 8, "i16": 16, "i32": 32}


def wrap_int(value: int, elem: str = "i32") -> int:
    """Wrap *value* to the signed two's-complement range of *elem*."""
    bits = _WIDTH_BITS[elem]
    mask = (1 << bits) - 1
    value = int(value) & mask
    if value >= 1 << (bits - 1):
        value -= 1 << bits
    return value


def f32(value: float) -> float:
    """Round *value* through IEEE binary32."""
    return float(np.float32(value))


def float_bits(value: float) -> int:
    """The IEEE binary32 bit pattern of *value* as an unsigned int."""
    return struct.unpack("<I", struct.pack("<f", float(value)))[0]


def bits_float(bits: int) -> float:
    """Inverse of :func:`float_bits`."""
    return struct.unpack("<f", struct.pack("<I", bits & 0xFFFFFFFF))[0]


def saturate(value: int, elem: str) -> int:
    """Clamp *value* into the signed range of *elem*."""
    lo, hi = INT_BOUNDS[elem]
    return max(lo, min(hi, int(value)))


def qadd(a: int, b: int, elem: str) -> int:
    """Signed saturating add."""
    return saturate(int(a) + int(b), elem)


def qsub(a: int, b: int, elem: str) -> int:
    """Signed saturating subtract."""
    return saturate(int(a) - int(b), elem)


def int_op(opcode: str, a: int, b: int, elem: str = "i32") -> int:
    """Integer data-processing semantics (wrapping to *elem*)."""
    a, b = int(a), int(b)
    if opcode == "add":
        result = a + b
    elif opcode == "sub":
        result = a - b
    elif opcode == "rsb":
        result = b - a
    elif opcode == "mul":
        result = a * b
    elif opcode == "and":
        result = a & b
    elif opcode == "orr":
        result = a | b
    elif opcode == "eor":
        result = a ^ b
    elif opcode == "bic":
        result = a & ~b
    elif opcode == "lsl":
        result = a << (b & 31)
    elif opcode == "lsr":
        bits = _WIDTH_BITS[elem]
        result = (a & ((1 << bits) - 1)) >> (b & 31)
    elif opcode == "asr":
        result = a >> (b & 31)
    elif opcode == "min":
        result = min(a, b)
    elif opcode == "max":
        result = max(a, b)
    elif opcode == "qadd":
        return qadd(a, b, elem)
    elif opcode == "qsub":
        return qsub(a, b, elem)
    else:
        raise ValueError(f"unknown integer op {opcode!r}")
    return wrap_int(result, elem)


def float_op(opcode: str, a: float, b: float = 0.0) -> float:
    """Float data-processing semantics with binary32 rounding."""
    fa, fb = np.float32(a), np.float32(b)
    if opcode == "fadd":
        result = fa + fb
    elif opcode == "fsub":
        result = fa - fb
    elif opcode == "fmul":
        result = fa * fb
    elif opcode == "fdiv":
        result = fa / fb
    elif opcode == "fmin":
        result = min(fa, fb)
    elif opcode == "fmax":
        result = max(fa, fb)
    elif opcode == "fneg":
        result = -fa
    elif opcode == "fabs":
        result = abs(fa)
    else:
        raise ValueError(f"unknown float op {opcode!r}")
    return float(np.float32(result))


def float_bitwise(opcode: str, a: float, mask_bits: int) -> float:
    """Bitwise AND/OR of a float's binary32 pattern with an integer mask.

    This implements the paper's FFT masking idiom, where integer masks
    loaded from a read-only array are ANDed with float data to select
    lanes (``and f3, f3, r2``).
    """
    bits = float_bits(a)
    if opcode in ("fand", "and", "vmask", "vand"):
        out = bits & (mask_bits & 0xFFFFFFFF)
    elif opcode in ("forr", "orr", "vorr"):
        out = bits | (mask_bits & 0xFFFFFFFF)
    else:
        raise ValueError(f"unknown float bitwise op {opcode!r}")
    return bits_float(out)


def float_or_floats(a: float, b: float) -> float:
    """Bitwise OR of two floats' binary32 patterns (lane-combining idiom)."""
    return bits_float(float_bits(a) | float_bits(b))


def float_and_floats(a: float, b: float) -> float:
    """Bitwise AND of two floats' binary32 patterns."""
    return bits_float(float_bits(a) & float_bits(b))
