"""Memory substrate: flat simulated memory, caches, alignment helpers."""

from repro.memory.alignment import align_up, is_aligned, vector_alignment_ok
from repro.memory.cache import Cache, CacheConfig, CacheStats
from repro.memory.memory import Memory, MemoryError_, MemoryProtectionError

__all__ = [
    "align_up",
    "is_aligned",
    "vector_alignment_ok",
    "Cache",
    "CacheConfig",
    "CacheStats",
    "Memory",
    "MemoryError_",
    "MemoryProtectionError",
]
