"""Alignment helpers.

The paper (section 3.1) requires data to be aligned to the *maximum
vectorizable length* the binary was compiled for, so that the same binary
can be dynamically retargeted to any power-of-two hardware width up to
that maximum.  The loader uses :func:`align_up` when placing arrays, and
the SIMD interpreter uses :func:`vector_alignment_ok` to enforce the
alignment restriction most SIMD ISAs impose on vector memory accesses.
"""

from __future__ import annotations


def align_up(value: int, alignment: int) -> int:
    """Round *value* up to the next multiple of *alignment* (a power of 2 or any positive int)."""
    if alignment <= 0:
        raise ValueError("alignment must be positive")
    return ((value + alignment - 1) // alignment) * alignment


def is_aligned(value: int, alignment: int) -> bool:
    """True when *value* is a multiple of *alignment*."""
    if alignment <= 0:
        raise ValueError("alignment must be positive")
    return value % alignment == 0


def is_power_of_two(value: int) -> bool:
    """True for 1, 2, 4, 8, ... — the only hardware widths the paper targets."""
    return value > 0 and (value & (value - 1)) == 0


def vector_alignment_ok(addr: int, elem_size: int, width: int) -> bool:
    """Check a vector memory access against the SIMD alignment restriction.

    A *width*-element access of *elem_size*-byte elements must start on a
    ``width * elem_size`` boundary.
    """
    return is_aligned(addr, elem_size * width)
