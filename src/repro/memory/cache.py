"""Set-associative cache timing model.

Models the ARM-926EJ-S caches the paper simulates: 16 KB, 64-way
associative, with true-LRU replacement, write-allocate and write-back
policy.  The cache is a pure *timing* structure — data always lives in
the flat :class:`~repro.memory.memory.Memory`; the cache only decides how
many cycles an access costs and keeps hit/miss/writeback statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and latency parameters of one cache."""

    size_bytes: int = 16 * 1024
    assoc: int = 64
    line_bytes: int = 32
    hit_latency: int = 1
    miss_penalty: int = 30  # cycles added on a refill from memory

    @property
    def num_sets(self) -> int:
        sets = self.size_bytes // (self.assoc * self.line_bytes)
        if sets <= 0:
            raise ValueError("cache too small for its associativity")
        return sets


@dataclass
class CacheStats:
    """Counters accumulated by a cache over a run."""

    reads: int = 0
    writes: int = 0
    read_misses: int = 0
    write_misses: int = 0
    writebacks: int = 0

    def to_dict(self) -> dict:
        """JSON-safe representation (inverse of :meth:`from_dict`)."""
        return {
            "reads": self.reads,
            "writes": self.writes,
            "read_misses": self.read_misses,
            "write_misses": self.write_misses,
            "writebacks": self.writebacks,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CacheStats":
        return cls(
            reads=data["reads"],
            writes=data["writes"],
            read_misses=data["read_misses"],
            write_misses=data["write_misses"],
            writebacks=data["writebacks"],
        )

    @property
    def accesses(self) -> int:
        return self.reads + self.writes

    @property
    def misses(self) -> int:
        return self.read_misses + self.write_misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class _Line:
    __slots__ = ("tag", "dirty", "lru")

    def __init__(self, tag: int, lru: int) -> None:
        self.tag = tag
        self.dirty = False
        self.lru = lru


class Cache:
    """One level of set-associative cache (timing only)."""

    def __init__(self, config: CacheConfig, name: str = "cache") -> None:
        self.config = config
        self.name = name
        self.stats = CacheStats()
        # Geometry is immutable: bind it to plain attributes so the
        # per-access hot path avoids repeated property evaluation.
        self._line_bytes = config.line_bytes
        self._num_sets = config.num_sets
        self._assoc = config.assoc
        self._hit_latency = config.hit_latency
        self._miss_latency = config.hit_latency + config.miss_penalty
        self._sets: List[Dict[int, _Line]] = [dict() for _ in range(config.num_sets)]
        self._tick = 0

    def reset(self) -> None:
        """Flush all lines and zero the statistics."""
        self.stats = CacheStats()
        self._sets = [dict() for _ in range(self.config.num_sets)]
        self._tick = 0

    def _locate(self, addr: int):
        line = addr // self._line_bytes
        set_index = line % self._num_sets
        tag = line // self._num_sets
        return set_index, tag

    def access(self, addr: int, nbytes: int = 4, is_write: bool = False) -> int:
        """Access *nbytes* at *addr*; return the access latency in cycles.

        Accesses that straddle a line boundary are charged per line
        touched (vector loads wider than a line touch several lines).
        """
        line_bytes = self._line_bytes
        first = addr // line_bytes
        last = (addr + max(nbytes, 1) - 1) // line_bytes
        if first == last:
            return self._access_line_number(first, is_write)
        cycles = 0
        for line_number in range(first, last + 1):
            cycles += self._access_line_number(line_number, is_write)
        return cycles

    def _access_line(self, addr: int, is_write: bool) -> int:
        return self._access_line_number(addr // self._line_bytes, is_write)

    def _access_line_number(self, line_number: int, is_write: bool) -> int:
        # True LRU is kept via dict insertion order (most-recent last):
        # a hit re-inserts the tag at the end, an eviction pops the
        # front.  This is order-identical to timestamp-scan LRU but O(1).
        num_sets = self._num_sets
        tag = line_number // num_sets
        ways = self._sets[line_number % num_sets]
        stats = self.stats
        if is_write:
            stats.writes += 1
        else:
            stats.reads += 1
        line = ways.get(tag)
        if line is not None:
            if len(ways) > 1:        # re-insert: tag becomes most recent
                del ways[tag]
                ways[tag] = line
            if is_write:
                line.dirty = True
            return self._hit_latency
        # Miss: allocate (write-allocate policy), evicting true-LRU victim.
        self._tick += 1
        if is_write:
            stats.write_misses += 1
        else:
            stats.read_misses += 1
        if len(ways) >= self._assoc:
            victim_tag = next(iter(ways))
            if ways[victim_tag].dirty:
                stats.writebacks += 1
            del ways[victim_tag]
        new_line = _Line(tag, self._tick)
        new_line.dirty = is_write
        ways[tag] = new_line
        return self._miss_latency

    def contains(self, addr: int) -> bool:
        """True when the line holding *addr* is resident (no state change)."""
        set_index, tag = self._locate(addr)
        return tag in self._sets[set_index]
