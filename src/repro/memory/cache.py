"""Set-associative cache timing model.

Models the ARM-926EJ-S caches the paper simulates: 16 KB, 64-way
associative, with true-LRU replacement, write-allocate and write-back
policy.  The cache is a pure *timing* structure — data always lives in
the flat :class:`~repro.memory.memory.Memory`; the cache only decides how
many cycles an access costs and keeps hit/miss/writeback statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and latency parameters of one cache."""

    size_bytes: int = 16 * 1024
    assoc: int = 64
    line_bytes: int = 32
    hit_latency: int = 1
    miss_penalty: int = 30  # cycles added on a refill from memory

    @property
    def num_sets(self) -> int:
        sets = self.size_bytes // (self.assoc * self.line_bytes)
        if sets <= 0:
            raise ValueError("cache too small for its associativity")
        return sets


@dataclass
class CacheStats:
    """Counters accumulated by a cache over a run."""

    reads: int = 0
    writes: int = 0
    read_misses: int = 0
    write_misses: int = 0
    writebacks: int = 0

    @property
    def accesses(self) -> int:
        return self.reads + self.writes

    @property
    def misses(self) -> int:
        return self.read_misses + self.write_misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class _Line:
    __slots__ = ("tag", "dirty", "lru")

    def __init__(self, tag: int, lru: int) -> None:
        self.tag = tag
        self.dirty = False
        self.lru = lru


class Cache:
    """One level of set-associative cache (timing only)."""

    def __init__(self, config: CacheConfig, name: str = "cache") -> None:
        self.config = config
        self.name = name
        self.stats = CacheStats()
        self._sets: List[Dict[int, _Line]] = [dict() for _ in range(config.num_sets)]
        self._tick = 0

    def reset(self) -> None:
        """Flush all lines and zero the statistics."""
        self.stats = CacheStats()
        self._sets = [dict() for _ in range(self.config.num_sets)]
        self._tick = 0

    def _locate(self, addr: int):
        line = addr // self.config.line_bytes
        set_index = line % self.config.num_sets
        tag = line // self.config.num_sets
        return set_index, tag

    def access(self, addr: int, nbytes: int = 4, is_write: bool = False) -> int:
        """Access *nbytes* at *addr*; return the access latency in cycles.

        Accesses that straddle a line boundary are charged per line
        touched (vector loads wider than a line touch several lines).
        """
        first = addr // self.config.line_bytes
        last = (addr + max(nbytes, 1) - 1) // self.config.line_bytes
        cycles = 0
        for line_number in range(first, last + 1):
            cycles += self._access_line(line_number * self.config.line_bytes, is_write)
        return cycles

    def _access_line(self, addr: int, is_write: bool) -> int:
        self._tick += 1
        set_index, tag = self._locate(addr)
        ways = self._sets[set_index]
        if is_write:
            self.stats.writes += 1
        else:
            self.stats.reads += 1
        line = ways.get(tag)
        if line is not None:
            line.lru = self._tick
            if is_write:
                line.dirty = True
            return self.config.hit_latency
        # Miss: allocate (write-allocate policy), evicting true-LRU victim.
        if is_write:
            self.stats.write_misses += 1
        else:
            self.stats.read_misses += 1
        if len(ways) >= self.config.assoc:
            victim_tag = min(ways, key=lambda t: ways[t].lru)
            if ways[victim_tag].dirty:
                self.stats.writebacks += 1
            del ways[victim_tag]
        new_line = _Line(tag, self._tick)
        new_line.dirty = is_write
        ways[tag] = new_line
        return self.config.hit_latency + self.config.miss_penalty

    def contains(self, addr: int) -> bool:
        """True when the line holding *addr* is resident (no state change)."""
        set_index, tag = self._locate(addr)
        return tag in self._sets[set_index]
