"""Set-associative cache timing model.

Models the ARM-926EJ-S caches the paper simulates: 16 KB, 64-way
associative, with true-LRU replacement, write-allocate and write-back
policy.  The cache is a pure *timing* structure — data always lives in
the flat :class:`~repro.memory.memory.Memory`; the cache only decides how
many cycles an access costs and keeps hit/miss/writeback statistics.

Replacement is implemented as **generation-stamp LRU**: every access
bumps a monotonic counter and stamps the touched line with it, and an
eviction removes the minimum-stamp line.  Because stamps are strictly
increasing, the minimum stamp is exactly the least-recently-used line,
so the victim sequence — and therefore every hit/miss/writeback
counter — is identical to a textbook recency-list implementation (the
property suite in ``tests/test_cache_lru_property.py`` checks this
against an independent list-based model).  The win over list-based true
LRU is the hit path: one dict store instead of a recency-list splice,
with the O(assoc) ``min`` scan paid only on evictions (misses on a full
set), which are rare by construction for a cache worth modelling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and latency parameters of one cache."""

    size_bytes: int = 16 * 1024
    assoc: int = 64
    line_bytes: int = 32
    hit_latency: int = 1
    miss_penalty: int = 30  # cycles added on a refill from memory

    @property
    def num_sets(self) -> int:
        sets = self.size_bytes // (self.assoc * self.line_bytes)
        if sets <= 0:
            raise ValueError("cache too small for its associativity")
        return sets


@dataclass
class CacheStats:
    """Counters accumulated by a cache over a run."""

    reads: int = 0
    writes: int = 0
    read_misses: int = 0
    write_misses: int = 0
    writebacks: int = 0

    def to_dict(self) -> dict:
        """JSON-safe representation (inverse of :meth:`from_dict`)."""
        return {
            "reads": self.reads,
            "writes": self.writes,
            "read_misses": self.read_misses,
            "write_misses": self.write_misses,
            "writebacks": self.writebacks,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CacheStats":
        return cls(
            reads=data["reads"],
            writes=data["writes"],
            read_misses=data["read_misses"],
            write_misses=data["write_misses"],
            writebacks=data["writebacks"],
        )

    @property
    def accesses(self) -> int:
        return self.reads + self.writes

    @property
    def misses(self) -> int:
        return self.read_misses + self.write_misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class Cache:
    """One level of set-associative cache (timing only)."""

    def __init__(self, config: CacheConfig, name: str = "cache") -> None:
        self.config = config
        self.name = name
        self.stats = CacheStats()
        # Geometry is immutable: bind it to plain attributes so the
        # per-access hot path avoids repeated property evaluation.
        self._line_bytes = config.line_bytes
        self._num_sets = config.num_sets
        self._assoc = config.assoc
        self._hit_latency = config.hit_latency
        self._miss_latency = config.hit_latency + config.miss_penalty
        #: per set: tag -> generation stamp of its most recent access.
        self._stamps: List[Dict[int, int]] = [
            dict() for _ in range(config.num_sets)
        ]
        #: per set: tags whose resident line is dirty (write-back state).
        self._dirty: List[Set[int]] = [set() for _ in range(config.num_sets)]
        self._tick = 0

    def reset(self) -> None:
        """Flush all lines and zero the statistics."""
        self.stats = CacheStats()
        self._stamps = [dict() for _ in range(self.config.num_sets)]
        self._dirty = [set() for _ in range(self.config.num_sets)]
        self._tick = 0

    def _locate(self, addr: int):
        line = addr // self._line_bytes
        set_index = line % self._num_sets
        tag = line // self._num_sets
        return set_index, tag

    def access(self, addr: int, nbytes: int = 4, is_write: bool = False) -> int:
        """Access *nbytes* at *addr*; return the access latency in cycles.

        Accesses that straddle a line boundary are charged per line
        touched (vector loads wider than a line touch several lines).
        """
        line_bytes = self._line_bytes
        first = addr // line_bytes
        last = (addr + max(nbytes, 1) - 1) // line_bytes
        if first == last:
            return self._access_line_number(first, is_write)
        cycles = 0
        for line_number in range(first, last + 1):
            cycles += self._access_line_number(line_number, is_write)
        return cycles

    def _access_line(self, addr: int, is_write: bool) -> int:
        return self._access_line_number(addr // self._line_bytes, is_write)

    def _access_line_number(self, line_number: int, is_write: bool) -> int:
        num_sets = self._num_sets
        tag = line_number // num_sets
        set_index = line_number % num_sets
        ways = self._stamps[set_index]
        stats = self.stats
        self._tick = tick = self._tick + 1
        if is_write:
            stats.writes += 1
        else:
            stats.reads += 1
        if tag in ways:
            ways[tag] = tick          # O(1) recency update
            if is_write:
                self._dirty[set_index].add(tag)
            return self._hit_latency
        # Miss: allocate (write-allocate policy), evicting the
        # minimum-stamp — i.e. least-recently-used — resident line.
        if is_write:
            stats.write_misses += 1
        else:
            stats.read_misses += 1
        dirty = self._dirty[set_index]
        if len(ways) >= self._assoc:
            victim = min(ways, key=ways.__getitem__)
            del ways[victim]
            if victim in dirty:
                dirty.remove(victim)
                stats.writebacks += 1
        ways[tag] = tick
        if is_write:
            dirty.add(tag)
        return self._miss_latency

    def repeat_hits(self, line_number: int, count: int) -> None:
        """Account *count* extra read hits on a just-accessed line.

        Caller contract: the line was accessed immediately before this
        call and nothing else touched the cache in between, so all
        *count* accesses are guaranteed hits.  Equivalent to calling the
        per-access path *count* times — the read counter gains *count*,
        the tick advances *count* times, and the line's stamp lands on
        the final tick — but in O(1).  The turbo engine uses this to
        batch consecutive instruction fetches from one I-cache line
        (``repro/interp/turbo.py``).
        """
        self._tick = tick = self._tick + count
        num_sets = self._num_sets
        self._stamps[line_number % num_sets][line_number // num_sets] = tick
        self.stats.reads += count

    def contains(self, addr: int) -> bool:
        """True when the line holding *addr* is resident (no state change)."""
        set_index, tag = self._locate(addr)
        return tag in self._stamps[set_index]

    def resident(self, set_index: int) -> Tuple[int, ...]:
        """Resident tags of one set, LRU first (introspection for tests)."""
        ways = self._stamps[set_index]
        return tuple(sorted(ways, key=ways.__getitem__))
