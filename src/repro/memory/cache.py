"""Set-associative cache timing model.

Models the ARM-926EJ-S caches the paper simulates: 16 KB, 64-way
associative, with true-LRU replacement, write-allocate and write-back
policy.  The cache is a pure *timing* structure — data always lives in
the flat :class:`~repro.memory.memory.Memory`; the cache only decides how
many cycles an access costs and keeps hit/miss/writeback statistics.

Replacement is implemented as **generation-stamp LRU**: every access
bumps a monotonic counter and stamps the touched line with it, and an
eviction removes the minimum-stamp line.  Because stamps are strictly
increasing, the minimum stamp is exactly the least-recently-used line,
so the victim sequence — and therefore every hit/miss/writeback
counter — is identical to a textbook recency-list implementation (the
property suite in ``tests/test_cache_lru_property.py`` checks this
against an independent list-based model).  The win over list-based true
LRU is the hit path: one dict store instead of a recency-list splice,
with the O(assoc) ``min`` scan paid only on evictions (misses on a full
set), which are rare by construction for a cache worth modelling.
"""

from __future__ import annotations

from dataclasses import dataclass
from heapq import heapify, heappop, heappush
from typing import Dict, List, Set, Tuple

import numpy as np


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and latency parameters of one cache."""

    size_bytes: int = 16 * 1024
    assoc: int = 64
    line_bytes: int = 32
    hit_latency: int = 1
    miss_penalty: int = 30  # cycles added on a refill from memory

    @property
    def num_sets(self) -> int:
        sets = self.size_bytes // (self.assoc * self.line_bytes)
        if sets <= 0:
            raise ValueError("cache too small for its associativity")
        return sets


@dataclass
class CacheStats:
    """Counters accumulated by a cache over a run."""

    reads: int = 0
    writes: int = 0
    read_misses: int = 0
    write_misses: int = 0
    writebacks: int = 0

    def to_dict(self) -> dict:
        """JSON-safe representation (inverse of :meth:`from_dict`)."""
        return {
            "reads": self.reads,
            "writes": self.writes,
            "read_misses": self.read_misses,
            "write_misses": self.write_misses,
            "writebacks": self.writebacks,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CacheStats":
        return cls(
            reads=data["reads"],
            writes=data["writes"],
            read_misses=data["read_misses"],
            write_misses=data["write_misses"],
            writebacks=data["writebacks"],
        )

    @property
    def accesses(self) -> int:
        return self.reads + self.writes

    @property
    def misses(self) -> int:
        return self.read_misses + self.write_misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class Cache:
    """One level of set-associative cache (timing only)."""

    def __init__(self, config: CacheConfig, name: str = "cache") -> None:
        self.config = config
        self.name = name
        self.stats = CacheStats()
        # Geometry is immutable: bind it to plain attributes so the
        # per-access hot path avoids repeated property evaluation.
        self._line_bytes = config.line_bytes
        self._num_sets = config.num_sets
        self._assoc = config.assoc
        self._hit_latency = config.hit_latency
        self._miss_latency = config.hit_latency + config.miss_penalty
        #: per set: tag -> generation stamp of its most recent access.
        self._stamps: List[Dict[int, int]] = [
            dict() for _ in range(config.num_sets)
        ]
        #: per set: tags whose resident line is dirty (write-back state).
        self._dirty: List[Set[int]] = [set() for _ in range(config.num_sets)]
        self._tick = 0

    def reset(self) -> None:
        """Flush all lines and zero the statistics."""
        self.stats = CacheStats()
        self._stamps = [dict() for _ in range(self.config.num_sets)]
        self._dirty = [set() for _ in range(self.config.num_sets)]
        self._tick = 0

    def _locate(self, addr: int):
        line = addr // self._line_bytes
        set_index = line % self._num_sets
        tag = line // self._num_sets
        return set_index, tag

    def access(self, addr: int, nbytes: int = 4, is_write: bool = False) -> int:
        """Access *nbytes* at *addr*; return the access latency in cycles.

        Accesses that straddle a line boundary are charged per line
        touched (vector loads wider than a line touch several lines).
        """
        line_bytes = self._line_bytes
        first = addr // line_bytes
        last = (addr + max(nbytes, 1) - 1) // line_bytes
        if first == last:
            return self._access_line_number(first, is_write)
        cycles = 0
        for line_number in range(first, last + 1):
            cycles += self._access_line_number(line_number, is_write)
        return cycles

    def _access_line(self, addr: int, is_write: bool) -> int:
        return self._access_line_number(addr // self._line_bytes, is_write)

    def _access_line_number(self, line_number: int, is_write: bool) -> int:
        num_sets = self._num_sets
        tag = line_number // num_sets
        set_index = line_number % num_sets
        ways = self._stamps[set_index]
        stats = self.stats
        self._tick = tick = self._tick + 1
        if is_write:
            stats.writes += 1
        else:
            stats.reads += 1
        if tag in ways:
            ways[tag] = tick          # O(1) recency update
            if is_write:
                self._dirty[set_index].add(tag)
            return self._hit_latency
        # Miss: allocate (write-allocate policy), evicting the
        # minimum-stamp — i.e. least-recently-used — resident line.
        if is_write:
            stats.write_misses += 1
        else:
            stats.read_misses += 1
        dirty = self._dirty[set_index]
        if len(ways) >= self._assoc:
            victim = min(ways, key=ways.__getitem__)
            del ways[victim]
            if victim in dirty:
                dirty.remove(victim)
                stats.writebacks += 1
        ways[tag] = tick
        if is_write:
            dirty.add(tag)
        return self._miss_latency

    def access_stream(self, addrs, nbytes, is_writes) -> np.ndarray:
        """Batched :meth:`access`: per-access latencies for a whole stream.

        *addrs*, *nbytes* and *is_writes* are equal-length sequences (or
        numpy arrays) describing one access each; the return value is an
        int64 array where ``out[i]`` equals what
        ``self.access(addrs[i], nbytes[i], is_writes[i])`` would have
        returned when issued sequentially — and the cache ends the call
        in exactly the state (stamps, dirty bits, tick, statistics) the
        sequential loop would have left it in.  The property suite in
        ``tests/test_access_stream_property.py`` pins this equivalence.

        The common case — the whole stream fits its sets without a
        single eviction, which holds for fragment loops streaming a few
        arrays through a 64-way cache — is resolved with vectorized
        numpy probing: hits are "resident at entry OR touched earlier in
        the stream", final stamps land on each line's last occurrence
        tick, and the statistics are bulk sums.  Any stream that could
        evict (per-set occupancy would exceed the associativity) falls
        back to replaying :meth:`_access_line_number` per line, so the
        fast path never has to model victim selection.
        """
        addrs = np.asarray(addrs, dtype=np.int64)
        count = int(addrs.shape[0])
        if count == 0:
            return np.zeros(0, dtype=np.int64)
        sizes = np.maximum(np.asarray(nbytes, dtype=np.int64), 1)
        writes = np.asarray(is_writes, dtype=bool)
        line_bytes = self._line_bytes
        first = addrs // line_bytes
        last = (addrs + sizes - 1) // line_bytes
        spans = last - first + 1
        total = int(spans.sum())
        if total == count:
            lines = first
            line_writes = writes
            starts = None
        else:
            # Expand straddling accesses into one entry per line touched.
            starts = np.cumsum(spans) - spans
            lines = first.repeat(spans) + (
                np.arange(total, dtype=np.int64) - starts.repeat(spans))
            line_writes = writes.repeat(spans)

        line_lat = self._stream_lines(lines, line_writes)
        if starts is None:
            return line_lat
        return np.add.reduceat(line_lat, starts)

    def _stream_lines(self, lines: np.ndarray,
                      line_writes: np.ndarray) -> np.ndarray:
        """Per-line latencies for a pre-expanded line-number stream."""
        num_sets = self._num_sets
        total = int(lines.shape[0])
        uniq, first_idx, inverse = np.unique(
            lines, return_index=True, return_inverse=True)

        # Eviction-freedom precondition: for every set, resident lines
        # plus distinct new lines must fit the associativity.
        resident0 = np.empty(len(uniq), dtype=bool)
        new_per_set: Dict[int, int] = {}
        for j, line in enumerate(uniq.tolist()):
            ways = self._stamps[line % num_sets]
            hit = (line // num_sets) in ways
            resident0[j] = hit
            if not hit:
                set_index = line % num_sets
                new_per_set[set_index] = new_per_set.get(set_index, 0) + 1
        fits = all(
            len(self._stamps[s]) + extra <= self._assoc
            for s, extra in new_per_set.items())
        if not fits:
            return self._stream_lines_evicting(lines, line_writes)

        first_occurrence = np.zeros(total, dtype=bool)
        first_occurrence[first_idx] = True
        hits = resident0[inverse] | ~first_occurrence
        misses = ~hits
        stats = self.stats
        write_count = int(line_writes.sum())
        stats.reads += total - write_count
        stats.writes += write_count
        stats.read_misses += int((misses & ~line_writes).sum())
        stats.write_misses += int((misses & line_writes).sum())

        # State update: every line's final stamp is the tick of its last
        # occurrence; dirty is set iff any occurrence was a write.
        tick0 = self._tick
        self._tick = tick0 + total
        last_idx = np.zeros(len(uniq), dtype=np.int64)
        np.maximum.at(last_idx, inverse, np.arange(total, dtype=np.int64))
        written = np.zeros(len(uniq), dtype=bool)
        np.logical_or.at(written, inverse, line_writes)
        for j, line in enumerate(uniq.tolist()):
            set_index = line % num_sets
            tag = line // num_sets
            self._stamps[set_index][tag] = tick0 + int(last_idx[j]) + 1
            if written[j]:
                self._dirty[set_index].add(tag)
        return np.where(hits, self._hit_latency, self._miss_latency)

    def _stream_lines_evicting(self, lines: np.ndarray,
                               line_writes: np.ndarray) -> np.ndarray:
        """Sequential replay of an eviction-bearing line stream.

        Bit-identical to calling :meth:`_access_line_number` once per
        line — same latencies, same victim sequence, same final stamps,
        dirty bits, tick, and statistics (the property suite pins
        this) — but tuned for streams that evict on most accesses,
        which is exactly when the vectorized fast path above bails out
        (e.g. 179.art's 16 KB arrays streaming through 8 sets).  Two
        strength reductions over the naive replay:

        * Victim selection is a per-set **lazy-deletion heap** of
          ``(stamp, tag)`` pairs instead of an O(assoc) ``min`` scan.
          Stamps are strictly increasing and therefore unique, so the
          smallest non-stale heap entry is exactly the line ``min``
          would have picked.  A set's heap is built from its resident
          stamps the first time that set needs a victim; from then on
          every re-stamp pushes a fresh pair and stale pairs are
          popped on sight (their stamp no longer matches the live
          dict), giving O(log assoc) eviction.
        * Statistics and the generation counter accumulate in locals
          and are written back once.
        """
        num_sets = self._num_sets
        assoc = self._assoc
        hit_latency = self._hit_latency
        miss_latency = self._miss_latency
        stamps = self._stamps
        dirty_sets = self._dirty
        tick = self._tick
        reads = writes = read_misses = write_misses = writebacks = 0
        heaps: Dict[int, list] = {}
        total = int(lines.shape[0])
        lat = np.empty(total, dtype=np.int64)
        line_list = lines.tolist()
        write_list = line_writes.tolist()
        for i in range(total):
            line = line_list[i]
            is_write = write_list[i]
            set_index = line % num_sets
            tag = line // num_sets
            ways = stamps[set_index]
            tick += 1
            if is_write:
                writes += 1
            else:
                reads += 1
            heap = heaps.get(set_index)
            if tag in ways:
                ways[tag] = tick
                if heap is not None:
                    heappush(heap, (tick, tag))
                if is_write:
                    dirty_sets[set_index].add(tag)
                lat[i] = hit_latency
                continue
            if is_write:
                write_misses += 1
            else:
                read_misses += 1
            dirty = dirty_sets[set_index]
            if len(ways) >= assoc:
                if heap is None:
                    heap = [(stamp, t) for t, stamp in ways.items()]
                    heapify(heap)
                    heaps[set_index] = heap
                while True:
                    stamp, victim = heappop(heap)
                    if ways.get(victim) == stamp:
                        break
                del ways[victim]
                if victim in dirty:
                    dirty.remove(victim)
                    writebacks += 1
            ways[tag] = tick
            if heap is not None:
                heappush(heap, (tick, tag))
            if is_write:
                dirty.add(tag)
            lat[i] = miss_latency
        self._tick = tick
        stats = self.stats
        stats.reads += reads
        stats.writes += writes
        stats.read_misses += read_misses
        stats.write_misses += write_misses
        stats.writebacks += writebacks
        return lat

    def repeat_hits(self, line_number: int, count: int) -> None:
        """Account *count* extra read hits on a just-accessed line.

        Caller contract: the line was accessed immediately before this
        call and nothing else touched the cache in between, so all
        *count* accesses are guaranteed hits.  Equivalent to calling the
        per-access path *count* times — the read counter gains *count*,
        the tick advances *count* times, and the line's stamp lands on
        the final tick — but in O(1).  The turbo engine uses this to
        batch consecutive instruction fetches from one I-cache line
        (``repro/interp/turbo.py``).
        """
        self._tick = tick = self._tick + count
        num_sets = self._num_sets
        self._stamps[line_number % num_sets][line_number // num_sets] = tick
        self.stats.reads += count

    def contains(self, addr: int) -> bool:
        """True when the line holding *addr* is resident (no state change)."""
        set_index, tag = self._locate(addr)
        return tag in self._stamps[set_index]

    def resident(self, set_index: int) -> Tuple[int, ...]:
        """Resident tags of one set, LRU first (introspection for tests)."""
        ways = self._stamps[set_index]
        return tuple(sorted(ways, key=ways.__getitem__))
