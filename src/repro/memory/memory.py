"""Flat byte-addressable simulated memory with typed accessors.

All values are little-endian.  Integer loads sign- or zero-extend to a
Python int; ``f32`` values round-trip through IEEE binary32 (so float
arithmetic in the simulator matches what 32-bit SIMD hardware would
produce).  Address ranges can be marked read-only, which is how the
loader protects the scalarizer's ``bfly``/``cnst``/``mask`` arrays.
"""

from __future__ import annotations

import struct
from typing import List, Tuple, Union

import numpy as np

Number = Union[int, float]

_NP_DTYPE = {"i8": "<i1", "i16": "<i2", "i32": "<i4", "f32": "<f4"}

_FMT = {
    ("i8", True): "<b",
    ("i8", False): "<B",
    ("i16", True): "<h",
    ("i16", False): "<H",
    ("i32", True): "<i",
    ("i32", False): "<I",
    ("f32", True): "<f",
    ("f32", False): "<f",
}

_SIZE = {"i8": 1, "i16": 2, "i32": 4, "f32": 4}

_INT_MASK = {"i8": 0xFF, "i16": 0xFFFF, "i32": 0xFFFFFFFF}


class MemoryError_(Exception):
    """Out-of-range access."""


class MemoryProtectionError(MemoryError_):
    """Store into a read-only range."""


class Memory:
    """Byte-addressable memory of a fixed size."""

    def __init__(self, size: int = 1 << 22) -> None:
        self.size = size
        self._bytes = bytearray(size)
        self._ro_ranges: List[Tuple[int, int]] = []

    # -- protection -----------------------------------------------------------

    def protect(self, start: int, end: int) -> None:
        """Mark ``[start, end)`` read-only."""
        if not 0 <= start <= end <= self.size:
            raise MemoryError_(f"bad protect range [{start}, {end})")
        self._ro_ranges.append((start, end))

    def _check_store(self, addr: int, nbytes: int) -> None:
        if not 0 <= addr <= self.size - nbytes:
            raise MemoryError_(f"store out of range at {addr:#x}")
        for start, end in self._ro_ranges:
            if addr < end and addr + nbytes > start:
                raise MemoryProtectionError(
                    f"store of {nbytes} bytes at {addr:#x} hits read-only "
                    f"range [{start:#x}, {end:#x})"
                )

    def _check_load(self, addr: int, nbytes: int) -> None:
        if not 0 <= addr <= self.size - nbytes:
            raise MemoryError_(f"load out of range at {addr:#x}")

    # -- typed scalar access -----------------------------------------------------

    def load(self, addr: int, elem: str, signed: bool = True) -> Number:
        """Load one element of type *elem* at byte address *addr*."""
        nbytes = _SIZE[elem]
        self._check_load(addr, nbytes)
        (value,) = struct.unpack_from(_FMT[(elem, signed)], self._bytes, addr)
        return value

    def store(self, addr: int, elem: str, value: Number) -> None:
        """Store one element of type *elem* at byte address *addr*."""
        nbytes = _SIZE[elem]
        self._check_store(addr, nbytes)
        if elem == "f32":
            struct.pack_into("<f", self._bytes, addr, float(value))
        else:
            masked = int(value) & _INT_MASK[elem]
            fmt = _FMT[(elem, False)]
            struct.pack_into(fmt, self._bytes, addr, masked)

    # -- vector access --------------------------------------------------------------

    def load_vector(self, addr: int, elem: str, width: int,
                    signed: bool = True) -> List[Number]:
        """Load *width* contiguous elements starting at *addr*."""
        nbytes = _SIZE[elem] * width
        self._check_load(addr, nbytes)
        fmt = "<" + _FMT[(elem, signed)][1] * width
        return list(struct.unpack_from(fmt, self._bytes, addr))

    def store_vector(self, addr: int, elem: str, values) -> None:
        """Store the sequence *values* contiguously starting at *addr*."""
        width = len(values)
        nbytes = _SIZE[elem] * width
        self._check_store(addr, nbytes)
        if elem == "f32":
            struct.pack_into("<" + "f" * width, self._bytes, addr,
                             *[float(v) for v in values])
        else:
            mask = _INT_MASK[elem]
            fmt = "<" + _FMT[(elem, False)][1] * width
            struct.pack_into(fmt, self._bytes, addr,
                             *[int(v) & mask for v in values])

    def overlaps_read_only(self, addr: int, nbytes: int) -> bool:
        """True when ``[addr, addr+nbytes)`` intersects a protected range."""
        end = addr + nbytes
        for start, stop in self._ro_ranges:
            if addr < stop and end > start:
                return True
        return False

    # -- whole-array access (macro-kernel fragment execution) -----------------

    def load_array(self, addr: int, elem: str, count: int) -> np.ndarray:
        """Bounds-checked copy of *count* elements at *addr* as a numpy array.

        Element dtypes match the typed scalar accessors bit for bit
        (little-endian, integers signed), so a ``load_array`` of a region
        equals the element-wise :meth:`load_vector` of the same region.
        """
        nbytes = _SIZE[elem] * count
        self._check_load(addr, nbytes)
        return np.frombuffer(self._bytes, dtype=_NP_DTYPE[elem],
                             count=count, offset=addr).copy()

    def store_array(self, addr: int, elem: str, values: np.ndarray) -> None:
        """Store a numpy array of *elem* values contiguously at *addr*.

        Protection- and bounds-checked like :meth:`store_vector`;
        integer narrowing truncates to the element width exactly as the
        masked ``struct`` pack does.
        """
        flat = np.ascontiguousarray(values).reshape(-1)
        nbytes = _SIZE[elem] * flat.size
        self._check_store(addr, nbytes)
        view = np.frombuffer(self._bytes, dtype=_NP_DTYPE[elem],
                             count=flat.size, offset=addr)
        view[:] = flat

    def clone(self) -> "Memory":
        """An independent copy (used by the translation verifier)."""
        copy = Memory(self.size)
        copy._bytes = bytearray(self._bytes)
        copy._ro_ranges = list(self._ro_ranges)
        return copy

    # -- bulk access (loader / tests) ------------------------------------------------

    def write_bytes(self, addr: int, data: bytes) -> None:
        self._check_store(addr, len(data))
        self._bytes[addr:addr + len(data)] = data

    def read_bytes(self, addr: int, nbytes: int) -> bytes:
        self._check_load(addr, nbytes)
        return bytes(self._bytes[addr:addr + nbytes])
