"""Liquid SIMD reproduction (Clark et al., HPCA 2007).

A complete simulated system demonstrating *Liquid SIMD*: SIMD code is
compiled into an equivalent scalar representation (Table 1 of the
paper), outlined behind marked calls, and dynamically re-translated into
width-specific SIMD microcode by a post-retirement hardware translator
(Table 3) — decoupling the SIMD accelerator from the instruction set.

Quickstart::

    from repro import (
        LoopBuilder, Kernel, build_liquid_program, build_baseline_program,
        Machine, MachineConfig, config_for_width,
    )

    b = LoopBuilder("scale", trip=256, elem="f32")
    x = b.load("x")
    b.store("y", b.mul(x, b.imm(2.0)))
    kernel = Kernel("demo", arrays=[...], stages=[b.build()],
                    schedule=["scale", "scale"])

    liquid = build_liquid_program(kernel)
    result = Machine(MachineConfig(accelerator=config_for_width(8))).run(liquid)
"""

from repro.core.scalarize import (
    DEFAULT_MVL,
    Kernel,
    ScalarBlock,
    SimdLoop,
    build_baseline_program,
    build_liquid_program,
    build_native_program,
    scalarize_loop,
)
from repro.core.translate import (
    AbortReason,
    DynamicTranslator,
    MicrocodeCache,
    TranslationResult,
    TranslatorConfig,
    TranslatorHardwareModel,
)
from repro.isa import DataArray, Program, assemble
from repro.kernels.dsl import LoopBuilder
from repro.simd.accelerator import AcceleratorConfig, config_for_width
from repro.system import (
    Machine,
    MachineConfig,
    RunResult,
    arrays_equal,
    outlined_function_sizes,
)

__version__ = "1.0.0"

__all__ = [
    "DEFAULT_MVL",
    "Kernel",
    "ScalarBlock",
    "SimdLoop",
    "build_baseline_program",
    "build_liquid_program",
    "build_native_program",
    "scalarize_loop",
    "AbortReason",
    "DynamicTranslator",
    "MicrocodeCache",
    "TranslationResult",
    "TranslatorConfig",
    "TranslatorHardwareModel",
    "DataArray",
    "Program",
    "assemble",
    "LoopBuilder",
    "AcceleratorConfig",
    "config_for_width",
    "Machine",
    "MachineConfig",
    "RunResult",
    "arrays_equal",
    "outlined_function_sizes",
    "__version__",
]
