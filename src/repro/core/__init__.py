"""The paper's primary contribution: SIMD scalarization + dynamic translation.

``repro.core.scalarize`` implements the compile-time half (paper section
3, Table 1): re-expressing SIMD loops as equivalent scalar loops in the
baseline ISA, with function outlining.  ``repro.core.translate``
implements the run-time half (paper section 4, Table 3): the
post-retirement hardware translator that regenerates width-specific SIMD
microcode from the scalar representation.
"""

from repro.core.scalarize import (
    Kernel,
    ScalarBlock,
    SimdLoop,
    build_baseline_program,
    build_liquid_program,
    build_native_program,
    scalarize_loop,
)
from repro.core.translate import (
    AbortReason,
    DynamicTranslator,
    MicrocodeCache,
    TranslationResult,
    TranslatorConfig,
)

__all__ = [
    "Kernel",
    "ScalarBlock",
    "SimdLoop",
    "build_baseline_program",
    "build_liquid_program",
    "build_native_program",
    "scalarize_loop",
    "AbortReason",
    "DynamicTranslator",
    "MicrocodeCache",
    "TranslationResult",
    "TranslatorConfig",
]
