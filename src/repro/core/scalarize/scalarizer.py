"""SIMD -> scalar conversion: the paper's Table 1, rule by rule.

:func:`scalarize_loop` rewrites one width-agnostic SIMD loop into an
equivalent scalar loop nest that (a) runs correctly on a plain scalar
core and (b) follows the exact conventions the dynamic translator
recognizes:

* **Category 1/2** — data-parallel ops map to their scalar equivalents,
  one element per iteration.
* **Category 3** — vector constants that no scalar immediate can express
  become read-only ``cnst``/``mask`` arrays indexed by the induction
  variable.
* **Category 4** — reductions become loop-carried updates of a scalar
  register (``r1 = min r1, r2``).
* **Category 5/6** — vector memory accesses become element loads/stores
  indexed by the induction variable.
* **Category 7/8** — permutations become read-only *offset* arrays added
  to the induction variable at memory boundaries; a permutation that is
  not adjacent to a memory access forces **loop fission** (the paper's
  FFT example): live values are stored to temporary arrays — the
  permuted one with scatter offsets — and a second loop resumes from the
  temporaries.
* **Idioms** — saturating arithmetic (and optionally min/max) expand to
  the fixed multi-instruction shapes of
  :mod:`repro.core.scalarize.idioms`.

Correctness note on narrow integer lanes: scalar registers are 32-bit,
so i8/i16 intermediates are held widened.  Low-order bits always agree
with the lane-wrapped SIMD value, so programs whose order-sensitive
operations (min/max/asr/compares) only see in-range values are exact —
the same implicit contract hand-written SIMD assembly obeys.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.scalarize import idioms
from repro.core.scalarize.loop_ir import LoopIRError, SimdLoop, lane_value
from repro.isa.instructions import Imm, Instruction, Mem, Reg, Sym, VImm
from repro.isa.opcodes import LOAD_FOR_ELEM, OPCODES, STORE_FOR_ELEM, InstrClass
from repro.isa.program import DataArray
from repro.isa.registers import (
    NUM_REGS_PER_BANK,
    is_float_reg,
    is_scalar_reg,
    is_vector_reg,
    reg_index,
    scalar_reg_for,
)
from repro.simd.permutations import PermPattern

#: vector opcode -> scalar opcode, for f32 lanes
_F32_OPS = {
    "vadd": "fadd", "vsub": "fsub", "vmul": "fmul",
    "vmin": "fmin", "vmax": "fmax",
    "vand": "and", "vorr": "orr", "vmask": "and",
    "vneg": "fneg", "vabs": "fabs",
}

#: vector opcode -> scalar opcode, for integer lanes
_INT_OPS = {
    "vadd": "add", "vsub": "sub", "vmul": "mul",
    "vand": "and", "vorr": "orr", "veor": "eor", "vbic": "bic",
    "vshl": "lsl", "vshr": "asr",
    "vmin": "min", "vmax": "max", "vmask": "and",
}

_REDUCTION_OPS = {
    ("vredsum", True): "fadd", ("vredsum", False): "add",
    ("vredmin", True): "fmin", ("vredmin", False): "min",
    ("vredmax", True): "fmax", ("vredmax", False): "max",
}

_PERM_OPCODES = {"vbfly": "bfly", "vrev": "rev", "vrot": "rot"}


class ScalarizeError(LoopIRError):
    """The loop cannot be expressed in the scalar representation."""


@dataclass
class ScalarizedLoop:
    """Result of scalarizing one SIMD loop.

    ``segments`` holds one per-iteration instruction list per fissioned
    scalar loop; code generators wrap each in induction scaffolding
    (``mov ind, #0`` / ``add ind, ind, #1`` / ``cmp`` / ``blt``).
    """

    name: str
    trip: int
    induction: str
    segments: List[List[Instruction]]
    pre: List[Instruction]
    post: List[Instruction]
    new_arrays: List[DataArray] = field(default_factory=list)

    @property
    def body_instruction_count(self) -> int:
        """Scalar instructions per full loop nest, excluding scaffolding."""
        return sum(len(seg) for seg in self.segments)


class _RegAllocator:
    """Hands out scalar temp registers not colliding with mapped ones."""

    def __init__(self, used_int: Set[int], used_float: Set[int],
                 induction_index: int) -> None:
        blocked_int = set(used_int) | {induction_index, 14, 15}
        blocked_float = set(used_float)
        self._int_pool = [i for i in range(NUM_REGS_PER_BANK - 3, 0, -1)
                          if i not in blocked_int]
        self._float_pool = [i for i in range(NUM_REGS_PER_BANK - 1, -1, -1)
                            if i not in blocked_float]

    def int_temp(self) -> str:
        if not self._int_pool:
            raise ScalarizeError("out of integer temp registers")
        return f"r{self._int_pool.pop(0)}"

    def float_temp(self) -> str:
        if not self._float_pool:
            raise ScalarizeError("out of float temp registers")
        return f"f{self._float_pool.pop(0)}"


def _pattern_of(instr: Instruction) -> PermPattern:
    kind = _PERM_OPCODES[instr.opcode]
    if len(instr.srcs) < 2 or not isinstance(instr.srcs[1], Imm):
        raise ScalarizeError(f"{instr.opcode} needs an immediate period")
    period = int(instr.srcs[1].value)
    if kind == "rot":
        if len(instr.srcs) < 3 or not isinstance(instr.srcs[2], Imm):
            raise ScalarizeError("vrot needs #period, #amount")
        return PermPattern("rot", period, int(instr.srcs[2].value))
    return PermPattern(kind, period)


def scalarize_loop(loop: SimdLoop, mvl: int, *, minmax_idioms: bool = False,
                   name_prefix: Optional[str] = None) -> ScalarizedLoop:
    """Convert *loop* into its scalar representation (Table 1).

    Args:
        loop: validated width-agnostic SIMD loop.
        mvl: maximum vectorizable length the binary targets; synthesized
            arrays are padded to it (alignment, section 3.1).
        minmax_idioms: emit the conditional-move idiom for ``vmin``/
            ``vmax`` instead of the scalar pseudo-ops.
        name_prefix: prefix for synthesized array names (default: loop
            name).
    """
    loop.validate()
    return _Scalarizer(loop, mvl, minmax_idioms, name_prefix or loop.name).run()


class _Scalarizer:
    def __init__(self, loop: SimdLoop, mvl: int, minmax_idioms: bool,
                 prefix: str) -> None:
        self.loop = loop
        self.mvl = mvl
        self.minmax_idioms = minmax_idioms
        self.prefix = prefix
        self.induction = loop.induction
        self.new_arrays: List[DataArray] = []
        self.segments: List[List[Instruction]] = [[]]
        self.elem_of: Dict[str, str] = {}
        # Registers already claimed by the loop (mapped vregs + pre/post).
        used_int, used_float = self._collect_used_indexes()
        self.alloc = _RegAllocator(used_int, used_float,
                                   reg_index(self.induction))
        #: synthesized array name -> dedicated temp register
        self._const_temp: Dict[str, str] = {}
        #: (kind, elem, values) -> synthesized array name (dedup)
        self._const_memo: Dict[Tuple, str] = {}
        #: lazily allocated pair of scratch registers shared by all idiom
        #: expansions and offset-index sequences: both shapes consume their
        #: temporaries before the next one begins, so one pair serves all
        self._scratch_pair: List[str] = []
        #: pattern name -> offset array name
        self._offset_arrays: Dict[str, str] = {}

        #: arrays whose temp has been loaded in the current segment
        self._loaded_this_segment: Set[str] = set()
        self._tmp_counter = 0
        self._folded_perms: Set[int] = set()
        self._store_folded: Dict[str, Tuple[PermPattern, str]] = {}

    # -- helpers --------------------------------------------------------------

    def _collect_used_indexes(self) -> Tuple[Set[int], Set[int]]:
        used_int: Set[int] = set()
        used_float: Set[int] = set()
        def note(name: str) -> None:
            if is_vector_reg(name):
                name = scalar_reg_for(name)
            if is_float_reg(name):
                used_float.add(reg_index(name))
            else:
                used_int.add(reg_index(name))
        for instr in self.loop.pre + self.loop.body + self.loop.post:
            for reg in list(instr.reads()) + list(instr.writes()):
                note(reg)
        return used_int, used_float

    def _emit(self, instr: Instruction) -> None:
        self.segments[-1].append(instr)

    def _sreg(self, vreg: str) -> str:
        return scalar_reg_for(vreg)

    def _idiom_temp(self, slot: int) -> str:
        """A shared integer scratch register (slot 0 or 1)."""
        while len(self._scratch_pair) <= slot:
            self._scratch_pair.append(self.alloc.int_temp())
        return self._scratch_pair[slot]

    def _pad(self, values: List) -> List:
        """Pad synthesized arrays to a whole number of MVL groups."""
        count = len(values)
        padded = ((count + self.mvl - 1) // self.mvl) * self.mvl
        filler = 0.0 if values and isinstance(values[0], float) else 0
        return values + [filler] * (padded - count)

    def _new_array(self, kind: str, elem: str, values: List,
                   read_only: bool) -> str:
        name = f"{self.prefix}_{kind}"
        suffix = 0
        existing = {a.name for a in self.new_arrays}
        while name in existing:
            suffix += 1
            name = f"{self.prefix}_{kind}_{suffix}"
        self.new_arrays.append(
            DataArray(name, elem, self._pad(values), read_only=read_only)
        )
        return name

    # -- main walk -------------------------------------------------------------

    def run(self) -> ScalarizedLoop:
        body = self.loop.body
        uses = _UseInfo(body)
        i = 0
        while i < len(body):
            instr = body[i]
            cls = OPCODES[instr.opcode].cls
            if instr.opcode == "vld":
                self._do_load(i, instr, uses)
            elif instr.opcode == "vst":
                self._do_store(instr)
            elif cls is InstrClass.VPERM:
                if i in self._folded_perms:
                    pass  # already folded into its defining load
                else:
                    handled = self._try_store_fold(i, instr, uses)
                    if not handled:
                        self._do_fission(i, instr, uses)
            elif cls is InstrClass.VRED:
                self._do_reduction(instr)
            elif cls in (InstrClass.VALU, InstrClass.VMUL):
                self._do_data_parallel(instr)
            else:
                raise ScalarizeError(
                    f"{self.loop.name}: cannot scalarize {instr.opcode!r}"
                )
            i += 1
        return ScalarizedLoop(
            name=self.loop.name,
            trip=self.loop.trip,
            induction=self.induction,
            segments=self.segments,
            pre=list(self.loop.pre),
            post=list(self.loop.post),
            new_arrays=self.new_arrays,
        )

    # -- memory ------------------------------------------------------------------

    def _do_load(self, i: int, instr: Instruction, uses: "_UseInfo") -> None:
        dst_v = instr.dst.name
        elem = instr.elem
        self.elem_of[dst_v] = elem
        sym = instr.mem.base
        fold = uses.load_fold_candidate(i)
        if fold is not None:
            perm_index, perm_instr = fold
            pattern = _pattern_of(perm_instr)
            self._folded_perms.add(perm_index)
            target_v = perm_instr.dst.name
            self.elem_of[target_v] = elem
            index_reg = self._emit_offset_index(pattern)
            self._emit(Instruction(
                LOAD_FOR_ELEM[elem], dst=Reg(self._sreg(target_v)),
                mem=Mem(base=sym, index=Reg(index_reg)), elem=elem,
                comment=f"load shuffled by {pattern.name}",
            ))
            return
        self._emit(Instruction(
            LOAD_FOR_ELEM[elem], dst=Reg(self._sreg(dst_v)),
            mem=Mem(base=sym, index=Reg(self.induction)), elem=elem,
        ))

    def _do_store(self, instr: Instruction) -> None:
        src_v = instr.srcs[0].name
        elem = instr.elem
        folded = self._store_folded.pop(src_v, None)
        if folded is not None:
            pattern, data_v = folded
            index_reg = self._emit_offset_index(pattern.inverse())
            self._emit(Instruction(
                STORE_FOR_ELEM[elem], srcs=(Reg(self._sreg(data_v)),),
                mem=Mem(base=instr.mem.base, index=Reg(index_reg)), elem=elem,
                comment=f"scatter store ({pattern.name})",
            ))
            return
        self._emit(Instruction(
            STORE_FOR_ELEM[elem], srcs=(Reg(self._sreg(src_v)),),
            mem=Mem(base=instr.mem.base, index=Reg(self.induction)), elem=elem,
        ))

    def _emit_offset_index(self, pattern: PermPattern) -> str:
        """Emit ``ld t, [offsets + ind]; add t2, ind, t``; return ``t2``."""
        key = pattern.name
        if key not in self._offset_arrays:
            self._offset_arrays[key] = self._new_array(
                f"bfly_{key}", "i32", pattern.offsets(self.loop.trip),
                read_only=True,
            )
        array = self._offset_arrays[key]
        t_offsets = self._idiom_temp(0)
        t_index = self._idiom_temp(1)
        self._emit(Instruction(
            "ldw", dst=Reg(t_offsets),
            mem=Mem(base=Sym(array), index=Reg(self.induction)), elem="i32",
            comment=f"offsets for {pattern.name}",
        ))
        self._emit(Instruction(
            "add", dst=Reg(t_index), srcs=(Reg(self.induction), Reg(t_offsets)),
        ))
        return t_index

    # -- permutations requiring fission -------------------------------------------------

    def _try_store_fold(self, i: int, instr: Instruction,
                        uses: "_UseInfo") -> bool:
        """Category 8: a permutation whose only consumer is a store."""
        target = uses.store_fold_candidate(i)
        if target is None:
            return False
        pattern = _pattern_of(instr)
        self._store_folded[instr.dst.name] = (pattern, instr.srcs[0].name)
        self.elem_of[instr.dst.name] = self.elem_of.get(
            instr.srcs[0].name, instr.elem or "i32"
        )
        return True

    def _do_fission(self, i: int, instr: Instruction, uses: "_UseInfo") -> None:
        """Split the loop at a mid-dataflow permutation (paper section 3.4)."""
        pattern = _pattern_of(instr)
        src_v = instr.srcs[0].name
        dst_v = instr.dst.name
        elem = self.elem_of.get(src_v, instr.elem or "i32")
        self.elem_of[dst_v] = elem

        live = uses.live_after(i)
        live.discard(dst_v)
        src_needed_raw = src_v in live and uses.read_after(i, src_v)
        live.discard(src_v)

        # Scatter-store the permuted value: tmp becomes pattern(src).
        self._tmp_counter += 1
        perm_tmp = self._new_array(f"tmp{self._tmp_counter}", elem,
                                   [0.0 if elem == "f32" else 0] * self.loop.trip,
                                   read_only=False)
        index_reg = self._emit_offset_index(pattern.inverse())
        self._emit(Instruction(
            STORE_FOR_ELEM[elem], srcs=(Reg(self._sreg(src_v)),),
            mem=Mem(base=Sym(perm_tmp), index=Reg(index_reg)), elem=elem,
            comment=f"fission: scatter {pattern.name}",
        ))

        spills: List[Tuple[str, str, str]] = []  # (vreg, tmp array, elem)
        spill_regs = sorted(live) + ([src_v] if src_needed_raw else [])
        for vreg in spill_regs:
            velem = self.elem_of.get(vreg, "i32")
            self._tmp_counter += 1
            tmp = self._new_array(
                f"tmp{self._tmp_counter}", velem,
                [0.0 if velem == "f32" else 0] * self.loop.trip,
                read_only=False,
            )
            self._emit(Instruction(
                STORE_FOR_ELEM[velem], srcs=(Reg(self._sreg(vreg)),),
                mem=Mem(base=Sym(tmp), index=Reg(self.induction)), elem=velem,
                comment="fission: spill live value",
            ))
            spills.append((vreg, tmp, velem))

        # Start the next loop: reload the permuted value and the spills.
        self.segments.append([])
        self._loaded_this_segment.clear()
        self._emit(Instruction(
            LOAD_FOR_ELEM[elem], dst=Reg(self._sreg(dst_v)),
            mem=Mem(base=Sym(perm_tmp), index=Reg(self.induction)), elem=elem,
            comment="fission: reload permuted value",
        ))
        for vreg, tmp, velem in spills:
            self._emit(Instruction(
                LOAD_FOR_ELEM[velem], dst=Reg(self._sreg(vreg)),
                mem=Mem(base=Sym(tmp), index=Reg(self.induction)), elem=velem,
                comment="fission: reload live value",
            ))

    # -- data-parallel ops ------------------------------------------------------------------

    def _do_reduction(self, instr: Instruction) -> None:
        dst = instr.dst.name
        if not is_scalar_reg(dst):
            raise ScalarizeError("reduction destination must be scalar")
        acc = instr.srcs[0]
        if not (isinstance(acc, Reg) and acc.name == dst):
            raise ScalarizeError(
                "reduction must use its destination as the accumulator "
                "(loop-carried register, Table 1 category 4)"
            )
        vsrc = instr.srcs[1].name
        is_float = is_float_reg(dst)
        op = _REDUCTION_OPS[(instr.opcode, is_float)]
        self._emit(Instruction(
            op, dst=Reg(dst), srcs=(Reg(dst), Reg(self._sreg(vsrc))),
            comment="reduction (loop-carried)",
        ))

    def _do_data_parallel(self, instr: Instruction) -> None:
        opcode = instr.opcode
        dst_v = instr.dst.name
        a_operand = instr.srcs[0]
        elem = instr.elem or self.elem_of.get(
            a_operand.name if isinstance(a_operand, Reg) else dst_v, "i32"
        )
        self.elem_of[dst_v] = elem
        is_float = elem == "f32"
        dst = self._sreg(dst_v)

        if opcode in ("vneg", "vabs"):
            a = self._sreg(a_operand.name)
            if is_float:
                self._emit(Instruction(_F32_OPS[opcode], dst=Reg(dst),
                                       srcs=(Reg(a),)))
            elif opcode == "vneg":
                for out in idioms.emit_neg(dst, a):
                    self._emit(out)
            else:
                for out in idioms.emit_abs(dst, a, self._idiom_temp(0)):
                    self._emit(out)
            return

        b_operand = instr.srcs[1]
        a = self._sreg(a_operand.name)
        b = self._operand_to_scalar(b_operand, elem, opcode)

        if opcode in ("vqadd", "vqsub"):
            if is_float:
                raise ScalarizeError("saturating ops are integer-only")
            b_reg = b if isinstance(b, Imm) else b
            for out in idioms.emit_saturating(opcode, dst, a, b_reg, elem):
                self._emit(out)
            return
        if opcode in ("vmin", "vmax") and self.minmax_idioms \
                and not isinstance(b, Imm):
            # The conditional-move idiom compares two registers; min/max
            # against a scalar-supported constant stays in pseudo form
            # (category 2), which the translator maps directly.
            for out in idioms.emit_minmax(opcode, dst, a, b, is_float):
                self._emit(out)
            return
        if opcode == "vabd":
            if is_float:
                self._emit(Instruction("fsub", dst=Reg(dst), srcs=(Reg(a), b)))
                self._emit(Instruction("fabs", dst=Reg(dst), srcs=(Reg(dst),)))
                return
            if isinstance(b, Imm):
                raise ScalarizeError("vabd idiom needs a register operand")
            for out in idioms.emit_abd(dst, a, b, self._idiom_temp(0),
                                       self._idiom_temp(1)):
                self._emit(out)
            return

        table = _F32_OPS if is_float else _INT_OPS
        scalar_op = table.get(opcode)
        if scalar_op is None:
            raise ScalarizeError(
                f"no scalar equivalent for {opcode!r} on {elem} lanes"
            )
        b_final = b if isinstance(b, Imm) else Reg(b) if isinstance(b, str) else b
        self._emit(Instruction(scalar_op, dst=Reg(dst),
                               srcs=(Reg(a), b_final)))

    def _operand_to_scalar(self, operand, elem: str, opcode: str):
        """Map the second operand: register, immediate, or cnst array load."""
        if isinstance(operand, Reg):
            return self._sreg(operand.name)
        if isinstance(operand, Imm):
            return operand
        if isinstance(operand, VImm):
            return self._load_lane_constant(operand, elem, opcode)
        raise ScalarizeError(f"bad operand {operand!r}")

    def _load_lane_constant(self, vimm: VImm, elem: str, opcode: str) -> str:
        """Category 3: synthesize a cnst array and load it each iteration."""
        is_mask = opcode in ("vmask", "vand", "vorr", "veor", "vbic")
        if elem == "f32" and is_mask:
            array_elem, load_op, kind = "i32", "ldw", "mask"
            temp_kind = "int"
        elif elem == "f32":
            array_elem, load_op, kind = "f32", "ldf", "cnst"
            temp_kind = "float"
        else:
            array_elem, load_op, kind = elem, LOAD_FOR_ELEM[elem], (
                "mask" if is_mask else "cnst"
            )
            temp_kind = "int"
        values = [lane_value(vimm, i) for i in range(self.loop.trip)]
        signature = (kind, array_elem, tuple(values))
        name = self._const_memo.get(signature)
        if name is None:
            name = self._new_array(kind, array_elem, values, read_only=True)
            self._const_memo[signature] = name
            self._const_temp[name] = (self.alloc.int_temp() if temp_kind == "int"
                                      else self.alloc.float_temp())
        temp = self._const_temp[name]
        if name not in self._loaded_this_segment:
            self._emit(Instruction(
                load_op, dst=Reg(temp),
                mem=Mem(base=Sym(name), index=Reg(self.induction)),
                elem=array_elem, comment=f"lane constant {name}",
            ))
            self._loaded_this_segment.add(name)
        return temp


class _UseInfo:
    """Def/use lookahead over a SIMD body (small loops; O(n^2) is fine)."""

    def __init__(self, body: Sequence[Instruction]) -> None:
        self.body = list(body)

    def read_after(self, i: int, reg: str) -> bool:
        """Is *reg* read by any instruction after index *i* (before redefinition)?"""
        for j in range(i + 1, len(self.body)):
            if reg in self.body[j].reads():
                return True
            if reg in self.body[j].writes():
                return False
        return False

    def live_after(self, i: int) -> Set[str]:
        """Vector registers defined at or before *i* and read after it."""
        defined: Set[str] = set()
        for j in range(i + 1):
            for reg in self.body[j].writes():
                if is_vector_reg(reg):
                    defined.add(reg)
        return {reg for reg in defined if self.read_after(i, reg) or
                reg in self.body[i].reads()}

    def first_read(self, i: int, reg: str) -> Optional[int]:
        for j in range(i + 1, len(self.body)):
            if reg in self.body[j].reads():
                return j
            if reg in self.body[j].writes():
                return None
        return None

    def load_fold_candidate(self, i: int) -> Optional[Tuple[int, Instruction]]:
        """If the load at *i* feeds straight into a permutation, fold it.

        Conditions (category 7): the first use of the loaded register is a
        permutation of it, and either the permutation overwrites the same
        register or the raw value is never read afterwards.
        """
        load = self.body[i]
        dst = load.dst.name
        j = self.first_read(i, dst)
        if j is None:
            return None
        candidate = self.body[j]
        if OPCODES[candidate.opcode].cls is not InstrClass.VPERM:
            return None
        if not candidate.srcs or not isinstance(candidate.srcs[0], Reg):
            return None
        if candidate.srcs[0].name != dst:
            return None
        if candidate.dst.name != dst and self.read_after(j, dst):
            return None
        return j, candidate

    def store_fold_candidate(self, i: int) -> Optional[int]:
        """If the permutation at *i* feeds only a store, fold it (category 8)."""
        perm = self.body[i]
        dst = perm.dst.name
        reads = []
        for j in range(i + 1, len(self.body)):
            if dst in self.body[j].reads():
                reads.append(j)
            if dst in self.body[j].writes():
                break
        if len(reads) != 1:
            return None
        j = reads[0]
        store = self.body[j]
        if store.opcode != "vst":
            return None
        if not (isinstance(store.srcs[0], Reg) and store.srcs[0].name == dst):
            return None
        return j
