"""Scalar idioms for SIMD operations with no single scalar equivalent.

The paper (section 3.2) handles SIMD operations that the scalar ISA
cannot express directly — its running example is saturating arithmetic —
by emitting a fixed multi-instruction *idiom* that the dynamic
translator recognizes and collapses back into one SIMD instruction, "so
no efficiency is lost in the dynamically translated code".

This module is shared by both halves of the system: the scalarizer
emits idioms from these templates, and the translator's idiom
recognizer (:mod:`repro.core.translate.idiom_recognizer`) matches the
same shapes.

Implemented idioms:

* **Saturating add/sub** (``vqadd``/``vqsub``, signed i8/i16)::

      add d, a, b        ; wraps in 32-bit, so the true sum is exact
      cmp d, #HI
      movgt d, #HI
      cmp d, #LO
      movlt d, #LO

* **Integer/float min/max** (``vmin``/``vmax``), used when the
  scalarizer is configured not to rely on the scalar ``min``/``max``
  pseudo-ops::

      mov d, a           ; (fmov for float)
      cmp a, b           ; (fcmp)
      movgt d, b         ;  -> min   (movlt -> max)

* **Integer absolute difference** (``vabd``)::

      sub t1, a, b
      sub t2, b, a
      max d, t1, t2

* **Integer negate/abs** (``vneg``/``vabs``)::

      rsb d, a, #0                      ; vneg
      rsb t, a, #0 ; max d, a, t        ; vabs
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.isa.instructions import Imm, Instruction, Reg

#: Saturation bounds (HI, LO) per element type; i32 saturation cannot be
#: expressed with 32-bit scalar wrapping arithmetic and is rejected.
SAT_BOUNDS: Dict[str, Tuple[int, int]] = {
    "i8": (127, -128),
    "i16": (32767, -32768),
}


def sat_elem_for_bounds(hi: int, lo: int) -> Optional[str]:
    """Element type whose saturation bounds are (*hi*, *lo*), if any."""
    for elem, (bound_hi, bound_lo) in SAT_BOUNDS.items():
        if hi == bound_hi and lo == bound_lo:
            return elem
    return None


def emit_saturating(opcode: str, dst: str, a: str, b, elem: str) -> List[Instruction]:
    """Scalar idiom for ``vqadd``/``vqsub`` on signed *elem* lanes."""
    if elem not in SAT_BOUNDS:
        raise ValueError(f"saturating idiom unsupported for {elem!r}")
    hi, lo = SAT_BOUNDS[elem]
    base = {"vqadd": "add", "vqsub": "sub"}[opcode]
    b_operand = b if isinstance(b, Imm) else Reg(b)
    return [
        Instruction(base, dst=Reg(dst), srcs=(Reg(a), b_operand)),
        Instruction("cmp", srcs=(Reg(dst), Imm(hi))),
        Instruction("movgt", dst=Reg(dst), srcs=(Imm(hi),)),
        Instruction("cmp", srcs=(Reg(dst), Imm(lo))),
        Instruction("movlt", dst=Reg(dst), srcs=(Imm(lo),)),
    ]


def emit_minmax(opcode: str, dst: str, a: str, b: str,
                is_float: bool) -> List[Instruction]:
    """Conditional-move idiom for ``vmin``/``vmax``.

    ``min``: copy *a*, replace with *b* when ``a > b``.
    ``max``: copy *a*, replace with *b* when ``a < b``.
    """
    mov = "fmov" if is_float else "mov"
    cmp = "fcmp" if is_float else "cmp"
    cond = {"vmin": "gt", "vmax": "lt"}[opcode]
    return [
        Instruction(mov, dst=Reg(dst), srcs=(Reg(a),)),
        Instruction(cmp, srcs=(Reg(a), Reg(b))),
        Instruction(f"{mov}{cond}", dst=Reg(dst), srcs=(Reg(b),)),
    ]


def emit_abd(dst: str, a: str, b: str, t1: str, t2: str) -> List[Instruction]:
    """Scalar idiom for integer absolute difference (``vabd``)."""
    return [
        Instruction("sub", dst=Reg(t1), srcs=(Reg(a), Reg(b))),
        Instruction("sub", dst=Reg(t2), srcs=(Reg(b), Reg(a))),
        Instruction("max", dst=Reg(dst), srcs=(Reg(t1), Reg(t2))),
    ]


def emit_neg(dst: str, a: str) -> List[Instruction]:
    """Scalar idiom for integer negate (``vneg``)."""
    return [Instruction("rsb", dst=Reg(dst), srcs=(Reg(a), Imm(0)))]


def emit_abs(dst: str, a: str, t: str) -> List[Instruction]:
    """Scalar idiom for integer absolute value (``vabs``)."""
    return [
        Instruction("rsb", dst=Reg(t), srcs=(Reg(a), Imm(0))),
        Instruction("max", dst=Reg(dst), srcs=(Reg(a), Reg(t))),
    ]
