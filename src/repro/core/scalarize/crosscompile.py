"""Post-compilation cross-compiler: retrofit Liquid SIMD onto scalar binaries.

The paper (section 2) notes the SIMD-to-scalar conversion "can either be
done at compile time or by using a post-compilation cross compiler" —
i.e. an existing *scalar* binary whose hot loops already look like the
scalar representation (plain element loops are exactly that) can be made
Liquid simply by **outlining** those loops behind marked calls (section
3.5's transformation).  No vector knowledge is needed offline: the
dynamic translator does the real work at run time, and any loop it
cannot handle just keeps running scalar.

:func:`find_candidate_loops` scans a program for the canonical loop
shape (``mov rX, #0`` … body … ``add rX, rX, #1; cmp rX, #K; blt``) and
applies a *lenient* static legality screen — false positives are safe by
construction, because the runtime legality checker aborts them.
:func:`outline_loops` rewrites the program, moving each candidate into
an outlined function called through ``blo``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.isa.instructions import Imm, Instruction, Reg, Sym
from repro.isa.opcodes import OPCODES, InstrClass
from repro.isa.program import Program


@dataclass(frozen=True)
class LoopRegion:
    """One candidate loop: instruction indexes [start, end] inclusive.

    ``start`` is the ``mov rX, #0``; ``end`` is the closing ``blt``.
    """

    start: int
    end: int
    induction: str
    trip: int

    @property
    def length(self) -> int:
        return self.end - self.start + 1


#: Instruction classes that can appear inside a translatable loop body.
_BODY_CLASSES = {
    InstrClass.ALU, InstrClass.MUL, InstrClass.FALU, InstrClass.FMUL,
    InstrClass.MOVE, InstrClass.CMP, InstrClass.LOAD, InstrClass.STORE,
}


def find_candidate_loops(program: Program, *,
                         max_body: int = 61) -> List[LoopRegion]:
    """Scan *program* for outline-able scalar loops.

    The screen requires the canonical induction scaffold, a constant trip
    count, a body of translatable instruction classes with symbolic
    ``[array + index]`` addressing, and no control flow other than the
    closing branch.  It deliberately does **not** re-implement the
    translator's full legality rules — a candidate the translator later
    rejects costs nothing (it stays scalar).
    """
    instructions = program.instructions
    regions: List[LoopRegion] = []
    index = 0
    while index < len(instructions):
        region = _match_loop(program, index, max_body)
        if region is not None:
            regions.append(region)
            index = region.end + 1
        else:
            index += 1
    return regions


def _match_loop(program: Program, start: int,
                max_body: int) -> Optional[LoopRegion]:
    instructions = program.instructions
    mov = instructions[start]
    if mov.opcode != "mov" or mov.dst is None or not mov.srcs:
        return None
    if not isinstance(mov.srcs[0], Imm) or mov.srcs[0].value != 0:
        return None
    induction = mov.dst.name
    if not induction.startswith("r"):
        return None
    # The loop header label sits at start+1; find the closing blt that
    # targets it.
    header = start + 1
    end = None
    limit = min(len(instructions), start + max_body + 4)
    for i in range(header, limit):
        instr = instructions[i]
        if instr.opcode == "blt" and instr.target is not None \
                and program.labels.get(instr.target) == header:
            end = i
            break
    if end is None or end - header < 3:
        return None
    # Scaffold: ... add ind, ind, #1 ; cmp ind, #K ; blt header
    add, cmp = instructions[end - 2], instructions[end - 1]
    if not (add.opcode == "add" and add.dst == Reg(induction)
            and add.srcs == (Reg(induction), Imm(1))):
        return None
    if not (cmp.opcode == "cmp" and len(cmp.srcs) == 2
            and cmp.srcs[0] == Reg(induction)
            and isinstance(cmp.srcs[1], Imm)):
        return None
    trip = int(cmp.srcs[1].value)
    if trip < 2:
        return None
    if not _body_is_clean(program, header, end - 2, induction):
        return None
    return LoopRegion(start=start, end=end, induction=induction, trip=trip)


def _body_is_clean(program: Program, lo: int, hi: int,
                   induction: str) -> bool:
    """Lenient legality screen over body instructions [lo, hi)."""
    for i in range(lo, hi):
        instr = program.instructions[i]
        spec = OPCODES.get(instr.opcode)
        if spec is None or spec.is_vector:
            return False
        if spec.cls not in _BODY_CLASSES:
            return False
        if instr.target is not None:
            return False
        if instr.dst is not None and instr.dst.name == induction:
            return False  # extra induction writes break the scaffold
        if instr.mem is not None and not isinstance(instr.mem.base, Sym):
            return False
        # Labels inside the body (other than the header) indicate entry
        # points we must not outline across.
        if i != lo and program.labels_at(i):
            return False
    return True


def outline_loops(program: Program,
                  regions: Optional[List[LoopRegion]] = None, *,
                  mark_opcode: str = "blo",
                  prefix: str = "xloop") -> Program:
    """Rewrite *program* with each region outlined behind a marked call.

    Returns a new program; the input is not modified.  Region bodies are
    appended as functions after the original code (which must therefore
    end in ``halt``/unconditional control flow — true of generated and
    assembled programs alike since execution never falls off the end).
    """
    if mark_opcode not in ("bl", "blo"):
        raise ValueError("mark_opcode must be 'bl' or 'blo'")
    if regions is None:
        regions = find_candidate_loops(program)
    regions = sorted(regions, key=lambda r: r.start)
    _check_disjoint(regions)

    out = Program(f"{program.name}_xliquid")
    for arr in program.data.values():
        out.add_array(arr)
    out.entry = program.entry
    out.outlined_functions = list(program.outlined_functions)

    # Map old instruction index -> new index as we emit.
    index_map = {}
    by_start = {r.start: r for r in regions}
    old_index = 0
    instructions = program.instructions
    pending_functions = []
    while old_index < len(instructions):
        region = by_start.get(old_index)
        if region is not None:
            name = f"{prefix}{len(pending_functions)}_fn"
            for covered in range(region.start, region.end + 1):
                index_map[covered] = len(out.instructions)
            out.emit(Instruction(mark_opcode, target=name,
                                 comment="outlined by cross-compiler"))
            pending_functions.append((name, region))
            old_index = region.end + 1
        else:
            index_map[old_index] = len(out.instructions)
            out.emit(instructions[old_index])
            old_index += 1

    # Re-home labels (labels inside outlined regions point at the call).
    for label, target in program.labels.items():
        if target >= len(instructions):
            out.labels[label] = len(out.instructions)
        else:
            out.labels.setdefault(label, index_map[target])

    for name, region in pending_functions:
        out.mark_label(name)
        out.outlined_functions.append(name)
        base = len(out.instructions)
        for i in range(region.start, region.end + 1):
            instr = instructions[i]
            if instr.target is not None:
                # The only branch is the loop closer; rebase its target.
                offset = program.labels[instr.target] - region.start
                local = f"{name}_L"
                if local not in out.labels:
                    out.labels[local] = base + offset
                instr = Instruction(
                    opcode=instr.opcode, dst=instr.dst, srcs=instr.srcs,
                    mem=instr.mem, target=local, elem=instr.elem,
                    comment=instr.comment,
                )
            out.emit(instr)
        out.emit(Instruction("ret"))
    return out


def _check_disjoint(regions: List[LoopRegion]) -> None:
    for left, right in zip(regions, regions[1:]):
        if right.start <= left.end:
            raise ValueError(
                f"overlapping loop regions: [{left.start},{left.end}] and "
                f"[{right.start},{right.end}]"
            )


def cross_compile(program: Program, *, mark_opcode: str = "blo") -> Program:
    """Find and outline every candidate loop: scalar binary in, Liquid out."""
    return outline_loops(program, find_candidate_loops(program),
                         mark_opcode=mark_opcode)
