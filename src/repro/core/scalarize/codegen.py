"""Program builders: baseline, native-SIMD, and Liquid SIMD binaries.

From one :class:`~repro.core.scalarize.loop_ir.Kernel` three binaries
are generated, mirroring the paper's evaluation setup:

* :func:`build_baseline_program` — the scalar representation *inlined*
  (no outlining): the paper's speedup baseline ("without a SIMD
  accelerator and without outlining hot loops"; the paper notes
  outlining would add <1% to this baseline, which experiment E6
  measures).
* :func:`build_native_program` — width-specific SIMD instructions
  compiled directly into the binary: the "built-in ISA support" upper
  bound of Figure 6's callout.
* :func:`build_liquid_program` — the Liquid SIMD binary: scalarized hot
  loops outlined behind ``blo`` (or plain ``bl``) calls, runnable on any
  scalar machine and dynamically translatable on any accelerator width.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.scalarize.loop_ir import (
    Kernel,
    ScalarBlock,
    SimdLoop,
    vimm_lanes_for_width,
)
from repro.core.scalarize.scalarizer import ScalarizedLoop, scalarize_loop
from repro.isa.instructions import Imm, Instruction, Mem, Reg, Sym, VImm
from repro.isa.program import DataArray, Program
from repro.isa.registers import reg_index

#: Default maximum vectorizable length binaries are compiled for
#: (the paper's evaluation uses 16).
DEFAULT_MVL = 16


def _add_arrays(program: Program, arrays) -> None:
    for arr in arrays:
        if arr.name not in program.data:
            program.add_array(
                DataArray(arr.name, arr.elem, list(arr.values),
                          read_only=arr.read_only)
            )


def _splice_scalar_block(program: Program, block: ScalarBlock,
                         instance: str) -> None:
    """Inline a scalar block, mangling its local labels."""
    base = len(program.instructions)
    rename = {local: f"{instance}_{local}" for local in block.labels}
    for local, offset in block.labels.items():
        program.labels[rename[local]] = base + offset
    for instr in block.body:
        if instr.target is not None:
            program.emit(Instruction(
                opcode=instr.opcode, dst=instr.dst, srcs=instr.srcs,
                mem=instr.mem, target=rename[instr.target], elem=instr.elem,
                comment=instr.comment,
            ))
        else:
            program.emit(instr)


def _emit_scalar_segments(program: Program, scalarized: ScalarizedLoop,
                          instance: str) -> None:
    """Emit the scalarized loop nest (pre, fissioned loops, post)."""
    program.emit_all(scalarized.pre)
    ind = Reg(scalarized.induction)
    for seg_index, segment in enumerate(scalarized.segments):
        label = f"{instance}_L{seg_index}"
        program.emit(Instruction("mov", dst=ind, srcs=(Imm(0),),
                                 comment="induction variable"))
        program.mark_label(label)
        program.emit_all(segment)
        program.emit(Instruction("add", dst=ind, srcs=(ind, Imm(1))))
        program.emit(Instruction("cmp", srcs=(ind, Imm(scalarized.trip))))
        program.emit(Instruction("blt", target=label))
    program.emit_all(scalarized.post)


_OUTER_CTR = "r8"


def _outer_prologue(program: Program, kernel: Kernel) -> Optional[str]:
    """Open the outer schedule loop; returns the counter symbol (or None).

    The counter lives in memory so the pattern body (hot loops and scalar
    blocks alike) may clobber any register.
    """
    if kernel.repeats <= 1:
        return None
    sym = program.unique_symbol("sched_ctr")
    program.add_array(DataArray(sym, "i32", [0]))
    program.mark_label("outer_loop")
    return sym


def _outer_epilogue(program: Program, kernel: Kernel,
                    sym: Optional[str]) -> None:
    """Close the outer schedule loop."""
    if sym is None:
        return
    ctr = Reg(_OUTER_CTR)
    program.emit(Instruction("ldw", dst=ctr,
                             mem=Mem(base=Sym(sym), index=Imm(0)), elem="i32",
                             comment="schedule repetition counter"))
    program.emit(Instruction("add", dst=ctr, srcs=(ctr, Imm(1))))
    program.emit(Instruction("stw", srcs=(ctr,),
                             mem=Mem(base=Sym(sym), index=Imm(0)), elem="i32"))
    program.emit(Instruction("cmp", srcs=(ctr, Imm(kernel.repeats))))
    program.emit(Instruction("blt", target="outer_loop"))


class _ScalarizeCache:
    """Scalarize each stage once so all binaries share synthesized arrays."""

    def __init__(self, mvl: int, minmax_idioms: bool) -> None:
        self.mvl = mvl
        self.minmax_idioms = minmax_idioms
        self._cache: Dict[str, ScalarizedLoop] = {}

    def get(self, loop: SimdLoop) -> ScalarizedLoop:
        if loop.name not in self._cache:
            self._cache[loop.name] = scalarize_loop(
                loop, self.mvl, minmax_idioms=self.minmax_idioms
            )
        return self._cache[loop.name]


def build_baseline_program(kernel: Kernel, mvl: int = DEFAULT_MVL, *,
                           minmax_idioms: bool = False) -> Program:
    """Scalar baseline: scalarized hot loops inlined into main."""
    kernel.validate()
    program = Program(f"{kernel.name}_baseline")
    _add_arrays(program, kernel.arrays)
    cache = _ScalarizeCache(mvl, minmax_idioms)
    program.mark_label("main")
    outer = _outer_prologue(program, kernel)
    for index, name in enumerate(kernel.schedule):
        stage = kernel.stage(name)
        instance = f"{name}_{index}"
        if isinstance(stage, SimdLoop):
            scalarized = cache.get(stage)
            _add_arrays(program, scalarized.new_arrays)
            _emit_scalar_segments(program, scalarized, instance)
        else:
            _splice_scalar_block(program, stage, instance)
    _outer_epilogue(program, kernel, outer)
    program.emit(Instruction("halt"))
    program.entry = "main"
    return program


def build_liquid_program(kernel: Kernel, mvl: int = DEFAULT_MVL, *,
                         minmax_idioms: bool = False,
                         mark_opcode: str = "blo") -> Program:
    """Liquid SIMD binary: scalarized hot loops outlined behind calls.

    *mark_opcode* selects the paper's two marking options: ``"blo"`` is
    the dedicated translatable-region branch-and-link (no false
    positives); ``"bl"`` reuses the plain call and leaves detection to
    the translator's legality checks.
    """
    if mark_opcode not in ("bl", "blo"):
        raise ValueError("mark_opcode must be 'bl' or 'blo'")
    kernel.validate()
    program = Program(f"{kernel.name}_liquid")
    _add_arrays(program, kernel.arrays)
    cache = _ScalarizeCache(mvl, minmax_idioms)

    program.mark_label("main")
    outer = _outer_prologue(program, kernel)
    for index, name in enumerate(kernel.schedule):
        stage = kernel.stage(name)
        if isinstance(stage, SimdLoop):
            program.emit(Instruction(mark_opcode, target=f"{name}_fn",
                                     comment="outlined hot loop"))
        else:
            _splice_scalar_block(program, stage, f"{name}_{index}")
    _outer_epilogue(program, kernel, outer)
    program.emit(Instruction("halt"))

    for stage in kernel.stages:
        if not isinstance(stage, SimdLoop):
            continue
        scalarized = cache.get(stage)
        _add_arrays(program, scalarized.new_arrays)
        label = f"{stage.name}_fn"
        program.mark_label(label)
        program.outlined_functions.append(label)
        _emit_scalar_segments(program, scalarized, f"{stage.name}_fn")
        program.emit(Instruction("ret"))
    program.entry = "main"
    return program


def build_native_program(kernel: Kernel, width: int, mvl: int = DEFAULT_MVL, *,
                         minmax_idioms: bool = False) -> Program:
    """Native SIMD binary for one concrete hardware *width*.

    Loops the width cannot execute (trip not divisible by the width, or
    permutation periods wider than the hardware) fall back to their
    scalar representation, recorded in ``program.native_fallbacks`` —
    exactly what a compiler targeting that generation would have to do.
    """
    kernel.validate()
    program = Program(f"{kernel.name}_native{width}")
    program.native_fallbacks: List[str] = []  # type: ignore[attr-defined]
    _add_arrays(program, kernel.arrays)
    cache = _ScalarizeCache(mvl, minmax_idioms)
    program.mark_label("main")
    outer = _outer_prologue(program, kernel)
    for index, name in enumerate(kernel.schedule):
        stage = kernel.stage(name)
        instance = f"{name}_{index}"
        if isinstance(stage, SimdLoop):
            emitted = _try_emit_native_loop(program, stage, width, instance)
            if not emitted:
                if name not in program.native_fallbacks:
                    program.native_fallbacks.append(name)
                scalarized = cache.get(stage)
                _add_arrays(program, scalarized.new_arrays)
                _emit_scalar_segments(program, scalarized, instance)
        else:
            _splice_scalar_block(program, stage, instance)
    _outer_epilogue(program, kernel, outer)
    program.emit(Instruction("halt"))
    program.entry = "main"
    return program


def _try_emit_native_loop(program: Program, loop: SimdLoop, width: int,
                          instance: str) -> bool:
    """Emit a width-specific SIMD loop; False if this width cannot run it."""
    if loop.trip % width != 0:
        return False
    body: List[Instruction] = []
    new_arrays: List[DataArray] = []
    vtemp_pool = _free_vector_temps(loop)
    for instr in loop.body:
        if _perm_period(instr) is not None and _perm_period(instr) > width:
            return False
        rewritten = _rewrite_native(instr, loop, width, instance, body,
                                    new_arrays, vtemp_pool)
        if rewritten is None:
            return False
        body.append(rewritten)
    _add_arrays(program, new_arrays)
    program.emit_all(loop.pre)
    ind = Reg(loop.induction)
    label = f"{instance}_V"
    program.emit(Instruction("mov", dst=ind, srcs=(Imm(0),)))
    program.mark_label(label)
    program.emit_all(body)
    program.emit(Instruction("add", dst=ind, srcs=(ind, Imm(width))))
    program.emit(Instruction("cmp", srcs=(ind, Imm(loop.trip))))
    program.emit(Instruction("blt", target=label))
    program.emit_all(loop.post)
    return True


def _perm_period(instr: Instruction) -> Optional[int]:
    if instr.opcode in ("vbfly", "vrev", "vrot"):
        if len(instr.srcs) > 1 and isinstance(instr.srcs[1], Imm):
            return int(instr.srcs[1].value)
    return None


def _free_vector_temps(loop: SimdLoop) -> List[str]:
    used = {reg_index(r) for r in loop.vector_regs()}
    return [f"v{i}" for i in range(13, 0, -1) if i not in used] + \
           [f"vf{i}" for i in range(13, 0, -1) if i not in used]


def _rewrite_native(instr: Instruction, loop: SimdLoop, width: int,
                    instance: str, body: List[Instruction],
                    new_arrays: List[DataArray],
                    vtemp_pool: List[str]) -> Optional[Instruction]:
    """Concretize one width-agnostic instruction for *width* lanes."""
    new_srcs = []
    for operand in instr.srcs:
        if isinstance(operand, VImm):
            lanes = vimm_lanes_for_width(operand, width)
            if lanes is not None:
                new_srcs.append(VImm(tuple(lanes)))
                continue
            # Period wider than the hardware: load the lane pattern from a
            # synthesized constant array each iteration instead.
            elem = instr.elem or "i32"
            is_mask = instr.opcode in ("vmask", "vand", "vorr", "veor", "vbic")
            arr_elem = "i32" if (elem == "f32" and is_mask) else elem
            values = [operand.lanes[i % len(operand.lanes)]
                      for i in range(loop.trip)]
            name = f"{instance}_ncnst{len(new_arrays)}"
            new_arrays.append(DataArray(name, arr_elem, values, read_only=True))
            if not vtemp_pool:
                return None
            want_float = arr_elem == "f32"
            temp = _pick_vtemp(vtemp_pool, want_float)
            if temp is None:
                return None
            body.append(Instruction(
                "vld", dst=Reg(temp),
                mem=Mem(base=Sym(name), index=Reg(loop.induction)),
                elem=arr_elem, comment="wide lane constant",
            ))
            new_srcs.append(Reg(temp))
        else:
            new_srcs.append(operand)
    return Instruction(opcode=instr.opcode, dst=instr.dst,
                       srcs=tuple(new_srcs), mem=instr.mem,
                       target=instr.target, elem=instr.elem,
                       comment=instr.comment)


def _pick_vtemp(pool: List[str], want_float: bool) -> Optional[str]:
    for i, name in enumerate(pool):
        if name.startswith("vf") == want_float:
            return pool.pop(i)
    return None
