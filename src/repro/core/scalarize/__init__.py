"""Compile-time half of Liquid SIMD: Table 1 scalarization + outlining."""

from repro.core.scalarize.codegen import (
    DEFAULT_MVL,
    build_baseline_program,
    build_liquid_program,
    build_native_program,
)
from repro.core.scalarize.crosscompile import (
    LoopRegion,
    cross_compile,
    find_candidate_loops,
    outline_loops,
)
from repro.core.scalarize.loop_ir import (
    Kernel,
    LoopIRError,
    ScalarBlock,
    SimdLoop,
    lane_value,
    vimm_lanes_for_width,
)
from repro.core.scalarize.scalarizer import (
    ScalarizedLoop,
    ScalarizeError,
    scalarize_loop,
)

__all__ = [
    "DEFAULT_MVL",
    "build_baseline_program",
    "build_liquid_program",
    "build_native_program",
    "LoopRegion",
    "cross_compile",
    "find_candidate_loops",
    "outline_loops",
    "Kernel",
    "LoopIRError",
    "ScalarBlock",
    "SimdLoop",
    "lane_value",
    "vimm_lanes_for_width",
    "ScalarizedLoop",
    "ScalarizeError",
    "scalarize_loop",
]
