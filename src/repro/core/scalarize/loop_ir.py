"""Width-agnostic SIMD loop IR — the scalarizer's input language.

The paper's compiler consumes SIMD assembly (hand-written or produced by
an auto-SIMDizer; section 3 stresses the two are orthogonal).  This
module defines that input: a :class:`SimdLoop` is a vectorized loop over
``trip`` elements whose body uses vector registers, the induction
register, and ``[symbol + induction]`` memory operands.  The body is
*width-agnostic*: it never mentions a hardware vector width.  Per-lane
constants are expressed as periodic :class:`~repro.isa.instructions.VImm`
patterns (the lane tuple gives one period), which each code generator
tiles to its concrete width.

A :class:`Kernel` is a whole benchmark: data arrays, a set of stages
(SIMD loops and non-vectorizable scalar blocks), and a schedule saying
which stage runs when.  Three code generators consume kernels
(:mod:`repro.core.scalarize.codegen`): the scalar baseline, the native
SIMD binary, and the Liquid SIMD binary (scalarized + outlined).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from repro.isa.instructions import Instruction, Reg, Sym, VImm
from repro.isa.opcodes import OPCODES, InstrClass
from repro.isa.program import DataArray
from repro.isa.registers import is_vector_reg
from repro.memory.alignment import is_power_of_two


class LoopIRError(ValueError):
    """Malformed SIMD loop IR."""


@dataclass
class SimdLoop:
    """One vectorizable loop in width-agnostic SIMD form.

    Attributes:
        name: stage name, used in labels and reports.
        trip: total number of elements processed (loop bound).
        body: SIMD instructions; memory operands must be
            ``[Sym + induction]`` and vector constants periodic ``VImm``s.
        pre: scalar instructions run once before the loop (e.g. reduction
            accumulator initialization); included in the outlined region.
        post: scalar instructions run once after the loop (e.g. storing a
            reduction result).
        induction: the integer register used as the element index.
    """

    name: str
    trip: int
    body: List[Instruction]
    pre: List[Instruction] = field(default_factory=list)
    post: List[Instruction] = field(default_factory=list)
    induction: str = "r0"

    def validate(self) -> None:
        """Check the structural rules the scalarizer relies on."""
        if self.trip <= 0:
            raise LoopIRError(f"{self.name}: trip must be positive")
        for instr in self.body:
            spec = OPCODES.get(instr.opcode)
            if spec is None:
                raise LoopIRError(f"{self.name}: unknown opcode {instr.opcode!r}")
            if not spec.is_vector:
                raise LoopIRError(
                    f"{self.name}: scalar instruction {instr.opcode!r} in SIMD "
                    "body (scalar work belongs in pre/post or a ScalarBlock)"
                )
            if instr.mem is not None:
                self._validate_mem(instr)
            for operand in instr.srcs:
                if isinstance(operand, VImm):
                    if not is_power_of_two(len(operand.lanes)):
                        raise LoopIRError(
                            f"{self.name}: VImm period must be a power of two, "
                            f"got {len(operand.lanes)}"
                        )
        for instr in self.pre + self.post:
            spec = OPCODES.get(instr.opcode)
            if spec is None or spec.is_vector:
                raise LoopIRError(
                    f"{self.name}: pre/post must be scalar instructions"
                )

    def _validate_mem(self, instr: Instruction) -> None:
        mem = instr.mem
        if not isinstance(mem.base, Sym):
            raise LoopIRError(
                f"{self.name}: vector memory base must be a data symbol "
                f"(got {mem.base})"
            )
        if not (isinstance(mem.index, Reg) and mem.index.name == self.induction):
            raise LoopIRError(
                f"{self.name}: vector memory index must be the induction "
                f"register {self.induction} (got {mem.index})"
            )

    def vector_regs(self) -> List[str]:
        """All vector register names the body mentions (in first-use order)."""
        seen: List[str] = []
        for instr in self.body:
            for reg in list(instr.writes()) + list(instr.reads()):
                if is_vector_reg(reg) and reg not in seen:
                    seen.append(reg)
        return seen


@dataclass
class ScalarBlock:
    """A non-vectorizable stage: plain scalar code with local labels.

    ``labels`` maps local label names to indices into ``body``; branch
    targets inside ``body`` must name local labels.  Code generators
    splice blocks into programs with name mangling, so the same block can
    appear several times in a schedule.
    """

    name: str
    body: List[Instruction]
    labels: Dict[str, int] = field(default_factory=dict)

    def validate(self) -> None:
        for instr in self.body:
            spec = OPCODES.get(instr.opcode)
            if spec is None:
                raise LoopIRError(f"{self.name}: unknown opcode {instr.opcode!r}")
            if spec.is_vector:
                raise LoopIRError(
                    f"{self.name}: vector instruction {instr.opcode!r} in a "
                    "scalar block"
                )
            if spec.cls in (InstrClass.CALL, InstrClass.RET):
                raise LoopIRError(
                    f"{self.name}: scalar blocks cannot contain calls/returns"
                )
            if instr.target is not None and instr.target not in self.labels:
                raise LoopIRError(
                    f"{self.name}: branch to unknown local label "
                    f"{instr.target!r}"
                )


Stage = Union[SimdLoop, ScalarBlock]


@dataclass
class Kernel:
    """A whole benchmark: arrays + stages + schedule pattern.

    The schedule lists stage names in execution order; a stage may appear
    multiple times.  The whole pattern executes ``repeats`` times inside
    an outer loop emitted by the code generators — so hot loops are
    called repeatedly (as the paper's Table 6 experiment requires)
    without duplicating their code in the binary.
    """

    name: str
    arrays: List[DataArray]
    stages: List[Stage]
    schedule: List[str]
    repeats: int = 1
    description: str = ""

    def stage(self, name: str) -> Stage:
        for stage in self.stages:
            if stage.name == name:
                return stage
        raise KeyError(f"kernel {self.name!r} has no stage {name!r}")

    @property
    def simd_loops(self) -> List[SimdLoop]:
        return [s for s in self.stages if isinstance(s, SimdLoop)]

    def validate(self) -> None:
        names = [s.name for s in self.stages]
        if len(set(names)) != len(names):
            raise LoopIRError(f"kernel {self.name!r} has duplicate stage names")
        if self.repeats < 1:
            raise LoopIRError(f"kernel {self.name!r}: repeats must be >= 1")
        array_names = {a.name for a in self.arrays}
        if len(array_names) != len(self.arrays):
            raise LoopIRError(f"kernel {self.name!r} has duplicate array names")
        for stage in self.stages:
            stage.validate()
        for entry in self.schedule:
            if entry not in names:
                raise LoopIRError(
                    f"kernel {self.name!r}: schedule refers to unknown stage "
                    f"{entry!r}"
                )
        self._validate_symbols(array_names)

    def _validate_symbols(self, array_names) -> None:
        for stage in self.stages:
            body = stage.body if isinstance(stage, ScalarBlock) else (
                stage.pre + stage.body + stage.post
            )
            for instr in body:
                if instr.mem is not None and isinstance(instr.mem.base, Sym):
                    if instr.mem.base.name not in array_names:
                        raise LoopIRError(
                            f"{stage.name}: unknown array "
                            f"{instr.mem.base.name!r}"
                        )


def vimm_lanes_for_width(vimm: VImm, width: int) -> Optional[List]:
    """Tile a periodic lane pattern to *width* lanes; None if period > width.

    A period-``p`` pattern tiles any width that is a multiple of ``p``.
    When the hardware is narrower than the period the constant varies
    across loop iterations and cannot be a vector immediate — callers
    fall back to loading the synthesized constant array each iteration.
    """
    period = len(vimm.lanes)
    if period > width:
        return None
    if width % period != 0:
        return None
    return list(vimm.lanes) * (width // period)


def lane_value(vimm: VImm, index: int):
    """Lane value at element *index* of the periodic pattern."""
    return vimm.lanes[index % len(vimm.lanes)]
