"""Run-time half of Liquid SIMD: the post-retirement dynamic translator."""

from repro.core.translate.hw_model import TranslatorHardwareModel
from repro.core.translate.register_state import (
    RegKind,
    RegState,
    RegisterStateTable,
    ValueTrace,
)
from repro.core.translate.translator import (
    AbortReason,
    DynamicTranslator,
    TranslationResult,
    TranslatorConfig,
)
from repro.core.translate.ucode_buffer import BufferOverflow, MicrocodeBuffer, UEntry
from repro.core.translate.ucode_cache import (
    MicrocodeCache,
    MicrocodeCacheStats,
    MicrocodeEntry,
)

__all__ = [
    "TranslatorHardwareModel",
    "RegKind",
    "RegState",
    "RegisterStateTable",
    "ValueTrace",
    "AbortReason",
    "DynamicTranslator",
    "TranslationResult",
    "TranslatorConfig",
    "BufferOverflow",
    "MicrocodeBuffer",
    "UEntry",
    "MicrocodeCache",
    "MicrocodeCacheStats",
    "MicrocodeEntry",
]
