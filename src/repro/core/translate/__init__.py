"""Run-time half of Liquid SIMD: the post-retirement dynamic translator."""

from repro.core.translate.fragstore import (
    FRAGSTORE_FORMAT_VERSION,
    FRAGSTORE_SUBDIR,
    FragmentStore,
    FragmentStoreStats,
    fragment_key,
    translator_config_fingerprint,
)
from repro.core.translate.hw_model import TranslatorHardwareModel
from repro.core.translate.retranslate import (
    RetranslateReason,
    RetranslationResult,
    retranslate_chain,
    retranslate_entry,
)
from repro.core.translate.register_state import (
    RegKind,
    RegState,
    RegisterStateTable,
    ValueTrace,
)
from repro.core.translate.translator import (
    AbortReason,
    DynamicTranslator,
    TranslationResult,
    TranslatorConfig,
)
from repro.core.translate.ucode_buffer import BufferOverflow, MicrocodeBuffer, UEntry
from repro.core.translate.ucode_cache import (
    MicrocodeCache,
    MicrocodeCacheStats,
    MicrocodeEntry,
)

__all__ = [
    "FRAGSTORE_FORMAT_VERSION",
    "FRAGSTORE_SUBDIR",
    "FragmentStore",
    "FragmentStoreStats",
    "fragment_key",
    "translator_config_fingerprint",
    "RetranslateReason",
    "RetranslationResult",
    "retranslate_chain",
    "retranslate_entry",
    "TranslatorHardwareModel",
    "RegKind",
    "RegState",
    "RegisterStateTable",
    "ValueTrace",
    "AbortReason",
    "DynamicTranslator",
    "TranslationResult",
    "TranslatorConfig",
    "BufferOverflow",
    "MicrocodeBuffer",
    "UEntry",
    "MicrocodeCache",
    "MicrocodeCacheStats",
    "MicrocodeEntry",
]
