"""The post-retirement dynamic translator (paper section 4, Table 3).

The translator watches the retire stream of one outlined function's
*first* execution and regenerates width-specific SIMD microcode:

* a partial decoder classifies each retiring instruction (only
  translatable opcodes are recognized; anything else aborts),
* the register-state table tracks what each scalar register currently
  represents — scalar, vector, induction variable, or offset vector —
  plus element widths and previously loaded values,
* the rules engine applies Table 3 row by row,
* an idiom recognizer collapses the fixed multi-instruction shapes of
  :mod:`repro.core.scalarize.idioms` (saturating arithmetic, min/max)
  back into single SIMD instructions, invalidating provisional entries
  in the microcode buffer,
* permutations and wide lane constants resolve after ``W`` observed
  iterations: offset signatures go through the permutation CAM (a miss
  aborts — this is how a too-narrow accelerator declines a loop), and
  lane constants are re-written to vector immediates only when the
  observed values prove periodic (otherwise the register form, which is
  always correct, is kept),
* on the function's ``ret`` the microcode is finalized: loop increments
  are patched to the *effective width* (the largest power-of-two divisor
  of the trip count, capped by the hardware width — a 16-lane machine
  runs an 8-element loop at width 8, matching the paper's MPEG2
  observation), redundant offset loads are collapsed, and the fragment
  is packaged for the microcode cache.

Any rule violation flushes all state and leaves the function running in
its scalar form — the defining safety property of Liquid SIMD.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.core.scalarize.idioms import sat_elem_for_bounds
from repro.core.translate.register_state import (
    RegKind,
    RegisterStateTable,
    ValueTrace,
)
from repro.core.translate.ucode_buffer import BufferOverflow, MicrocodeBuffer, UEntry
from repro.core.translate.ucode_cache import MicrocodeEntry
from repro.interp.events import RetireEvent
from repro.isa.instructions import Imm, Instruction, Mem, Reg, Sym, VImm
from repro.isa.opcodes import (
    LOAD_ELEM,
    OPCODES,
    STORE_ELEM,
    InstrClass,
)
from repro.isa.program import Program
from repro.observability import telemetry as _telemetry
from repro.isa.registers import (
    is_float_reg,
    is_int_reg,
    vector_reg_for,
)
from repro.simd.permutations import (
    STANDARD_PATTERNS,
    PermPattern,
    PermutationCAM,
)
from repro.simd.vector_ops import SCALAR_TO_REDUCTION, SCALAR_TO_VECTOR


class AbortReason(enum.Enum):
    """Why a translation was abandoned (legality checker outcomes)."""

    ILLEGAL_OPCODE = "illegal-opcode"
    UNSUPPORTED_PATTERN = "unsupported-permutation"
    UNSUPPORTED_SATURATION = "unsupported-saturation"
    UNSUPPORTED_OPCODE = "opcode-not-in-accelerator-generation"
    IDIOM_BROKEN = "idiom-broken"
    BUFFER_OVERFLOW = "ucode-buffer-overflow"
    NESTED_CALL = "nested-call"
    MALFORMED_LOOP = "malformed-loop"
    NO_LOOP = "no-loop"
    TRIP_NOT_VECTORIZABLE = "trip-not-vectorizable"
    INSUFFICIENT_ITERATIONS = "insufficient-iterations"
    INCONSISTENT = "inconsistent-register-use"
    EXTERNAL = "external-interrupt"


@dataclass(frozen=True)
class TranslatorConfig:
    """Hardware parameters of the dynamic translator."""

    width: int
    max_ucode_instructions: int = 64
    cycles_per_instruction: int = 1
    collapse_offset_loads: bool = True
    const_immediates: bool = True
    supports_saturation: bool = True
    permutations: Tuple[PermPattern, ...] = STANDARD_PATTERNS
    #: Vector opcode repertoire of the target generation; None = full.
    supported_vector_ops: Optional[frozenset] = None

    @property
    def value_history_limit(self) -> int:
        """Collect twice the width so periodicity can be cross-checked."""
        return 2 * self.width

    def supports_op(self, opcode: str) -> bool:
        """Does the accelerator generation implement *opcode*?"""
        if self.supported_vector_ops is None:
            return True
        return opcode in self.supported_vector_ops


@dataclass
class TranslationResult:
    """Outcome of translating one outlined function."""

    function: str
    ok: bool
    reason: Optional[AbortReason] = None
    entry: Optional[MicrocodeEntry] = None
    observed_static: int = 0
    detail: str = ""

    def to_dict(self) -> dict:
        """JSON-safe representation (inverse of :meth:`from_dict`)."""
        return {
            "function": self.function,
            "ok": self.ok,
            "reason": self.reason.value if self.reason is not None else None,
            "entry": self.entry.to_dict() if self.entry is not None else None,
            "observed_static": self.observed_static,
            "detail": self.detail,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TranslationResult":
        return cls(
            function=data["function"],
            ok=data["ok"],
            reason=(AbortReason(data["reason"])
                    if data["reason"] is not None else None),
            entry=(MicrocodeEntry.from_dict(data["entry"])
                   if data["entry"] is not None else None),
            observed_static=data["observed_static"],
            detail=data["detail"],
        )


@dataclass
class _Scope:
    """One scalar loop inside the outlined function."""

    induction: str
    start_pc: int
    trip: Optional[int] = None
    closed: bool = False
    increment_entry: Optional[UEntry] = None
    effective_width: int = 0
    #: set once anything (a load, store, or increment) actually uses this
    #: register as an induction variable; unused scopes can be discarded
    #: when the register turns out to be a reduction accumulator.
    used: bool = False


@dataclass
class _PendingPerm:
    kind: str  # "load" or "store"
    entry: UEntry
    trace: ValueTrace
    reg: str   # vector register the permutation applies to
    elem: str
    placeholder_index: int


@dataclass
class _PendingConst:
    entry: UEntry
    slot: int
    trace: ValueTrace
    src_vreg: str


class _TranslationAborted(Exception):
    def __init__(self, reason: AbortReason, detail: str = "") -> None:
        super().__init__(detail or reason.value)
        self.reason = reason
        self.detail = detail


_PERM_PLACEHOLDER = Instruction("nop", comment="<pending permutation>")


def _largest_pow2_divisor(n: int) -> int:
    return n & (-n) if n > 0 else 0


def _perm_instruction(pattern: PermPattern, dst: str, src: str,
                      elem: str) -> Instruction:
    if pattern.kind == "rot":
        srcs = (Reg(src), Imm(pattern.period), Imm(pattern.amount))
    else:
        srcs = (Reg(src), Imm(pattern.period))
    opcode = {"bfly": "vbfly", "rev": "vrev", "rot": "vrot"}[pattern.kind]
    return Instruction(opcode, dst=Reg(dst), srcs=srcs, elem=elem)


def _scratch_vreg(data_vreg: str) -> str:
    """The translator-owned scratch vector register for store permutes.

    Table 3 rule 5 as published permutes the stored register in place
    (``v3 = vpermute v3``), which corrupts the value for any later
    consumer (e.g. a fission spill of the same register).  The translator
    instead owns vector register 15 of each bank — an index the scalar
    representation never maps (temps stop at 13, linkage uses 14) — and
    permutes into it.
    """
    return "vf15" if data_vreg.startswith("vf") else "v15"


class DynamicTranslator:
    """Translates one outlined function from its retire stream.

    One instance handles one translation attempt; the machine creates a
    fresh instance per first-call of each outlined function (modelling
    the single in-flight translation of the proposed hardware).
    """

    def __init__(self, config: TranslatorConfig,
                 resolve_label: Callable[[str], int]) -> None:
        self.config = config
        self.resolve_label = resolve_label
        self.regs = RegisterStateTable()
        self.buffer = MicrocodeBuffer(config.max_ucode_instructions)
        self.seen: Set[int] = set()
        self.collectors: Dict[int, ValueTrace] = {}
        self.scopes: List[_Scope] = []
        self.pending_perms: List[_PendingPerm] = []
        self.pending_consts: List[_PendingConst] = []
        self.aborted: Optional[AbortReason] = None
        self.abort_detail: str = ""
        self.done = False
        self.function: Optional[str] = None
        self._sat: Optional[dict] = None
        self._minmax: Optional[dict] = None
        self._last_dp: Optional[dict] = None

    # -- lifecycle ---------------------------------------------------------------

    def begin(self, function: str) -> None:
        self.function = function
        _telemetry.get().count("translate.attempts")

    def abort_external(self) -> None:
        """Pipeline abort input (context switch / interrupt)."""
        if not self.done and self.aborted is None:
            self._record_abort(AbortReason.EXTERNAL, "external abort signal")

    def observe(self, event: RetireEvent) -> None:
        """Feed one retired instruction of the outlined function."""
        if self.aborted is not None or self.done:
            return
        instr = event.instr
        if instr.opcode == "ret":
            self.done = True
            return
        pc = event.pc
        if pc in self.seen:
            trace = self.collectors.get(pc)
            if trace is not None:
                trace.record(event.value, self.config.value_history_limit)
            return
        self.seen.add(pc)
        try:
            self._first_encounter(pc, instr, event)
        except BufferOverflow as exc:
            self._record_abort(AbortReason.BUFFER_OVERFLOW, str(exc))
        except _TranslationAborted as exc:
            self._record_abort(exc.reason, exc.detail)

    def finish(self, ret_cycle: int = 0) -> TranslationResult:
        """Finalize after the function returned; package the microcode."""
        observed = len(self.seen) + 1  # + the ret itself
        if self.aborted is not None:
            return TranslationResult(self.function or "?", ok=False,
                                     reason=self.aborted,
                                     observed_static=observed,
                                     detail=self.abort_detail)
        try:
            entry = self._finalize(ret_cycle, observed)
        except _TranslationAborted as exc:
            self._record_abort(exc.reason, exc.detail)
            return TranslationResult(self.function or "?", ok=False,
                                     reason=self.aborted,
                                     observed_static=observed,
                                     detail=self.abort_detail)
        tel = _telemetry.get()
        tel.count("translate.ok")
        tel.observe("translate.observed_static", observed)
        return TranslationResult(self.function or "?", ok=True, entry=entry,
                                 observed_static=observed)

    # -- abort plumbing ----------------------------------------------------------

    def _record_abort(self, reason: AbortReason, detail: str = "") -> None:
        # At most one abort is recorded per attempt (observe() stops
        # feeding once aborted), so this counts attempts, not events.
        _telemetry.get().count("translate.abort." + reason.value)
        self.aborted = reason
        self.abort_detail = detail
        self.regs.flush()

    def _abort(self, reason: AbortReason, detail: str = "") -> None:
        raise _TranslationAborted(reason, detail)

    def _require_op(self, opcode: str) -> None:
        """Abort unless the accelerator generation implements *opcode*."""
        if not self.config.supports_op(opcode):
            self._abort(AbortReason.UNSUPPORTED_OPCODE,
                        f"{opcode} is not in this generation's repertoire")

    # -- first-encounter dispatch ---------------------------------------------------

    def _first_encounter(self, pc: int, instr: Instruction,
                         event: RetireEvent) -> None:
        spec = OPCODES.get(instr.opcode)
        if spec is None or spec.is_vector:
            self._abort(AbortReason.ILLEGAL_OPCODE,
                        f"opcode {instr.opcode!r} at pc={pc}")
        if self._sat is not None:
            if self._advance_sat(instr):
                return
        if self._minmax is not None:
            if self._advance_minmax(instr):
                return
        if self._maybe_start_idiom(pc, instr):
            return
        cls = spec.cls
        if cls is InstrClass.MOVE:
            self._rule_move(pc, instr)
        elif cls is InstrClass.CMP:
            self._rule_cmp(pc, instr)
        elif cls is InstrClass.LOAD:
            self._rule_load(pc, instr, event)
        elif cls is InstrClass.STORE:
            self._rule_store(pc, instr)
        elif cls in (InstrClass.ALU, InstrClass.MUL, InstrClass.FALU,
                     InstrClass.FMUL, InstrClass.FDIV):
            self._rule_dp(pc, instr)
        elif cls is InstrClass.BRANCH:
            self._rule_branch(pc, instr)
        elif cls is InstrClass.CALL:
            self._abort(AbortReason.NESTED_CALL, f"call inside outlined region")
        elif cls is InstrClass.SYS:
            if instr.opcode == "halt":
                self._abort(AbortReason.ILLEGAL_OPCODE, "halt inside region")
            self._pass_through(pc, instr)
        else:  # pragma: no cover
            self._abort(AbortReason.ILLEGAL_OPCODE, instr.opcode)

    # -- helpers ---------------------------------------------------------------------

    def _pass_through(self, pc: int, instr: Instruction) -> UEntry:
        """Table 3 rule 11: all-scalar instructions pass unmodified."""
        return self.buffer.append(pc, [instr], scope=len(self.scopes))

    def _scope(self) -> Optional[_Scope]:
        return self.scopes[-1] if self.scopes else None

    def _demote_unused_induction(self, reg: str) -> None:
        """Reclassify an induction candidate as a scalar accumulator."""
        for scope in self.scopes:
            if scope.induction == reg and not scope.used \
                    and not scope.closed and scope.trip is None \
                    and scope.increment_entry is None:
                self.scopes.remove(scope)
                self.regs.mark(reg, RegKind.SCALAR)
                return
        self._abort(AbortReason.INCONSISTENT,
                    f"induction register {reg} updated with vector data")

    def _kind(self, name: str) -> RegKind:
        return self.regs.kind(name)

    def _vector_operands(self, instr: Instruction) -> List[str]:
        return [op.name for op in instr.srcs
                if isinstance(op, Reg) and self._kind(op.name) is RegKind.VECTOR]

    # -- idiom recognition --------------------------------------------------------------

    def _maybe_start_idiom(self, pc: int, instr: Instruction) -> bool:
        opcode = instr.opcode
        # Saturation: `cmp X, #K` on a register we just generated a vector
        # add/sub for.
        if opcode == "cmp" and len(instr.srcs) == 2 \
                and isinstance(instr.srcs[0], Reg) \
                and isinstance(instr.srcs[1], Imm) \
                and self._kind(instr.srcs[0].name) is RegKind.VECTOR:
            last = self._last_dp
            if last is not None and last["dst"] == instr.srcs[0].name \
                    and last["op"] in ("add", "sub"):
                self._sat = {
                    "reg": instr.srcs[0].name,
                    "phase": "hi",
                    "hi": int(instr.srcs[1].value),
                    "lo": None,
                    "entry": last["entry"],
                    "op": last["op"],
                }
                return True
            self._abort(AbortReason.IDIOM_BROKEN,
                        "compare of vector data outside a known idiom")
        # Min/max: register-to-register move of vector data.
        if opcode in ("mov", "fmov") and len(instr.srcs) == 1 \
                and isinstance(instr.srcs[0], Reg) \
                and self._kind(instr.srcs[0].name) is RegKind.VECTOR:
            self._minmax = {
                "dst": instr.dst.name,
                "a": instr.srcs[0].name,
                "float": opcode == "fmov",
                "phase": "copied",
                "b": None,
                "pc": pc,
            }
            return True
        return False

    def _advance_sat(self, instr: Instruction) -> bool:
        sat = self._sat
        opcode = instr.opcode
        reg = sat["reg"]
        if sat["phase"] == "hi" and opcode == "movgt" \
                and instr.dst is not None and instr.dst.name == reg \
                and len(instr.srcs) == 1 and isinstance(instr.srcs[0], Imm) \
                and int(instr.srcs[0].value) == sat["hi"]:
            sat["phase"] = "hi_done"
            return True
        if sat["phase"] == "hi_done" and opcode == "cmp" \
                and isinstance(instr.srcs[0], Reg) \
                and instr.srcs[0].name == reg \
                and isinstance(instr.srcs[1], Imm):
            sat["phase"] = "lo"
            sat["lo"] = int(instr.srcs[1].value)
            return True
        if sat["phase"] == "lo" and opcode == "movlt" \
                and instr.dst is not None and instr.dst.name == reg \
                and len(instr.srcs) == 1 and isinstance(instr.srcs[0], Imm) \
                and int(instr.srcs[0].value) == sat["lo"]:
            self._complete_sat()
            return True
        self._abort(AbortReason.IDIOM_BROKEN,
                    f"saturation idiom broken by {instr.opcode!r}")
        return True  # pragma: no cover

    def _complete_sat(self) -> None:
        sat = self._sat
        self._sat = None
        elem = sat_elem_for_bounds(sat["hi"], sat["lo"])
        if elem is None:
            self._abort(AbortReason.UNSUPPORTED_SATURATION,
                        f"clamp bounds ({sat['hi']}, {sat['lo']})")
        if not self.config.supports_saturation:
            self._abort(AbortReason.UNSUPPORTED_SATURATION,
                        "accelerator generation lacks vqadd/vqsub")
        entry: UEntry = sat["entry"]
        old = entry.instructions[0]
        opcode = "vqadd" if sat["op"] == "add" else "vqsub"
        self._require_op(opcode)
        entry.instructions[0] = Instruction(
            opcode, dst=old.dst, srcs=old.srcs, elem=elem,
            comment="collapsed saturation idiom",
        )
        self.regs.get(sat["reg"]).elem = elem
        self._last_dp = None

    def _advance_minmax(self, instr: Instruction) -> bool:
        cand = self._minmax
        cmp_op = "fcmp" if cand["float"] else "cmp"
        mov = "fmov" if cand["float"] else "mov"
        if cand["phase"] == "copied" and instr.opcode == cmp_op \
                and len(instr.srcs) == 2 \
                and isinstance(instr.srcs[0], Reg) \
                and instr.srcs[0].name == cand["a"] \
                and isinstance(instr.srcs[1], Reg) \
                and self._kind(instr.srcs[1].name) is RegKind.VECTOR:
            cand["phase"] = "compared"
            cand["b"] = instr.srcs[1].name
            return True
        if cand["phase"] == "compared" \
                and instr.opcode in (f"{mov}gt", f"{mov}lt") \
                and instr.dst is not None and instr.dst.name == cand["dst"] \
                and len(instr.srcs) == 1 and isinstance(instr.srcs[0], Reg) \
                and instr.srcs[0].name == cand["b"]:
            opcode = "vmin" if instr.opcode.endswith("gt") else "vmax"
            self._complete_minmax(opcode)
            return True
        self._abort(AbortReason.IDIOM_BROKEN,
                    f"min/max idiom broken by {instr.opcode!r}")
        return True  # pragma: no cover

    def _complete_minmax(self, opcode: str) -> None:
        cand = self._minmax
        self._minmax = None
        self._require_op(opcode)
        a_state = self.regs.get(cand["a"])
        elem = a_state.elem or ("f32" if cand["float"] else "i32")
        dst_v = vector_reg_for(cand["dst"])
        instr = Instruction(
            opcode, dst=Reg(dst_v),
            srcs=(Reg(vector_reg_for(cand["a"])), Reg(vector_reg_for(cand["b"]))),
            elem=elem, comment="collapsed min/max idiom",
        )
        # The idiom spans three PCs; anchor the entry at the opening move so
        # loop-header labels land correctly in the fragment.
        entry = self.buffer.append(cand["pc"], [instr], scope=len(self.scopes))
        self.regs.mark(cand["dst"], RegKind.VECTOR, elem=elem)
        self._last_dp = {"dst": cand["dst"], "op": opcode, "entry": entry}

    # -- Table 3 rules ---------------------------------------------------------------------

    def _rule_move(self, pc: int, instr: Instruction) -> None:
        opcode = instr.opcode
        if OPCODES[opcode].reads_flags:
            # A conditional move outside an idiom: legal only on scalars.
            if self._vector_operands(instr) or (
                    instr.dst and self._kind(instr.dst.name) is RegKind.VECTOR):
                self._abort(AbortReason.IDIOM_BROKEN,
                            "conditional move of vector data outside idiom")
            self._pass_through(pc, instr)
            if instr.dst is not None:
                self.regs.mark(instr.dst.name, RegKind.SCALAR)
            return
        src = instr.srcs[0]
        dst = instr.dst.name
        if isinstance(src, Imm):
            # Table 3 rule 1: `mov rX, #0` opens a loop scope and marks the
            # induction variable.
            if opcode == "mov" and is_int_reg(dst) and int(src.value) == 0:
                self.scopes.append(_Scope(induction=dst, start_pc=pc))
                self.regs.mark(dst, RegKind.INDUCTION)
            else:
                self.regs.mark(dst, RegKind.SCALAR)
            self._pass_through(pc, instr)
            return
        if isinstance(src, Reg):
            if self._kind(src.name) is RegKind.VECTOR:
                self._abort(AbortReason.INCONSISTENT,
                            "move of vector data outside idiom")
            self.regs.mark(dst, RegKind.SCALAR)
            self._pass_through(pc, instr)
            return
        self._abort(AbortReason.ILLEGAL_OPCODE, f"bad move at pc={pc}")

    def _rule_cmp(self, pc: int, instr: Instruction) -> None:
        a, b = instr.srcs
        if isinstance(a, Reg) and self._kind(a.name) is RegKind.INDUCTION \
                and isinstance(b, Imm):
            scope = self._scope()
            if scope is not None and scope.induction == a.name \
                    and scope.trip is None:
                scope.trip = int(b.value)
                scope.used = True
            self._pass_through(pc, instr)
            return
        for operand in (a, b):
            if isinstance(operand, Reg) \
                    and self._kind(operand.name) is RegKind.VECTOR:
                self._abort(AbortReason.IDIOM_BROKEN,
                            "compare of vector data outside idiom")
        self._pass_through(pc, instr)

    def _rule_load(self, pc: int, instr: Instruction, event: RetireEvent) -> None:
        elem, signed = LOAD_ELEM[instr.opcode]
        mem = instr.mem
        dst = instr.dst.name
        scope = self._scope()
        if isinstance(mem.base, Sym) and isinstance(mem.index, Reg):
            if not signed:
                # The vector ISA's loads sign-extend; translating an
                # unsigned scalar load would silently change semantics
                # for lane values with the top bit set.
                self._abort(AbortReason.ILLEGAL_OPCODE,
                            f"unsigned load {instr.opcode!r} has no vector "
                            "equivalent")
            index_kind = self._kind(mem.index.name)
            if scope is not None and mem.index.name == scope.induction \
                    and index_kind is RegKind.INDUCTION:
                # Rule 2: straight vector load.
                scope.used = True
                dst_v = vector_reg_for(dst)
                vld = Instruction("vld", dst=Reg(dst_v),
                                  mem=Mem(base=mem.base,
                                          index=Reg(scope.induction)),
                                  elem=elem)
                entry = self.buffer.append(pc, [vld], loads_reg=dst_v,
                                           scope=len(self.scopes))
                trace = ValueTrace(load_pc=pc, array=mem.base.name,
                                   ucode_uid=entry.uid)
                trace.record(event.value, self.config.value_history_limit)
                self.collectors[pc] = trace
                self.regs.mark(dst, RegKind.VECTOR, elem=elem, trace=trace)
                return
            if index_kind is RegKind.OFFSET_VECTOR:
                # Rule 3: load through induction+offsets = load + permute.
                if scope is not None:
                    scope.used = True
                state = self.regs.get(mem.index.name)
                dst_v = vector_reg_for(dst)
                induction = scope.induction if scope else mem.index.name
                vld = Instruction("vld", dst=Reg(dst_v),
                                  mem=Mem(base=mem.base, index=Reg(induction)),
                                  elem=elem)
                entry = self.buffer.append(pc, [vld, _PERM_PLACEHOLDER],
                                           scope=len(self.scopes))
                self.pending_perms.append(_PendingPerm(
                    kind="load", entry=entry, trace=state.trace, reg=dst_v,
                    elem=elem, placeholder_index=1,
                ))
                trace = ValueTrace(load_pc=pc, array=mem.base.name,
                                   ucode_uid=entry.uid)
                trace.record(event.value, self.config.value_history_limit)
                self.collectors[pc] = trace
                self.regs.mark(dst, RegKind.VECTOR, elem=elem, trace=trace)
                return
            self._abort(AbortReason.INCONSISTENT,
                        f"load with untracked index register at pc={pc}")
        # Scalar-addressed load (constant index or register base): rule 11.
        if isinstance(mem.index, Reg) \
                and self._kind(mem.index.name) is RegKind.VECTOR:
            self._abort(AbortReason.INCONSISTENT, "vector-indexed scalar load")
        self._pass_through(pc, instr)
        self.regs.mark(dst, RegKind.SCALAR, elem=elem)

    def _rule_store(self, pc: int, instr: Instruction) -> None:
        elem = STORE_ELEM[instr.opcode]
        mem = instr.mem
        value = instr.srcs[0]
        value_kind = self._kind(value.name)
        scope = self._scope()
        if isinstance(mem.base, Sym) and isinstance(mem.index, Reg):
            index_kind = self._kind(mem.index.name)
            if scope is not None and mem.index.name == scope.induction \
                    and index_kind is RegKind.INDUCTION:
                # Rule 4: straight vector store.
                scope.used = True
                if value_kind is not RegKind.VECTOR:
                    self._abort(AbortReason.INCONSISTENT,
                                "store of scalar data indexed by induction")
                vst = Instruction("vst", srcs=(Reg(vector_reg_for(value.name)),),
                                  mem=Mem(base=mem.base,
                                          index=Reg(scope.induction)),
                                  elem=elem)
                self.buffer.append(pc, [vst], scope=len(self.scopes))
                return
            if index_kind is RegKind.OFFSET_VECTOR:
                # Rule 5: scatter store = permute + store.
                if scope is not None:
                    scope.used = True
                if value_kind is not RegKind.VECTOR:
                    self._abort(AbortReason.INCONSISTENT,
                                "scatter store of scalar data")
                state = self.regs.get(mem.index.name)
                data_v = vector_reg_for(value.name)
                induction = scope.induction if scope else mem.index.name
                vst = Instruction("vst", srcs=(Reg(data_v),),
                                  mem=Mem(base=mem.base, index=Reg(induction)),
                                  elem=elem)
                entry = self.buffer.append(pc, [_PERM_PLACEHOLDER, vst],
                                           scope=len(self.scopes))
                self.pending_perms.append(_PendingPerm(
                    kind="store", entry=entry, trace=state.trace, reg=data_v,
                    elem=elem, placeholder_index=0,
                ))
                return
            self._abort(AbortReason.INCONSISTENT,
                        f"store with untracked index register at pc={pc}")
        if value_kind is RegKind.VECTOR:
            self._abort(AbortReason.INCONSISTENT,
                        "vector value stored through scalar address")
        self._pass_through(pc, instr)

    def _rule_dp(self, pc: int, instr: Instruction) -> None:
        opcode = instr.opcode
        dst = instr.dst.name if instr.dst is not None else None
        srcs = instr.srcs
        scope = self._scope()

        # Rule 10: induction increment.
        if opcode == "add" and scope is not None and dst == scope.induction \
                and len(srcs) == 2 and isinstance(srcs[0], Reg) \
                and srcs[0].name == scope.induction \
                and isinstance(srcs[1], Imm):
            if int(srcs[1].value) != 1:
                self._abort(AbortReason.MALFORMED_LOOP,
                            "induction increment is not 1")
            entry = self._pass_through(pc, instr)
            scope.increment_entry = entry
            scope.used = True
            return

        # Rule 8: induction + loaded offsets -> offset vector, no microcode.
        # An add that *overwrites* its induction-candidate operand is not an
        # address computation — it is an accumulator update (handled by the
        # demotion + rule 9 below).
        if opcode == "add" and len(srcs) == 2 \
                and all(isinstance(s, Reg) for s in srcs):
            kinds = (self._kind(srcs[0].name), self._kind(srcs[1].name))
            if RegKind.INDUCTION in kinds:
                induction = srcs[0] if kinds[0] is RegKind.INDUCTION else srcs[1]
                other = srcs[1] if kinds[0] is RegKind.INDUCTION else srcs[0]
                other_state = self.regs.get(other.name)
                if dst != induction.name and other_state.kind is RegKind.VECTOR \
                        and other_state.has_values:
                    self.regs.mark(dst, RegKind.OFFSET_VECTOR,
                                   trace=other_state.trace)
                    return

        # A register initialized with `mov rX, #0` looks like an induction
        # variable (rule 1) until it is updated with vector data — then it
        # was really a reduction accumulator.  Demote it, discarding the
        # speculative loop scope, provided nothing used it as an induction
        # variable yet.
        if len(srcs) == 2 and isinstance(srcs[0], Reg) \
                and dst == srcs[0].name \
                and self._kind(dst) is RegKind.INDUCTION \
                and isinstance(srcs[1], Reg) \
                and self._kind(srcs[1].name) is RegKind.VECTOR:
            self._demote_unused_induction(dst)

        # Rule 9: reduction into a loop-carried scalar register.
        if len(srcs) == 2 and isinstance(srcs[0], Reg) \
                and dst == srcs[0].name \
                and self._kind(dst) in (RegKind.SCALAR, RegKind.UNKNOWN) \
                and isinstance(srcs[1], Reg) \
                and self._kind(srcs[1].name) is RegKind.VECTOR:
            red = SCALAR_TO_REDUCTION.get(opcode)
            if red is None:
                self._abort(AbortReason.ILLEGAL_OPCODE,
                            f"no reduction equivalent for {opcode!r}")
            self._require_op(red)
            src_state = self.regs.get(srcs[1].name)
            vred = Instruction(
                red, dst=Reg(dst),
                srcs=(Reg(dst), Reg(vector_reg_for(srcs[1].name))),
                elem=src_state.elem,
            )
            self.buffer.append(pc, [vred], scope=len(self.scopes))
            self.regs.mark(dst, RegKind.SCALAR, elem=src_state.elem)
            return

        vec_srcs = self._vector_operands(instr)
        if not vec_srcs:
            # Rule 11: all-scalar data processing passes through.
            for operand in srcs:
                if isinstance(operand, Reg) \
                        and self._kind(operand.name) is RegKind.OFFSET_VECTOR:
                    self._abort(AbortReason.INCONSISTENT,
                                "offset vector used in scalar computation")
            self._pass_through(pc, instr)
            if dst is not None:
                self.regs.mark(dst, RegKind.SCALAR)
            return

        # Rules 6/7: data processing on vector data.
        if not (isinstance(srcs[0], Reg)
                and self._kind(srcs[0].name) is RegKind.VECTOR):
            self._abort(AbortReason.INCONSISTENT,
                        f"vector operand in unsupported position at pc={pc}")
        a_state = self.regs.get(srcs[0].name)
        elem = a_state.elem or ("f32" if is_float_reg(srcs[0].name) else "i32")

        # `rsb X, A, #0` is the negate idiom.
        if opcode == "rsb" and len(srcs) == 2 and isinstance(srcs[1], Imm) \
                and int(srcs[1].value) == 0:
            self._require_op("vneg")
            dst_v = vector_reg_for(dst)
            instr_v = Instruction("vneg", dst=Reg(dst_v),
                                  srcs=(Reg(vector_reg_for(srcs[0].name)),),
                                  elem=elem)
            self.buffer.append(pc, [instr_v], scope=len(self.scopes))
            self.regs.mark(dst, RegKind.VECTOR, elem=elem)
            return

        vop = SCALAR_TO_VECTOR.get(opcode)
        if vop is None:
            self._abort(AbortReason.ILLEGAL_OPCODE,
                        f"no vector equivalent for {opcode!r}")
        self._require_op(vop)
        dst_v = vector_reg_for(dst)
        operand_b = srcs[1] if len(srcs) > 1 else None
        pending_const: Optional[Tuple[ValueTrace, str]] = None
        if operand_b is None:
            new_srcs: Tuple = (Reg(vector_reg_for(srcs[0].name)),)
        elif isinstance(operand_b, Imm):
            # Rule for category 2: vector op with scalar-supported constant.
            new_srcs = (Reg(vector_reg_for(srcs[0].name)), operand_b)
        elif isinstance(operand_b, Reg):
            b_kind = self._kind(operand_b.name)
            if b_kind is RegKind.VECTOR:
                b_state = self.regs.get(operand_b.name)
                new_srcs = (Reg(vector_reg_for(srcs[0].name)),
                            Reg(vector_reg_for(operand_b.name)))
                # Rule 7: a cross-bank operand with loaded values is a lane
                # constant/mask; schedule a rewrite to a vector immediate.
                if self.config.const_immediates and b_state.has_values \
                        and is_int_reg(operand_b.name) \
                        and is_float_reg(srcs[0].name):
                    pending_const = (b_state.trace,
                                     vector_reg_for(operand_b.name))
            elif b_kind in (RegKind.SCALAR, RegKind.UNKNOWN, RegKind.INDUCTION):
                self._abort(AbortReason.INCONSISTENT,
                            "mixed vector/scalar operands at pc="
                            f"{pc}")
            else:
                self._abort(AbortReason.INCONSISTENT,
                            "offset vector used as data operand")
        else:
            self._abort(AbortReason.ILLEGAL_OPCODE, f"bad operand at pc={pc}")
        instr_v = Instruction(vop, dst=Reg(dst_v), srcs=new_srcs, elem=elem)
        entry = self.buffer.append(pc, [instr_v], scope=len(self.scopes))
        if pending_const is not None:
            self.pending_consts.append(_PendingConst(
                entry=entry, slot=1, trace=pending_const[0],
                src_vreg=pending_const[1],
            ))
        self.regs.mark(dst, RegKind.VECTOR, elem=elem)
        self._last_dp = {"dst": dst, "op": opcode, "entry": entry}

    def _rule_branch(self, pc: int, instr: Instruction) -> None:
        spec = OPCODES[instr.opcode]
        target_pc = self.resolve_label(instr.target)
        scope = self._scope()
        if spec.reads_flags and target_pc <= pc and scope is not None \
                and not scope.closed:
            scope.closed = True
            self._pass_through(pc, instr)
            return
        self._abort(AbortReason.MALFORMED_LOOP,
                    f"unsupported branch at pc={pc}")

    # -- finalization --------------------------------------------------------------------------

    def _finalize(self, ret_cycle: int, observed: int) -> MicrocodeEntry:
        if self._sat is not None or self._minmax is not None:
            self._abort(AbortReason.IDIOM_BROKEN, "idiom left open at return")
        if not self.scopes:
            self._abort(AbortReason.NO_LOOP, "no loop found in region")
        for scope in self.scopes:
            if not scope.closed or scope.trip is None \
                    or scope.increment_entry is None:
                self._abort(AbortReason.MALFORMED_LOOP,
                            "loop without trip/increment/back-branch")
            scope.effective_width = min(self.config.width,
                                        _largest_pow2_divisor(scope.trip))
        width = min(scope.effective_width for scope in self.scopes)
        if width < 2:
            self._abort(AbortReason.TRIP_NOT_VECTORIZABLE,
                        "trip count has no usable power-of-two factor")

        for scope in self.scopes:
            old = scope.increment_entry.instructions[0]
            scope.increment_entry.instructions[0] = Instruction(
                "add", dst=old.dst, srcs=(old.srcs[0], Imm(width)),
                comment="induction advance = effective SIMD width",
            )

        cam = PermutationCAM(width, self.config.permutations)
        for pending in self.pending_perms:
            self._resolve_perm(pending, cam, width)
        for pending in self.pending_consts:
            self._resolve_const(pending, width)
        # Collapse to fixpoint: rewriting a later operand to an immediate
        # can make an earlier kept load dead (e.g. the same mask array
        # loaded once per fissioned loop).
        traces = [p.trace for p in self.pending_perms + self.pending_consts]
        changed = True
        while changed:
            live_before = self.buffer.live_instruction_count()
            for trace in traces:
                self._collapse_offset_load(trace)
            changed = self.buffer.live_instruction_count() != live_before

        fragment = self._build_fragment(width)
        latency = self.config.cycles_per_instruction * observed
        return MicrocodeEntry(
            function=self.function or "?",
            fragment=fragment,
            width=width,
            ready_cycle=ret_cycle + latency,
            static_instructions=observed,
        )

    def _resolve_perm(self, pending: _PendingPerm, cam: PermutationCAM,
                      width: int) -> None:
        values = pending.trace.values if pending.trace else []
        if len(values) < width:
            self._abort(AbortReason.INSUFFICIENT_ITERATIONS,
                        "loop ran fewer iterations than the SIMD width")
        if any(v is None for v in values[:width]):
            self._abort(AbortReason.UNSUPPORTED_PATTERN,
                        "permutation offsets need observed data values "
                        "(unavailable at decode time)")
        offsets = [int(v) for v in values[:width]]
        for i, value in enumerate(values):
            if int(value) != offsets[i % width]:
                self._abort(AbortReason.UNSUPPORTED_PATTERN,
                            "offset array is not width-periodic")
        pattern = cam.lookup(offsets)
        if pattern is None:
            self._abort(AbortReason.UNSUPPORTED_PATTERN,
                        f"offset signature {offsets} missed the CAM")
        self._require_op({"bfly": "vbfly", "rev": "vrev",
                          "rot": "vrot"}[pattern.kind])
        if pending.kind == "store":
            # Scatter: permute the data into the scratch register, then
            # retarget the store to read the scratch.
            pattern = pattern.inverse()
            scratch = _scratch_vreg(pending.reg)
            pending.entry.instructions[pending.placeholder_index] = \
                _perm_instruction(pattern, scratch, pending.reg, pending.elem)
            store = pending.entry.instructions[pending.placeholder_index + 1]
            pending.entry.instructions[pending.placeholder_index + 1] = \
                Instruction("vst", srcs=(Reg(scratch),), mem=store.mem,
                            elem=store.elem, comment=store.comment)
        else:
            pending.entry.instructions[pending.placeholder_index] = \
                _perm_instruction(pattern, pending.reg, pending.reg,
                                  pending.elem)
        self._collapse_offset_load(pending.trace)

    def _collapse_offset_load(self, trace: Optional[ValueTrace]) -> None:
        """Remove the vector load of an offset array once it is decoded.

        The paper's microcode-buffer alignment network performs exactly
        this collapse (section 4.1); it is legal only when no remaining
        microcode reads the loaded register.
        """
        if not self.config.collapse_offset_loads or trace is None \
                or trace.ucode_uid is None:
            return
        for entry in self.buffer:
            if entry.uid == trace.ucode_uid and entry.alive:
                if entry.loads_reg and not self.buffer.reg_still_read(
                        entry.loads_reg, excluding=entry):
                    self.buffer.kill(entry)
                return

    def _resolve_const(self, pending: _PendingConst, width: int) -> None:
        values = pending.trace.values
        if len(values) < width or any(v is None for v in values):
            return  # keep the always-correct register form
        lanes = values[:width]
        for i, value in enumerate(values):
            if value != lanes[i % width]:
                return  # not periodic at this width: keep register form
        instr = pending.entry.instructions[0]
        srcs = list(instr.srcs)
        srcs[pending.slot] = VImm(tuple(lanes))
        pending.entry.instructions[0] = Instruction(
            instr.opcode, dst=instr.dst, srcs=tuple(srcs), mem=instr.mem,
            target=instr.target, elem=instr.elem,
            comment="lane constant materialized as immediate",
        )
        self._collapse_offset_load(pending.trace)

    def _build_fragment(self, width: int) -> Program:
        fragment = Program(f"{self.function}_ucode_w{width}")
        entries = self.buffer.live_entries()
        # Map scalar branch-target PCs to fragment labels.
        targets: List[int] = []
        for entry in entries:
            for instr in entry.instructions:
                if instr.target is not None:
                    targets.append(self.resolve_label(instr.target))
        placed: Dict[int, str] = {}
        for entry in entries:
            for target_pc in sorted(set(targets)):
                if target_pc not in placed and entry.source_pc >= target_pc \
                        and entry.source_pc >= 0:
                    label = f"u{target_pc}"
                    fragment.mark_label(label)
                    placed[target_pc] = label
            for instr in entry.instructions:
                if instr.target is not None:
                    target_pc = self.resolve_label(instr.target)
                    instr = Instruction(
                        opcode=instr.opcode, dst=instr.dst, srcs=instr.srcs,
                        mem=instr.mem, target=placed[target_pc],
                        elem=instr.elem, comment=instr.comment,
                    )
                fragment.emit(instr)
        fragment.entry = "u_entry"
        if "u_entry" not in fragment.labels:
            fragment.labels["u_entry"] = 0
        return fragment
