"""Per-register state tracked by the dynamic translator.

The paper's register-state block holds 56 bits per architectural
register (section 4.1): whether the register currently represents a
scalar or a vector, the element width of its data, and the previous
values loaded into it (used to recognize constants, masks, and
permutation offsets).  This module is the software model of that block.

Value histories are shared through :class:`ValueTrace` objects: a load
instruction creates a trace and appends one value per loop iteration;
rule 8 (induction + offset-vector adds) *copies* the trace to the
destination register — modelling the paper's "previous values of the
address are copied to the data processing instruction's destination
register state".
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional


class RegKind(enum.Enum):
    """What a scalar register currently represents in the virtual format."""

    UNKNOWN = "unknown"
    SCALAR = "scalar"
    VECTOR = "vector"
    INDUCTION = "induction"
    OFFSET_VECTOR = "offset"  # induction + loaded offsets (rule 8 result)


@dataclass
class ValueTrace:
    """History of values produced by one load PC, one value per iteration."""

    load_pc: int
    array: Optional[str] = None
    ucode_uid: Optional[int] = None
    values: List = field(default_factory=list)

    def record(self, value, limit: int) -> None:
        """Append an observed value, up to *limit* entries."""
        if len(self.values) < limit:
            self.values.append(value)


@dataclass
class RegState:
    """Translator-visible state of one architectural register."""

    kind: RegKind = RegKind.UNKNOWN
    elem: Optional[str] = None
    trace: Optional[ValueTrace] = None

    @property
    def is_vector(self) -> bool:
        return self.kind is RegKind.VECTOR

    @property
    def has_values(self) -> bool:
        return self.trace is not None


class RegisterStateTable:
    """The whole register-state block (both scalar banks)."""

    def __init__(self) -> None:
        self._state: Dict[str, RegState] = {}

    def get(self, name: str) -> RegState:
        if name not in self._state:
            self._state[name] = RegState()
        return self._state[name]

    def set(self, name: str, state: RegState) -> None:
        self._state[name] = state

    def mark(self, name: str, kind: RegKind, elem: Optional[str] = None,
             trace: Optional[ValueTrace] = None) -> RegState:
        state = RegState(kind=kind, elem=elem, trace=trace)
        self._state[name] = state
        return state

    def kind(self, name: str) -> RegKind:
        return self.get(name).kind

    def flush(self) -> None:
        """Abort path: clear all stateful tracking."""
        self._state.clear()

    def vectors(self) -> List[str]:
        return [name for name, st in self._state.items() if st.is_vector]
