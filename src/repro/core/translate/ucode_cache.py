"""The microcode cache: storage for completed translations.

Models the paper's proposed control cache — "8 entries of 64 SIMD
instructions each ... a 2 KB SRAM" (section 5) — indexed by the PC of
the marked branch-and-link.  When the front end encounters a marked call
whose translation is resident *and* ready (translation takes time; see
Table 6's discussion), it injects the cached SIMD microcode instead of
executing the scalar body.  Replacement is LRU.
"""

from __future__ import annotations

import base64
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.isa.program import Program
from repro.observability import telemetry as _telemetry


@dataclass(eq=False)
class MicrocodeEntry:
    """One completed translation.

    Identity is *content-based*: two entries are interchangeable when
    ``(function, width, encoded_bytes())`` agree, no matter whether they
    came from the dynamic translator, a cross-width retranslation, or
    the persistent fragment store — so store-loaded and
    freshly-translated twins share one :attr:`table_key` and the
    machine's fragment tables never double-compile them.

    Attributes:
        function: label of the outlined function this entry translates.
        fragment: the SIMD microcode as a miniature program (instructions
            plus internal loop labels).
        width: effective vector width the microcode was generated for
            (<= the accelerator's hardware width; capped by each loop's
            trip count).
        ready_cycle: first cycle the entry may be injected (models
            translation latency).
        static_instructions: scalar instructions observed (Table 5 data).
    """

    function: str
    fragment: Program
    width: int
    ready_cycle: int = 0
    static_instructions: int = 0

    @property
    def simd_instruction_count(self) -> int:
        return len(self.fragment.instructions)

    def encoded_bytes(self) -> bytes:
        """Canonical bytes of the fragment (memoized).

        The machine keys its per-run fragment tables by
        ``(function, width, encoded_bytes())`` — a content key that,
        unlike ``id(fragment)``, cannot alias when Python recycles the
        address of a collected per-run fragment.  ``dataclasses.replace``
        builds a fresh instance, so the memo never outlives its entry.
        """
        cached = getattr(self, "_encoded", None)
        if cached is None:
            from repro.isa.encoding import encode_program
            cached = encode_program(self.fragment)
            object.__setattr__(self, "_encoded", cached)
        return cached

    @property
    def table_key(self) -> tuple:
        """Content identity: the machine's fragment-table key."""
        return (self.function, self.width, self.encoded_bytes())

    def lift_ir(self):
        """This entry's :class:`~repro.codegen.lift.FragmentIR` (memoized).

        Lifting is deterministic over ``(encoded_bytes(), width)``, so
        the memo is safe under content identity; the codegen import is
        deferred because most entry consumers (the cache, the store)
        never need IR.
        """
        cached = getattr(self, "_ir", None)
        if cached is None:
            from repro.codegen.lift import lift_fragment
            cached = lift_fragment(self.fragment, self.width)
            object.__setattr__(self, "_ir", cached)
        return cached

    def __eq__(self, other) -> bool:
        if not isinstance(other, MicrocodeEntry):
            return NotImplemented
        return (self.table_key == other.table_key
                and self.ready_cycle == other.ready_cycle
                and self.static_instructions == other.static_instructions)

    def __hash__(self) -> int:
        return hash(self.table_key)

    def with_ready_cycle(self, cycle: int) -> "MicrocodeEntry":
        """A copy available at *cycle*, preserving the encoding memo.

        Unlike ``dataclasses.replace`` this carries the memoized
        canonical bytes over, so the copy's :attr:`table_key` needs no
        re-encode.
        """
        clone = MicrocodeEntry(
            function=self.function, fragment=self.fragment,
            width=self.width, ready_cycle=cycle,
            static_instructions=self.static_instructions,
        )
        cached = getattr(self, "_encoded", None)
        if cached is not None:
            object.__setattr__(clone, "_encoded", cached)
        return clone

    def to_dict(self) -> dict:
        """JSON-safe representation (inverse of :meth:`from_dict`).

        The fragment rides along as the base64 of its reversible binary
        encoding (:func:`repro.isa.encoding.encode_program`), so nothing
        about the microcode — labels, data, operands — is lost.
        """
        return {
            "function": self.function,
            "fragment": base64.b64encode(
                self.encoded_bytes()).decode("ascii"),
            "width": self.width,
            "ready_cycle": self.ready_cycle,
            "static_instructions": self.static_instructions,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "MicrocodeEntry":
        from repro.isa.encoding import decode_program
        raw = base64.b64decode(data["fragment"])
        entry = cls(
            function=data["function"],
            fragment=decode_program(raw),
            width=data["width"],
            ready_cycle=data["ready_cycle"],
            static_instructions=data["static_instructions"],
        )
        # Seed the memo with the wire bytes: a store round-trip keeps
        # the exact content key its twin fresh translation computes, so
        # the two dedupe in the fragment tables without a re-encode.
        object.__setattr__(entry, "_encoded", raw)
        return entry


@dataclass
class MicrocodeCacheStats:
    lookups: int = 0
    hits: int = 0
    not_ready: int = 0
    evictions: int = 0

    @property
    def misses(self) -> int:
        return self.lookups - self.hits

    def to_dict(self) -> dict:
        """JSON-safe representation (inverse of :meth:`from_dict`)."""
        return {
            "lookups": self.lookups,
            "hits": self.hits,
            "not_ready": self.not_ready,
            "evictions": self.evictions,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "MicrocodeCacheStats":
        return cls(
            lookups=data["lookups"],
            hits=data["hits"],
            not_ready=data["not_ready"],
            evictions=data["evictions"],
        )


class MicrocodeCache:
    """LRU cache of completed translations, keyed by function label."""

    def __init__(self, entries: int = 8) -> None:
        if entries < 1:
            raise ValueError("microcode cache needs at least one entry")
        self.capacity = entries
        self.stats = MicrocodeCacheStats()
        self._entries: Dict[str, MicrocodeEntry] = {}
        self._lru: List[str] = []  # least recently used first

    def insert(self, entry: MicrocodeEntry) -> Optional[MicrocodeEntry]:
        """Insert a completed translation; returns any evicted entry."""
        evicted: Optional[MicrocodeEntry] = None
        if entry.function in self._entries:
            self._lru.remove(entry.function)
        elif len(self._entries) >= self.capacity:
            victim = self._lru.pop(0)
            evicted = self._entries.pop(victim)
            self.stats.evictions += 1
        self._entries[entry.function] = entry
        self._lru.append(entry.function)
        # Inserts are rare (one per completed translation), so occupancy
        # sampled here traces the cache's fill curve over a run.
        tel = _telemetry.get()
        tel.count("ucode_cache.inserts")
        tel.observe("ucode_cache.occupancy", len(self._entries))
        if evicted is not None:
            tel.count("ucode_cache.evictions")
        return evicted

    def lookup(self, function: str, now: int) -> Optional[MicrocodeEntry]:
        """Return the ready entry for *function* at cycle *now*, if any."""
        self.stats.lookups += 1
        entry = self._entries.get(function)
        if entry is None:
            return None
        if now < entry.ready_cycle:
            self.stats.not_ready += 1
            return None
        self.stats.hits += 1
        self._lru.remove(function)
        self._lru.append(function)
        return entry

    def contains(self, function: str) -> bool:
        return function in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def storage_bytes(self, instruction_bytes: int = 4,
                      instructions_per_entry: int = 64) -> int:
        """SRAM footprint of this geometry (the paper's 8x64x4 = 2 KB)."""
        return self.capacity * instructions_per_entry * instruction_bytes
