"""Persistent content-addressed store of translation outcomes.

The paper's microcode cache is an 8-entry SRAM — per-process, volatile,
re-filled by observing the scalar loop on every run.  At fleet scale the
same (scalar fragment, translator generation, width) triple recurs
across thousands of processes, so translations and cross-width
retranslations can be computed once and shared, exactly like the run
cache shares simulation results (:mod:`repro.evaluation.runcache`).

Entries are addressed by the SHA-256 of

* the canonical bytes of the **source** — the encoded scalar program
  for a fresh translation, or the encoded source fragment
  (:meth:`~repro.core.translate.ucode_cache.MicrocodeEntry.encoded_bytes`)
  for a retranslation,
* the source and target widths,
* a canonical fingerprint of every result-relevant
  :class:`~repro.core.translate.translator.TranslatorConfig` field
  (:func:`translator_config_fingerprint`),
* the function label and :data:`FRAGSTORE_FORMAT_VERSION`.

Entries live under ``<cache_root>/fragments/<key[:2]>/<key>.json`` —
inside the run-cache root (``REPRO_CACHE_DIR`` / ``--cache-dir``) but in
their own subtree, which the run cache's shard iteration never descends
into, so the two caches share location semantics without sharing files.

Failure handling mirrors the run cache: corrupt, truncated or
version-mismatched entries are deleted best-effort and reported as
misses (``fragstore.corrupt``), so the caller falls back to
(re)translation; a concurrent writer that loses the store race simply
skips the write (``fragstore.race``) — translation is deterministic, so
whichever writer won persisted the same bytes.  An optional
``max_entries`` bound with ``lru`` or ``fifo`` eviction supports the
eviction-policy ablation in ``benchmarks/``.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

from repro.core.translate.translator import TranslatorConfig
from repro.observability import telemetry as _telemetry

#: Bump whenever translation semantics or the serialized result layout
#: change in a way that makes old stored fragments wrong or unreadable.
FRAGSTORE_FORMAT_VERSION = 1

#: Subdirectory of the cache root holding the fragment store.
FRAGSTORE_SUBDIR = "fragments"

EVICTION_POLICIES = ("lru", "fifo")


def translator_config_fingerprint(config: TranslatorConfig) -> dict:
    """Canonical JSON-safe dict of every translation-relevant field.

    The width is deliberately **not** included — source and target
    widths are separate key components, so one fingerprint describes a
    whole accelerator generation across widths.
    """
    return {
        "max_ucode_instructions": config.max_ucode_instructions,
        "cycles_per_instruction": config.cycles_per_instruction,
        "collapse_offset_loads": config.collapse_offset_loads,
        "const_immediates": config.const_immediates,
        "supports_saturation": config.supports_saturation,
        "permutations": [p.name for p in config.permutations],
        "supported_vector_ops": (
            None if config.supported_vector_ops is None
            else sorted(config.supported_vector_ops)),
    }


def fragment_key(source_bytes: bytes, source_width: int, target_width: int,
                 config: TranslatorConfig, function: str = "",
                 format_version: int = FRAGSTORE_FORMAT_VERSION) -> str:
    """Content address of one translation outcome: SHA-256 hex digest."""
    header = json.dumps(
        {
            "format_version": format_version,
            "function": function,
            "source_width": source_width,
            "target_width": target_width,
            "translator": translator_config_fingerprint(config),
        },
        sort_keys=True, separators=(",", ":"),
    ).encode("utf-8")
    h = hashlib.sha256()
    h.update(header)
    h.update(b"\x00")
    h.update(source_bytes)
    return h.hexdigest()


@dataclass
class FragmentStoreStats:
    """Hit/miss accounting for one :class:`FragmentStore` instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    corrupt: int = 0
    races: int = 0
    evictions: int = 0


class FragmentStore:
    """On-disk store of serialized translation results, keyed by content.

    Stored payloads are plain dicts (``TranslationResult.to_dict()`` /
    ``RetranslationResult.to_dict()`` shapes); the cross-width layer
    owns (de)serialization so the store stays schema-agnostic.
    """

    def __init__(self, root: Union[str, Path],
                 max_entries: Optional[int] = None,
                 eviction: str = "lru") -> None:
        if eviction not in EVICTION_POLICIES:
            raise ValueError(
                f"eviction must be one of {EVICTION_POLICIES}, "
                f"got {eviction!r}")
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.root = Path(root)
        self.max_entries = max_entries
        self.eviction = eviction
        self.stats = FragmentStoreStats()

    @classmethod
    def default(cls, cache_dir: Optional[Union[str, Path]] = None,
                **kwargs) -> "FragmentStore":
        """Store under *cache_dir*, ``$REPRO_CACHE_DIR``, or ``~/.cache``."""
        from repro.evaluation.runcache import default_cache_dir
        base = Path(cache_dir) if cache_dir else default_cache_dir()
        return cls(base / FRAGSTORE_SUBDIR, **kwargs)

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def load(self, key: str) -> Optional[dict]:
        """The stored result payload for *key*, or None (miss / corrupt).

        A corrupted entry — truncated write, garbage JSON, wrong format
        version — is deleted best-effort and reported as a miss so the
        caller falls back to (re)translating, never crashes.
        """
        path = self.path_for(key)
        tel = _telemetry.get()
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
            if payload.get("format_version") != FRAGSTORE_FORMAT_VERSION:
                raise ValueError("format version mismatch")
            result = payload["result"]
            if not isinstance(result, dict):
                raise ValueError("malformed result payload")
        except FileNotFoundError:
            self.stats.misses += 1
            tel.count("fragstore.miss")
            return None
        except (OSError, ValueError, KeyError, TypeError):
            self.stats.corrupt += 1
            self.stats.misses += 1
            tel.count("fragstore.corrupt")
            tel.count("fragstore.miss")
            try:
                path.unlink()
            except OSError:
                pass
            return None
        if self.eviction == "lru":
            # Loads refresh recency; FIFO leaves insertion order alone.
            try:
                os.utime(path)
            except OSError:
                pass
        self.stats.hits += 1
        tel.count("fragstore.hit")
        return result

    def store(self, key: str, result: dict) -> None:
        """Atomically persist *result* under *key* (first writer wins).

        Translation is a pure function of the key's inputs, so an entry
        that already exists holds the same bytes — losing the race is
        not an error, just skipped work.
        """
        path = self.path_for(key)
        tel = _telemetry.get()
        if path.exists():
            self.stats.races += 1
            tel.count("fragstore.race")
            return
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(
            {"format_version": FRAGSTORE_FORMAT_VERSION, "key": key,
             "result": result},
            separators=(",", ":"),
        )
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(payload, encoding="utf-8")
        os.replace(tmp, path)
        self.stats.stores += 1
        tel.count("fragstore.store")
        if self.max_entries is not None:
            self._evict_over_capacity(keep=path)

    def _evict_over_capacity(self, keep: Path) -> None:
        """Delete oldest-mtime entries until the bound holds.

        Under ``lru`` every load refreshed its entry's mtime, so oldest
        mtime is least-recently-*used*; under ``fifo`` mtimes are
        untouched after the write, so oldest mtime is first-*in*.
        """
        entries = sorted(self.entry_paths(),
                         key=lambda p: (p.stat().st_mtime, p.name))
        excess = len(entries) - self.max_entries
        tel = _telemetry.get()
        for path in entries:
            if excess <= 0:
                break
            if path == keep:
                continue
            try:
                path.unlink()
            except OSError:
                continue
            excess -= 1
            self.stats.evictions += 1
            tel.count("fragstore.evict")

    # -- maintenance (the ``repro cache`` subcommand) -------------------------

    def entry_paths(self):
        if not self.root.is_dir():
            return
        for shard in sorted(self.root.iterdir()):
            if shard.is_dir():
                yield from sorted(shard.glob("*.json"))

    def entry_count(self) -> int:
        return sum(1 for _ in self.entry_paths())

    def size_bytes(self) -> int:
        return sum(p.stat().st_size for p in self.entry_paths())

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for path in list(self.entry_paths()):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed
