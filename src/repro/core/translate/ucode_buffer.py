"""The microcode buffer: staging storage for in-flight translations.

Models the paper's 64-instruction microcode buffer (section 4.1): SIMD
instructions accumulate here while an outlined function is being
translated, and the "alignment network" collapses entries when idiom
recognition or permutation resolution invalidates previously generated
instructions (e.g. the offset-array vector load that becomes redundant
once the permutation it encodes has been identified).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

from repro.isa.instructions import Instruction


@dataclass
class UEntry:
    """One buffer slot: the SIMD instruction(s) generated for one scalar PC."""

    uid: int
    source_pc: int
    instructions: List[Instruction]
    alive: bool = True
    #: vector/scalar register this entry loads (for collapse bookkeeping)
    loads_reg: Optional[str] = None
    scope: int = 0

    def reads(self) -> List[str]:
        regs: List[str] = []
        for instr in self.instructions:
            regs.extend(instr.reads())
        return regs


class BufferOverflow(Exception):
    """More live microcode than the buffer can hold."""


class MicrocodeBuffer:
    """Bounded staging buffer with entry invalidation (collapse)."""

    def __init__(self, capacity: int = 64) -> None:
        self.capacity = capacity
        self._entries: List[UEntry] = []
        self._next_uid = 0
        self.peak_live = 0

    def append(self, source_pc: int, instructions: List[Instruction], *,
               loads_reg: Optional[str] = None, scope: int = 0) -> UEntry:
        """Stage instructions generated for *source_pc*; returns the entry.

        Raises :class:`BufferOverflow` when live instruction count would
        exceed capacity — the translator turns that into an abort.
        """
        entry = UEntry(uid=self._next_uid, source_pc=source_pc,
                       instructions=list(instructions), loads_reg=loads_reg,
                       scope=scope)
        self._next_uid += 1
        self._entries.append(entry)
        live = self.live_instruction_count()
        self.peak_live = max(self.peak_live, live)
        if live > self.capacity:
            raise BufferOverflow(
                f"{live} live microcode instructions exceed buffer capacity "
                f"{self.capacity}"
            )
        return entry

    def kill(self, entry: UEntry) -> None:
        """Invalidate an entry (the alignment network collapses around it)."""
        entry.alive = False

    def live_instruction_count(self) -> int:
        return sum(len(e.instructions) for e in self._entries if e.alive)

    def live_entries(self) -> List[UEntry]:
        return [e for e in self._entries if e.alive]

    def reg_still_read(self, reg: str, *, excluding: Optional[UEntry] = None) -> bool:
        """Is *reg* read by any live entry (other than *excluding*)?"""
        for entry in self._entries:
            if not entry.alive or entry is excluding:
                continue
            if reg in entry.reads():
                return True
        return False

    def __iter__(self) -> Iterator[UEntry]:
        return iter(self._entries)

    def __len__(self) -> int:
        return len(self._entries)
