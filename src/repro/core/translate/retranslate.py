"""Cross-width retranslation of completed translations (Revec-style).

A :class:`~repro.core.translate.ucode_cache.MicrocodeEntry` is a
width-specific lowering of a scalar loop nest, but almost everything in
it is width-*parametric*: loads and stores step an induction variable,
permutations are defined by a period that tiles any width the period
divides, reductions fold however many lanes the hardware has, and trip
counts are compile-time constants.  This module re-lowers an existing
fragment translated at width ``W`` to another power-of-two width ``T``
(typically ``2W`` or ``W/2``) **without re-observing the scalar loop**:

* induction strides: every loop latch ``add rI, rI, #W`` becomes
  ``add rI, rI, #T`` (the latch is identified structurally — backward
  flags-branch, preceded by ``cmp rI, #trip`` and the increment —
  never by comments, which the canonical encoding drops),
* trip counts: unchanged, but ``T`` must divide each loop's trip,
* permutations: a pattern of period ``p`` is valid verbatim at any
  width ``p`` divides; upscaling always preserves this (``p | W``
  implies ``p | 2W``) while downscaling can reject,
* lane constants: a ``VImm`` materialized at width ``W`` extrapolates
  to ``2W`` by tiling (exactly the periodicity evidence the original
  translation relied on) and narrows to ``W/2`` only when its lanes are
  ``W/2``-periodic,
* reductions: ``vredsum``/``vredmin``/``vredmax`` take their fold depth
  from the machine's vector width, so they carry over unchanged.

Shapes that cannot rescale are rejected at plan time with a
:class:`RetranslateReason` — the cross-width analogue of the
translator's abort path: the caller falls back to a fresh runtime
translation and the loop is never executed incorrectly.  See
``docs/retranslation.md`` for the full rejection catalog.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.core.translate.translator import TranslatorConfig
from repro.core.translate.ucode_cache import MicrocodeEntry
from repro.isa.instructions import Imm, Instruction, Reg, VImm
from repro.isa.opcodes import OPCODES, InstrClass
from repro.isa.program import Program
from repro.memory.alignment import is_power_of_two
from repro.observability import telemetry as _telemetry
from repro.simd.permutations import PermPattern, PermutationCAM


class RetranslateReason(enum.Enum):
    """Why a cross-width retranslation was rejected at plan time."""

    BAD_WIDTH = "bad-width"
    NO_LOOP = "no-loop"
    MALFORMED_LOOP = "malformed-loop"
    TRIP_NOT_DIVISIBLE = "trip-not-divisible"
    NON_AFFINE_ACCESS = "non-affine-access"
    WIDTH_DEPENDENT_CONSTANT = "width-dependent-constant"
    PERM_PERIOD_EXCEEDS_WIDTH = "perm-period-exceeds-width"
    PERM_NOT_IN_REPERTOIRE = "perm-not-in-repertoire"
    UNSUPPORTED_OPCODE = "opcode-not-in-target-repertoire"


@dataclass
class RetranslationResult:
    """Outcome of re-lowering one entry to a new width."""

    function: str
    source_width: int
    target_width: int
    ok: bool
    reason: Optional[RetranslateReason] = None
    entry: Optional[MicrocodeEntry] = None
    detail: str = ""

    def to_dict(self) -> dict:
        """JSON-safe representation (inverse of :meth:`from_dict`)."""
        return {
            "function": self.function,
            "source_width": self.source_width,
            "target_width": self.target_width,
            "ok": self.ok,
            "reason": self.reason.value if self.reason is not None else None,
            "entry": self.entry.to_dict() if self.entry is not None else None,
            "detail": self.detail,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RetranslationResult":
        return cls(
            function=data["function"],
            source_width=data["source_width"],
            target_width=data["target_width"],
            ok=data["ok"],
            reason=(RetranslateReason(data["reason"])
                    if data["reason"] is not None else None),
            entry=(MicrocodeEntry.from_dict(data["entry"])
                   if data["entry"] is not None else None),
            detail=data["detail"],
        )


class _Rejected(Exception):
    def __init__(self, reason: RetranslateReason, detail: str = "") -> None:
        super().__init__(detail or reason.value)
        self.reason = reason
        self.detail = detail


@dataclass
class _Latch:
    """One structural loop latch: increment / compare / back-branch."""

    induction: str
    trip: int
    add_pc: int


def _find_latches(fragment: Program, width: int) -> List[_Latch]:
    """Locate every loop latch of *fragment* structurally.

    The translator's finalize pass always emits the counted do-while
    shape ``add rI, rI, #width`` / ``cmp rI, #trip`` / ``b<cond> head``
    with the branch targeting a label at or before the increment.  Any
    backward flags-branch not preceded by that exact pair means the
    fragment is not something this pass understands.
    """
    instrs = fragment.instructions
    latches: List[_Latch] = []
    for pc, ins in enumerate(instrs):
        spec = OPCODES.get(ins.opcode)
        if spec is None or spec.cls is not InstrClass.BRANCH:
            continue
        if not spec.reads_flags or ins.target is None:
            raise _Rejected(RetranslateReason.MALFORMED_LOOP,
                            f"unconditional branch at pc={pc}")
        head = fragment.labels.get(ins.target)
        if head is None or head > pc:
            raise _Rejected(RetranslateReason.MALFORMED_LOOP,
                            f"branch at pc={pc} is not a loop back-edge")
        if pc < 2:
            raise _Rejected(RetranslateReason.MALFORMED_LOOP,
                            f"back-branch at pc={pc} has no latch prefix")
        cmp_i = instrs[pc - 1]
        add_i = instrs[pc - 2]
        if not (cmp_i.opcode == "cmp" and len(cmp_i.srcs) == 2
                and isinstance(cmp_i.srcs[0], Reg)
                and isinstance(cmp_i.srcs[1], Imm)):
            raise _Rejected(RetranslateReason.MALFORMED_LOOP,
                            f"no trip compare before back-branch at pc={pc}")
        induction = cmp_i.srcs[0].name
        if not (add_i.opcode == "add" and add_i.dst is not None
                and add_i.dst.name == induction
                and len(add_i.srcs) == 2
                and isinstance(add_i.srcs[0], Reg)
                and add_i.srcs[0].name == induction
                and isinstance(add_i.srcs[1], Imm)):
            raise _Rejected(RetranslateReason.MALFORMED_LOOP,
                            f"no induction increment before compare at "
                            f"pc={pc}")
        if int(add_i.srcs[1].value) != width:
            raise _Rejected(RetranslateReason.MALFORMED_LOOP,
                            f"induction stride {add_i.srcs[1].value} does "
                            f"not match source width {width}")
        latches.append(_Latch(induction=induction,
                              trip=int(cmp_i.srcs[1].value), add_pc=pc - 2))
    if not latches:
        raise _Rejected(RetranslateReason.NO_LOOP,
                        "fragment has no loop latch to rescale")
    return latches


def _rescale_lanes(lanes: Tuple, source: int, target: int) -> Tuple:
    """Re-tile a per-lane immediate from *source* to *target* lanes.

    Upscaling tiles the observed period — the same extrapolation the
    original translation performed when it proved the loaded values
    width-periodic.  Downscaling is legal only when the lanes are
    themselves ``target``-periodic.
    """
    if len(lanes) != source:
        raise _Rejected(
            RetranslateReason.WIDTH_DEPENDENT_CONSTANT,
            f"lane constant has {len(lanes)} lanes at width {source}")
    if target >= source:
        return tuple(lanes) * (target // source)
    head = tuple(lanes[:target])
    if head * (source // target) != tuple(lanes):
        raise _Rejected(
            RetranslateReason.WIDTH_DEPENDENT_CONSTANT,
            f"lane constant is not {target}-periodic: {list(lanes)}")
    return head


def _perm_pattern_of(ins: Instruction, pc: int) -> PermPattern:
    kind = {"vbfly": "bfly", "vrev": "rev", "vrot": "rot"}[ins.opcode]
    if len(ins.srcs) < 2 or not isinstance(ins.srcs[1], Imm):
        raise _Rejected(RetranslateReason.MALFORMED_LOOP,
                        f"permutation without period immediate at pc={pc}")
    period = int(ins.srcs[1].value)
    amount = 0
    if kind == "rot":
        if len(ins.srcs) < 3 or not isinstance(ins.srcs[2], Imm):
            raise _Rejected(RetranslateReason.MALFORMED_LOOP,
                            f"rotate without amount immediate at pc={pc}")
        amount = int(ins.srcs[2].value)
    try:
        return PermPattern(kind, period, amount)
    except ValueError as exc:
        raise _Rejected(RetranslateReason.MALFORMED_LOOP,
                        f"bad permutation operands at pc={pc}: {exc}")


_PERM_OPCODES = {"vbfly", "vrev", "vrot"}


def _check_instruction(ins: Instruction, pc: int, inductions: Set[str],
                       latch_pcs: Set[int], source: int, target: int,
                       config: TranslatorConfig,
                       cam: PermutationCAM) -> Instruction:
    """Validate one instruction at the target width; return its rewrite."""
    spec = OPCODES.get(ins.opcode)
    if spec is None:
        raise _Rejected(RetranslateReason.MALFORMED_LOOP,
                        f"unknown opcode {ins.opcode!r} at pc={pc}")

    if spec.is_vector:
        if not config.supports_op(ins.opcode):
            raise _Rejected(
                RetranslateReason.UNSUPPORTED_OPCODE,
                f"{ins.opcode} is not in the target generation's repertoire")
        # Vector memory accesses must be affine in a rescaled induction
        # variable; anything else changes meaning when the stride does.
        if ins.mem is not None:
            index = ins.mem.index
            if not (isinstance(index, Reg) and index.name in inductions):
                raise _Rejected(
                    RetranslateReason.NON_AFFINE_ACCESS,
                    f"vector access at pc={pc} is not indexed by a loop "
                    f"induction variable")
        if ins.opcode in _PERM_OPCODES:
            pattern = _perm_pattern_of(ins, pc)
            if target % pattern.period != 0:
                raise _Rejected(
                    RetranslateReason.PERM_PERIOD_EXCEEDS_WIDTH,
                    f"{pattern.name} does not tile width {target}")
            if cam.lookup(pattern.offsets(target)) is None:
                raise _Rejected(
                    RetranslateReason.PERM_NOT_IN_REPERTOIRE,
                    f"{pattern.name} missed the target CAM")
        new_srcs = None
        for slot, operand in enumerate(ins.srcs):
            if isinstance(operand, VImm):
                lanes = _rescale_lanes(operand.lanes, source, target)
                if new_srcs is None:
                    new_srcs = list(ins.srcs)
                new_srcs[slot] = VImm(lanes)
        if new_srcs is not None:
            return Instruction(ins.opcode, dst=ins.dst, srcs=tuple(new_srcs),
                               mem=ins.mem, target=ins.target, elem=ins.elem,
                               comment=ins.comment)
        return ins

    # Scalar instructions pass through unchanged — except the loop
    # latch increments, which carry the width and are rewritten by the
    # caller.  The only other induction write the translator emits is
    # the rule-1 zero init (``mov rI, #0``), which is width-independent;
    # any other update would desync the access stride from the
    # rewritten latch.
    if pc not in latch_pcs and ins.dst is not None \
            and ins.dst.name in inductions \
            and ins.opcode not in ("cmp", "fcmp"):
        is_zero_init = (ins.opcode == "mov" and len(ins.srcs) == 1
                        and isinstance(ins.srcs[0], Imm)
                        and int(ins.srcs[0].value) == 0)
        if not is_zero_init:
            raise _Rejected(
                RetranslateReason.NON_AFFINE_ACCESS,
                f"induction register {ins.dst.name} updated outside the "
                f"loop latch at pc={pc}")
    return ins


def retranslate_entry(entry: MicrocodeEntry, target_width: int,
                      config: TranslatorConfig) -> RetranslationResult:
    """Re-lower *entry* to *target_width* under the target *config*.

    *config* describes the **target** accelerator generation (its
    permutation repertoire and vector-opcode set gate the rewrite the
    same way they gate a fresh translation).  On success the result
    carries a new :class:`MicrocodeEntry` with ``ready_cycle=0`` —
    retranslation is an offline/fleet operation, not a per-run latency.
    """
    tel = _telemetry.get()
    tel.count("retranslate.attempts")

    def reject(reason: RetranslateReason,
               detail: str) -> RetranslationResult:
        tel.count("retranslate.abort." + reason.value)
        return RetranslationResult(
            function=entry.function, source_width=entry.width,
            target_width=target_width, ok=False, reason=reason,
            detail=detail)

    if target_width < 2 or not is_power_of_two(target_width) \
            or not is_power_of_two(entry.width):
        return reject(RetranslateReason.BAD_WIDTH,
                      f"cannot rescale width {entry.width} -> {target_width}")

    try:
        latches = _find_latches(entry.fragment, entry.width)
        for latch in latches:
            if latch.trip % target_width != 0:
                raise _Rejected(
                    RetranslateReason.TRIP_NOT_DIVISIBLE,
                    f"trip {latch.trip} is not a multiple of {target_width}")
        inductions = {latch.induction for latch in latches}
        latch_pcs = {latch.add_pc for latch in latches}
        cam = PermutationCAM(target_width, config.permutations)
        rewritten: List[Instruction] = []
        for pc, ins in enumerate(entry.fragment.instructions):
            if pc in latch_pcs:
                ins = Instruction(
                    "add", dst=ins.dst, srcs=(ins.srcs[0], Imm(target_width)),
                    comment="induction advance = effective SIMD width",
                )
            else:
                ins = _check_instruction(ins, pc, inductions, latch_pcs,
                                         entry.width, target_width,
                                         config, cam)
            rewritten.append(ins)
    except _Rejected as exc:
        return reject(exc.reason, exc.detail)

    # Rebuild under the canonical fresh-translation name so a
    # retranslated fragment and a fresh translation that happen to agree
    # byte-for-byte share one content key (and one set of fused tables).
    fragment = Program(f"{entry.function}_ucode_w{target_width}")
    fragment.emit_all(rewritten)
    fragment.labels = dict(entry.fragment.labels)
    fragment.entry = entry.fragment.entry

    new_entry = MicrocodeEntry(
        function=entry.function,
        fragment=fragment,
        width=target_width,
        ready_cycle=0,
        static_instructions=entry.static_instructions,
    )
    tel.count("retranslate.ok")
    return RetranslationResult(
        function=entry.function, source_width=entry.width,
        target_width=target_width, ok=True, entry=new_entry)


def retranslate_chain(entry: MicrocodeEntry, widths,
                      config_for: Dict[int, TranslatorConfig]
                      ) -> List[RetranslationResult]:
    """Retranslate *entry* through successive *widths* (W -> 2W -> 4W).

    Each step re-lowers the previous step's output, so the chain proves
    retranslation composes; it stops at the first rejection.
    """
    results: List[RetranslationResult] = []
    current = entry
    for width in widths:
        result = retranslate_entry(current, width, config_for[width])
        results.append(result)
        if not result.ok:
            break
        current = result.entry
    return results
