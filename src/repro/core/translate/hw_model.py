"""Hardware cost model of the dynamic translator (paper Table 2).

The paper synthesized its HDL translator with a 90 nm IBM standard-cell
library and reported, for the 8-wide configuration: a 16-gate critical
path, 1.51 ns delay (>650 MHz), and 174,117 cells (<0.2 mm^2).  Section
4.1 gives a per-block breakdown and two scaling laws (register-state
area grows linearly with register count and with vector width; the
microcode buffer is about half SRAM, half alignment network).

We cannot synthesize HDL in this reproduction, so this module is a
*calibrated analytic substitute*: block constants are fitted so the
default configuration reproduces the published row exactly, and the
paper's own scaling laws extrapolate other configurations (used by the
ablation benchmarks).  The published per-block numbers are approximate
and slightly inconsistent (55% register state + 77 k buffer + 9 k opcode
logic exceeds the stated total), so the register-state constant absorbs
the residual; it lands at ~48% of total area, in reasonable agreement
with the "55%" claim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

#: Calibration targets from Table 2 / section 4.1.
PAPER_TOTAL_CELLS = 174_117
PAPER_CRIT_PATH_GATES = 16
PAPER_DELAY_NS = 1.51
PAPER_AREA_MM2 = 0.2

_DECODER_CELLS = 4_000         # "a few thousand cells"
_LEGALITY_CELLS = 400          # "a few hundred cells"
_OPCODE_GEN_CELLS = 9_000      # "approximately 9000 cells"
_BUFFER_CELLS = 77_000         # "77,000 cells", 64 entries x 32 bits
_BUFFER_SRAM_FRACTION = 0.52   # "a little more than half" is the SRAM
_REGSTATE_CELLS = (PAPER_TOTAL_CELLS - _DECODER_CELLS - _LEGALITY_CELLS
                   - _OPCODE_GEN_CELLS - _BUFFER_CELLS)

_DECODER_GATES = 5             # "5 of the 16 gates in the critical path"
_REGSTATE_GATES = 11           # "11 of the 16 gates on the critical path"

_MM2_PER_CELL = PAPER_AREA_MM2 / PAPER_TOTAL_CELLS
_NS_PER_GATE = PAPER_DELAY_NS / PAPER_CRIT_PATH_GATES

#: Reference configuration the constants were fitted at.
_REF_WIDTH = 8
_REF_REGS = 16
_REF_BUFFER_ENTRIES = 64


@dataclass(frozen=True)
class TranslatorHardwareModel:
    """Area/timing estimate for one translator configuration.

    Attributes:
        width: accelerator vector width the translator targets.
        arch_registers: architectural registers tracked (ARM has 16
            integer registers; the paper notes ISAs with more registers
            scale the register-state block proportionally).
        buffer_entries: microcode buffer capacity in instructions.
        state_bits_per_reg: register-state bits per register (56 in the
            paper's design at width 8).
    """

    width: int = _REF_WIDTH
    arch_registers: int = _REF_REGS
    buffer_entries: int = _REF_BUFFER_ENTRIES
    state_bits_per_reg: int = 56

    # -- per-block areas (cells) ------------------------------------------------

    def decoder_cells(self) -> int:
        """Partial decoder: independent of width and register count."""
        return _DECODER_CELLS

    def legality_cells(self) -> int:
        return _LEGALITY_CELLS

    def opcode_gen_cells(self) -> int:
        return _OPCODE_GEN_CELLS

    def register_state_cells(self) -> int:
        """Register state: linear in register count and vector width."""
        scale = (self.arch_registers / _REF_REGS) * (self.width / _REF_WIDTH)
        bit_scale = self.state_bits_per_reg / 56
        return round(_REGSTATE_CELLS * scale * bit_scale)

    def buffer_cells(self) -> int:
        """Microcode buffer: SRAM scales with entries; so does the
        alignment network (it collapses across the whole buffer)."""
        scale = self.buffer_entries / _REF_BUFFER_ENTRIES
        sram = _BUFFER_CELLS * _BUFFER_SRAM_FRACTION * scale
        align = _BUFFER_CELLS * (1 - _BUFFER_SRAM_FRACTION) * scale
        return round(sram + align)

    # -- aggregates ------------------------------------------------------------

    def total_cells(self) -> int:
        return (self.decoder_cells() + self.legality_cells()
                + self.opcode_gen_cells() + self.register_state_cells()
                + self.buffer_cells())

    def area_mm2(self) -> float:
        """Die area in mm^2 (90 nm standard cells)."""
        return self.total_cells() * _MM2_PER_CELL

    def critical_path_gates(self) -> int:
        """Decoder gates + register-state read/modify gates.

        The paper notes the register-state path dominates; wider value
        histories add one mux level per doubling beyond the reference.
        """
        extra = 0
        width = self.width
        while width > _REF_WIDTH:
            extra += 1
            width //= 2
        return _DECODER_GATES + _REGSTATE_GATES + extra

    def delay_ns(self) -> float:
        return self.critical_path_gates() * _NS_PER_GATE

    def frequency_mhz(self) -> float:
        return 1000.0 / self.delay_ns()

    def breakdown(self) -> Dict[str, int]:
        """Cells per block, for reports."""
        return {
            "partial_decoder": self.decoder_cells(),
            "legality_checks": self.legality_cells(),
            "register_state": self.register_state_cells(),
            "opcode_generation": self.opcode_gen_cells(),
            "microcode_buffer": self.buffer_cells(),
        }

    def buffer_sram_bytes(self) -> int:
        """Instruction storage in the buffer (256 B in the paper)."""
        return self.buffer_entries * 4

    def table2_row(self) -> Dict[str, object]:
        """The reproduction of Table 2 for this configuration."""
        return {
            "description": f"{self.width}-wide Translator",
            "crit_path_gates": self.critical_path_gates(),
            "delay_ns": round(self.delay_ns(), 2),
            "area_cells": self.total_cells(),
            "area_mm2": round(self.area_mm2(), 3),
            "frequency_mhz": round(self.frequency_mhz()),
        }
