"""Result latencies per instruction class.

Latency is the number of cycles after issue until a dependent
instruction can use the result.  Values approximate an ARM-926EJ-S-class
in-order core: single-cycle integer ALU, two-cycle multiplies, and a
long iterative divide.  Vector operations issue one per cycle regardless
of width (that is the accelerator's whole point); only their *memory*
traffic scales with width, which the cache model charges separately.
"""

from __future__ import annotations

from typing import Dict

from repro.isa.opcodes import InstrClass

#: Cycles from issue until the result is forwardable.
RESULT_LATENCY: Dict[InstrClass, int] = {
    InstrClass.ALU: 1,
    InstrClass.MUL: 2,
    InstrClass.FALU: 2,
    InstrClass.FMUL: 3,
    InstrClass.FDIV: 12,
    InstrClass.MOVE: 1,
    InstrClass.CMP: 1,
    InstrClass.LOAD: 1,      # plus D-cache access time, charged separately
    InstrClass.STORE: 1,
    InstrClass.BRANCH: 1,
    InstrClass.CALL: 1,
    InstrClass.RET: 1,
    InstrClass.SYS: 1,
    InstrClass.VALU: 1,
    InstrClass.VMUL: 2,
    InstrClass.VLOAD: 1,
    InstrClass.VSTORE: 1,
    InstrClass.VPERM: 1,
    InstrClass.VRED: 2,
}


def result_latency(cls: InstrClass) -> int:
    """Result latency in cycles for one instruction class."""
    return RESULT_LATENCY[cls]
