"""Timing substrate: in-order 5-stage pipeline model with caches."""

from repro.pipeline.branch import BimodalPredictor, StaticPredictor
from repro.pipeline.core import PipelineConfig, PipelineModel
from repro.pipeline.latencies import result_latency

__all__ = [
    "BimodalPredictor",
    "StaticPredictor",
    "PipelineConfig",
    "PipelineModel",
    "result_latency",
]
