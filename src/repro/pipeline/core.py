"""In-order 5-stage pipeline timing model.

The model consumes the executor's retire-event stream *in program order*
and assigns each instruction an issue cycle, honouring:

* single-issue in-order dispatch (one instruction per cycle at best),
* read-after-write hazards through registers and the flags,
* result latencies per instruction class (multiplies, FP, divides),
* D-cache access time for loads (stores drain through a write buffer:
  they update cache state but do not stall the pipeline on a miss),
* I-cache fetch time per instruction — except instructions injected
  from the microcode cache, which bypass instruction fetch entirely
  (the paper's front-end injection path),
* branch prediction with a configurable mispredict penalty, and a
  one-cycle redirect bubble for taken calls/returns.

This is a deliberately transparent first-order model (the repro target
is "functional simulator, not timing-faithful"): every stall source is
inspectable in :class:`PipelineStats`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.interp.events import RetireEvent
from repro.isa.decoded import InstrMeta, meta_of
from repro.isa.opcodes import ELEM_SIZES, OPCODES, InstrClass
from repro.memory.cache import Cache, CacheConfig
from repro.pipeline.branch import BimodalPredictor

#: Flags are modelled as one extra renameable resource.
_FLAGS = "<flags>"

#: Architectural instruction size used to map PCs to I-cache addresses.
_INSTR_BYTES = 4

#: Enum members pre-bound: ``account`` tests these once per retirement.
_BRANCH = InstrClass.BRANCH
_CALL_OR_RET = (InstrClass.CALL, InstrClass.RET)


class BlockTiming:
    """Static timing facts of one superblock, pre-extracted for
    :meth:`PipelineModel.account_block`.

    The turbo engine builds one of these per fused block
    (:mod:`repro.interp.turbo`): everything :meth:`PipelineModel.account`
    would have derived per retirement — fetch line numbers, read/write
    sets, latencies, memory access widths, the terminator kind — is
    frozen into per-instruction rows, so accounting a block is one tight
    loop over tuples with no event objects in sight.

    ``rows`` holds one tuple per instruction::

        (fetch_key, reads, reads_flags, writes, sets_flags,
         latency, mem_kind, nbytes)

    where ``mem_kind`` is 0 (no memory access), 1 (load) or 2 (store),
    and ``fetch_key`` is an icache line number (``fetch_mode == 1``) or
    byte address (``fetch_mode == 2``); ``fetch_mode == 0`` means the
    block is injected from the microcode cache and skips fetch.  The
    terminator is 0 (none / halt), 1 (branch, with ``branch_pc`` /
    ``branch_target`` pre-offset for fragments) or 2 (call / return).

    ``compiled``, when set, is a specialization of
    :meth:`PipelineModel.account_block`'s row loop for exactly these
    rows — same arithmetic with the constants baked in (the turbo engine
    generates one per fused block; see :mod:`repro.interp.turbo`).  It
    is an optimization hook only: ``account_block`` dispatches to it
    when present and runs the generic loop otherwise, with identical
    cycle and stats results either way.

    ``loop_compiled`` is the analogous hook for
    :meth:`PipelineModel.account_loop`: a specialization of the whole
    *trips*-times-around replay of this block, attached by the
    macro-kernel layer (:mod:`repro.interp.macro`) to the loop-body
    blocks of translated fragments.
    """

    __slots__ = ("rows", "count", "simd", "fetch_mode", "term",
                 "branch_pc", "branch_target", "compiled", "loop_compiled")

    def __init__(self, rows, count, simd, fetch_mode, term,
                 branch_pc=0, branch_target=0, compiled=None,
                 loop_compiled=None):
        self.rows = rows
        self.count = count
        self.simd = simd
        self.fetch_mode = fetch_mode
        self.term = term
        self.branch_pc = branch_pc
        self.branch_target = branch_target
        self.compiled = compiled
        self.loop_compiled = loop_compiled


@dataclass(frozen=True)
class PipelineConfig:
    """Timing parameters of the modeled core."""

    icache: CacheConfig = CacheConfig()
    dcache: CacheConfig = CacheConfig()
    mispredict_penalty: int = 2
    call_redirect_penalty: int = 1
    pipeline_depth: int = 5
    code_base: int = 0x1000


@dataclass
class PipelineStats:
    """Cycle accounting, split by stall source."""

    instructions: int = 0
    simd_instructions: int = 0
    data_stall_cycles: int = 0
    fetch_stall_cycles: int = 0
    load_miss_cycles: int = 0
    branch_penalty_cycles: int = 0
    branches: int = 0
    mispredicts: int = 0

    def to_dict(self) -> dict:
        """JSON-safe representation (inverse of :meth:`from_dict`)."""
        return {
            "instructions": self.instructions,
            "simd_instructions": self.simd_instructions,
            "data_stall_cycles": self.data_stall_cycles,
            "fetch_stall_cycles": self.fetch_stall_cycles,
            "load_miss_cycles": self.load_miss_cycles,
            "branch_penalty_cycles": self.branch_penalty_cycles,
            "branches": self.branches,
            "mispredicts": self.mispredicts,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PipelineStats":
        return cls(**{name: data[name] for name in (
            "instructions", "simd_instructions", "data_stall_cycles",
            "fetch_stall_cycles", "load_miss_cycles",
            "branch_penalty_cycles", "branches", "mispredicts")})


class PipelineModel:
    """Assigns cycles to a retire-event stream."""

    def __init__(self, config: Optional[PipelineConfig] = None) -> None:
        self.config = config or PipelineConfig()
        self.icache = Cache(self.config.icache, name="icache")
        self.dcache = Cache(self.config.dcache, name="dcache")
        self.predictor = BimodalPredictor()
        self.stats = PipelineStats()
        self._reg_ready: Dict[str, int] = {}
        self._last_issue = 0
        self._fetch_ready = 0
        self._last_completion = 0
        self._dcache_hit = self.config.dcache.hit_latency
        # Instruction fetches are _INSTR_BYTES wide: when the line size
        # is a multiple of that (and code_base is aligned), a fetch can
        # never straddle a line, so account() may call the cache's
        # single-line path directly.
        icache_cfg = self.config.icache
        self._ifetch_line = self.icache._access_line_number
        self._iline_bytes = icache_cfg.line_bytes
        self._ifetch_direct = (icache_cfg.line_bytes % _INSTR_BYTES == 0
                               and self.config.code_base % _INSTR_BYTES == 0)
        self._code_base = self.config.code_base

    # -- public API -------------------------------------------------------------

    @property
    def now(self) -> int:
        """Issue cycle of the most recent instruction."""
        return self._last_issue

    def stall(self, cycles: int) -> None:
        """Block the pipeline for *cycles* (software work stealing the core).

        Used by the software-translation mode: a JIT translator runs on
        the main core, so its work shows up as dead pipeline time —
        unlike the hardware translator, which is off the critical path.
        """
        if cycles <= 0:
            return
        self._last_issue += cycles
        self._fetch_ready = max(self._fetch_ready, self._last_issue)
        self._last_completion = max(self._last_completion, self._last_issue)

    def total_cycles(self) -> int:
        """Cycles to fully drain the pipeline after the last instruction."""
        return max(self._last_completion,
                   self._last_issue + self.config.pipeline_depth)

    def account(self, event: RetireEvent,
                meta: Optional[InstrMeta] = None) -> int:
        """Charge one retired instruction; return its issue cycle.

        ``meta`` optionally supplies the pre-extracted
        :class:`~repro.isa.decoded.InstrMeta` (the fast engine hands over
        its decode table's entry); when omitted, it is derived — and
        memoized — from the instruction.  Either way the same timing
        logic runs on the same fields, so the two execution engines are
        cycle-identical by construction.
        """
        if meta is None:
            meta = meta_of(event.instr)
        cls = meta.cls
        stats = self.stats

        # -- fetch ---------------------------------------------------------------
        if event.in_vector_unit:
            fetch_ready = self._fetch_ready  # injected from microcode cache
        else:
            fetch_addr = self._code_base + event.pc * _INSTR_BYTES
            if self._ifetch_direct:
                fetch_cycles = self._ifetch_line(
                    fetch_addr // self._iline_bytes, False)
            else:
                fetch_cycles = self.icache.access(fetch_addr, _INSTR_BYTES,
                                                  is_write=False)
            fetch_ready = self._fetch_ready + (fetch_cycles - 1)
            if fetch_cycles > 1:
                stats.fetch_stall_cycles += fetch_cycles - 1

        # -- operand readiness ------------------------------------------------------
        ready = fetch_ready
        reg_ready = self._reg_ready
        for reg in meta.reads:
            t = reg_ready.get(reg, 0)
            if t > ready:
                ready = t
        if meta.reads_flags:
            t = reg_ready.get(_FLAGS, 0)
            if t > ready:
                ready = t

        issue = self._last_issue + 1
        if ready > issue:
            stats.data_stall_cycles += ready - issue
            issue = ready

        # -- memory --------------------------------------------------------------------
        completion = issue + meta.latency
        if event.mem_addr is not None:
            nbytes = meta.elem_bytes
            if meta.is_vector and event.vector_width:
                nbytes *= event.vector_width
            if meta.is_load:
                access = self.dcache.access(event.mem_addr, nbytes, is_write=False)
                completion = issue + access
                if access > self._dcache_hit:
                    stats.load_miss_cycles += access - self._dcache_hit
            else:
                # Stores update cache state; the write buffer hides latency.
                self.dcache.access(event.mem_addr, nbytes, is_write=True)

        # -- writeback of results ---------------------------------------------------------
        for reg in meta.writes:
            reg_ready[reg] = completion
        if meta.sets_flags:
            reg_ready[_FLAGS] = completion

        # -- control flow -------------------------------------------------------------------
        next_fetch = issue
        if cls is _BRANCH:
            config = self.config
            stats.branches += 1
            target_pc = event.next_pc if event.taken else event.pc
            predicted = self.predictor.predict(event.pc, target_pc)
            self.predictor.update(event.pc, event.taken)
            if predicted != event.taken:
                stats.mispredicts += 1
                # The penalty is in *bubbles*: the next fetch slips this many
                # cycles past its natural slot.
                next_fetch = issue + 1 + config.mispredict_penalty
                stats.branch_penalty_cycles += config.mispredict_penalty
        elif cls in _CALL_OR_RET:
            config = self.config
            next_fetch = issue + 1 + config.call_redirect_penalty
            stats.branch_penalty_cycles += config.call_redirect_penalty

        self._last_issue = issue
        self._fetch_ready = next_fetch
        if completion > self._last_completion:
            self._last_completion = completion
        stats.instructions += 1
        if meta.is_vector:
            stats.simd_instructions += 1
        return issue

    def account_block(self, timing: BlockTiming, mem_addrs, taken) -> None:
        """Charge one fused superblock (see :class:`BlockTiming`).

        Replays exactly the arithmetic :meth:`account` performs per
        retirement, over the block's pre-extracted rows: same cache
        access order, same hazard bookkeeping, same predictor updates —
        so a run accounted block-wise is cycle- and stats-identical to
        the same run accounted event-wise (``docs/timing-model.md``;
        enforced by the three-way differential suite).  ``mem_addrs``
        supplies the block's effective addresses in execution order;
        ``taken`` is the terminating branch's outcome (ignored unless
        the terminator is a branch).

        Blocks built by the turbo engine carry a compiled specialization
        of this very loop (``timing.compiled``); dispatching to it here
        keeps the API — and the equivalence contract — in one place.
        """
        compiled = timing.compiled
        if compiled is not None:
            compiled(self, mem_addrs, taken)
            return
        stats = self.stats
        reg_ready = self._reg_ready
        reg_get = reg_ready.get
        fetch_ready = self._fetch_ready
        last_issue = self._last_issue
        last_completion = self._last_completion
        fetch_mode = timing.fetch_mode
        ifetch_line = self._ifetch_line
        iaccess = self.icache.access
        daccess = self.dcache.access
        dcache_hit = self._dcache_hit
        data_stall = fetch_stall = load_miss = 0
        issue = last_issue
        mem_index = 0
        for (fetch_key, reads, reads_flags, writes, sets_flags,
             latency, mem_kind, nbytes) in timing.rows:
            if fetch_mode:
                if fetch_mode == 1:
                    fetch_cycles = ifetch_line(fetch_key, False)
                else:
                    fetch_cycles = iaccess(fetch_key, _INSTR_BYTES, False)
                if fetch_cycles > 1:
                    fetch_stall += fetch_cycles - 1
                ready = fetch_ready + fetch_cycles - 1
            else:
                ready = fetch_ready  # injected from microcode cache
            for reg in reads:
                t = reg_get(reg, 0)
                if t > ready:
                    ready = t
            if reads_flags:
                t = reg_get(_FLAGS, 0)
                if t > ready:
                    ready = t
            issue = last_issue + 1
            if ready > issue:
                data_stall += ready - issue
                issue = ready
            completion = issue + latency
            if mem_kind:
                addr = mem_addrs[mem_index]
                mem_index += 1
                if mem_kind == 1:
                    access = daccess(addr, nbytes, False)
                    completion = issue + access
                    if access > dcache_hit:
                        load_miss += access - dcache_hit
                else:
                    # Stores update cache state; the write buffer hides
                    # latency (same policy as account()).
                    daccess(addr, nbytes, True)
            for reg in writes:
                reg_ready[reg] = completion
            if sets_flags:
                reg_ready[_FLAGS] = completion
            last_issue = issue
            fetch_ready = issue
            if completion > last_completion:
                last_completion = completion
        term = timing.term
        if term == 1:
            config = self.config
            stats.branches += 1
            branch_pc = timing.branch_pc
            target_pc = timing.branch_target if taken else branch_pc
            predicted = self.predictor.predict(branch_pc, target_pc)
            self.predictor.update(branch_pc, taken)
            if predicted != taken:
                stats.mispredicts += 1
                penalty = config.mispredict_penalty
                fetch_ready = issue + 1 + penalty
                stats.branch_penalty_cycles += penalty
        elif term == 2:
            penalty = self.config.call_redirect_penalty
            fetch_ready = issue + 1 + penalty
            stats.branch_penalty_cycles += penalty
        self._last_issue = last_issue
        self._fetch_ready = fetch_ready
        self._last_completion = last_completion
        stats.instructions += timing.count
        stats.simd_instructions += timing.simd
        stats.data_stall_cycles += data_stall
        stats.fetch_stall_cycles += fetch_stall
        stats.load_miss_cycles += load_miss

    def account_loop(self, timing: BlockTiming, trips: int,
                     load_latencies) -> None:
        """Charge *trips* back-to-back executions of one fragment loop block.

        Equivalent to calling :meth:`account_block` *trips* times with
        ``taken=True`` on every trip but the last, **except** that the
        d-cache has already been advanced for every access of the whole
        loop (via :meth:`~repro.memory.cache.Cache.access_stream`, in the
        same trip-major program order ``account_block`` would have used):
        load rows consume their pre-computed latencies from
        *load_latencies* in access order, and store rows touch nothing
        (their latency is hidden by the write buffer either way).  The
        hazard bookkeeping, the per-trip branch prediction against the
        real predictor, and every statistic are the sequential replay's
        — the macro layer (:mod:`repro.interp.macro`) relies on this
        being cycle- and stats-identical to the per-block path.

        Only injected (``fetch_mode == 0``) blocks with a branch
        terminator qualify — translated fragments never touch the
        i-cache, which is what makes pre-advancing the d-cache safe:
        no other cache access interleaves with the loop's.

        ``timing.loop_compiled``, when set, is a specialization of this
        very loop (generated by the macro layer) and is dispatched to,
        mirroring the ``account_block`` / ``compiled`` pairing.
        """
        compiled = timing.loop_compiled
        if compiled is not None:
            compiled(self, trips, load_latencies)
            return
        if timing.fetch_mode != 0 or timing.term != 1:
            raise ValueError(
                "account_loop requires an injected block with a "
                "branch terminator")
        stats = self.stats
        reg_ready = self._reg_ready
        reg_get = reg_ready.get
        fetch_ready = self._fetch_ready
        last_issue = self._last_issue
        last_completion = self._last_completion
        dcache_hit = self._dcache_hit
        predictor = self.predictor
        predict = predictor.predict
        update = predictor.update
        rows = timing.rows
        branch_pc = timing.branch_pc
        branch_target = timing.branch_target
        mispredict_penalty = self.config.mispredict_penalty
        data_stall = load_miss = 0
        issue = last_issue
        lat_index = 0
        last_trip = trips - 1
        for trip in range(trips):
            for (_fetch_key, reads, reads_flags, writes, sets_flags,
                 latency, mem_kind, _nbytes) in rows:
                ready = fetch_ready  # injected from microcode cache
                for reg in reads:
                    t = reg_get(reg, 0)
                    if t > ready:
                        ready = t
                if reads_flags:
                    t = reg_get(_FLAGS, 0)
                    if t > ready:
                        ready = t
                issue = last_issue + 1
                if ready > issue:
                    data_stall += ready - issue
                    issue = ready
                if mem_kind == 1:
                    access = load_latencies[lat_index]
                    lat_index += 1
                    completion = issue + access
                    if access > dcache_hit:
                        load_miss += access - dcache_hit
                else:
                    # Stores and ALU rows: the d-cache state change for
                    # stores was already applied by access_stream.
                    completion = issue + latency
                for reg in writes:
                    reg_ready[reg] = completion
                if sets_flags:
                    reg_ready[_FLAGS] = completion
                last_issue = issue
                fetch_ready = issue
                if completion > last_completion:
                    last_completion = completion
            taken = trip != last_trip
            stats.branches += 1
            predicted = predict(branch_pc,
                                branch_target if taken else branch_pc)
            update(branch_pc, taken)
            if predicted != taken:
                stats.mispredicts += 1
                fetch_ready = issue + 1 + mispredict_penalty
                stats.branch_penalty_cycles += mispredict_penalty
        self._last_issue = last_issue
        self._fetch_ready = fetch_ready
        self._last_completion = last_completion
        stats.instructions += timing.count * trips
        stats.simd_instructions += timing.simd * trips
        stats.data_stall_cycles += data_stall
        stats.load_miss_cycles += load_miss

    # -- helpers --------------------------------------------------------------------------

    def fetch_profile(self):
        """(direct, code_base, line_bytes): how PCs map to icache fetches.

        The turbo decode pass uses this to pre-compute each row's
        ``fetch_key`` with the same addressing :meth:`account` applies.
        """
        return self._ifetch_direct, self._code_base, self._iline_bytes

    def _access_bytes(self, event: RetireEvent) -> int:
        instr = event.instr
        elem = instr.elem or "i32"
        size = ELEM_SIZES[elem]
        if OPCODES[instr.opcode].is_vector and event.vector_width:
            return size * event.vector_width
        return size
