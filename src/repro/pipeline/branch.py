"""Branch predictors for the in-order pipeline model.

Two predictors are provided:

* :class:`StaticPredictor` — backward-taken / forward-not-taken, the
  classic static policy of simple embedded cores.
* :class:`BimodalPredictor` — a table of 2-bit saturating counters
  indexed by PC, initialized weakly-taken for backward branches.

Loop-closing branches (backward, taken) predict nearly perfectly under
both, which is the property the paper leans on when it argues the scalar
representation's "loop branch is easy to predict" (section 3.3).
"""

from __future__ import annotations


class StaticPredictor:
    """Backward-taken / forward-not-taken."""

    def predict(self, pc: int, target_pc: int) -> bool:
        """Predict a branch at *pc* jumping to *target_pc*."""
        return target_pc <= pc

    def update(self, pc: int, taken: bool) -> None:
        """Static prediction learns nothing."""


class BimodalPredictor:
    """PC-indexed 2-bit saturating counters."""

    def __init__(self, entries: int = 128) -> None:
        if entries <= 0:
            raise ValueError("predictor must have at least one entry")
        self.entries = entries
        self._counters = [1] * entries  # weakly not-taken

    def _index(self, pc: int) -> int:
        return pc % self.entries

    def predict(self, pc: int, target_pc: int) -> bool:
        counter = self._counters[self._index(pc)]
        if counter == 1 and target_pc <= pc:
            # Cold backward branch: fall back to static backward-taken.
            return True
        return counter >= 2

    def update(self, pc: int, taken: bool) -> None:
        i = self._index(pc)
        if taken:
            self._counters[i] = min(3, self._counters[i] + 1)
        else:
            self._counters[i] = max(0, self._counters[i] - 1)
