"""``python -m repro`` — command-line front end.

Subcommands:

* ``evaluate``  — regenerate the paper's tables/figures
  (thin wrapper over :mod:`repro.evaluation`); same flags as
  ``examples/run_evaluation.py``.
* ``list``      — list the benchmark suite.
* ``run NAME``  — run one benchmark across the width sweep and print its
  Figure 6 row plus translation outcomes.
* ``cache``     — inspect (``cache info``), empty (``cache clear``), or
  share over HTTP (``cache serve``) the persistent run cache *and*
  fragment store (docs/evaluation-runner.md, docs/retranslation.md).
  ``info``/``clear`` take ``--cache-url`` to address a running
  ``cache serve`` daemon instead of a local directory.
* ``sweep``     — run (one shard of) the paper-figure sweep through the
  run cache and write a JSON manifest; ``--shard K/N`` executes a
  disjoint hash-slice against a shared backend, ``--incremental``
  simulates only cache misses, and ``--merge`` verifies and combines
  shard manifests (docs/evaluation-runner.md).
* ``serve``     — run the simulation farm: an async HTTP service where
  clients POST (benchmark, program_kind, width, engine) jobs to
  ``/v1/runs``; warm requests answer from the run cache in O(1),
  identical in-flight requests coalesce onto one machine-run, and
  distinct cold runs fan out over a bounded worker pool
  (docs/serving.md).
* ``loadtest``  — hammer a ``repro serve`` farm (or a private one) with
  a mixed warm/cold/duplicate-storm workload and write the p50/p99
  latency + throughput + dedup-ratio payload ``repro bench compare``
  gates (docs/serving.md).
* ``retranslate`` — re-lower one benchmark's translated fragments to
  another SIMD width and print the cross-width differential verdict
  (docs/retranslation.md).
* ``telemetry`` — run one benchmark with the observability registry
  enabled and dump its counters/histograms/spans
  (docs/observability.md), as text or ``--json``.
* ``codegen``   — lift one benchmark's translated fragments into the
  shared codegen IR (docs/codegen.md) and print the per-fragment
  shape-recognition table (recognized loop/chain shapes, IR node
  kinds, recognition counters).
* ``bench``     — ``bench compare OLD.json NEW.json`` diffs two
  benchmark payloads (the ``BENCH_*.json`` files benchmarks/ writes)
  and exits nonzero on speedup regressions beyond ``--tolerance``.
"""

from __future__ import annotations

import argparse
import sys

from repro.core.scalarize import build_baseline_program, build_liquid_program
from repro.kernels.suite import BENCHMARK_ORDER, build_kernel
from repro.simd.accelerator import config_for_width
from repro.system.machine import Machine, MachineConfig
from repro.system.metrics import arrays_equal


def _cmd_list(_args) -> int:
    print("benchmark suite (paper order):")
    for name in BENCHMARK_ORDER:
        kernel = build_kernel(name)
        loops = ", ".join(s.name for s in kernel.simd_loops)
        print(f"  {name:<14} {kernel.description}")
        print(f"  {'':<14} hot loops: {loops}")
    return 0


def _cmd_run(args) -> int:
    kernel = build_kernel(args.benchmark)
    baseline = build_baseline_program(kernel)
    liquid = build_liquid_program(kernel)
    base = Machine(MachineConfig()).run(baseline)
    print(f"{kernel.name}: baseline {base.cycles:,} cycles")
    print(f"{'width':<8}{'cycles':>12}{'speedup':>9}{'translations':>14}"
          f"{'results':>9}")
    for width in args.widths:
        machine = Machine(MachineConfig(accelerator=config_for_width(width)))
        run = machine.run(liquid)
        ok = sum(1 for t in run.translations if t.ok)
        bad = sum(1 for t in run.translations if not t.ok)
        match = "match" if arrays_equal(base, run) else "DIVERGED"
        print(f"{width:<8}{run.cycles:>12,}{run.speedup_over(base):>9.2f}"
              f"{f'{ok} ok / {bad} abort':>14}{match:>9}")
        for t in run.translations:
            if not t.ok:
                print(f"         {t.function}: {t.reason.value}")
    return 0


def _cmd_cache(args) -> int:
    from repro.core.translate.fragstore import FragmentStore
    from repro.evaluation.runcache import RunCache

    if args.action == "serve":
        from repro.evaluation.cacheserver import CacheServer
        from repro.evaluation.runcache import default_cache_dir
        root = args.cache_dir or default_cache_dir()
        server = CacheServer(root, host=args.host, port=args.port)
        print(f"serving run cache at {server.url} from {root} "
              f"(Ctrl-C to stop)")
        try:
            server.serve_forever()
        except KeyboardInterrupt:
            server.shutdown()
        return 0

    cache = RunCache.default(args.cache_dir, cache_url=args.cache_url)
    backend = cache.describe()
    remote = backend["backend"] != "local"
    # The fragment store is directory-backed only; with a --cache-url
    # there is no local directory to pair it with.
    fragments = None if remote else FragmentStore.default(args.cache_dir)

    if args.action == "clear":
        removed = cache.clear()
        frag_note = ""
        if fragments is not None:
            frag_removed = fragments.clear()
            frag_note = (f" and {frag_removed} "
                         f"fragment{'s' if frag_removed != 1 else ''}")
        print(f"cleared {removed} cached run{'s' if removed != 1 else ''}"
              f"{frag_note} from {backend['location']}")
        return 0

    kind = ("http (repro cache serve)" if remote else "local directory")
    print(f"run cache backend: {kind}")
    print(f"  location  {backend['location']}")
    if remote:
        status = "reachable" if backend["reachable"] else "unreachable"
        print(f"  status    {status}")
        if not backend["reachable"]:
            return 1
    print(f"  entries   {cache.entry_count()}")
    print(f"  size      {cache.size_bytes() / 1024:.1f} KB")
    if fragments is not None:
        print(f"fragment store at {fragments.root}")
        print(f"  entries   {fragments.entry_count()}")
        print(f"  size      {fragments.size_bytes() / 1024:.1f} KB")
    return 0


def _sweep_scheduler(args):
    """The scheduler one sweep invocation runs against."""
    from repro.evaluation.runcache import RunCache
    from repro.evaluation.runner import RunScheduler
    cache = None
    if not args.no_cache:
        cache = RunCache.default(args.cache_dir, cache_url=args.cache_url)
    return RunScheduler(jobs=args.jobs, cache=cache)


def _cmd_sweep(args) -> int:
    import json
    from pathlib import Path

    from repro.evaluation.shard import (
        SweepError,
        merge_sweeps,
        parse_shard_spec,
        run_sweep,
    )

    try:
        if args.merge:
            manifests = []
            for path in args.merge:
                try:
                    manifests.append(json.loads(
                        Path(path).read_text(encoding="utf-8")))
                except (OSError, ValueError) as exc:
                    print(f"sweep merge: {path}: {exc}", file=sys.stderr)
                    return 2
            manifest = merge_sweeps(manifests)
        else:
            from repro.evaluation.cli import FAST_SUBSET
            benchmarks = args.benchmarks or FAST_SUBSET
            shard = (parse_shard_spec(args.shard)
                     if args.shard is not None else None)
            scheduler = _sweep_scheduler(args)
            manifest = run_sweep(benchmarks, tuple(args.widths),
                                 engine=args.engine, scheduler=scheduler,
                                 shard=shard,
                                 incremental=args.incremental)
    except SweepError as exc:
        print(f"sweep: {exc}", file=sys.stderr)
        return 1

    if args.out:
        Path(args.out).write_text(
            json.dumps(manifest, indent=2, sort_keys=True) + "\n",
            encoding="utf-8")
    if args.json:
        print(json.dumps(manifest, indent=2, sort_keys=True))
        return 0

    sweep = manifest["sweep"]
    stats = manifest["stats"]
    coverage = manifest["coverage"]
    widths = ", ".join(str(w) for w in sweep["widths"])
    print(f"sweep: {len(sweep['benchmarks'])} benchmark(s) x "
          f"widths ({widths}) + baselines = "
          f"{coverage['total_requests']} runs (engine {sweep['engine']})")
    if args.merge:
        print(f"merged {stats['shards_merged']} shard manifest(s): "
              f"coverage OK, {stats['machine_runs']} machine-runs total, "
              f"no duplicates")
    else:
        backend = manifest["backend"]
        if sweep["shard"]:
            print(f"shard {sweep['shard']}: {coverage['selected']} of "
                  f"{coverage['total_requests']} keys")
        print(f"backend: {backend['backend']} at "
              f"{backend.get('location', '-')}")
        probe = (f", probe round-trips {stats['probe_calls']}"
                 if "probe_calls" in stats else "")
        mode = "incremental: " if sweep["incremental"] else ""
        print(f"{mode}simulated {stats['machine_runs']}, "
              f"warm {stats['cache_hits']}{probe}, "
              f"{stats['wall_seconds']:.2f}s")
    if manifest.get("speedups"):
        speedups = manifest["speedups"]
        mean = sum(speedups.values()) / len(speedups)
        print(f"speedups: {len(speedups)} records, mean {mean:.2f}x "
              f"(gate with `repro bench compare OLD NEW`)")
    if args.out:
        print(f"wrote manifest to {args.out}")
    return 0


def _cmd_serve(args) -> int:
    from repro.evaluation.runcache import RunCache
    from repro.evaluation.simserver import SimServer

    cache = (None if args.no_cache
             else RunCache.default(args.cache_dir, cache_url=args.cache_url))
    server = SimServer(host=args.host, port=args.port, jobs=args.jobs,
                       cache=cache)
    server.start()
    backend = "no cache (every request simulates)" if cache is None \
        else cache.describe()["location"]
    print(f"serving simulations at {server.url} "
          f"({server.jobs} worker{'s' if server.jobs != 1 else ''}, "
          f"cache: {backend}; Ctrl-C to stop)")
    import time
    try:
        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        server.shutdown()
    return 0


def _cmd_loadtest(args) -> int:
    import json

    from repro.evaluation.loadtest import (
        LoadtestError,
        LoadtestPlan,
        loadtest_ok,
        render_summary,
        run_loadtest,
    )

    try:
        plan = LoadtestPlan(requests=args.requests,
                            concurrency=args.concurrency,
                            storm=args.storm)
    except ValueError as exc:
        print(f"loadtest: {exc}", file=sys.stderr)
        return 2

    server = None
    url = args.url
    if url is None:
        # Self-contained mode: boot a private farm over a throwaway
        # cache so the loadtest measures the service, not stale state.
        import tempfile

        from repro.evaluation.runcache import RunCache
        from repro.evaluation.simserver import SimServer
        scratch = tempfile.mkdtemp(prefix="repro-loadtest-")
        server = SimServer(jobs=args.jobs,
                           cache=RunCache(scratch)).start()
        url = server.url
    try:
        payload = run_loadtest(url, plan)
    except LoadtestError as exc:
        print(f"loadtest: {exc}", file=sys.stderr)
        return 2
    finally:
        if server is not None:
            server.shutdown()

    if args.out:
        from pathlib import Path
        Path(args.out).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8")
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(render_summary(payload))
        if args.out:
            print(f"wrote payload to {args.out} "
                  f"(gate with `repro bench compare OLD {args.out}`)")
    return 0 if loadtest_ok(payload) else 1


def _cmd_retranslate(args) -> int:
    import json

    from repro.core.translate.fragstore import FragmentStore
    from repro.evaluation.crosswidth import crosswidth_differential

    to_width = args.to_width if args.to_width else 2 * args.from_width
    store = None if args.no_cache else FragmentStore.default(args.cache_dir)
    report = crosswidth_differential(args.benchmark, args.from_width,
                                     to_width, store=store)
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
        return 0 if report["ok"] else 1
    print(f"{args.benchmark}: retranslate w{args.from_width} -> w{to_width}")
    for function, info in sorted(report["functions"].items()):
        if not info["source_ok"]:
            status = f"source abort ({info['source_reason']})"
        elif info["retranslate_ok"]:
            status = "retranslated"
        else:
            status = f"rejected ({info['retranslate_reason']})"
        print(f"  {function:<24} {status}")
    print(f"{'engine':<12}{'fresh cycles':>14}{'retr cycles':>14}"
          f"{'arrays':>9}{'vs ref':>8}{'ucode':>7}")
    for engine, row in report["engines"].items():
        print(f"{engine:<12}{row['cycles_fresh']:>14,}"
              f"{row['cycles_retranslated']:>14,}"
              f"{'match' if row['arrays_match_fresh'] else 'DIVERGE':>9}"
              f"{'match' if row['arrays_match_reference'] else 'DIVERGE':>8}"
              f"{'ran' if row['microcode_ran'] else 'NO':>7}")
    print("verdict: " + ("OK" if report["ok"] else "DIVERGED"))
    return 0 if report["ok"] else 1


def _cmd_telemetry(args) -> int:
    import json

    from repro.observability import telemetry

    kernel = build_kernel(args.benchmark)
    program = (build_baseline_program(kernel) if args.program == "baseline"
               else build_liquid_program(kernel))
    accelerator = (config_for_width(args.width) if args.program == "liquid"
                   else None)
    config = MachineConfig(accelerator=accelerator, engine=args.engine)
    tel = telemetry.enable()
    try:
        result = Machine(config).run(program)
    finally:
        telemetry.disable()
    if args.json:
        payload = tel.to_dict()
        payload["run"] = {
            "program": result.program,
            "config": result.config,
            "engine": args.engine,
            "cycles": result.cycles,
            "telemetry": result.telemetry,
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(f"{result.program} on {result.config} ({args.engine}): "
              f"{result.cycles:,} cycles in "
              f"{result.telemetry['wall_seconds']:.3f}s")
        print(tel.render_text())
    return 0


def _cmd_codegen(args) -> int:
    import json

    from repro.codegen.ir import LoopNode
    from repro.observability import telemetry

    kernel = build_kernel(args.benchmark)
    program = build_liquid_program(kernel)
    config = MachineConfig(accelerator=config_for_width(args.width),
                           engine="turbo")
    result = Machine(config).run(program)
    entries = [t.entry for t in result.translations
               if t.ok and t.entry is not None]
    tel = telemetry.enable()
    try:
        rows = []
        for entry in entries:
            ir = entry.lift_ir()
            shapes = []
            for head in sorted(ir.loops):
                node = ir.loops[head]
                kind = "nested-loop" if node.inner is not None \
                    else "canonical-loop"
                shapes.append({"head": head, "shape": kind,
                               "trip": node.trip, "step": node.step})
            chain = None
            if ir.chain is not None:
                loops = [r for r in ir.chain.regions
                         if isinstance(r, LoopNode)]
                chain = {"regions": len(ir.chain.regions),
                         "loops": len(loops),
                         "fission": len(loops) >= 2,
                         "retired": ir.chain.total_retired}
            rows.append({"function": entry.function,
                         "width": entry.width,
                         "instructions": len(entry.fragment.instructions),
                         "node_kinds": sorted(k.name
                                              for k in ir.node_kinds()),
                         "loops": shapes, "chain": chain})
    finally:
        telemetry.disable()
    counters = {name: value
                for name, value in tel.to_dict().get("counters", {}).items()
                if name.startswith("macro.plan.")}
    if args.json:
        print(json.dumps({"benchmark": args.benchmark, "width": args.width,
                          "fragments": rows, "counters": counters},
                         indent=2, sort_keys=True))
        return 0
    print(f"{args.benchmark} @ width {args.width}: "
          f"{len(rows)} translated fragment(s)")
    for row in rows:
        print(f"  {row['function']} "
              f"({row['instructions']} instructions)")
        for shape in row["loops"]:
            print(f"    loop @ pc {shape['head']:<4} {shape['shape']:<15} "
                  f"trip {shape['trip']} step {shape['step']}")
        chain = row["chain"]
        if chain is not None:
            tag = "fission-chain" if chain["fission"] else "chain"
            print(f"    whole-fragment {tag}: {chain['regions']} regions, "
                  f"{chain['loops']} loop(s), "
                  f"{chain['retired']} retired/invocation")
        print(f"    IR nodes: {', '.join(row['node_kinds'])}")
    if counters:
        print("recognition counters:")
        for name in sorted(counters):
            print(f"  {name:<44} {counters[name]}")
    return 0


def _cmd_bench_compare(args) -> int:
    import json

    from repro.observability.benchdiff import (
        compare_files,
        render_comparison,
    )

    try:
        comparison = compare_files(args.old, args.new,
                                   tolerance=args.tolerance / 100.0)
    except (OSError, ValueError) as exc:
        print(f"bench compare: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(comparison.to_dict(), indent=2, sort_keys=True))
    else:
        print(render_comparison(comparison))
    return 0 if comparison.ok else 1


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "evaluate":
        # Delegate everything after the subcommand to the evaluation CLI,
        # which owns its own flags.
        from repro.evaluation.cli import run as eval_run
        return eval_run(argv[1:])

    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the benchmark suite")

    run_p = sub.add_parser("run", help="run one benchmark across widths")
    run_p.add_argument("benchmark", choices=BENCHMARK_ORDER)
    run_p.add_argument("--widths", nargs="*", type=int, default=[2, 4, 8, 16])

    sub.add_parser("evaluate", help="regenerate evaluation artifacts "
                                    "(see `repro evaluate --help`)")

    cache_p = sub.add_parser("cache", help="inspect, clear, or serve the "
                                           "persistent run cache")
    cache_p.add_argument("action", choices=("info", "clear", "serve"),
                         help="'info' prints backend, entry count, and "
                              "size; 'clear' deletes every cached run; "
                              "'serve' shares the cache directory over "
                              "HTTP for --cache-url clients")
    cache_p.add_argument("--cache-dir", default=None, metavar="DIR",
                         help="cache directory (default: $REPRO_CACHE_DIR "
                              "or ~/.cache/repro-liquid-simd)")
    cache_p.add_argument("--cache-url", default=None, metavar="URL",
                         help="address a running `repro cache serve` "
                              "daemon instead of a local directory "
                              "(default: $REPRO_CACHE_URL; info/clear "
                              "only)")
    cache_p.add_argument("--host", default="127.0.0.1",
                         help="serve: bind address (default: 127.0.0.1)")
    cache_p.add_argument("--port", type=int, default=8742,
                         help="serve: port, 0 for ephemeral "
                              "(default: 8742)")

    sweep_p = sub.add_parser(
        "sweep",
        help="run (one shard of) the paper-figure sweep through the run "
             "cache and write a JSON manifest; --merge verifies and "
             "combines shard manifests")
    sweep_p.add_argument("--benchmarks", nargs="*", default=None,
                         metavar="NAME", choices=BENCHMARK_ORDER,
                         help="benchmarks to sweep (default: the fast "
                              "evaluation subset)")
    sweep_p.add_argument("--widths", nargs="*", type=int,
                         default=[2, 4, 8, 16],
                         help="SIMD widths to sweep (default: 2 4 8 16)")
    sweep_p.add_argument("--engine", default="fast",
                         help="execution engine (default: fast)")
    sweep_p.add_argument("--jobs", type=int, default=None, metavar="N",
                         help="worker processes (default: cpu count)")
    sweep_p.add_argument("--shard", default=None, metavar="K/N",
                         help="execute only this sweep's K-th of N "
                              "disjoint hash-slices (requires a cache)")
    sweep_p.add_argument("--incremental", action="store_true",
                         help="probe the cache for the whole sweep in one "
                              "round-trip and simulate only misses")
    sweep_p.add_argument("--cache-dir", default=None, metavar="DIR",
                         help="run-cache directory (default: "
                              "$REPRO_CACHE_DIR or ~/.cache/"
                              "repro-liquid-simd)")
    sweep_p.add_argument("--cache-url", default=None, metavar="URL",
                         help="shared run-cache daemon to run against "
                              "(default: $REPRO_CACHE_URL)")
    sweep_p.add_argument("--no-cache", action="store_true",
                         help="bypass the run cache (incompatible with "
                              "--shard/--incremental)")
    sweep_p.add_argument("--merge", nargs="+", default=None,
                         metavar="MANIFEST",
                         help="instead of running: verify and merge these "
                              "shard manifest files")
    sweep_p.add_argument("--out", default=None, metavar="FILE",
                         help="write the manifest JSON to FILE")
    sweep_p.add_argument("--json", action="store_true",
                         help="print the manifest as JSON instead of a "
                              "summary")

    serve_p = sub.add_parser(
        "serve",
        help="run the simulation farm: POST (benchmark, program_kind, "
             "width, engine) jobs to /v1/runs; warm hits answer from "
             "the run cache, identical in-flight requests coalesce, "
             "cold runs fan out over a bounded worker pool")
    serve_p.add_argument("--host", default="127.0.0.1",
                         help="bind address (default: 127.0.0.1)")
    serve_p.add_argument("--port", type=int, default=8979,
                         help="port, 0 for ephemeral (default: 8979)")
    serve_p.add_argument("--jobs", type=int, default=None, metavar="N",
                         help="simulation worker processes "
                              "(default: cpu count)")
    serve_p.add_argument("--cache-dir", default=None, metavar="DIR",
                         help="run-cache directory (default: "
                              "$REPRO_CACHE_DIR or ~/.cache/"
                              "repro-liquid-simd)")
    serve_p.add_argument("--cache-url", default=None, metavar="URL",
                         help="answer warm hits from a `repro cache "
                              "serve` daemon instead of a local "
                              "directory (default: $REPRO_CACHE_URL)")
    serve_p.add_argument("--no-cache", action="store_true",
                         help="serve without a persistent cache "
                              "(every distinct request simulates)")

    load_p = sub.add_parser(
        "loadtest",
        help="hammer a `repro serve` farm with a mixed warm/cold/"
             "duplicate-storm workload and write the latency + "
             "dedup-ratio payload `repro bench compare` gates")
    load_p.add_argument("--url", default=None, metavar="URL",
                        help="target farm (default: boot a private one "
                             "over a throwaway cache)")
    load_p.add_argument("--requests", type=int, default=400, metavar="N",
                        help="warm mixed-phase request volume "
                             "(default: 400)")
    load_p.add_argument("--concurrency", type=int, default=32, metavar="C",
                        help="concurrent keep-alive connections "
                             "(default: 32)")
    load_p.add_argument("--storm", type=int, default=48, metavar="D",
                        help="identical-request storm size exercising "
                             "single-flight dedup (default: 48)")
    load_p.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="worker processes for the private farm "
                             "(ignored with --url; default: cpu count)")
    load_p.add_argument("--out", default=None, metavar="FILE",
                        help="write the BENCH-schema payload to FILE")
    load_p.add_argument("--json", action="store_true",
                        help="print the payload as JSON instead of a "
                             "summary")

    retr_p = sub.add_parser(
        "retranslate",
        help="re-lower one benchmark's fragments to another width and "
             "print the cross-width differential verdict")
    retr_p.add_argument("benchmark", choices=BENCHMARK_ORDER)
    retr_p.add_argument("--from-width", type=int, default=4, metavar="W",
                        help="source translation width (default: 4)")
    retr_p.add_argument("--to-width", type=int, default=None, metavar="T",
                        help="target width (default: 2*W)")
    retr_p.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="fragment-store directory root (default: "
                             "$REPRO_CACHE_DIR or ~/.cache/"
                             "repro-liquid-simd)")
    retr_p.add_argument("--no-cache", action="store_true",
                        help="bypass the persistent fragment store")
    retr_p.add_argument("--json", action="store_true",
                        help="emit the full report as JSON")

    tel_p = sub.add_parser(
        "telemetry",
        help="run one benchmark with telemetry enabled and dump the "
             "counter/histogram/span registry")
    tel_p.add_argument("benchmark", choices=BENCHMARK_ORDER)
    tel_p.add_argument("--width", type=int, default=8,
                       help="accelerator width (default: 8)")
    tel_p.add_argument("--engine", default="macro",
                       help="execution engine (default: macro)")
    tel_p.add_argument("--program", choices=("liquid", "baseline"),
                       default="liquid",
                       help="program form to run (default: liquid)")
    tel_p.add_argument("--json", action="store_true",
                       help="emit the registry as JSON instead of text")

    cg_p = sub.add_parser(
        "codegen",
        help="lift one benchmark's translated fragments into codegen IR "
             "and print the per-fragment shape-recognition table")
    cg_p.add_argument("benchmark", choices=BENCHMARK_ORDER)
    cg_p.add_argument("--width", type=int, default=8,
                      help="accelerator width (default: 8)")
    cg_p.add_argument("--json", action="store_true",
                      help="emit the table as JSON instead of text")

    bench_p = sub.add_parser(
        "bench", help="benchmark payload utilities (bench compare)")
    bench_sub = bench_p.add_subparsers(dest="bench_command", required=True)
    cmp_p = bench_sub.add_parser(
        "compare",
        help="diff two BENCH_*.json payloads; exit 1 on speedup "
             "regressions beyond --tolerance, 2 on unreadable input")
    cmp_p.add_argument("old", help="baseline payload (BENCH_*.json)")
    cmp_p.add_argument("new", help="candidate payload (BENCH_*.json)")
    cmp_p.add_argument("--tolerance", type=float, default=10.0,
                       metavar="PCT",
                       help="allowed speedup drop in percent "
                            "(default: 10)")
    cmp_p.add_argument("--json", action="store_true",
                       help="emit the comparison as JSON instead of text")

    args = parser.parse_args(argv)
    if args.command == "list":
        return _cmd_list(args)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "cache":
        return _cmd_cache(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "loadtest":
        return _cmd_loadtest(args)
    if args.command == "retranslate":
        return _cmd_retranslate(args)
    if args.command == "telemetry":
        return _cmd_telemetry(args)
    if args.command == "codegen":
        return _cmd_codegen(args)
    if args.command == "bench":
        return _cmd_bench_compare(args)
    return 2  # pragma: no cover


if __name__ == "__main__":
    sys.exit(main())
