"""``python -m repro`` — command-line front end.

Subcommands:

* ``evaluate``  — regenerate the paper's tables/figures
  (thin wrapper over :mod:`repro.evaluation`); same flags as
  ``examples/run_evaluation.py``.
* ``list``      — list the benchmark suite.
* ``run NAME``  — run one benchmark across the width sweep and print its
  Figure 6 row plus translation outcomes.
* ``cache``     — inspect (``cache info``) or empty (``cache clear``)
  the persistent run cache (docs/evaluation-runner.md).
"""

from __future__ import annotations

import argparse
import sys

from repro.core.scalarize import build_baseline_program, build_liquid_program
from repro.kernels.suite import BENCHMARK_ORDER, build_kernel
from repro.simd.accelerator import config_for_width
from repro.system.machine import Machine, MachineConfig
from repro.system.metrics import arrays_equal


def _cmd_list(_args) -> int:
    print("benchmark suite (paper order):")
    for name in BENCHMARK_ORDER:
        kernel = build_kernel(name)
        loops = ", ".join(s.name for s in kernel.simd_loops)
        print(f"  {name:<14} {kernel.description}")
        print(f"  {'':<14} hot loops: {loops}")
    return 0


def _cmd_run(args) -> int:
    kernel = build_kernel(args.benchmark)
    baseline = build_baseline_program(kernel)
    liquid = build_liquid_program(kernel)
    base = Machine(MachineConfig()).run(baseline)
    print(f"{kernel.name}: baseline {base.cycles:,} cycles")
    print(f"{'width':<8}{'cycles':>12}{'speedup':>9}{'translations':>14}"
          f"{'results':>9}")
    for width in args.widths:
        machine = Machine(MachineConfig(accelerator=config_for_width(width)))
        run = machine.run(liquid)
        ok = sum(1 for t in run.translations if t.ok)
        bad = sum(1 for t in run.translations if not t.ok)
        match = "match" if arrays_equal(base, run) else "DIVERGED"
        print(f"{width:<8}{run.cycles:>12,}{run.speedup_over(base):>9.2f}"
              f"{f'{ok} ok / {bad} abort':>14}{match:>9}")
        for t in run.translations:
            if not t.ok:
                print(f"         {t.function}: {t.reason.value}")
    return 0


def _cmd_cache(args) -> int:
    from repro.evaluation.runcache import RunCache
    cache = RunCache.default(args.cache_dir)
    if args.action == "clear":
        removed = cache.clear()
        print(f"cleared {removed} cached run{'s' if removed != 1 else ''} "
              f"from {cache.root}")
        return 0
    entries = cache.entry_count()
    size = cache.size_bytes()
    print(f"run cache at {cache.root}")
    print(f"  entries  {entries}")
    print(f"  size     {size / 1024:.1f} KB")
    return 0


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "evaluate":
        # Delegate everything after the subcommand to the evaluation CLI,
        # which owns its own flags.
        from repro.evaluation.cli import run as eval_run
        return eval_run(argv[1:])

    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the benchmark suite")

    run_p = sub.add_parser("run", help="run one benchmark across widths")
    run_p.add_argument("benchmark", choices=BENCHMARK_ORDER)
    run_p.add_argument("--widths", nargs="*", type=int, default=[2, 4, 8, 16])

    sub.add_parser("evaluate", help="regenerate evaluation artifacts "
                                    "(see `repro evaluate --help`)")

    cache_p = sub.add_parser("cache", help="inspect or clear the "
                                           "persistent run cache")
    cache_p.add_argument("action", choices=("info", "clear"),
                         help="'info' prints entry count and size; "
                              "'clear' deletes every cached run")
    cache_p.add_argument("--cache-dir", default=None, metavar="DIR",
                         help="cache directory (default: $REPRO_CACHE_DIR "
                              "or ~/.cache/repro-liquid-simd)")

    args = parser.parse_args(argv)
    if args.command == "list":
        return _cmd_list(args)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "cache":
        return _cmd_cache(args)
    return 2  # pragma: no cover


if __name__ == "__main__":
    sys.exit(main())
