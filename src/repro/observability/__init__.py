"""Observability: telemetry registry and perf-regression tooling.

Two pieces live here:

* :mod:`repro.observability.telemetry` — a process-wide registry of
  named counters, histograms, and wall-clock spans, threaded through
  the hot subsystems (superblock fusion, macro-kernel recognition, the
  dynamic translator, the microcode and run caches, and the machine's
  pipeline/cache totals).  Disabled by default via a module-level no-op
  shim, so the fused/macro fast paths pay nothing; ``repro telemetry``
  runs a benchmark with it on and dumps the registry.
* :mod:`repro.observability.benchdiff` — baseline comparison over the
  ``BENCH_*.json`` schema written by ``benchmarks/conftest.py``, the
  engine behind ``repro bench compare`` and CI's perf gate.

See ``docs/observability.md`` for the counter catalog and CLI usage.
"""

from repro.observability.telemetry import (  # noqa: F401
    NullTelemetry,
    Telemetry,
    disable,
    enable,
    get,
    is_enabled,
)
from repro.observability.benchdiff import (  # noqa: F401
    BenchComparison,
    RecordDelta,
    compare_payloads,
    render_comparison,
)
