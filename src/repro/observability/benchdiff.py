"""Baseline comparison over the ``BENCH_*.json`` benchmark schema.

``benchmarks/conftest.py`` writes every benchmark session's timing
records as::

    {
      "machine":  {platform, python, cpu_count, processor},
      "records":  {<record name>: {...timings..., "speedup": X}, ...},
      "speedups": {<record name>: <derived speedup>, ...}
    }

This module diffs two such payloads on every speedup they carry —
the top-level ``speedups`` map *and* the nested per-kernel speedups
inside each record (``records[name]["kernels"]``, the shape
``BENCH_macro.json``/``BENCH_turbo.json`` write, flattened to
``name/kernel``; see :func:`collect_speedups`) — and classifies each
delta.  A *regression* is a record whose new speedup fell below
``old * (1 - tolerance)``; records missing from the new payload are
regressions too (a perf gate that silently stops measuring is worse
than one that fails).  Records only present in the new payload are
informational ``added`` rows, so a kernel joining or leaving the
suite is always reported, never silently skipped.

``repro bench compare OLD.json NEW.json [--tolerance PCT]`` is the CLI
wrapper; CI's ``bench-smoke`` job runs it against the committed
baselines with a loose tolerance, making perf regressions a red build
instead of a silent drift (see ``docs/observability.md``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Union

__all__ = [
    "RecordDelta",
    "BenchComparison",
    "collect_speedups",
    "compare_payloads",
    "compare_files",
    "render_comparison",
]

#: Default allowed relative slowdown before a record regresses (10%).
DEFAULT_TOLERANCE = 0.10


@dataclass(frozen=True)
class RecordDelta:
    """One record's old-vs-new speedup outcome."""

    name: str
    old: float
    new: float
    #: "ok", "improved", "regression", "missing" (gone from new),
    #: or "added" (new-only, informational).
    status: str

    @property
    def delta_pct(self) -> float:
        """Relative speedup change in percent (new vs. old)."""
        if not self.old:
            return 0.0
        return (self.new - self.old) / self.old * 100.0


@dataclass
class BenchComparison:
    """Every record delta plus the gate verdict."""

    deltas: List[RecordDelta]
    tolerance: float

    @property
    def regressions(self) -> List[RecordDelta]:
        return [d for d in self.deltas
                if d.status in ("regression", "missing")]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def to_dict(self) -> dict:
        return {
            "tolerance": self.tolerance,
            "ok": self.ok,
            "records": [
                {"name": d.name, "old": d.old, "new": d.new,
                 "delta_pct": round(d.delta_pct, 2), "status": d.status}
                for d in self.deltas
            ],
        }


def collect_speedups(payload: dict, label: str = "payload"
                     ) -> Dict[str, float]:
    """Every gateable speedup in *payload*, flattened to one map.

    Three sources, merged (names never collide in practice — the
    flat map's keys are record names, and kernel entries get compound
    ``record/kernel`` names):

    * the top-level ``speedups`` map (one derived speedup per record);
    * each record's own ``"speedup"`` scalar — same name, same value as
      the flat map when both exist;
    * each record's nested per-kernel dicts
      (``records[name]["kernels"][kernel]["speedup"]``, the shape
      ``BENCH_macro.json`` and ``BENCH_turbo.json`` write), as
      ``"name/kernel"`` — so a kernel that regresses, appears, or
      vanishes is reported per kernel instead of being averaged into
      (or silently dropped from) the aggregate.
    """
    out: Dict[str, float] = {}
    speedups = payload.get("speedups")
    if isinstance(speedups, dict):
        for name, value in speedups.items():
            try:
                out[name] = float(value)
            except (TypeError, ValueError):
                raise ValueError(
                    f"{label}: speedup for {name!r} is not numeric: "
                    f"{value!r}"
                ) from None
    records = payload.get("records")
    if isinstance(records, dict):
        for rname, record in records.items():
            if not isinstance(record, dict):
                continue
            value = record.get("speedup")
            if isinstance(value, (int, float)) \
                    and not isinstance(value, bool):
                out[rname] = float(value)
            kernels = record.get("kernels")
            if not isinstance(kernels, dict):
                continue
            for kname, kernel in kernels.items():
                if not isinstance(kernel, dict):
                    continue
                kvalue = kernel.get("speedup")
                if isinstance(kvalue, (int, float)) \
                        and not isinstance(kvalue, bool):
                    out[f"{rname}/{kname}"] = float(kvalue)
    if not out:
        raise ValueError(f"{label}: no 'speedups' map or per-record "
                         f"speedups — not a BENCH_*.json payload "
                         f"(see benchmarks/conftest.py)")
    return out


def compare_payloads(old: dict, new: dict,
                     tolerance: float = DEFAULT_TOLERANCE
                     ) -> BenchComparison:
    """Diff two BENCH payloads; *tolerance* is a fraction (0.10 = 10%)."""
    if tolerance < 0:
        raise ValueError(f"tolerance must be >= 0, got {tolerance}")
    old_speedups = collect_speedups(old, "baseline")
    new_speedups = collect_speedups(new, "candidate")
    deltas: List[RecordDelta] = []
    for name in sorted(set(old_speedups) | set(new_speedups)):
        if name not in new_speedups:
            deltas.append(RecordDelta(name, old_speedups[name], 0.0,
                                      "missing"))
            continue
        if name not in old_speedups:
            deltas.append(RecordDelta(name, 0.0, new_speedups[name],
                                      "added"))
            continue
        old_v, new_v = old_speedups[name], new_speedups[name]
        if new_v < old_v * (1.0 - tolerance):
            status = "regression"
        elif new_v > old_v * (1.0 + tolerance):
            status = "improved"
        else:
            status = "ok"
        deltas.append(RecordDelta(name, old_v, new_v, status))
    return BenchComparison(deltas, tolerance)


def compare_files(old_path: Union[str, Path], new_path: Union[str, Path],
                  tolerance: float = DEFAULT_TOLERANCE) -> BenchComparison:
    """Load and diff two BENCH_*.json files."""
    old = json.loads(Path(old_path).read_text(encoding="utf-8"))
    new = json.loads(Path(new_path).read_text(encoding="utf-8"))
    return compare_payloads(old, new, tolerance)


def render_comparison(comparison: BenchComparison) -> str:
    """Per-record table plus the gate verdict line."""
    lines = [f"{'record':<28}{'old':>9}{'new':>9}{'delta':>9}  status"]
    for d in comparison.deltas:
        old = f"{d.old:.2f}x" if d.status != "added" else "-"
        new = f"{d.new:.2f}x" if d.status != "missing" else "-"
        delta = (f"{d.delta_pct:+.1f}%"
                 if d.status in ("ok", "improved", "regression") else "-")
        lines.append(f"{d.name:<28}{old:>9}{new:>9}{delta:>9}  {d.status}")
    bad = comparison.regressions
    if bad:
        lines.append(
            f"FAIL: {len(bad)} regression{'s' if len(bad) != 1 else ''} "
            f"beyond {comparison.tolerance:.0%} tolerance: "
            + ", ".join(d.name for d in bad))
    else:
        lines.append(f"OK: no regressions beyond "
                     f"{comparison.tolerance:.0%} tolerance "
                     f"({len(comparison.deltas)} records)")
    return "\n".join(lines)
