"""Lightweight counter/timer registry for the simulator's hot subsystems.

One process-wide :class:`Telemetry` instance (or rather its no-op stand-in,
:class:`NullTelemetry`) is reachable through :func:`get`.  Subsystems call
``get().count(...)`` / ``observe(...)`` / ``span(...)`` at *coarse* points
only — per translation attempt, per fused-block compile, per whole-loop
kernel invocation, per run — never per simulated instruction, so the
instrumented build stays within noise of the uninstrumented one.

Disabled (the default) the registry is a module-level no-op shim whose
methods do nothing and allocate nothing; hot call sites additionally gate
on ``get().enabled`` so even the no-op call is skipped where it would
recur per block.  :func:`enable` swaps in a recording instance,
:func:`disable` restores the shim.  Enabling telemetry never changes
simulation results: the differential test in ``tests/test_telemetry.py``
pins cycle counts and run-cache bytes identical either way.

Three primitive kinds:

* **counters** — monotonically increasing named integers
  (``count(name, n)``); `.`-separated names form the catalog in
  ``docs/observability.md`` (e.g. ``turbo.superblock.compiles``,
  ``translate.abort.no-loop``).
* **histograms** — value distributions kept as count/total/min/max
  (``observe(name, value)``), e.g. macro-kernel trip counts and
  microcode-cache occupancy.
* **spans** — wall-clock phases (``with span(name): ...``).  Spans
  nest: entering ``b`` inside ``a`` records under ``a.b``, so the dump
  shows the phase tree without any external correlation.

``to_dict()`` / ``from_dict()`` round-trip the registry through JSON
(the ``repro telemetry --json`` output), ``merge()`` folds one registry
into another (worker processes), and ``marker()`` / ``delta_since()``
give cheap per-run attribution on top of process-wide accumulation.
"""

from __future__ import annotations

import time
from typing import Dict

__all__ = [
    "Telemetry",
    "NullTelemetry",
    "get",
    "enable",
    "disable",
    "is_enabled",
]


class _Span:
    """Context manager timing one phase; reusable, not thread-safe."""

    __slots__ = ("_telemetry", "_name", "_start")

    def __init__(self, telemetry: "Telemetry", name: str) -> None:
        self._telemetry = telemetry
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "_Span":
        self._telemetry._push(self._name)
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        elapsed = time.perf_counter() - self._start
        self._telemetry._pop(self._name, elapsed)


class _NullSpan:
    """Shared do-nothing span for the disabled registry."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NULL_SPAN = _NullSpan()


class NullTelemetry:
    """No-op shim installed while telemetry is disabled.

    Accepts the full :class:`Telemetry` API (the shim-parity test feeds
    both the same call sequence) and records nothing.  ``enabled`` is a
    class attribute so hot sites can branch on one attribute load.
    """

    enabled = False

    def count(self, name: str, n: int = 1) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass

    def span(self, name: str) -> _NullSpan:
        return _NULL_SPAN

    def record_span(self, name: str, seconds: float) -> None:
        pass

    def marker(self) -> dict:
        return {}

    def delta_since(self, marker: dict) -> dict:
        return {}

    def to_dict(self) -> dict:
        return {"counters": {}, "histograms": {}, "spans": {}}

    def reset(self) -> None:
        pass


class Telemetry:
    """Recording registry: named counters, histograms, wall-clock spans."""

    enabled = True

    def __init__(self) -> None:
        self.counters: Dict[str, int] = {}
        #: name -> [count, total, min, max]
        self.histograms: Dict[str, list] = {}
        #: dotted span path -> [entries, total_seconds]
        self.spans: Dict[str, list] = {}
        self._span_stack: list = []

    # -- recording ---------------------------------------------------------

    def count(self, name: str, n: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + n

    def observe(self, name: str, value: float) -> None:
        h = self.histograms.get(name)
        if h is None:
            self.histograms[name] = [1, value, value, value]
        else:
            h[0] += 1
            h[1] += value
            if value < h[2]:
                h[2] = value
            if value > h[3]:
                h[3] = value

    def span(self, name: str) -> _Span:
        return _Span(self, name)

    def record_span(self, name: str, seconds: float) -> None:
        """Record a completed phase measured externally (no nesting)."""
        self._accumulate_span(name, seconds)

    def _push(self, name: str) -> None:
        path = (f"{self._span_stack[-1][0]}.{name}"
                if self._span_stack else name)
        self._span_stack.append((path, name))

    def _pop(self, name: str, elapsed: float) -> None:
        path, opened = self._span_stack.pop()
        # Exiting out of order would mis-attribute child time; spans are
        # context managers, so this only fires on API misuse.
        if opened != name:
            raise RuntimeError(
                f"span {name!r} exited while {opened!r} was innermost")
        self._accumulate_span(path, elapsed)

    def _accumulate_span(self, path: str, elapsed: float) -> None:
        s = self.spans.get(path)
        if s is None:
            self.spans[path] = [1, elapsed]
        else:
            s[0] += 1
            s[1] += elapsed

    # -- per-run attribution ----------------------------------------------

    def marker(self) -> dict:
        """Snapshot of counter values, for :meth:`delta_since`."""
        return dict(self.counters)

    def delta_since(self, marker: dict) -> dict:
        """Counters that advanced since *marker* (name -> increment)."""
        get_prev = marker.get
        return {
            name: value - get_prev(name, 0)
            for name, value in self.counters.items()
            if value != get_prev(name, 0)
        }

    # -- serialization / aggregation --------------------------------------

    def to_dict(self) -> dict:
        """JSON-safe representation (inverse of :meth:`from_dict`)."""
        return {
            "counters": dict(sorted(self.counters.items())),
            "histograms": {
                name: {"count": h[0], "total": h[1],
                       "min": h[2], "max": h[3]}
                for name, h in sorted(self.histograms.items())
            },
            "spans": {
                path: {"entries": s[0], "seconds": s[1]}
                for path, s in sorted(self.spans.items())
            },
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Telemetry":
        t = cls()
        t.counters = dict(data.get("counters", {}))
        t.histograms = {
            name: [h["count"], h["total"], h["min"], h["max"]]
            for name, h in data.get("histograms", {}).items()
        }
        t.spans = {
            path: [s["entries"], s["seconds"]]
            for path, s in data.get("spans", {}).items()
        }
        return t

    def merge(self, other: "Telemetry") -> None:
        """Fold *other*'s records into this registry (cross-process)."""
        for name, value in other.counters.items():
            self.count(name, value)
        for name, h in other.histograms.items():
            mine = self.histograms.get(name)
            if mine is None:
                self.histograms[name] = list(h)
            else:
                mine[0] += h[0]
                mine[1] += h[1]
                mine[2] = min(mine[2], h[2])
                mine[3] = max(mine[3], h[3])
        for path, s in other.spans.items():
            mine = self.spans.get(path)
            if mine is None:
                self.spans[path] = list(s)
            else:
                mine[0] += s[0]
                mine[1] += s[1]

    def reset(self) -> None:
        self.counters.clear()
        self.histograms.clear()
        self.spans.clear()
        self._span_stack.clear()

    # -- rendering ---------------------------------------------------------

    def render_text(self) -> str:
        """Human-readable dump (the default `repro telemetry` output)."""
        lines = ["telemetry"]
        if self.counters:
            lines.append("  counters:")
            width = max(len(n) for n in self.counters)
            for name in sorted(self.counters):
                lines.append(f"    {name:<{width}}  "
                             f"{self.counters[name]:>12,}")
        if self.histograms:
            lines.append("  histograms:")
            for name in sorted(self.histograms):
                count, total, lo, hi = self.histograms[name]
                mean = total / count if count else 0.0
                lines.append(
                    f"    {name}: n={count:,} mean={mean:,.2f} "
                    f"min={lo:,g} max={hi:,g}")
        if self.spans:
            lines.append("  spans:")
            for path in sorted(self.spans):
                entries, seconds = self.spans[path]
                lines.append(
                    f"    {path}: {seconds:.3f}s over {entries:,} "
                    f"entr{'y' if entries == 1 else 'ies'}")
        if len(lines) == 1:
            lines.append("  (empty)")
        return "\n".join(lines)


_NULL = NullTelemetry()
_current = _NULL


def get():
    """The active registry: a :class:`Telemetry` or the no-op shim."""
    return _current


def is_enabled() -> bool:
    return _current.enabled


def enable() -> Telemetry:
    """Install (or return the already-active) recording registry."""
    global _current
    if not _current.enabled:
        _current = Telemetry()
    return _current


def disable() -> None:
    """Restore the no-op shim (recorded data is discarded)."""
    global _current
    _current = _NULL
