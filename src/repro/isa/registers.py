"""Register definitions for the scalar and vector register files.

The baseline machine mirrors the paper's assumptions: 16 architectural
integer registers (``r0``-``r15``, with ``r14`` doubling as the link
register) and 16 scalar floating-point registers (``f0``-``f15``).  The
SIMD accelerator owns two separate banks of vector registers, ``v0``-``v15``
(integer lanes) and ``vf0``-``vf15`` (float lanes), matching the paper's
"separate register files" assumption (section 3.1).

Registers are represented as plain strings throughout the code base
("r3", "vf2", ...); this module centralizes naming rules, bank
predicates, and the scalar-name -> vector-name mapping the dynamic
translator relies on (a scalar register ``f3`` virtualizes vector
register ``vf3``).
"""

from __future__ import annotations

from typing import Dict

NUM_REGS_PER_BANK = 16

INT_REGS = tuple(f"r{i}" for i in range(NUM_REGS_PER_BANK))
FLOAT_REGS = tuple(f"f{i}" for i in range(NUM_REGS_PER_BANK))
VEC_INT_REGS = tuple(f"v{i}" for i in range(NUM_REGS_PER_BANK))
VEC_FLOAT_REGS = tuple(f"vf{i}" for i in range(NUM_REGS_PER_BANK))

#: ``bl``/``blo`` write the return address here, ``ret`` reads it back.
LINK_REGISTER = "r14"

#: Flag names produced by ``cmp``/``fcmp``.
FLAG_LT = "lt"
FLAG_EQ = "eq"
FLAG_GT = "gt"

_ALL_SCALAR = frozenset(INT_REGS) | frozenset(FLOAT_REGS)
_ALL_VECTOR = frozenset(VEC_INT_REGS) | frozenset(VEC_FLOAT_REGS)


def int_reg(index: int) -> str:
    """Return the name of integer register *index* (``0 <= index < 16``)."""
    if not 0 <= index < NUM_REGS_PER_BANK:
        raise ValueError(f"integer register index out of range: {index}")
    return INT_REGS[index]


def float_reg(index: int) -> str:
    """Return the name of float register *index* (``0 <= index < 16``)."""
    if not 0 <= index < NUM_REGS_PER_BANK:
        raise ValueError(f"float register index out of range: {index}")
    return FLOAT_REGS[index]


def is_int_reg(name: str) -> bool:
    """True for ``r0``-``r15``."""
    return name in INT_REGS


def is_float_reg(name: str) -> bool:
    """True for ``f0``-``f15``."""
    return name in FLOAT_REGS


def is_scalar_reg(name: str) -> bool:
    """True for any scalar (integer or float) register name."""
    return name in _ALL_SCALAR


def is_vector_reg(name: str) -> bool:
    """True for any vector (``v*``/``vf*``) register name."""
    return name in _ALL_VECTOR


def reg_index(name: str) -> int:
    """Return the architectural index of any register name.

    >>> reg_index("r3")
    3
    >>> reg_index("vf11")
    11
    """
    if name.startswith("vf") or name.startswith("v"):
        digits = name[2:] if name.startswith("vf") else name[1:]
    elif name.startswith("r") or name.startswith("f"):
        digits = name[1:]
    else:
        raise ValueError(f"not a register name: {name!r}")
    if not digits.isdigit():
        raise ValueError(f"not a register name: {name!r}")
    index = int(digits)
    if not 0 <= index < NUM_REGS_PER_BANK:
        raise ValueError(f"register index out of range: {name!r}")
    return index


def vector_reg_for(scalar_name: str) -> str:
    """Map a scalar register to the vector register it virtualizes.

    The dynamic translator uses a fixed one-to-one mapping, exactly as in
    the paper's worked example (scalar ``f3`` becomes vector ``vf3``,
    scalar ``r1`` becomes vector ``v1``).
    """
    if is_int_reg(scalar_name):
        return VEC_INT_REGS[reg_index(scalar_name)]
    if is_float_reg(scalar_name):
        return VEC_FLOAT_REGS[reg_index(scalar_name)]
    raise ValueError(f"not a scalar register: {scalar_name!r}")


def scalar_reg_for(vector_name: str) -> str:
    """Inverse of :func:`vector_reg_for`."""
    if vector_name in VEC_FLOAT_REGS:
        return FLOAT_REGS[reg_index(vector_name)]
    if vector_name in VEC_INT_REGS:
        return INT_REGS[reg_index(vector_name)]
    raise ValueError(f"not a vector register: {vector_name!r}")


class RegisterFile:
    """Architectural scalar register state (integer + float banks + flags).

    Integer registers hold Python ints wrapped to signed 32-bit on write;
    float registers hold Python floats (IEEE binary32 rounding is applied
    by the interpreter's arithmetic helpers, not by the register file).
    """

    def __init__(self) -> None:
        self.ints: Dict[str, int] = {name: 0 for name in INT_REGS}
        self.floats: Dict[str, float] = {name: 0.0 for name in FLOAT_REGS}
        self.flags: Dict[str, bool] = {FLAG_LT: False, FLAG_EQ: False, FLAG_GT: False}

    def read(self, name: str):
        """Read a scalar register by name."""
        if name in self.ints:
            return self.ints[name]
        if name in self.floats:
            return self.floats[name]
        raise KeyError(f"unknown scalar register: {name!r}")

    def write(self, name: str, value) -> None:
        """Write a scalar register, wrapping integers to signed 32 bits."""
        if name in self.ints:
            self.ints[name] = _wrap32(int(value))
        elif name in self.floats:
            self.floats[name] = float(value)
        else:
            raise KeyError(f"unknown scalar register: {name!r}")

    def set_flags(self, lhs, rhs) -> None:
        """Record the result of comparing *lhs* against *rhs*."""
        self.flags[FLAG_LT] = lhs < rhs
        self.flags[FLAG_EQ] = lhs == rhs
        self.flags[FLAG_GT] = lhs > rhs

    def flag(self, name: str) -> bool:
        return self.flags[name]

    def snapshot(self) -> Dict[str, object]:
        """Return a copy of all register values (for tests and debugging)."""
        state: Dict[str, object] = {}
        state.update(self.ints)
        state.update(self.floats)
        return state


def _wrap32(value: int) -> int:
    """Wrap an integer to signed 32-bit two's complement."""
    value &= 0xFFFFFFFF
    if value >= 0x80000000:
        value -= 0x100000000
    return value


def wrap32(value: int) -> int:
    """Public alias of the signed 32-bit wrap used across the simulator."""
    return _wrap32(value)


def unsigned32(value: int) -> int:
    """Reinterpret a (possibly negative) integer as unsigned 32-bit."""
    return value & 0xFFFFFFFF
