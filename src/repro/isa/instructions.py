"""Instruction and operand model shared by the scalar and SIMD ISAs.

Instructions are immutable value objects.  Operands are one of:

* :class:`Reg`    — a scalar or vector register, e.g. ``Reg("r3")``.
* :class:`Imm`    — a scalar immediate (int or float).
* :class:`VImm`   — a per-lane vector immediate, materialized by the
  dynamic translator for SIMD operations whose constant cannot be
  expressed as a scalar immediate (Table 1, category 3).
* :class:`Sym`    — the address of a data-segment symbol (array base).
* :class:`Label`  — a code label, used as branch/call targets.

Memory operands follow the paper's ``[base + index]`` form: a base
(:class:`Sym` or :class:`Reg`) plus an optional index (:class:`Reg` or
:class:`Imm`).  The effective address is ``base + index * scale`` where
*scale* is the element size in bytes of the access, so that induction
variables count *elements*, exactly as in the paper's examples.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple, Union


@dataclass(frozen=True)
class Reg:
    """A register operand (scalar or vector)."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Imm:
    """A scalar immediate operand."""

    value: Union[int, float]

    def __str__(self) -> str:
        return f"#{self.value}"


@dataclass(frozen=True)
class VImm:
    """A per-lane vector immediate (one value per hardware lane).

    These never appear in binaries produced by the scalarizer — only the
    dynamic translator (or the native SIMD code generator) creates them,
    after observing the lane values loaded from a ``cnst``/``mask`` array.
    """

    lanes: Tuple[Union[int, float], ...]

    def __str__(self) -> str:
        body = ",".join(str(v) for v in self.lanes)
        return f"#<{body}>"


@dataclass(frozen=True)
class Sym:
    """The address of a named data-segment array."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Label:
    """A code label used as a branch or call target."""

    name: str

    def __str__(self) -> str:
        return self.name


Operand = Union[Reg, Imm, VImm, Sym, Label]
Base = Union[Reg, Sym]
Index = Union[Reg, Imm, None]


@dataclass(frozen=True)
class Mem:
    """A ``[base + index]`` memory operand (element-scaled index)."""

    base: Base
    index: Index = None

    def __str__(self) -> str:
        if self.index is None:
            return f"[{self.base}]"
        return f"[{self.base} + {self.index}]"


@dataclass(frozen=True)
class Instruction:
    """A single machine instruction.

    Attributes:
        opcode: canonical mnemonic, e.g. ``"add"``, ``"vmul"``, ``"blt"``.
        dst: destination register, or ``None`` for stores/branches/etc.
        srcs: source operands in positional order.
        mem: memory operand for loads/stores, else ``None``.
        target: branch/call target label name, else ``None``.
        elem: element type for memory accesses and vector operations —
            one of ``"i8"``, ``"i16"``, ``"i32"``, ``"f32"`` — or ``None``
            for untyped scalar operations.
        comment: free-form annotation carried through code generation;
            ignored by all semantics.
    """

    opcode: str
    dst: Optional[Reg] = None
    srcs: Tuple[Operand, ...] = field(default_factory=tuple)
    mem: Optional[Mem] = None
    target: Optional[str] = None
    elem: Optional[str] = None
    #: Annotation only — excluded from equality so semantically identical
    #: instructions compare equal regardless of commentary.
    comment: str = field(default="", compare=False)

    def with_comment(self, comment: str) -> "Instruction":
        """Return a copy of this instruction carrying *comment*."""
        return Instruction(
            opcode=self.opcode,
            dst=self.dst,
            srcs=self.srcs,
            mem=self.mem,
            target=self.target,
            elem=self.elem,
            comment=comment,
        )

    def reads(self) -> Tuple[str, ...]:
        """Names of registers this instruction reads (sources + address)."""
        regs = [op.name for op in self.srcs if isinstance(op, Reg)]
        if self.mem is not None:
            if isinstance(self.mem.base, Reg):
                regs.append(self.mem.base.name)
            if isinstance(self.mem.index, Reg):
                regs.append(self.mem.index.name)
        return tuple(regs)

    def writes(self) -> Tuple[str, ...]:
        """Names of registers this instruction writes."""
        return (self.dst.name,) if self.dst is not None else ()

    def __str__(self) -> str:
        return format_instruction(self)


def format_instruction(instr: Instruction) -> str:
    """Render an instruction in the paper's assembly-like syntax."""
    op = instr.opcode
    if instr.elem is not None and not op.startswith("ld") and not op.startswith("st"):
        op = f"{op}.{instr.elem}"
    parts = []
    if instr.dst is not None:
        parts.append(str(instr.dst))
    parts.extend(str(s) for s in instr.srcs)
    if instr.mem is not None:
        parts.append(str(instr.mem))
    if instr.target is not None:
        parts.append(instr.target)
    body = f"{op} " + ", ".join(parts) if parts else op
    if instr.comment:
        body = f"{body:<40s} ; {instr.comment}"
    return body.rstrip()
