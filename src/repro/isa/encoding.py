"""Binary encoding of programs.

Two distinct services live here:

* :func:`encoded_size` — the *architectural* size accounting used by the
  paper's code-size experiment: every instruction occupies exactly 32
  bits (as on ARM), plus the data segment (application arrays and the
  scalarizer's read-only ``bfly``/``cnst``/``mask`` arrays), with arrays
  aligned to the maximum vectorizable length as section 3.1 requires.

* :func:`encode_program` / :func:`decode_program` — a compact, fully
  reversible serialization of a program.  It exists so the translator's
  partial decoder can be exercised against genuinely *decoded* bits (and
  so round-trip tests can prove no information is lost in the scalar
  representation, mirroring the paper's "no information is lost" claim).
"""

from __future__ import annotations

import struct
from typing import List, Tuple

from repro.isa.instructions import Imm, Instruction, Label, Mem, Reg, Sym, VImm
from repro.isa.opcodes import OPCODES
from repro.isa.program import DataArray, Program

#: Architectural instruction width in bytes (as on ARM).
INSTRUCTION_BYTES = 4

_MAGIC = b"LQSD"
_VERSION = 3

_OPCODE_IDS = {name: i for i, name in enumerate(sorted(OPCODES))}
_OPCODE_NAMES = {i: name for name, i in _OPCODE_IDS.items()}

_ELEM_IDS = {None: 0, "i8": 1, "i16": 2, "i32": 3, "f32": 4}
_ELEM_NAMES = {i: name for name, i in _ELEM_IDS.items()}

# Operand type tags.
_T_REG, _T_IMM_I, _T_IMM_F, _T_VIMM, _T_SYM, _T_LABEL, _T_MEM, _T_NONE = range(8)


def encoded_size(program: Program, mvl: int = 1) -> int:
    """Architectural binary size in bytes: code + aligned data segment.

    Each instruction is 4 bytes.  Each data array is padded to a multiple
    of ``mvl`` elements — the alignment the compiler must enforce when
    compiling to a maximum vectorizable length (paper section 3.1), which
    is one of the paper's three sources of code-size overhead.
    """
    code = len(program.instructions) * INSTRUCTION_BYTES
    data = 0
    for arr in program.data.values():
        count = len(arr)
        if mvl > 1:
            count = ((count + mvl - 1) // mvl) * mvl
        data += count * arr.elem_size
    return code + data


# --------------------------------------------------------------------------
# Reversible serialization
# --------------------------------------------------------------------------


class _Writer:
    def __init__(self) -> None:
        self.buf = bytearray()

    def u8(self, v: int) -> None:
        self.buf.append(v & 0xFF)

    def u32(self, v: int) -> None:
        self.buf += struct.pack("<I", v & 0xFFFFFFFF)

    def i64(self, v: int) -> None:
        self.buf += struct.pack("<q", v)

    def f64(self, v: float) -> None:
        self.buf += struct.pack("<d", v)

    def text(self, s: str) -> None:
        raw = s.encode("utf-8")
        self.u32(len(raw))
        self.buf += raw


class _Reader:
    def __init__(self, data: bytes) -> None:
        self.data = data
        self.pos = 0

    def u8(self) -> int:
        v = self.data[self.pos]
        self.pos += 1
        return v

    def u32(self) -> int:
        (v,) = struct.unpack_from("<I", self.data, self.pos)
        self.pos += 4
        return v

    def i64(self) -> int:
        (v,) = struct.unpack_from("<q", self.data, self.pos)
        self.pos += 8
        return v

    def f64(self) -> float:
        (v,) = struct.unpack_from("<d", self.data, self.pos)
        self.pos += 8
        return v

    def text(self) -> str:
        n = self.u32()
        raw = self.data[self.pos:self.pos + n]
        self.pos += n
        return raw.decode("utf-8")


def _write_operand(w: _Writer, operand) -> None:
    if operand is None:
        w.u8(_T_NONE)
    elif isinstance(operand, Reg):
        w.u8(_T_REG)
        w.text(operand.name)
    elif isinstance(operand, Imm):
        if isinstance(operand.value, float):
            w.u8(_T_IMM_F)
            w.f64(operand.value)
        else:
            w.u8(_T_IMM_I)
            w.i64(operand.value)
    elif isinstance(operand, VImm):
        w.u8(_T_VIMM)
        w.u32(len(operand.lanes))
        for lane in operand.lanes:
            if isinstance(lane, float):
                w.u8(1)
                w.f64(lane)
            else:
                w.u8(0)
                w.i64(lane)
    elif isinstance(operand, Sym):
        w.u8(_T_SYM)
        w.text(operand.name)
    elif isinstance(operand, Label):
        w.u8(_T_LABEL)
        w.text(operand.name)
    elif isinstance(operand, Mem):
        w.u8(_T_MEM)
        _write_operand(w, operand.base)
        _write_operand(w, operand.index)
    else:
        raise TypeError(f"cannot encode operand {operand!r}")


def _read_operand(r: _Reader):
    tag = r.u8()
    if tag == _T_NONE:
        return None
    if tag == _T_REG:
        return Reg(r.text())
    if tag == _T_IMM_I:
        return Imm(r.i64())
    if tag == _T_IMM_F:
        return Imm(r.f64())
    if tag == _T_VIMM:
        n = r.u32()
        lanes: List = []
        for _ in range(n):
            lanes.append(r.f64() if r.u8() else r.i64())
        return VImm(tuple(lanes))
    if tag == _T_SYM:
        return Sym(r.text())
    if tag == _T_LABEL:
        return Label(r.text())
    if tag == _T_MEM:
        base = _read_operand(r)
        index = _read_operand(r)
        return Mem(base=base, index=index)
    raise ValueError(f"bad operand tag {tag}")


def encode_instruction(instr: Instruction) -> bytes:
    """Serialize a single instruction (round-trips via decode_instruction)."""
    w = _Writer()
    w.u8(_OPCODE_IDS[instr.opcode])
    w.u8(_ELEM_IDS[instr.elem])
    _write_operand(w, instr.dst)
    w.u8(len(instr.srcs))
    for src in instr.srcs:
        _write_operand(w, src)
    _write_operand(w, instr.mem)
    if instr.target is None:
        w.u8(0)
    else:
        w.u8(1)
        w.text(instr.target)
    return bytes(w.buf)


def decode_instruction(data: bytes) -> Instruction:
    """Inverse of :func:`encode_instruction`."""
    instr, _ = _decode_instruction(_Reader(data))
    return instr


def _decode_instruction(r: _Reader) -> Tuple[Instruction, int]:
    opcode = _OPCODE_NAMES[r.u8()]
    elem = _ELEM_NAMES[r.u8()]
    dst = _read_operand(r)
    nsrcs = r.u8()
    srcs = tuple(_read_operand(r) for _ in range(nsrcs))
    mem = _read_operand(r)
    target = r.text() if r.u8() else None
    return (
        Instruction(opcode=opcode, dst=dst, srcs=srcs, mem=mem, target=target,
                    elem=elem),
        r.pos,
    )


def encode_program(program: Program) -> bytes:
    """Serialize a whole program, including labels and data arrays."""
    w = _Writer()
    w.buf += _MAGIC
    w.u8(_VERSION)
    w.text(program.name)
    w.text(program.entry)
    w.u32(len(program.labels))
    for name, index in sorted(program.labels.items()):
        w.text(name)
        w.u32(index)
    w.u32(len(program.outlined_functions))
    for name in program.outlined_functions:
        w.text(name)
    w.u32(len(program.data))
    for arr in program.data.values():
        w.text(arr.name)
        w.text(arr.elem)
        w.u8(1 if arr.read_only else 0)
        w.u32(len(arr.values))
        for value in arr.values:
            if arr.elem == "f32":
                w.f64(float(value))
            else:
                w.i64(int(value))
    w.u32(len(program.instructions))
    for instr in program.instructions:
        w.buf += encode_instruction(instr)
    return bytes(w.buf)


def decode_program(data: bytes) -> Program:
    """Inverse of :func:`encode_program`."""
    r = _Reader(data)
    if bytes(r.data[:4]) != _MAGIC:
        raise ValueError("bad magic: not an encoded program")
    r.pos = 4
    version = r.u8()
    if version != _VERSION:
        raise ValueError(f"unsupported encoding version {version}")
    program = Program(r.text())
    program.entry = r.text()
    nlabels = r.u32()
    labels = {}
    for _ in range(nlabels):
        name = r.text()
        labels[name] = r.u32()
    program.labels = labels
    for _ in range(r.u32()):
        program.outlined_functions.append(r.text())
    for _ in range(r.u32()):
        name = r.text()
        elem = r.text()
        read_only = bool(r.u8())
        count = r.u32()
        if elem == "f32":
            values = [r.f64() for _ in range(count)]
        else:
            values = [r.i64() for _ in range(count)]
        program.add_array(DataArray(name, elem, values, read_only=read_only))
    ninstr = r.u32()
    for _ in range(ninstr):
        instr, _pos = _decode_instruction(r)
        program.emit(instr)
    return program
