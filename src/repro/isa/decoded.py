"""Pre-decoded fast-path execution tables.

The reference interpreter (:class:`repro.interp.executor.Executor`)
re-derives everything about an instruction on every execution: a
string-keyed ``OPCODES`` lookup, an ``isinstance`` walk over the
operands, condition-code parsing, and per-element Python loops for
vector operations.  That is the single hottest path of every simulation.

This module performs all of that work **once per program** in a decode
pass: :func:`predecode` compiles a :class:`~repro.isa.program.Program`
into a dense table of handler closures (one per instruction) with

* operands resolved to register-bank accessors / constants,
* the opcode resolved to a specialized handler body,
* condition codes pre-bound to their flag predicates,
* branch/call targets resolved to instruction indices,
* vector operations lowered to numpy-backed kernels
  (:mod:`repro.simd.vector_ops` fast lowerings), and
* per-instruction timing metadata (:class:`InstrMeta`) pre-extracted for
  the pipeline model.

The handlers reproduce the reference semantics *bit-identically* —
including the order of error checks, error types, and the full
:class:`~repro.interp.events.RetireEvent` contents — which the
differential conformance suite (``tests/test_engine_differential.py``)
enforces across the whole benchmark suite.  Decode-time failures
(malformed operands, unknown opcodes) are never raised eagerly: they are
deferred into handlers that raise on *execution*, exactly where the
reference engine would, so a program containing an unreachable bad
instruction still runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Callable, List, Optional, Tuple

import numpy as np

from repro import arith
from repro.interp.errors import ExecutionError
from repro.interp.events import RetireEvent
from repro.isa.instructions import Imm, Instruction, Mem, Reg, Sym, VImm
from repro.isa.opcodes import (
    ELEM_SIZES,
    LOAD_ELEM,
    OPCODES,
    STORE_ELEM,
    InstrClass,
)
from repro.isa.registers import (
    LINK_REGISTER,
    is_float_reg,
    is_int_reg,
    is_vector_reg,
)
from repro.memory.alignment import vector_alignment_ok
from repro.simd import vector_ops
from repro.simd.permutations import PermPattern

#: Condition suffix -> flag predicate (shared with the reference engine).
COND_CODES = {
    "eq": lambda f: f["eq"],
    "ne": lambda f: not f["eq"],
    "lt": lambda f: f["lt"],
    "le": lambda f: f["lt"] or f["eq"],
    "gt": lambda f: f["gt"],
    "ge": lambda f: f["gt"] or f["eq"],
}

FLOAT_UNARY_OPS = {"fneg", "fabs"}
FLOAT_BITWISE_OPS = {"fand", "forr"}
VEC_BINARY_OPS = {"vadd", "vsub", "vmul", "vand", "vorr", "veor", "vbic",
                  "vshl", "vshr", "vmin", "vmax", "vqadd", "vqsub", "vmask",
                  "vabd"}
VEC_UNARY_OPS = {"vabs", "vneg"}
VEC_PERM_OPS = {"vbfly", "vrev", "vrot"}
VEC_RED_OPS = {"vredsum", "vredmin", "vredmax"}


def mask_bits(value) -> int:
    """Interpret *value* as a 32-bit mask pattern."""
    if isinstance(value, float):
        return arith.float_bits(value)
    return int(value) & 0xFFFFFFFF


def _w32(value: int) -> int:
    """``arith.wrap_int(value, "i32")`` without the width-table lookup."""
    value &= 0xFFFFFFFF
    return value - 0x100000000 if value >= 0x80000000 else value


#: opcode -> fused i32 semantics, each identical to
#: ``arith.int_op(opcode, a, b, "i32")`` (the differential suite checks
#: this); pre-binding skips the opcode if-chain per executed ALU op.
_INT_ALU_FAST = {
    "add": lambda a, b: _w32(a + b),
    "sub": lambda a, b: _w32(a - b),
    "rsb": lambda a, b: _w32(b - a),
    "mul": lambda a, b: _w32(a * b),
    "and": lambda a, b: _w32(a & b),
    "orr": lambda a, b: _w32(a | b),
    "eor": lambda a, b: _w32(a ^ b),
    "bic": lambda a, b: _w32(a & ~b),
    "lsl": lambda a, b: _w32(a << (b & 31)),
    "lsr": lambda a, b: _w32((a & 0xFFFFFFFF) >> (b & 31)),
    "asr": lambda a, b: _w32(a >> (b & 31)),
    "min": lambda a, b: _w32(min(a, b)),
    "max": lambda a, b: _w32(max(a, b)),
    "qadd": lambda a, b: max(-0x80000000, min(0x7FFFFFFF, a + b)),
    "qsub": lambda a, b: max(-0x80000000, min(0x7FFFFFFF, a - b)),
}

#: Binary float ops pre-resolved to numpy ufuncs over float32 scalars;
#: fmin/fmax keep the ``arith.float_op`` min/max ordering semantics.
_FLOAT_ALU_FAST = {
    "fadd": np.add,
    "fsub": np.subtract,
    "fmul": np.multiply,
    "fdiv": np.divide,
}

#: Pure-Python (binary64) variants, valid only when both operands are
#: exact binary32 values — see the double-rounding note at the use site.
#: ``fdiv`` is excluded: Python raises ZeroDivisionError where float32
#: division yields inf/nan.
_PY_FLOAT_OPS = {
    "fadd": lambda a, b: a + b,
    "fsub": lambda a, b: a - b,
    "fmul": lambda a, b: a * b,
}


# ---------------------------------------------------------------------------
# Timing metadata
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class InstrMeta:
    """Static per-instruction facts the pipeline model needs every cycle.

    Everything here is derivable from the instruction alone; the decode
    pass extracts it once so :meth:`PipelineModel.account` does not pay
    for ``OPCODES`` lookups, operand walks, and latency-table hashes per
    retirement.
    """

    cls: InstrClass
    reads: Tuple[str, ...]
    writes: Tuple[str, ...]
    reads_flags: bool
    sets_flags: bool
    is_vector: bool
    is_load: bool
    elem_bytes: int
    latency: int


@lru_cache(maxsize=None)
def meta_of(instr: Instruction) -> InstrMeta:
    """The (memoized) :class:`InstrMeta` for one instruction."""
    # Imported lazily: repro.pipeline.core imports this module, and the
    # lru_cache means the lookup cost is paid once per distinct instruction.
    from repro.pipeline.latencies import RESULT_LATENCY
    spec = OPCODES[instr.opcode]
    return InstrMeta(
        cls=spec.cls,
        reads=instr.reads(),
        writes=instr.writes(),
        reads_flags=spec.reads_flags,
        sets_flags=spec.sets_flags,
        is_vector=spec.is_vector,
        is_load=spec.cls in (InstrClass.LOAD, InstrClass.VLOAD),
        elem_bytes=ELEM_SIZES[instr.elem or "i32"],
        latency=RESULT_LATENCY[spec.cls],
    )


# ---------------------------------------------------------------------------
# Operand resolution
# ---------------------------------------------------------------------------

Handler = Callable[["object"], RetireEvent]


def _value_getter(operand):
    """A closure reading one scalar operand from a machine state."""
    if isinstance(operand, Reg):
        name = operand.name
        if is_vector_reg(name):
            def get_vec_err(state, _name=name):
                raise ExecutionError(
                    f"scalar context cannot read vector register {_name}"
                )
            return get_vec_err
        if is_int_reg(name):
            return lambda state, _n=name: state.regs.ints[_n]
        if is_float_reg(name):
            return lambda state, _n=name: state.regs.floats[_n]
        return lambda state, _n=name: state.regs.read(_n)
    if isinstance(operand, Imm):
        value = operand.value
        return lambda state, _v=value: _v
    if isinstance(operand, Sym):
        name = operand.name
        return lambda state, _n=name: state.symbols.address_of(_n)

    def get_err(state, _op=operand):
        raise ExecutionError(f"cannot evaluate operand {_op!r}")
    return get_err


def _vector_getter(operand):
    """A closure reading one vector operand (signature: state, width)."""
    if isinstance(operand, Reg) and is_vector_reg(operand.name):
        name = operand.name
        return lambda state, width, _n=name: state.vregs.read(_n)
    if isinstance(operand, VImm):
        lanes = list(operand.lanes)
        count = len(lanes)

        def get_vimm(state, width, _lanes=lanes, _count=count):
            if _count != width:
                raise ExecutionError(
                    f"vector immediate has {_count} lanes, "
                    f"hardware width is {width}"
                )
            return list(_lanes)
        return get_vimm
    if isinstance(operand, Imm):
        value = operand.value
        return lambda state, width, _v=value: [_v] * width

    def get_err(state, width, _op=operand):
        raise ExecutionError(f"cannot evaluate vector operand {_op!r}")
    return get_err


def _addr_getter(mem: Mem, elem: str):
    """A closure computing the element-scaled effective address."""
    scale = ELEM_SIZES[elem]
    base = mem.base
    if isinstance(base, Sym):
        bname = base.name
        base_get = lambda state, _n=bname: state.symbols.address_of(_n)
    elif isinstance(base, Reg) and is_int_reg(base.name):
        bname = base.name
        base_get = lambda state, _n=bname: state.regs.ints[_n]
    else:
        bname = base.name
        base_get = lambda state, _n=bname: int(state.regs.read(_n))
    index = mem.index
    if index is None:
        return base_get
    if isinstance(index, Imm):
        offset = int(index.value) * scale
        return lambda state, _o=offset: base_get(state) + _o
    iname = index.name
    if is_int_reg(iname):
        return (lambda state, _n=iname, _s=scale:
                base_get(state) + state.regs.ints[_n] * _s)
    return (lambda state, _n=iname, _s=scale:
            base_get(state) + int(state.regs.read(_n)) * _s)


def _scalar_writer(name: str):
    """A closure writing one scalar register (value already normalized)."""
    if is_int_reg(name):
        def write_int(state, value, _n=name):
            state.regs.ints[_n] = value
        return write_int
    if is_float_reg(name):
        def write_float(state, value, _n=name):
            state.regs.floats[_n] = value
        return write_float

    def write_generic(state, value, _n=name):
        state.regs.write(_n, value)  # raises KeyError, like the reference
    return write_generic


def _raiser(pc: int, instr: Instruction, exc: BaseException) -> Handler:
    """A handler that defers a decode-time failure to execution time."""
    def handler(state):
        raise exc
    return handler


# ---------------------------------------------------------------------------
# Per-class decoders
#
# Every decoder mirrors the corresponding Executor._exec_* method: the
# same checks in the same order, the same error types and messages, the
# same event fields.  Comments call out each intentional deviation.
# ---------------------------------------------------------------------------


def _decode_sys(pc: int, instr: Instruction) -> Handler:
    next_pc = pc + 1
    if instr.opcode == "halt":
        def halt(state):
            state.halted = True
            state.pc = next_pc
            state.instructions_retired += 1
            return RetireEvent(pc=pc, instr=instr, next_pc=next_pc)
        return halt

    def nop(state):
        state.pc = next_pc
        state.instructions_retired += 1
        return RetireEvent(pc=pc, instr=instr, next_pc=next_pc)
    return nop


def _decode_move(pc: int, instr: Instruction) -> Handler:
    opcode = instr.opcode
    base = "fmov" if opcode.startswith("fmov") else "mov"
    cond = opcode[len(base):]
    cond_fn = None
    if cond:
        cond_fn = COND_CODES.get(cond)
        if cond_fn is None:
            raise ExecutionError(
                f"unknown condition suffix {cond!r} in opcode {opcode!r}"
            )
    # A false condition retires quietly even if the operands are
    # malformed, so operand validation is captured, not raised.
    body_error: Optional[ExecutionError] = None
    body = None
    if len(instr.srcs) != 1:
        body_error = ExecutionError(f"{opcode} expects one source")
    elif instr.dst is None:
        body_error = ExecutionError(f"{opcode} needs a destination")
    else:
        get_src = _value_getter(instr.srcs[0])
        dname = instr.dst.name
        write = _scalar_writer(dname)
        if is_int_reg(dname):
            def body(state, _get=get_src, _write=write):
                value = arith.wrap_int(int(_get(state)))
                _write(state, value)
                return value
        else:
            def body(state, _get=get_src, _write=write):
                value = arith.f32(float(_get(state)))
                _write(state, value)
                return value
    next_pc = pc + 1

    def handler(state):
        if cond_fn is not None and not cond_fn(state.regs.flags):
            value = None
        elif body_error is not None:
            raise body_error
        else:
            value = body(state)
        state.pc = next_pc
        state.instructions_retired += 1
        return RetireEvent(pc=pc, instr=instr, value=value, next_pc=next_pc)
    return handler


def _decode_int_alu(pc: int, instr: Instruction) -> Handler:
    opcode = instr.opcode
    if len(instr.srcs) != 2:
        raise ExecutionError(f"{opcode} expects two sources")
    get_a = _value_getter(instr.srcs[0])
    get_b = _value_getter(instr.srcs[1])
    if instr.dst is None:
        raise ExecutionError(f"{opcode} needs a destination")
    dname = instr.dst.name
    write = _scalar_writer(dname)
    next_pc = pc + 1

    if is_float_reg(dname):
        # Bitwise mask idioms on float data (paper's FFT example).
        if opcode == "and":
            def handler(state):
                a = get_a(state)
                b = get_b(state)
                value = arith.float_bitwise("fand", float(a), mask_bits(b))
                write(state, value)
                state.pc = next_pc
                state.instructions_retired += 1
                return RetireEvent(pc=pc, instr=instr, value=value,
                                   next_pc=next_pc)
            return handler
        if opcode == "orr":
            def handler(state):
                a = get_a(state)
                b = get_b(state)
                if isinstance(b, float):
                    value = arith.float_or_floats(float(a), b)
                else:
                    value = arith.float_bitwise("forr", float(a),
                                                mask_bits(b))
                write(state, value)
                state.pc = next_pc
                state.instructions_retired += 1
                return RetireEvent(pc=pc, instr=instr, value=value,
                                   next_pc=next_pc)
            return handler
        raise ExecutionError(
            f"integer op {opcode!r} cannot target float register"
        )

    fast = _INT_ALU_FAST.get(opcode)
    if fast is not None:
        # Specialize the dominant operand shapes to read the integer
        # bank directly: moves/loads/ALU writers keep the bank invariant
        # (always a wrapped Python int), so the int() coercions the
        # generic path performs are identities here.
        a_op, b_op = instr.srcs
        a_name = (a_op.name if isinstance(a_op, Reg)
                  and is_int_reg(a_op.name) else None)
        if a_name is not None and is_int_reg(dname):
            if isinstance(b_op, Reg) and is_int_reg(b_op.name):
                b_name = b_op.name

                def handler(state):
                    ints = state.regs.ints
                    ints[dname] = value = fast(ints[a_name], ints[b_name])
                    state.pc = next_pc
                    state.instructions_retired += 1
                    return RetireEvent(pc=pc, instr=instr, value=value,
                                       next_pc=next_pc)
                return handler
            if isinstance(b_op, Imm):
                b_const = int(b_op.value)

                def handler(state):
                    ints = state.regs.ints
                    ints[dname] = value = fast(ints[a_name], b_const)
                    state.pc = next_pc
                    state.instructions_retired += 1
                    return RetireEvent(pc=pc, instr=instr, value=value,
                                       next_pc=next_pc)
                return handler

        def handler(state):
            value = fast(int(get_a(state)), int(get_b(state)))
            write(state, value)
            state.pc = next_pc
            state.instructions_retired += 1
            return RetireEvent(pc=pc, instr=instr, value=value,
                               next_pc=next_pc)
        return handler

    int_op = arith.int_op

    def handler(state):
        value = int_op(opcode, int(get_a(state)), int(get_b(state)), "i32")
        write(state, value)
        state.pc = next_pc
        state.instructions_retired += 1
        return RetireEvent(pc=pc, instr=instr, value=value, next_pc=next_pc)
    return handler


def _decode_float_alu(pc: int, instr: Instruction) -> Handler:
    opcode = instr.opcode
    if instr.dst is None:
        raise ExecutionError(f"{opcode} needs a destination")
    dname = instr.dst.name
    write = _scalar_writer(dname)
    next_pc = pc + 1
    float_op = arith.float_op
    if not is_float_reg(dname):
        # The reference routes the result through RegisterFile.write,
        # which wraps into an integer register (or raises KeyError).
        def write(state, value, _n=dname):  # noqa: F811 - intentional
            state.regs.write(_n, value)

    if opcode in FLOAT_UNARY_OPS:
        if len(instr.srcs) != 1:
            raise ExecutionError(f"{opcode} expects one source")
        get_a = _value_getter(instr.srcs[0])

        def handler(state):
            value = float_op(opcode, float(get_a(state)))
            write(state, value)
            state.pc = next_pc
            state.instructions_retired += 1
            return RetireEvent(pc=pc, instr=instr, value=value,
                               next_pc=next_pc)
        return handler

    if opcode in FLOAT_BITWISE_OPS:
        get_a = _value_getter(instr.srcs[0]) if instr.srcs else None
        get_b = _value_getter(instr.srcs[1]) if len(instr.srcs) > 1 else None
        if get_a is None or get_b is None:
            # Mirror the reference IndexError on missing sources.
            bad = IndexError("tuple index out of range")

            def handler(state):
                raise bad
            return handler
        is_and = opcode == "fand"

        def handler(state):
            a = float(get_a(state))
            b = get_b(state)
            if isinstance(b, float):
                value = (arith.float_and_floats(a, b) if is_and
                         else arith.float_or_floats(a, b))
            else:
                value = arith.float_bitwise(opcode, a, int(b))
            write(state, value)
            state.pc = next_pc
            state.instructions_retired += 1
            return RetireEvent(pc=pc, instr=instr, value=value,
                               next_pc=next_pc)
        return handler

    if len(instr.srcs) != 2:
        raise ExecutionError(f"{opcode} expects two sources")
    get_a = _value_getter(instr.srcs[0])
    get_b = _value_getter(instr.srcs[1])

    np_op = _FLOAT_ALU_FAST.get(opcode)
    if np_op is not None:
        f32t = np.float32
        py_op = _PY_FLOAT_OPS.get(opcode)
        a_src, b_src = instr.srcs
        a_name = (a_src.name if isinstance(a_src, Reg)
                  and is_float_reg(a_src.name) else None)
        if py_op is not None and a_name is not None and is_float_reg(dname):
            # Float registers invariantly hold exact binary32 values
            # (every write path rounds), and for binary32 operands a
            # binary64 +/-/* followed by one rounding to binary32 is
            # correctly rounded (2p+2 <= 53), so this equals the
            # reference's float32-arithmetic result bit for bit.
            b_name = (b_src.name if isinstance(b_src, Reg)
                      and is_float_reg(b_src.name) else None)
            if b_name is not None:
                def handler(state):
                    floats = state.regs.floats
                    floats[dname] = value = float(
                        f32t(py_op(floats[a_name], floats[b_name])))
                    state.pc = next_pc
                    state.instructions_retired += 1
                    return RetireEvent(pc=pc, instr=instr, value=value,
                                       next_pc=next_pc)
                return handler
            if isinstance(b_src, Imm):
                # Pre-round the immediate: the reference rounds operands
                # through float32 before operating.
                b_const = float(f32t(float(b_src.value)))

                def handler(state):
                    floats = state.regs.floats
                    floats[dname] = value = float(
                        f32t(py_op(floats[a_name], b_const)))
                    state.pc = next_pc
                    state.instructions_retired += 1
                    return RetireEvent(pc=pc, instr=instr, value=value,
                                       next_pc=next_pc)
                return handler

        # float(np_op(f32(a), f32(b))) == float_op(opcode, a, b): both
        # round operands and result through binary32.
        def handler(state):
            value = float(np_op(f32t(get_a(state)), f32t(get_b(state))))
            write(state, value)
            state.pc = next_pc
            state.instructions_retired += 1
            return RetireEvent(pc=pc, instr=instr, value=value,
                               next_pc=next_pc)
        return handler

    def handler(state):
        value = float_op(opcode, float(get_a(state)), float(get_b(state)))
        write(state, value)
        state.pc = next_pc
        state.instructions_retired += 1
        return RetireEvent(pc=pc, instr=instr, value=value, next_pc=next_pc)
    return handler


def _decode_cmp(pc: int, instr: Instruction) -> Handler:
    if len(instr.srcs) != 2:
        raise ExecutionError(f"{instr.opcode} expects two operands")
    a_src, b_src = instr.srcs
    next_pc = pc + 1

    a_name = (a_src.name if isinstance(a_src, Reg)
              and is_int_reg(a_src.name) else None)
    if a_name is not None and isinstance(b_src, Imm):
        # Dominant shape (loop bounds checks): int reg vs. immediate,
        # with set_flags inlined into the flag dict.
        b_const = b_src.value

        def handler(state):
            regs = state.regs
            a = regs.ints[a_name]
            flags = regs.flags
            flags["lt"] = a < b_const
            flags["eq"] = a == b_const
            flags["gt"] = a > b_const
            state.pc = next_pc
            state.instructions_retired += 1
            return RetireEvent(pc=pc, instr=instr, next_pc=next_pc)
        return handler
    if a_name is not None and isinstance(b_src, Reg) \
            and is_int_reg(b_src.name):
        b_name = b_src.name

        def handler(state):
            regs = state.regs
            ints = regs.ints
            a = ints[a_name]
            b = ints[b_name]
            flags = regs.flags
            flags["lt"] = a < b
            flags["eq"] = a == b
            flags["gt"] = a > b
            state.pc = next_pc
            state.instructions_retired += 1
            return RetireEvent(pc=pc, instr=instr, next_pc=next_pc)
        return handler

    get_a = _value_getter(a_src)
    get_b = _value_getter(b_src)

    def handler(state):
        state.regs.set_flags(get_a(state), get_b(state))
        state.pc = next_pc
        state.instructions_retired += 1
        return RetireEvent(pc=pc, instr=instr, next_pc=next_pc)
    return handler


def _decode_load(pc: int, instr: Instruction) -> Handler:
    elem, signed = LOAD_ELEM[instr.opcode]
    get_addr = _addr_getter(instr.mem, elem)
    dname = instr.dst.name
    bad_float_dst = is_float_reg(dname) and elem != "f32"
    is_f32 = elem == "f32"
    if is_f32 and not is_float_reg(dname):
        # ldf into an integer register truncates through RegisterFile.write.
        def write(state, value, _n=dname):
            state.regs.write(_n, value)
    else:
        write = _scalar_writer(dname)
    next_pc = pc + 1

    def handler(state):
        addr = get_addr(state)
        value = state.memory.load(addr, elem, signed=signed)
        if is_f32:
            value = arith.f32(value)
        if bad_float_dst:
            # Integer loads into float registers move raw bit patterns
            # (mask arrays are loaded into integer registers in practice).
            raise ExecutionError("integer load cannot target a float register")
        write(state, value)
        state.pc = next_pc
        state.instructions_retired += 1
        return RetireEvent(pc=pc, instr=instr, value=value, mem_addr=addr,
                           next_pc=next_pc)
    return handler


def _decode_store(pc: int, instr: Instruction) -> Handler:
    elem = STORE_ELEM[instr.opcode]
    get_addr = _addr_getter(instr.mem, elem)
    get_src = _value_getter(instr.srcs[0])
    next_pc = pc + 1

    def handler(state):
        addr = get_addr(state)
        value = get_src(state)
        state.memory.store(addr, elem, value)
        state.pc = next_pc
        state.instructions_retired += 1
        return RetireEvent(pc=pc, instr=instr, value=value, mem_addr=addr,
                           next_pc=next_pc)
    return handler


def _resolve_target(program, target):
    """(index, error): a branch target, resolved but never raised eagerly."""
    try:
        return program.label_index(target), None
    except Exception as exc:  # mirror the reference's lazy KeyError
        return None, exc


def _decode_branch(pc: int, instr: Instruction, program) -> Handler:
    opcode = instr.opcode
    target_index, target_error = _resolve_target(program, instr.target)
    fall_through = pc + 1
    if opcode == "b":
        def handler(state):
            if target_error is not None:
                raise target_error
            state.pc = target_index
            state.instructions_retired += 1
            return RetireEvent(pc=pc, instr=instr, taken=True,
                               next_pc=target_index)
        return handler

    cond_fn = COND_CODES.get(opcode[1:])
    if cond_fn is None:
        raise ExecutionError(
            f"unknown branch condition {opcode[1:]!r} in opcode {opcode!r}"
        )

    def handler(state):
        taken = cond_fn(state.regs.flags)
        if taken:
            if target_error is not None:
                raise target_error
            next_pc = target_index
        else:
            next_pc = fall_through
        state.pc = next_pc
        state.instructions_retired += 1
        return RetireEvent(pc=pc, instr=instr, taken=taken, next_pc=next_pc)
    return handler


def _decode_call(pc: int, instr: Instruction, program) -> Handler:
    target_index, target_error = _resolve_target(program, instr.target)
    return_addr = pc + 1

    def handler(state):
        # The reference writes the link register before resolving the
        # target, so the side effect survives a bad-target failure.
        state.regs.ints[LINK_REGISTER] = return_addr
        if target_error is not None:
            raise target_error
        state.pc = target_index
        state.instructions_retired += 1
        return RetireEvent(pc=pc, instr=instr, taken=True,
                           next_pc=target_index)
    return handler


def _decode_ret(pc: int, instr: Instruction) -> Handler:
    def handler(state):
        next_pc = int(state.regs.ints[LINK_REGISTER])
        state.pc = next_pc
        state.instructions_retired += 1
        return RetireEvent(pc=pc, instr=instr, taken=True, next_pc=next_pc)
    return handler


# -- vector handlers ---------------------------------------------------------


def _no_accel_error(opcode: str) -> ExecutionError:
    return ExecutionError(
        f"vector instruction {opcode} on a machine without a "
        "SIMD accelerator"
    )


def _decode_vld(pc: int, instr: Instruction) -> Handler:
    opcode = instr.opcode
    elem = instr.elem
    elem_error = None
    if elem is None:
        elem_error = ExecutionError("vld requires an element type suffix")
        get_addr = None
        elem_size = None
    else:
        get_addr = _addr_getter(instr.mem, elem)
        elem_size = ELEM_SIZES[elem]
    dname = instr.dst.name
    next_pc = pc + 1

    def handler(state):
        vregs = state.vregs
        if vregs is None:
            raise _no_accel_error(opcode)
        if elem_error is not None:
            raise elem_error
        width = vregs.width
        addr = get_addr(state)
        if not vector_alignment_ok(addr, elem_size, width):
            raise ExecutionError(
                f"unaligned vector access at {addr:#x} "
                f"(width {width}, elem {elem})"
            )
        # Memory yields exact binary32 values, so the reference's
        # per-lane f32 re-rounding is the identity and is skipped.
        lanes = state.memory.load_vector(addr, elem, width)
        vregs.write(dname, lanes, elem)
        state.pc = next_pc
        state.instructions_retired += 1
        return RetireEvent(pc=pc, instr=instr, mem_addr=addr, next_pc=next_pc,
                           vector_width=width)
    return handler


def _decode_vst(pc: int, instr: Instruction) -> Handler:
    opcode = instr.opcode
    elem = instr.elem
    elem_error = None
    if elem is None:
        elem_error = ExecutionError("vst requires an element type suffix")
        get_addr = None
        elem_size = None
        get_src = None
    else:
        get_addr = _addr_getter(instr.mem, elem)
        elem_size = ELEM_SIZES[elem]
        get_src = _vector_getter(instr.srcs[0])
    next_pc = pc + 1

    def handler(state):
        vregs = state.vregs
        if vregs is None:
            raise _no_accel_error(opcode)
        if elem_error is not None:
            raise elem_error
        width = vregs.width
        addr = get_addr(state)
        if not vector_alignment_ok(addr, elem_size, width):
            raise ExecutionError(
                f"unaligned vector access at {addr:#x} "
                f"(width {width}, elem {elem})"
            )
        lanes = get_src(state, width)
        state.memory.store_vector(addr, elem, lanes)
        state.pc = next_pc
        state.instructions_retired += 1
        return RetireEvent(pc=pc, instr=instr, mem_addr=addr, next_pc=next_pc,
                           vector_width=width)
    return handler


def _decode_vec_binary(pc: int, instr: Instruction) -> Handler:
    opcode = instr.opcode
    elem = instr.elem
    get_a = _vector_getter(instr.srcs[0])
    b_operand = instr.srcs[1]
    if isinstance(b_operand, Imm):
        b_const = b_operand.value
        get_b = None
    else:
        b_const = None
        get_b = _vector_getter(b_operand)
    lower = vector_ops.binary_fast_fn(opcode, elem or "i32")
    dname = instr.dst.name
    next_pc = pc + 1

    def handler(state):
        vregs = state.vregs
        if vregs is None:
            raise _no_accel_error(opcode)
        width = vregs.width
        a = get_a(state, width)
        b = b_const if get_b is None else get_b(state, width)
        lanes = lower(a, b)
        vregs.write(dname, lanes, elem)
        state.pc = next_pc
        state.instructions_retired += 1
        return RetireEvent(pc=pc, instr=instr, next_pc=next_pc,
                           vector_width=width)
    return handler


def _decode_vec_unary(pc: int, instr: Instruction) -> Handler:
    opcode = instr.opcode
    elem = instr.elem
    get_a = _vector_getter(instr.srcs[0])
    lower = vector_ops.unary_fast_fn(opcode, elem or "i32")
    dname = instr.dst.name
    next_pc = pc + 1

    def handler(state):
        vregs = state.vregs
        if vregs is None:
            raise _no_accel_error(opcode)
        width = vregs.width
        lanes = lower(get_a(state, width))
        vregs.write(dname, lanes, elem)
        state.pc = next_pc
        state.instructions_retired += 1
        return RetireEvent(pc=pc, instr=instr, next_pc=next_pc,
                           vector_width=width)
    return handler


def _decode_vec_perm(pc: int, instr: Instruction) -> Handler:
    opcode = instr.opcode
    elem = instr.elem
    get_src = _vector_getter(instr.srcs[0])
    dname = instr.dst.name
    next_pc = pc + 1

    def build_pattern(width: int) -> PermPattern:
        period_operand = instr.srcs[1] if len(instr.srcs) > 1 else Imm(width)
        if not isinstance(period_operand, Imm):
            raise ExecutionError(f"{opcode} period must be an immediate")
        period = int(period_operand.value)
        if opcode == "vbfly":
            return PermPattern("bfly", period)
        if opcode == "vrev":
            return PermPattern("rev", period)
        if len(instr.srcs) < 3 or not isinstance(instr.srcs[2], Imm):
            raise ExecutionError("vrot expects #period, #amount")
        return PermPattern("rot", period, int(instr.srcs[2].value))

    # The gather map depends only on (pattern, width); memoize it per
    # hardware width so steady-state permutes are a single list gather.
    maps = {}

    def handler(state):
        vregs = state.vregs
        if vregs is None:
            raise _no_accel_error(opcode)
        width = vregs.width
        src = get_src(state, width)
        cached = maps.get(width)
        if cached is None:
            pattern = build_pattern(width)
            if width % pattern.period != 0:
                raise ExecutionError(
                    f"{pattern.name} does not tile hardware width {width}"
                )
            cached = pattern.lane_map(width)
            maps[width] = cached
        lanes = [src[i] for i in cached]
        vregs.write(dname, lanes, elem)
        state.pc = next_pc
        state.instructions_retired += 1
        return RetireEvent(pc=pc, instr=instr, next_pc=next_pc,
                           vector_width=width)
    return handler


def _decode_vec_reduce(pc: int, instr: Instruction) -> Handler:
    opcode = instr.opcode
    elem = instr.elem
    get_acc = _value_getter(instr.srcs[0])
    get_lanes = _vector_getter(instr.srcs[1])
    lower = vector_ops.reduce_fast_fn(opcode, elem or "i32")
    dname = instr.dst.name
    next_pc = pc + 1

    def handler(state):
        vregs = state.vregs
        if vregs is None:
            raise _no_accel_error(opcode)
        width = vregs.width
        value = lower(get_acc(state), get_lanes(state, width))
        # Reductions retire once per loop iteration; route through
        # RegisterFile.write for its type coercion rather than pre-binding.
        state.regs.write(dname, value)
        state.pc = next_pc
        state.instructions_retired += 1
        return RetireEvent(pc=pc, instr=instr, value=value, next_pc=next_pc,
                           vector_width=width)
    return handler


# ---------------------------------------------------------------------------
# The decode pass
# ---------------------------------------------------------------------------


def _decode_one(pc: int, instr: Instruction, program) -> Handler:
    opcode = instr.opcode
    spec = OPCODES.get(opcode)
    if spec is None:
        raise ExecutionError(f"unknown opcode {opcode!r} at pc={pc}")
    cls = spec.cls
    if cls is InstrClass.SYS:
        return _decode_sys(pc, instr)
    if cls is InstrClass.MOVE:
        return _decode_move(pc, instr)
    if cls in (InstrClass.ALU, InstrClass.MUL):
        return _decode_int_alu(pc, instr)
    if cls in (InstrClass.FALU, InstrClass.FMUL, InstrClass.FDIV):
        return _decode_float_alu(pc, instr)
    if cls is InstrClass.CMP:
        return _decode_cmp(pc, instr)
    if cls is InstrClass.LOAD and not spec.is_vector:
        return _decode_load(pc, instr)
    if cls is InstrClass.STORE and not spec.is_vector:
        return _decode_store(pc, instr)
    if cls is InstrClass.BRANCH:
        return _decode_branch(pc, instr, program)
    if cls is InstrClass.CALL:
        return _decode_call(pc, instr, program)
    if cls is InstrClass.RET:
        return _decode_ret(pc, instr)
    if opcode == "vld":
        return _decode_vld(pc, instr)
    if opcode == "vst":
        return _decode_vst(pc, instr)
    if opcode in VEC_BINARY_OPS:
        return _decode_vec_binary(pc, instr)
    if opcode in VEC_UNARY_OPS:
        return _decode_vec_unary(pc, instr)
    if opcode in VEC_PERM_OPS:
        return _decode_vec_perm(pc, instr)
    if opcode in VEC_RED_OPS:
        return _decode_vec_reduce(pc, instr)
    raise ExecutionError(f"unhandled opcode {opcode!r}")


class DecodedProgram:
    """A program compiled to dense handler and timing-metadata tables."""

    __slots__ = ("program", "handlers", "metas")

    def __init__(self, program, handlers: List[Handler],
                 metas: List[Optional[InstrMeta]]) -> None:
        self.program = program
        self.handlers = handlers
        self.metas = metas

    def __len__(self) -> int:
        return len(self.handlers)


def predecode(program) -> DecodedProgram:
    """Compile *program* into a :class:`DecodedProgram`.

    Never raises for a bad instruction: decode-time failures become
    handlers that raise the captured error when (and only when) the
    instruction is actually executed, matching the reference engine.
    """
    handlers: List[Handler] = []
    metas: List[Optional[InstrMeta]] = []
    for pc, instr in enumerate(program.instructions):
        try:
            handler = _decode_one(pc, instr, program)
        except Exception as exc:
            handler = _raiser(pc, instr, exc)
        handlers.append(handler)
        try:
            metas.append(meta_of(instr))
        except KeyError:
            metas.append(None)  # unknown opcode: its handler raises anyway
    return DecodedProgram(program, handlers, metas)
