"""Scalar (ARM-like) instruction-set substrate.

This package defines the baseline scalar ISA that Liquid SIMD virtualizes
SIMD code into: registers, operands, the instruction model, opcode
metadata, a two-pass assembler, a fixed-width binary encoding, and the
``Program`` container (code + data segments + symbols).
"""

from repro.isa.registers import (
    FLAG_EQ,
    FLAG_GT,
    FLAG_LT,
    INT_REGS,
    FLOAT_REGS,
    LINK_REGISTER,
    RegisterFile,
    float_reg,
    int_reg,
    is_float_reg,
    is_int_reg,
    is_scalar_reg,
    is_vector_reg,
    reg_index,
    vector_reg_for,
)
from repro.isa.instructions import (
    Imm,
    Instruction,
    Label,
    Mem,
    Reg,
    Sym,
    VImm,
)
from repro.isa.opcodes import (
    OPCODES,
    InstrClass,
    OpSpec,
    is_branch,
    is_call,
    is_conditional_branch,
    is_load,
    is_store,
    is_vector_op,
)
from repro.isa.program import DataArray, Program
from repro.isa.assembler import AssemblerError, assemble
from repro.isa.encoding import decode_program, encode_program, encoded_size

__all__ = [
    "FLAG_EQ",
    "FLAG_GT",
    "FLAG_LT",
    "INT_REGS",
    "FLOAT_REGS",
    "LINK_REGISTER",
    "RegisterFile",
    "float_reg",
    "int_reg",
    "is_float_reg",
    "is_int_reg",
    "is_scalar_reg",
    "is_vector_reg",
    "reg_index",
    "vector_reg_for",
    "Imm",
    "Instruction",
    "Label",
    "Mem",
    "Reg",
    "Sym",
    "VImm",
    "OPCODES",
    "InstrClass",
    "OpSpec",
    "is_branch",
    "is_call",
    "is_conditional_branch",
    "is_load",
    "is_store",
    "is_vector_op",
    "DataArray",
    "Program",
    "AssemblerError",
    "assemble",
    "decode_program",
    "encode_program",
    "encoded_size",
]
