"""A small two-pass textual assembler for the scalar + vector ISA.

The syntax follows the paper's listings closely::

    .data   RealOut f32 128 = 0.0        ; array of 128 f32, filled with 0.0
    .rodata bfly    i32 = 4,4,4,4,-4,-4,-4,-4
    .entry  main

    main:
        mov r0, #0
    Top_of_loop:
        ldf f0, [RealOut + r0]           ; element-scaled [base + index]
        fadd f0, f0, f0
        stf f0, [RealOut + r0]
        add r0, r0, #1
        cmp r0, #128
        blt Top_of_loop
        halt

Vector instructions carry their element type as a suffix
(``vadd.f32 vf1, vf2, vf3``; ``vld.i16 v0, [A + r0]``) and vector
immediates are written ``#<1,2,3,4>``.  Comments start with ``;`` or
``#`` — except that ``#`` immediately followed by a value is an
immediate, as in ARM assembly.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from repro.isa.instructions import Imm, Instruction, Mem, Reg, Sym, VImm
from repro.isa.opcodes import ELEM_SIZES, LOAD_ELEM, OPCODES, STORE_ELEM, is_load, is_store
from repro.isa.program import DataArray, Program
from repro.isa.registers import is_scalar_reg, is_vector_reg


class AssemblerError(ValueError):
    """Raised on any syntax or semantic error, with a line number."""

    def __init__(self, lineno: int, message: str) -> None:
        super().__init__(f"line {lineno}: {message}")
        self.lineno = lineno


_LABEL_RE = re.compile(r"^([A-Za-z_][\w.]*):$")
_NUM_RE = re.compile(r"^-?(\d+\.\d*|\.\d+|\d+)([eE][-+]?\d+)?$")


def assemble(text: str, name: str = "program") -> Program:
    """Assemble *text* into a :class:`~repro.isa.program.Program`."""
    program = Program(name)
    pending_labels: List[Tuple[int, str]] = []
    branch_targets: List[Tuple[int, int, str]] = []  # (lineno, instr index, label)

    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = _strip_comment(raw).strip()
        if not line:
            continue
        if line.startswith("."):
            _directive(program, line, lineno)
            continue
        label_match = _LABEL_RE.match(line)
        if label_match:
            label = label_match.group(1)
            if label in program.labels:
                raise AssemblerError(lineno, f"duplicate label {label!r}")
            program.mark_label(label)
            pending_labels.append((lineno, label))
            continue
        instr, target = _parse_instruction(line, lineno)
        index = program.emit(instr)
        if target is not None:
            branch_targets.append((lineno, index, target))

    for lineno, _index, target in branch_targets:
        if target not in program.labels:
            raise AssemblerError(lineno, f"undefined label {target!r}")
    if program.entry not in program.labels and len(program) > 0:
        # Default entry: start of code, under an implicit "main".
        if "main" not in program.labels:
            program.labels["main"] = 0
        program.entry = "main"
    return program


def _strip_comment(line: str) -> str:
    """Remove ``;`` comments and ``#``-comments that are not immediates."""
    out = []
    i = 0
    while i < len(line):
        ch = line[i]
        if ch == ";":
            break
        if ch == "#":
            rest = line[i + 1:i + 2]
            if not (rest.isdigit() or rest in "-.<"):
                break
        out.append(ch)
        i += 1
    return "".join(out)


def _directive(program: Program, line: str, lineno: int) -> None:
    parts = line.split(None, 1)
    directive = parts[0]
    rest = parts[1] if len(parts) > 1 else ""
    if directive == ".entry":
        program.entry = rest.strip()
        return
    if directive in (".data", ".rodata"):
        _data_directive(program, rest, lineno, read_only=directive == ".rodata")
        return
    raise AssemblerError(lineno, f"unknown directive {directive!r}")


def _data_directive(program: Program, rest: str, lineno: int, read_only: bool) -> None:
    """Parse ``NAME ELEM [COUNT] [= v0,v1,...]``."""
    if "=" in rest:
        head, _, values_text = rest.partition("=")
        value_tokens = [tok.strip() for tok in values_text.split(",") if tok.strip()]
    else:
        head, value_tokens = rest, []
    fields = head.split()
    if len(fields) < 2:
        raise AssemblerError(lineno, "expected: NAME ELEM [COUNT] [= values]")
    sym, elem = fields[0], fields[1]
    if elem not in ELEM_SIZES:
        raise AssemblerError(lineno, f"unknown element type {elem!r}")
    count = int(fields[2]) if len(fields) > 2 else len(value_tokens)
    parse = float if elem == "f32" else lambda tok: int(tok, 0)
    try:
        values = [parse(tok) for tok in value_tokens]
    except ValueError as exc:
        raise AssemblerError(lineno, f"bad data value: {exc}") from None
    if not values:
        values = [0.0 if elem == "f32" else 0] * count
    elif len(values) == 1 and count > 1:
        values = values * count
    elif count and len(values) != count:
        raise AssemblerError(
            lineno, f"{sym}: {count} elements declared, {len(values)} provided"
        )
    try:
        program.add_array(DataArray(sym, elem, values, read_only=read_only))
    except ValueError as exc:
        raise AssemblerError(lineno, str(exc)) from None


def _parse_instruction(line: str, lineno: int) -> Tuple[Instruction, Optional[str]]:
    mnemonic, _, operand_text = line.partition(" ")
    opcode, elem = _split_elem(mnemonic, lineno)
    if opcode not in OPCODES:
        raise AssemblerError(lineno, f"unknown opcode {opcode!r}")
    operands = _split_operands(operand_text)

    dst: Optional[Reg] = None
    srcs: List = []
    mem: Optional[Mem] = None
    target: Optional[str] = None

    spec = OPCODES[opcode]
    if spec.cls.value in ("branch", "call"):
        if len(operands) != 1:
            raise AssemblerError(lineno, f"{opcode} expects one target label")
        target = operands[0]
        return Instruction(opcode=opcode, target=target, elem=elem), target

    parsed = [_parse_operand(tok, lineno) for tok in operands]
    if is_store(opcode):
        # Syntax: st* VALUE, [MEM]
        if len(parsed) != 2 or not isinstance(parsed[1], Mem):
            raise AssemblerError(lineno, f"{opcode} expects: value, [mem]")
        if not isinstance(parsed[0], Reg):
            raise AssemblerError(lineno, f"{opcode} value must be a register")
        srcs = [parsed[0]]
        mem = parsed[1]
        elem = elem or STORE_ELEM.get(opcode)
    elif is_load(opcode):
        if len(parsed) != 2 or not isinstance(parsed[1], Mem):
            raise AssemblerError(lineno, f"{opcode} expects: dst, [mem]")
        if not isinstance(parsed[0], Reg):
            raise AssemblerError(lineno, f"{opcode} destination must be a register")
        dst = parsed[0]
        mem = parsed[1]
        if opcode in LOAD_ELEM:
            elem = elem or LOAD_ELEM[opcode][0]
    elif opcode in ("cmp", "fcmp"):
        # Compares write flags only; both operands are sources.
        srcs = parsed
        for operand in srcs:
            if isinstance(operand, Mem):
                raise AssemblerError(lineno, f"{opcode} does not take a memory operand")
    else:
        if parsed and isinstance(parsed[0], Reg) and spec.cls.value not in ("sys",):
            dst = parsed[0]
            srcs = parsed[1:]
        else:
            srcs = parsed
        for operand in srcs:
            if isinstance(operand, Mem):
                raise AssemblerError(lineno, f"{opcode} does not take a memory operand")
    _validate_registers(opcode, dst, srcs, mem, lineno)
    return (
        Instruction(opcode=opcode, dst=dst, srcs=tuple(srcs), mem=mem,
                    target=target, elem=elem),
        target,
    )


def _split_elem(mnemonic: str, lineno: int) -> Tuple[str, Optional[str]]:
    if "." in mnemonic:
        opcode, _, elem = mnemonic.partition(".")
        if elem not in ELEM_SIZES:
            raise AssemblerError(lineno, f"unknown element suffix {elem!r}")
        return opcode, elem
    return mnemonic, None


def _split_operands(text: str) -> List[str]:
    """Split on commas that are not inside ``[...]`` or ``#<...>``."""
    operands: List[str] = []
    depth = 0
    current = []
    for ch in text:
        if ch in "[<":
            depth += 1
        elif ch in "]>":
            depth -= 1
        if ch == "," and depth == 0:
            operands.append("".join(current).strip())
            current = []
        else:
            current.append(ch)
    tail = "".join(current).strip()
    if tail:
        operands.append(tail)
    return [op for op in operands if op]


def _parse_operand(token: str, lineno: int):
    if token.startswith("[") and token.endswith("]"):
        return _parse_mem(token[1:-1].strip(), lineno)
    if token.startswith("#<") and token.endswith(">"):
        lanes = tuple(
            _parse_number(part.strip(), lineno)
            for part in token[2:-1].split(",")
            if part.strip()
        )
        return VImm(lanes)
    if token.startswith("#"):
        return Imm(_parse_number(token[1:], lineno))
    if is_scalar_reg(token) or is_vector_reg(token):
        return Reg(token)
    if re.match(r"^[A-Za-z_][\w.]*$", token):
        return Sym(token)
    raise AssemblerError(lineno, f"cannot parse operand {token!r}")


def _parse_mem(inner: str, lineno: int) -> Mem:
    parts = [p.strip() for p in inner.split("+")]
    if len(parts) == 1:
        base = _parse_base(parts[0], lineno)
        return Mem(base=base, index=None)
    if len(parts) == 2:
        base = _parse_base(parts[0], lineno)
        index_token = parts[1]
        if index_token.startswith("#"):
            return Mem(base=base, index=Imm(_parse_number(index_token[1:], lineno)))
        if is_scalar_reg(index_token):
            return Mem(base=base, index=Reg(index_token))
        raise AssemblerError(lineno, f"bad index operand {index_token!r}")
    raise AssemblerError(lineno, f"bad memory operand [{inner}]")


def _parse_base(token: str, lineno: int):
    if is_scalar_reg(token):
        return Reg(token)
    if re.match(r"^[A-Za-z_][\w.]*$", token):
        return Sym(token)
    raise AssemblerError(lineno, f"bad base operand {token!r}")


def _parse_number(text: str, lineno: int):
    text = text.strip()
    if text.lower().startswith("0x") or text.lower().startswith("-0x"):
        return int(text, 16)
    if _NUM_RE.match(text):
        if "." in text or "e" in text.lower():
            return float(text)
        return int(text)
    raise AssemblerError(lineno, f"bad number {text!r}")


def _validate_registers(opcode, dst, srcs, mem, lineno) -> None:
    spec = OPCODES[opcode]
    if spec.is_vector:
        return  # vector operand shapes are checked by the SIMD interpreter
    for operand in [dst] + list(srcs):
        if isinstance(operand, Reg) and is_vector_reg(operand.name):
            raise AssemblerError(
                lineno, f"scalar opcode {opcode!r} cannot use vector register "
                f"{operand.name!r}"
            )
    if mem is not None:
        if isinstance(mem.base, Reg) and is_vector_reg(mem.base.name):
            raise AssemblerError(lineno, "memory base cannot be a vector register")
