"""The ``Program`` container: code, labels, and data segment.

A :class:`Program` is the unit the loader places into simulated memory and
the interpreter executes.  It owns:

* a flat list of :class:`~repro.isa.instructions.Instruction` objects,
* a label table mapping label names to instruction indices,
* a data segment: named :class:`DataArray` objects (application arrays
  plus the read-only ``cnst``/``bfly``/``mask`` arrays the scalarizer
  synthesizes),
* an entry label.

Programs are built either by code generators (:mod:`repro.kernels.codegen`)
or by the textual assembler (:mod:`repro.isa.assembler`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Union

from repro.isa.instructions import Instruction
from repro.isa.opcodes import ELEM_SIZES

Number = Union[int, float]


@dataclass
class DataArray:
    """A named array in the program's data segment.

    Attributes:
        name: symbol name used by ``Sym`` operands.
        elem: element type (``"i8"``/``"i16"``/``"i32"``/``"f32"``).
        values: initial element values.
        read_only: True for compiler-synthesized constant arrays
            (``bfly`` offsets, ``cnst`` lane constants, masks); the memory
            model rejects stores into read-only arrays.
    """

    name: str
    elem: str
    values: List[Number]
    read_only: bool = False

    def __post_init__(self) -> None:
        if self.elem not in ELEM_SIZES:
            raise ValueError(f"unknown element type: {self.elem!r}")
        self.values = list(self.values)

    @property
    def elem_size(self) -> int:
        return ELEM_SIZES[self.elem]

    @property
    def size_bytes(self) -> int:
        return len(self.values) * self.elem_size

    def __len__(self) -> int:
        return len(self.values)


class Program:
    """A complete assembly program (code + labels + data segment)."""

    def __init__(self, name: str = "program") -> None:
        self.name = name
        self.instructions: List[Instruction] = []
        self.labels: Dict[str, int] = {}
        self.data: Dict[str, DataArray] = {}
        self.entry: str = "main"
        #: Labels of outlined (translatable) functions, set by the outliner.
        self.outlined_functions: List[str] = []

    # -- construction -------------------------------------------------------

    def emit(self, instr: Instruction) -> int:
        """Append one instruction; return its index."""
        self.instructions.append(instr)
        return len(self.instructions) - 1

    def emit_all(self, instrs: Iterable[Instruction]) -> None:
        for instr in instrs:
            self.emit(instr)

    def mark_label(self, name: str) -> None:
        """Define *name* at the current end of code."""
        if name in self.labels:
            raise ValueError(f"duplicate label: {name!r}")
        self.labels[name] = len(self.instructions)

    def add_array(self, array: DataArray) -> DataArray:
        if array.name in self.data:
            raise ValueError(f"duplicate data symbol: {array.name!r}")
        self.data[array.name] = array
        return array

    def unique_symbol(self, prefix: str) -> str:
        """Return a data-symbol name not yet used in this program."""
        if prefix not in self.data:
            return prefix
        i = 1
        while f"{prefix}_{i}" in self.data:
            i += 1
        return f"{prefix}_{i}"

    def unique_label(self, prefix: str) -> str:
        """Return a code-label name not yet used in this program."""
        if prefix not in self.labels:
            return prefix
        i = 1
        while f"{prefix}_{i}" in self.labels:
            i += 1
        return f"{prefix}_{i}"

    # -- queries --------------------------------------------------------------

    def label_index(self, name: str) -> int:
        """Instruction index of label *name*."""
        try:
            return self.labels[name]
        except KeyError:
            raise KeyError(f"undefined label: {name!r}") from None

    def labels_at(self, index: int) -> List[str]:
        """All labels defined at instruction *index*."""
        return [name for name, at in self.labels.items() if at == index]

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def function_body(self, label: str) -> Sequence[Instruction]:
        """Instructions from *label* up to and including its ``ret``.

        Used by static analyses (e.g. Table 5's outlined-function sizes).
        """
        start = self.label_index(label)
        for i in range(start, len(self.instructions)):
            if self.instructions[i].opcode == "ret":
                return self.instructions[start:i + 1]
        raise ValueError(f"function {label!r} has no ret")

    # -- pretty printing --------------------------------------------------------

    def listing(self) -> str:
        """Render an assembly listing with labels and data-segment summary."""
        by_index: Dict[int, List[str]] = {}
        for name, at in self.labels.items():
            by_index.setdefault(at, []).append(name)
        lines: List[str] = [f"; program {self.name} (entry {self.entry})"]
        for i, instr in enumerate(self.instructions):
            for name in by_index.get(i, []):
                lines.append(f"{name}:")
            lines.append(f"    {instr}")
        for name in by_index.get(len(self.instructions), []):
            lines.append(f"{name}:")
        if self.data:
            lines.append("")
            lines.append("; data segment")
            for arr in self.data.values():
                ro = " (read-only)" if arr.read_only else ""
                lines.append(
                    f";   {arr.name}: {arr.elem}[{len(arr)}] = "
                    f"{_preview(arr.values)}{ro}"
                )
        return "\n".join(lines)


def _preview(values: Sequence[Number], limit: int = 8) -> str:
    head = ", ".join(str(v) for v in values[:limit])
    return f"[{head}{', ...' if len(values) > limit else ''}]"


def copy_program(program: Program, name: Optional[str] = None) -> Program:
    """Shallow-copy code/labels and deep-copy data arrays of *program*.

    Instructions are immutable so sharing them is safe; data arrays hold
    mutable initial values and are duplicated.
    """
    clone = Program(name or program.name)
    clone.instructions = list(program.instructions)
    clone.labels = dict(program.labels)
    clone.entry = program.entry
    clone.outlined_functions = list(program.outlined_functions)
    for arr in program.data.values():
        clone.add_array(
            DataArray(arr.name, arr.elem, list(arr.values), read_only=arr.read_only)
        )
    return clone
