"""Opcode metadata for the scalar ISA and the Neon-like vector ISA.

Each opcode has an :class:`OpSpec` entry describing its class (used by
the timing model and the translator's partial decoder), whether it sets
or reads condition flags, and a one-line description.  Semantic
implementations live in :mod:`repro.interp` (scalar) and
:mod:`repro.simd.vector_ops` (vector).

The scalar repertoire intentionally mirrors the subset of the ARM ISA the
paper's examples use: data-processing ops, conditional moves (the idiom
building block for saturation and min/max), typed loads/stores with
``[base + index]`` addressing, compare-and-branch control flow, and the
``bl``/``ret`` pair used for function outlining.  ``blo`` is the paper's
proposed *marked* branch-and-link that uniquely identifies outlined,
translatable regions (section 3.5's false-positive discussion).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict


class InstrClass(enum.Enum):
    """Coarse instruction classes used by timing and translation."""

    ALU = "alu"            # integer data processing
    MUL = "mul"            # integer multiply
    FALU = "falu"          # float add/sub/compare-free data processing
    FMUL = "fmul"          # float multiply
    FDIV = "fdiv"          # float divide (not translatable)
    MOVE = "move"          # register/immediate moves, incl. conditional
    CMP = "cmp"            # compare (sets flags)
    LOAD = "load"
    STORE = "store"
    BRANCH = "branch"
    CALL = "call"
    RET = "ret"
    SYS = "sys"            # nop / halt
    VALU = "valu"          # vector data processing
    VMUL = "vmul"
    VLOAD = "vload"
    VSTORE = "vstore"
    VPERM = "vperm"        # vector permutations
    VRED = "vred"          # vector-to-scalar reductions


@dataclass(frozen=True)
class OpSpec:
    """Static description of one opcode."""

    name: str
    cls: InstrClass
    sets_flags: bool = False
    reads_flags: bool = False
    description: str = ""

    @property
    def is_vector(self) -> bool:
        return self.cls in _VECTOR_CLASSES


_VECTOR_CLASSES = {
    InstrClass.VALU,
    InstrClass.VMUL,
    InstrClass.VLOAD,
    InstrClass.VSTORE,
    InstrClass.VPERM,
    InstrClass.VRED,
}

_CONDITIONS = ("eq", "ne", "lt", "le", "gt", "ge")


def _build_table() -> Dict[str, OpSpec]:
    table: Dict[str, OpSpec] = {}

    def op(name: str, cls: InstrClass, **kw) -> None:
        table[name] = OpSpec(name=name, cls=cls, **kw)

    # Moves -----------------------------------------------------------------
    op("mov", InstrClass.MOVE, description="integer move (register or immediate)")
    op("fmov", InstrClass.MOVE, description="float move (register or immediate)")
    for cond in _CONDITIONS:
        op(f"mov{cond}", InstrClass.MOVE, reads_flags=True,
           description=f"integer move if {cond}")
        op(f"fmov{cond}", InstrClass.MOVE, reads_flags=True,
           description=f"float move if {cond}")

    # Integer data processing -------------------------------------------------
    for name in ("add", "sub", "rsb", "and", "orr", "eor", "bic",
                 "lsl", "lsr", "asr", "min", "max"):
        op(name, InstrClass.ALU, description=f"integer {name}")
    op("mul", InstrClass.MUL, description="integer multiply")
    op("cmp", InstrClass.CMP, sets_flags=True, description="integer compare")

    # Float data processing ---------------------------------------------------
    for name in ("fadd", "fsub", "fmin", "fmax", "fneg", "fabs"):
        op(name, InstrClass.FALU, description=f"float {name[1:]}")
    op("fmul", InstrClass.FMUL, description="float multiply")
    op("fdiv", InstrClass.FDIV, description="float divide")
    op("fcmp", InstrClass.CMP, sets_flags=True, description="float compare")

    # Bitwise ops on float registers (mask idioms use these; they operate on
    # the IEEE-754 bit pattern, as the paper's FFT example does with `and`).
    for name in ("fand", "forr"):
        op(name, InstrClass.FALU, description=f"bitwise {name[1:]} on float bits")

    # Memory ------------------------------------------------------------------
    for name in ("ldb", "ldub", "ldh", "lduh", "ldw", "ldf"):
        op(name, InstrClass.LOAD, description=f"scalar load ({name})")
    for name in ("stb", "sth", "stw", "stf"):
        op(name, InstrClass.STORE, description=f"scalar store ({name})")

    # Control flow ------------------------------------------------------------
    op("b", InstrClass.BRANCH, description="unconditional branch")
    for cond in _CONDITIONS:
        op(f"b{cond}", InstrClass.BRANCH, reads_flags=True,
           description=f"branch if {cond}")
    op("bl", InstrClass.CALL, description="branch and link (plain call)")
    op("blo", InstrClass.CALL,
       description="branch and link, outlined-region marker (translatable)")
    op("ret", InstrClass.RET, description="return via link register")
    op("nop", InstrClass.SYS)
    op("halt", InstrClass.SYS, description="stop simulation")

    # Vector data processing ----------------------------------------------------
    for name in ("vadd", "vsub", "vand", "vorr", "veor", "vbic",
                 "vshl", "vshr", "vmin", "vmax", "vqadd", "vqsub",
                 "vmask", "vabs", "vneg", "vabd"):
        op(name, InstrClass.VALU, description=f"vector {name[1:]}")
    op("vmul", InstrClass.VMUL, description="vector multiply")

    # Vector memory ---------------------------------------------------------------
    op("vld", InstrClass.VLOAD, description="vector load (elem type from .elem)")
    op("vst", InstrClass.VSTORE, description="vector store")

    # Permutations (period is an immediate operand; see repro.simd.permutations)
    op("vbfly", InstrClass.VPERM, description="swap halves within groups of #p lanes")
    op("vrev", InstrClass.VPERM, description="reverse within groups of #p lanes")
    op("vrot", InstrClass.VPERM, description="rotate groups of #p lanes left by #k")

    # Reductions (vector -> loop-carried scalar register)
    for name in ("vredsum", "vredmin", "vredmax"):
        op(name, InstrClass.VRED, description=f"vector {name[4:]} reduction into scalar")

    return table


#: The full opcode table, keyed by mnemonic.
OPCODES: Dict[str, OpSpec] = _build_table()


def spec(opcode: str) -> OpSpec:
    """Look up the :class:`OpSpec` for *opcode* (raises KeyError if unknown)."""
    return OPCODES[opcode]


def is_load(opcode: str) -> bool:
    return OPCODES[opcode].cls in (InstrClass.LOAD, InstrClass.VLOAD)


def is_store(opcode: str) -> bool:
    return OPCODES[opcode].cls in (InstrClass.STORE, InstrClass.VSTORE)


def is_branch(opcode: str) -> bool:
    return OPCODES[opcode].cls is InstrClass.BRANCH


def is_conditional_branch(opcode: str) -> bool:
    s = OPCODES[opcode]
    return s.cls is InstrClass.BRANCH and s.reads_flags


def is_call(opcode: str) -> bool:
    return OPCODES[opcode].cls is InstrClass.CALL


def is_vector_op(opcode: str) -> bool:
    return OPCODES[opcode].is_vector


#: Element type -> size in bytes.
ELEM_SIZES = {"i8": 1, "i16": 2, "i32": 4, "f32": 4}

#: Scalar load opcode -> (element type, signed?).
LOAD_ELEM = {
    "ldb": ("i8", True),
    "ldub": ("i8", False),
    "ldh": ("i16", True),
    "lduh": ("i16", False),
    "ldw": ("i32", True),
    "ldf": ("f32", True),
}

#: Scalar store opcode -> element type.
STORE_ELEM = {"stb": "i8", "sth": "i16", "stw": "i32", "stf": "f32"}

#: Element type -> scalar load/store opcodes (used by code generators).
LOAD_FOR_ELEM = {"i8": "ldb", "i16": "ldh", "i32": "ldw", "f32": "ldf"}
STORE_FOR_ELEM = {"i8": "stb", "i16": "sth", "i32": "stw", "f32": "stf"}
