"""The benchmark suite registry: the paper's fifteen workloads.

``BENCHMARKS`` maps display names (as used in the paper's tables) to
kernel factories.  :func:`build_kernel` instantiates one; kernels are
rebuilt per call so mutable initial data is never shared between runs.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.core.scalarize.loop_ir import Kernel
from repro.kernels import media, signal, spec_fp

BENCHMARKS: Dict[str, Callable[[], Kernel]] = {
    "052.alvinn": spec_fp.alvinn_kernel,
    "056.ear": spec_fp.ear_kernel,
    "093.nasa7": spec_fp.nasa7_kernel,
    "101.tomcatv": spec_fp.tomcatv_kernel,
    "104.hydro2d": spec_fp.hydro2d_kernel,
    "171.swim": spec_fp.swim_kernel,
    "172.mgrid": spec_fp.mgrid_kernel,
    "179.art": spec_fp.art_kernel,
    "MPEG2 Dec.": media.mpeg2_decode_kernel,
    "MPEG2 Enc.": media.mpeg2_encode_kernel,
    "GSM Dec.": media.gsm_decode_kernel,
    "GSM Enc.": media.gsm_encode_kernel,
    "LU": signal.lu_kernel,
    "FIR": signal.fir_kernel,
    "FFT": signal.fft_kernel,
}

#: Paper ordering for reports (SPECfp, MediaBench, kernels).
BENCHMARK_ORDER: List[str] = [
    "052.alvinn", "056.ear", "093.nasa7", "101.tomcatv", "104.hydro2d",
    "171.swim", "172.mgrid", "179.art",
    "MPEG2 Dec.", "MPEG2 Enc.", "GSM Dec.", "GSM Enc.",
    "LU", "FIR", "FFT",
]


def build_kernel(name: str) -> Kernel:
    """Instantiate (and validate) one benchmark kernel by name."""
    try:
        factory = BENCHMARKS[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; choose from {BENCHMARK_ORDER}"
        ) from None
    kernel = factory()
    kernel.validate()
    return kernel


def all_kernels() -> List[Kernel]:
    """All fifteen benchmarks, in paper order."""
    return [build_kernel(name) for name in BENCHMARK_ORDER]
