"""Helpers that deepen loop bodies to the paper's Table 5 sizes.

The paper's hot loops average between 11 (LU/FIR) and 46 (mgrid) scalar
instructions.  Our kernels express each benchmark's characteristic
computation in a handful of operations; these helpers append a
*register-neutral* chain of further in-place data-parallel operations so
the outlined-function sizes land in the paper's reported band without
exhausting the vector register file.

Float chains mix multiplies by sub-unity constants with adds/subs of
already-live values, keeping magnitudes bounded.  Integer chains use
only saturating adds/subs, arithmetic shifts, and clamped min/max — all
range-safe by construction, so narrow-lane SIMD and widened scalar
execution remain bit-identical.
"""

from __future__ import annotations

from typing import Sequence

from repro.kernels.dsl import LoopBuilder, Vec

_F_IMMS = (0.9, -0.2, 1.05, 0.45, 0.7, -0.35, 0.55, 0.8)


def deepen_float(builder: LoopBuilder, vec: Vec, others: Sequence[Vec],
                 count: int) -> Vec:
    """Append *count* in-place f32 operations to *vec*'s dataflow."""
    others = list(others) or [vec]
    for i in range(count):
        kind = i % 4
        if kind == 0:
            vec = builder.mul(vec, builder.imm(_F_IMMS[i % len(_F_IMMS)]),
                              inplace=True)
        elif kind == 1:
            vec = builder.add(vec, others[i % len(others)], inplace=True)
        elif kind == 2:
            vec = builder.sub(vec, others[(i + 1) % len(others)],
                              inplace=True)
        else:
            vec = builder.max(vec, builder.imm(-8.0), inplace=True)
    return vec


def deepen_int(builder: LoopBuilder, vec: Vec, others: Sequence[Vec],
               count: int) -> Vec:
    """Append *count* range-safe in-place integer operations to *vec*.

    Saturating ops and shifts only — never a wrapping add/mul — so the
    scalar representation's widened intermediates cannot diverge from
    narrow SIMD lanes.  Note each ``qadd``/``qsub`` expands to a
    5-instruction scalar idiom, so integer bodies grow faster per op.
    """
    others = list(others) or [vec]
    for i in range(count):
        kind = i % 3
        if kind == 0:
            vec = builder.qadd(vec, others[i % len(others)], inplace=True)
        elif kind == 1:
            vec = builder.shr(vec, builder.imm(1), inplace=True)
        else:
            vec = builder.qsub(vec, others[(i + 1) % len(others)],
                               inplace=True)
    return vec

