"""Benchmark workloads: the DSL and the paper's fifteen benchmarks."""

from repro.kernels.dsl import LoopBuilder, Vec
from repro.kernels.suite import BENCHMARK_ORDER, BENCHMARKS, all_kernels, build_kernel

__all__ = [
    "LoopBuilder",
    "Vec",
    "BENCHMARK_ORDER",
    "BENCHMARKS",
    "all_kernels",
    "build_kernel",
]
