"""A small builder DSL for writing width-agnostic SIMD loops.

The paper hand-SIMDized its benchmarks in assembly; this DSL plays that
role ergonomically.  A :class:`LoopBuilder` accumulates vector
instructions against named arrays and produces a
:class:`~repro.core.scalarize.loop_ir.SimdLoop`::

    b = LoopBuilder("fir_tap", trip=512, elem="f32")
    x = b.load("x")
    h = b.load("h")
    b.reduce("sum", b.mul(x, h), acc="f1", init=0.0, store_to="y_acc")

Vector registers are allocated automatically (indexes 2..13, leaving r0
for the induction variable, index 1 for reduction accumulators, and
r14/r15 for linkage), so the produced loop always satisfies the
scalarizer's register conventions.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

from repro.core.scalarize.loop_ir import SimdLoop
from repro.isa.instructions import Imm, Instruction, Mem, Reg, Sym, VImm

Number = Union[int, float]

_BINARY_OPS = {
    "add": "vadd", "sub": "vsub", "mul": "vmul",
    "and_": "vand", "or_": "vorr", "xor": "veor", "bic": "vbic",
    "shl": "vshl", "shr": "vshr",
    "min": "vmin", "max": "vmax",
    "qadd": "vqadd", "qsub": "vqsub",
    "abd": "vabd", "mask": "vmask",
}

_REDUCE_OPS = {"sum": "vredsum", "min": "vredmin", "max": "vredmax"}


class Vec:
    """Handle to a vector value held in an allocated vector register."""

    def __init__(self, builder: "LoopBuilder", reg: str, elem: str) -> None:
        self._builder = builder
        self.reg = reg
        self.elem = elem

    def __repr__(self) -> str:
        return f"Vec({self.reg}:{self.elem})"


class LoopBuilder:
    """Accumulates one width-agnostic SIMD loop."""

    def __init__(self, name: str, trip: int, elem: str = "f32",
                 induction: str = "r0") -> None:
        self.name = name
        self.trip = trip
        self.default_elem = elem
        self.induction = induction
        self._body: List[Instruction] = []
        self._pre: List[Instruction] = []
        self._post: List[Instruction] = []
        self._next_index = 2
        self._acc_used: List[str] = []

    # -- register allocation ------------------------------------------------------

    def _alloc(self, elem: str) -> str:
        if self._next_index > 13:
            raise ValueError(f"{self.name}: out of vector registers")
        bank = "vf" if elem == "f32" else "v"
        reg = f"{bank}{self._next_index}"
        self._next_index += 1
        return reg

    def _emit(self, instr: Instruction) -> None:
        self._body.append(instr)

    # -- values ------------------------------------------------------------------

    def imm(self, value: Number) -> Imm:
        """A scalar-supported constant (Table 1, category 2)."""
        return Imm(value)

    def lanes(self, values: Sequence[Number]) -> VImm:
        """A periodic per-lane constant (Table 1, category 3).

        ``len(values)`` is the pattern period and must be a power of two.
        """
        return VImm(tuple(values))

    # -- memory --------------------------------------------------------------------

    def load(self, array: str, elem: Optional[str] = None) -> Vec:
        """Vector load ``array[i .. i+W)``."""
        elem = elem or self.default_elem
        reg = self._alloc(elem)
        self._emit(Instruction(
            "vld", dst=Reg(reg),
            mem=Mem(base=Sym(array), index=Reg(self.induction)), elem=elem,
        ))
        return Vec(self, reg, elem)

    def store(self, array: str, vec: Vec, elem: Optional[str] = None) -> None:
        """Vector store into ``array[i .. i+W)``."""
        self._emit(Instruction(
            "vst", srcs=(Reg(vec.reg),),
            mem=Mem(base=Sym(array), index=Reg(self.induction)),
            elem=elem or vec.elem,
        ))

    # -- data-parallel operations ------------------------------------------------------

    def binary(self, op: str, a: Vec, b: Union[Vec, Imm, VImm], *,
               inplace: bool = False) -> Vec:
        """Generic elementwise binary op; ``op`` is a DSL name (``add`` ...).

        ``inplace=True`` overwrites *a*'s register instead of allocating a
        new one (the paper's SIMD listings do this heavily; it also keeps
        big loop bodies inside the 12 allocatable vector registers).
        """
        opcode = _BINARY_OPS[op]
        dst = a.reg if inplace else self._alloc(a.elem)
        operand = Reg(b.reg) if isinstance(b, Vec) else b
        self._emit(Instruction(opcode, dst=Reg(dst),
                               srcs=(Reg(a.reg), operand), elem=a.elem))
        return Vec(self, dst, a.elem)

    def unary(self, op: str, a: Vec, *, inplace: bool = False) -> Vec:
        opcode = {"neg": "vneg", "abs": "vabs"}[op]
        dst = a.reg if inplace else self._alloc(a.elem)
        self._emit(Instruction(opcode, dst=Reg(dst), srcs=(Reg(a.reg),),
                               elem=a.elem))
        return Vec(self, dst, a.elem)

    # Convenience wrappers (one per supported op) --------------------------------------

    def add(self, a, b, **kw):
        return self.binary("add", a, b, **kw)

    def sub(self, a, b, **kw):
        return self.binary("sub", a, b, **kw)

    def mul(self, a, b, **kw):
        return self.binary("mul", a, b, **kw)

    def and_(self, a, b, **kw):
        return self.binary("and_", a, b, **kw)

    def or_(self, a, b, **kw):
        return self.binary("or_", a, b, **kw)

    def xor(self, a, b, **kw):
        return self.binary("xor", a, b, **kw)

    def shl(self, a, b, **kw):
        return self.binary("shl", a, b, **kw)

    def shr(self, a, b, **kw):
        return self.binary("shr", a, b, **kw)

    def min(self, a, b, **kw):
        return self.binary("min", a, b, **kw)

    def max(self, a, b, **kw):
        return self.binary("max", a, b, **kw)

    def qadd(self, a, b, **kw):
        return self.binary("qadd", a, b, **kw)

    def qsub(self, a, b, **kw):
        return self.binary("qsub", a, b, **kw)

    def abd(self, a, b, **kw):
        return self.binary("abd", a, b, **kw)

    def mask(self, a, lanes: VImm, **kw):
        return self.binary("mask", a, lanes, **kw)

    def neg(self, a, **kw):
        return self.unary("neg", a, **kw)

    def abs(self, a, **kw):
        return self.unary("abs", a, **kw)

    # -- permutations -------------------------------------------------------------------

    def _perm(self, opcode: str, a: Vec, srcs, inplace: bool) -> Vec:
        dst = a.reg if inplace else self._alloc(a.elem)
        self._emit(Instruction(opcode, dst=Reg(dst),
                               srcs=(Reg(a.reg),) + srcs, elem=a.elem))
        return Vec(self, dst, a.elem)

    def bfly(self, a: Vec, period: int, *, inplace: bool = False) -> Vec:
        """Swap the halves of each *period*-lane group."""
        return self._perm("vbfly", a, (Imm(period),), inplace)

    def rev(self, a: Vec, period: int, *, inplace: bool = False) -> Vec:
        """Reverse each *period*-lane group."""
        return self._perm("vrev", a, (Imm(period),), inplace)

    def rot(self, a: Vec, period: int, amount: int, *,
            inplace: bool = False) -> Vec:
        """Rotate each *period*-lane group left by *amount*."""
        return self._perm("vrot", a, (Imm(period), Imm(amount)), inplace)

    # -- reductions -----------------------------------------------------------------------

    def reduce(self, kind: str, vec: Vec, acc: str, init: Number = 0,
               store_to: Optional[str] = None) -> str:
        """Fold *vec* into the loop-carried scalar register *acc*.

        ``init`` seeds the accumulator before the loop; ``store_to``
        (an array symbol) stores the final value after the loop.
        Returns the accumulator register name.
        """
        opcode = _REDUCE_OPS[kind]
        is_float = acc.startswith("f")
        if acc not in self._acc_used:
            self._acc_used.append(acc)
            mov = "fmov" if is_float else "mov"
            self._pre.append(Instruction(mov, dst=Reg(acc), srcs=(Imm(init),),
                                         comment="reduction accumulator"))
            if store_to is not None:
                store = "stf" if is_float else "stw"
                self._post.append(Instruction(
                    store, srcs=(Reg(acc),),
                    mem=Mem(base=Sym(store_to), index=Imm(0)),
                    elem="f32" if is_float else "i32",
                    comment="reduction result",
                ))
        self._emit(Instruction(opcode, dst=Reg(acc),
                               srcs=(Reg(acc), Reg(vec.reg)), elem=vec.elem))
        return acc

    # -- finish ----------------------------------------------------------------------------

    def build(self) -> SimdLoop:
        """Produce the validated :class:`SimdLoop`."""
        loop = SimdLoop(name=self.name, trip=self.trip, body=list(self._body),
                        pre=list(self._pre), post=list(self._post),
                        induction=self.induction)
        loop.validate()
        return loop
