"""Non-vectorizable scalar stages and deterministic data generators.

Every benchmark mixes its SIMD-optimizable hot loops with scalar work
the accelerator cannot touch — that scalar fraction is what bounds the
Amdahl speedups of Figure 6, and the work *between* hot-loop calls is
what produces the call distances of Table 6.  Three flavours are
provided:

* :func:`recurrence_block` — a serial floating-point dependence chain
  (unvectorizable by construction),
* :func:`chase_block` — a pointer chase through an index array, whose
  locality is controlled by the array size (large = cache-hostile, the
  179.art behaviour),
* :func:`counting_block` — minimal bookkeeping, for benchmarks whose hot
  loops run back-to-back (the MPEG2 behaviour).

Data initialization uses a tiny deterministic LCG so every run of every
binary sees identical inputs without depending on ``random``.
"""

from __future__ import annotations

from repro.core.scalarize.loop_ir import ScalarBlock
from repro.isa.instructions import Imm, Instruction, Mem, Reg, Sym
from repro.isa.program import DataArray

#: Registers the scalar blocks may clobber.  They are chosen high in
#: both banks so blocks compose with any hot loop (outlined functions
#: re-establish their own state anyway).
_CTR = "r8"
_PTR = "r9"
_ACC = "f9"


class _LCG:
    """Deterministic 32-bit linear congruential generator."""

    def __init__(self, seed: int) -> None:
        self.state = (seed * 2654435761) & 0xFFFFFFFF or 1

    def next(self) -> int:
        self.state = (self.state * 1664525 + 1013904223) & 0xFFFFFFFF
        return self.state

    def uniform(self, lo: float, hi: float) -> float:
        return lo + (self.next() / 0xFFFFFFFF) * (hi - lo)

    def int_range(self, lo: int, hi: int) -> int:
        return lo + self.next() % (hi - lo)


def float_data(name: str, count: int, seed: int, lo: float = -1.0,
               hi: float = 1.0) -> DataArray:
    """A deterministic f32 array."""
    rng = _LCG(seed)
    values = [round(rng.uniform(lo, hi), 4) for _ in range(count)]
    return DataArray(name, "f32", values)


def int_data(name: str, count: int, seed: int, lo: int, hi: int,
             elem: str = "i16") -> DataArray:
    """A deterministic integer array with values in [lo, hi)."""
    rng = _LCG(seed)
    values = [rng.int_range(lo, hi) for _ in range(count)]
    return DataArray(name, elem, values)


def zeros(name: str, count: int, elem: str = "f32") -> DataArray:
    fill = 0.0 if elem == "f32" else 0
    return DataArray(name, elem, [fill] * count)


def chase_indices(name: str, count: int, seed: int) -> DataArray:
    """An index array forming one random cycle over [0, count)."""
    rng = _LCG(seed)
    order = list(range(count))
    for i in range(count - 1, 0, -1):
        j = rng.next() % (i + 1)
        order[i], order[j] = order[j], order[i]
    indices = [0] * count
    for here, there in zip(order, order[1:] + order[:1]):
        indices[here] = there
    return DataArray(name, "i32", indices)


def app_ballast(name: str, size_bytes: int) -> DataArray:
    """Static data standing in for the rest of a real application binary.

    The paper measures code-size overhead against complete benchmark
    binaries (VLC tables, codebooks, program text); the media kernels add
    a ballast segment so their overhead is expressed against a
    realistically sized binary rather than a bare hot loop.
    """
    return DataArray(name, "i8", [0] * size_bytes, read_only=True)


def recurrence_block(name: str, iters: int) -> ScalarBlock:
    """Serial dependence chain: ``acc = acc * 0.5 + 1.25``, *iters* times."""
    body = [
        Instruction("mov", dst=Reg(_CTR), srcs=(Imm(0),)),
        Instruction("fmov", dst=Reg(_ACC), srcs=(Imm(0.5),)),
        # loop:
        Instruction("fmul", dst=Reg(_ACC), srcs=(Reg(_ACC), Imm(0.5))),
        Instruction("fadd", dst=Reg(_ACC), srcs=(Reg(_ACC), Imm(1.25))),
        Instruction("add", dst=Reg(_CTR), srcs=(Reg(_CTR), Imm(1))),
        Instruction("cmp", srcs=(Reg(_CTR), Imm(iters))),
        Instruction("blt", target="loop"),
    ]
    return ScalarBlock(name=name, body=body, labels={"loop": 2})


def chase_block(name: str, steps: int, index_array: str) -> ScalarBlock:
    """Pointer chase: ``p = indices[p]``, *steps* times.

    With an index array larger than the data cache every step misses —
    this is how 179.art's cache-bound phases are modeled.
    """
    body = [
        Instruction("mov", dst=Reg(_CTR), srcs=(Imm(0),)),
        Instruction("mov", dst=Reg(_PTR), srcs=(Imm(0),)),
        # loop:
        Instruction("ldw", dst=Reg(_PTR),
                    mem=Mem(base=Sym(index_array), index=Reg(_PTR)),
                    elem="i32"),
        Instruction("add", dst=Reg(_CTR), srcs=(Reg(_CTR), Imm(1))),
        Instruction("cmp", srcs=(Reg(_CTR), Imm(steps))),
        Instruction("blt", target="loop"),
    ]
    return ScalarBlock(name=name, body=body, labels={"loop": 2})


def counting_block(name: str, iters: int = 8) -> ScalarBlock:
    """Minimal bookkeeping between back-to-back hot-loop calls."""
    body = [
        Instruction("mov", dst=Reg(_CTR), srcs=(Imm(0),)),
        # loop:
        Instruction("add", dst=Reg(_CTR), srcs=(Reg(_CTR), Imm(1))),
        Instruction("cmp", srcs=(Reg(_CTR), Imm(iters))),
        Instruction("blt", target="loop"),
    ]
    return ScalarBlock(name=name, body=body, labels={"loop": 1})

