"""SPEC-FP-style workloads: the paper's eight floating-point benchmarks.

Each kernel is a synthetic stand-in that reproduces the *structural*
properties the paper reports for its SPEC counterpart: hot-loop size
(Table 5), call spacing (Table 6), cache behaviour (179.art is
miss-bound), and vectorizable fraction (which bounds Figure 6 speedup).
The numerical content is representative (stencils, dot products, mesh
relaxation), not a port of SPEC source.
"""

from __future__ import annotations

from repro.core.scalarize.loop_ir import Kernel
from repro.kernels.depth import deepen_float
from repro.kernels.dsl import LoopBuilder
from repro.kernels.scalarwork import (
    chase_block,
    chase_indices,
    float_data,
    recurrence_block,
    zeros,
)


def alvinn_kernel() -> Kernel:
    """052.alvinn: neural-net layer — dot products + clipped activation.

    Small hot loops (Table 5 reports mean 12.5 instructions).
    """
    trip = 256
    dot = LoopBuilder("alvinn_dot", trip=trip, elem="f32")
    inputs = dot.load("alv_in")
    weights = dot.load("alv_w")
    prod = dot.mul(inputs, weights)
    prod = deepen_float(dot, prod, [inputs], 2)
    dot.reduce("sum", prod, acc="f1", init=0.0, store_to="alv_sum")

    act = LoopBuilder("alvinn_act", trip=trip, elem="f32")
    x = act.load("alv_hidden")
    scaled = act.add(act.mul(x, act.imm(0.5), inplace=True), act.imm(0.25),
                     inplace=True)
    clipped = act.min(act.max(scaled, act.imm(-1.0), inplace=True),
                      act.imm(1.0), inplace=True)
    act.store("alv_out", clipped)

    schedule = ["alvinn_dot", "alvinn_work", "alvinn_act", "alvinn_work"]
    return Kernel(
        name="052.alvinn",
        description="neural network layer: dot product + clipped activation",
        arrays=[
            float_data("alv_in", trip, seed=41),
            float_data("alv_w", trip, seed=42),
            float_data("alv_hidden", trip, seed=43),
            zeros("alv_out", trip),
            zeros("alv_sum", 1),
        ],
        stages=[dot.build(), act.build(), recurrence_block("alvinn_work", 600)],
        schedule=schedule,
        repeats=12,
    )


def ear_kernel() -> Kernel:
    """056.ear: cochlea filter cascade — one long filter loop + AGC scan.

    The filter body is deliberately deep (Table 5: mean 34.5) and calls
    are far apart (Table 6: the largest sub-art distance).
    """
    trip = 256
    filt = LoopBuilder("ear_filter", trip=trip, elem="f32")
    x = filt.load("ear_x")
    s1 = filt.load("ear_s1")
    s2 = filt.load("ear_s2")
    # Second-order section evaluated twice with different coefficients.
    t1 = filt.add(filt.mul(x, filt.imm(0.8)), filt.mul(s1, filt.imm(-0.3)))
    t1 = filt.add(t1, filt.mul(s2, filt.imm(0.1)), inplace=True)
    t2 = filt.add(filt.mul(t1, filt.imm(0.9)),
                  filt.mul(s1, filt.imm(0.05)))
    t2 = filt.sub(t2, filt.mul(s2, filt.imm(0.2)), inplace=True)
    t2 = deepen_float(filt, t2, [x, s1, t1], 18)   # full cascade depth
    filt.store("ear_s2", s1)
    filt.store("ear_s1", t1)
    filt.store("ear_y", t2)

    agc = LoopBuilder("ear_agc", trip=trip, elem="f32")
    y = agc.load("ear_y")
    mag = agc.abs(y)
    gain = agc.mul(mag, agc.imm(1.25))
    gain = deepen_float(agc, gain, [y, mag], 14)
    agc.store("ear_gain", gain)
    agc.reduce("max", mag, acc="f1", init=0.0, store_to="ear_peak")
    agc.store("ear_mag", mag)

    schedule = ["ear_filter", "ear_work", "ear_agc", "ear_work"]
    return Kernel(
        name="056.ear",
        description="cochlea filter cascade with automatic gain scan",
        arrays=[
            float_data("ear_x", trip, seed=51),
            float_data("ear_s1", trip, seed=52, lo=-0.5, hi=0.5),
            float_data("ear_s2", trip, seed=53, lo=-0.5, hi=0.5),
            zeros("ear_y", trip),
            zeros("ear_gain", trip),
            zeros("ear_mag", trip),
            zeros("ear_peak", 1),
        ],
        stages=[filt.build(), agc.build(), recurrence_block("ear_work", 700)],
        schedule=schedule,
        repeats=10,
    )


def nasa7_kernel() -> Kernel:
    """093.nasa7: matrix-kernel suite — two deep loops with permutations.

    The paper's largest hot loops (Table 5: mean 45.5, max 59).
    """
    trip = 128
    mult = LoopBuilder("nasa7_mxm", trip=trip, elem="f32")
    a = mult.load("n7_a")
    b = mult.load("n7_b")
    c = mult.load("n7_c")
    acc = mult.mul(a, b)
    acc = mult.add(acc, mult.mul(b, c), inplace=True)
    acc = mult.add(acc, mult.mul(a, c), inplace=True)
    acc = mult.add(acc, mult.mul(acc, mult.imm(0.25)))
    acc = deepen_float(mult, acc, [a, b, c], 26)   # paper's deepest loops
    mult.store("n7_d", acc)
    mult.reduce("sum", acc, acc="f1", init=0.0, store_to="n7_trace")

    emit = LoopBuilder("nasa7_vpenta", trip=trip, elem="f32")
    d = emit.load("n7_d")
    d_rev = emit.rev(emit.load("n7_d"), 8, inplace=True)   # folded reverse
    e = emit.load("n7_e")
    t = emit.add(emit.mul(d, emit.imm(0.5)), emit.mul(d_rev, emit.imm(0.5)))
    t = emit.sub(t, emit.mul(e, emit.imm(0.125)), inplace=True)
    t = emit.add(t, emit.mul(t, emit.imm(0.0625)))
    t = deepen_float(emit, t, [d, e], 24)
    emit.store("n7_e", t)

    schedule = ["nasa7_mxm", "nasa7_work", "nasa7_vpenta", "nasa7_work"]
    return Kernel(
        name="093.nasa7",
        description="matrix kernel suite with reversed-operand pass",
        arrays=[
            float_data("n7_a", trip, seed=61),
            float_data("n7_b", trip, seed=62),
            float_data("n7_c", trip, seed=63),
            zeros("n7_d", trip),
            float_data("n7_e", trip, seed=64),
            zeros("n7_trace", 1),
        ],
        stages=[mult.build(), emit.build(), recurrence_block("nasa7_work", 900)],
        schedule=schedule,
        repeats=10,
    )


def tomcatv_kernel() -> Kernel:
    """101.tomcatv: mesh relaxation — fissioned update + residual scan.

    The paper notes tomcatv's loops had to be split to fit the 64-entry
    microcode buffer; the update loop here fissions (mid-loop butterfly)
    for the same structural effect.
    """
    trip = 256
    relax = LoopBuilder("tomcatv_relax", trip=trip, elem="f32")
    xx = relax.load("tc_x")
    yy = relax.load("tc_y")
    rx = relax.load("tc_rx")
    mixed = relax.add(relax.mul(xx, relax.imm(0.7)),
                      relax.mul(yy, relax.imm(0.3)))
    swapped = relax.bfly(mixed, 4)                 # mid-dataflow: fission
    corrected = relax.sub(swapped, relax.mul(rx, relax.imm(0.4)))
    corrected = deepen_float(relax, corrected, [xx, yy, rx], 22)
    relax.store("tc_x", corrected)
    relax.store("tc_res", relax.sub(corrected, xx))

    resid = LoopBuilder("tomcatv_resid", trip=trip, elem="f32")
    r = resid.load("tc_res")
    weighted = resid.mul(r, resid.imm(0.5))
    weighted = deepen_float(resid, weighted, [r], 8)
    resid.store("tc_res", weighted)
    resid.reduce("max", resid.abs(r, inplace=True), acc="f1", init=0.0,
                 store_to="tc_rmax")

    schedule = ["tomcatv_relax", "tomcatv_work", "tomcatv_resid",
                "tomcatv_work"]
    return Kernel(
        name="101.tomcatv",
        description="vectorized mesh relaxation with residual reduction",
        arrays=[
            float_data("tc_x", trip, seed=71),
            float_data("tc_y", trip, seed=72),
            float_data("tc_rx", trip, seed=73),
            zeros("tc_res", trip),
            zeros("tc_rmax", 1),
        ],
        stages=[relax.build(), resid.build(),
                recurrence_block("tomcatv_work", 700)],
        schedule=schedule,
        repeats=8,
    )


def hydro2d_kernel() -> Kernel:
    """104.hydro2d: hydrodynamics — three moderate stencil-style loops."""
    trip = 256

    flux = LoopBuilder("hydro_flux", trip=trip, elem="f32")
    rho = flux.load("hy_rho")
    vel = flux.load("hy_vel")
    f = flux.mul(rho, vel)
    f = flux.add(f, flux.mul(f, flux.imm(0.1)), inplace=True)
    f = deepen_float(flux, f, [rho, vel], 14)
    flux.store("hy_flux", f)

    advance = LoopBuilder("hydro_adv", trip=trip, elem="f32")
    q = advance.load("hy_rho")
    fx = advance.load("hy_flux")
    q2 = advance.sub(q, advance.mul(fx, advance.imm(0.05)))
    q2 = deepen_float(advance, q2, [q, fx], 13)
    advance.store("hy_rho", q2)
    advance.store("hy_dq", advance.sub(q2, q))

    limiter = LoopBuilder("hydro_limit", trip=trip, elem="f32")
    dq = limiter.load("hy_dq")
    lim = limiter.min(limiter.max(dq, limiter.imm(-0.2), inplace=True),
                      limiter.imm(0.2), inplace=True)
    lim = deepen_float(limiter, lim, [dq], 12)
    limiter.store("hy_dq", lim)

    schedule = ["hydro_flux", "hydro_work", "hydro_adv", "hydro_limit",
                "hydro_work"]
    return Kernel(
        name="104.hydro2d",
        description="hydrodynamics flux/advance/limit sweep",
        arrays=[
            float_data("hy_rho", trip, seed=81, lo=0.5, hi=1.5),
            float_data("hy_vel", trip, seed=82),
            zeros("hy_flux", trip),
            zeros("hy_dq", trip),
        ],
        stages=[flux.build(), advance.build(), limiter.build(),
                recurrence_block("hydro_work", 500)],
        schedule=schedule,
        repeats=8,
    )


def swim_kernel() -> Kernel:
    """171.swim: shallow-water stencil — two wide loops over long vectors.

    The paper points at swim's 514-element software vectors to justify
    the memory-to-memory interface; the loops here use 512 (the aligned
    power-of-two the compiler would pick under an MVL-16 target).
    """
    trip = 512

    uv = LoopBuilder("swim_uv", trip=trip, elem="f32")
    u = uv.load("sw_u")
    v = uv.load("sw_v")
    p = uv.load("sw_p")
    cu = uv.mul(uv.add(u, uv.mul(v, uv.imm(0.5))), p)
    cv = uv.mul(uv.sub(v, uv.mul(u, uv.imm(0.5))), p)
    uv.store("sw_cu", cu)
    uv.store("sw_cv", cv)
    z = uv.add(uv.mul(cu, uv.imm(0.25)), uv.mul(cv, uv.imm(0.25)))
    z = deepen_float(uv, z, [u, v, p], 20)
    uv.store("sw_z", z)

    update = LoopBuilder("swim_update", trip=trip, elem="f32")
    un = update.load("sw_u")
    cu2 = update.load("sw_cu")
    zz = update.load("sw_z")
    unew = update.add(un, update.sub(update.mul(cu2, update.imm(0.1)),
                                     update.mul(zz, update.imm(0.05))))
    unew = deepen_float(update, unew, [un, cu2, zz], 18)
    update.store("sw_u", unew)

    schedule = ["swim_uv", "swim_work", "swim_update", "swim_work"]
    return Kernel(
        name="171.swim",
        description="shallow water model: capacity/vorticity + update sweeps",
        arrays=[
            float_data("sw_u", trip, seed=91),
            float_data("sw_v", trip, seed=92),
            float_data("sw_p", trip, seed=93, lo=0.5, hi=1.0),
            zeros("sw_cu", trip),
            zeros("sw_cv", trip),
            zeros("sw_z", trip),
        ],
        stages=[uv.build(), update.build(), recurrence_block("swim_work", 800)],
        schedule=schedule,
        repeats=8,
    )


def mgrid_kernel() -> Kernel:
    """172.mgrid: multigrid smoother — the paper's biggest loops (max 62)."""
    trip = 256

    smooth = LoopBuilder("mgrid_smooth", trip=trip, elem="f32")
    r0 = smooth.load("mg_r")
    u0 = smooth.load("mg_u")
    a1 = smooth.mul(r0, smooth.imm(0.5))
    a2 = smooth.mul(u0, smooth.imm(0.25))
    t = smooth.add(a1, a2)
    t = smooth.add(t, smooth.mul(t, smooth.imm(0.125)), inplace=True)
    t = smooth.sub(t, smooth.mul(r0, smooth.imm(0.0625)), inplace=True)
    t = smooth.add(t, smooth.mul(u0, smooth.imm(0.03125)), inplace=True)
    t = deepen_float(smooth, t, [r0, u0], 28)
    smooth.store("mg_u", t)
    smooth.reduce("sum", t, acc="f1", init=0.0, store_to="mg_norm")

    restrict = LoopBuilder("mgrid_restrict", trip=trip, elem="f32")
    fine = restrict.load("mg_u")
    fine_rev = restrict.rev(restrict.load("mg_u"), 4, inplace=True)
    coarse = restrict.mul(restrict.add(fine, fine_rev), restrict.imm(0.5))
    coarse = restrict.sub(coarse, restrict.mul(coarse, restrict.imm(0.1)))
    coarse = deepen_float(restrict, coarse, [fine, fine_rev], 26)
    restrict.store("mg_c", coarse)

    schedule = ["mgrid_smooth", "mgrid_work", "mgrid_restrict",
                "mgrid_work"]
    return Kernel(
        name="172.mgrid",
        description="multigrid smoothing + restriction sweeps",
        arrays=[
            float_data("mg_r", trip, seed=101),
            float_data("mg_u", trip, seed=102),
            zeros("mg_c", trip),
            zeros("mg_norm", 1),
        ],
        stages=[smooth.build(), restrict.build(),
                recurrence_block("mgrid_work", 650)],
        schedule=schedule,
        repeats=8,
    )


def art_kernel() -> Kernel:
    """179.art: adaptive resonance — cache-hostile, the paper's worst case.

    Small hot-loop bodies over arrays several times larger than the 16 KB
    data cache, separated by a pointer chase through a 64 KB index array:
    every hot-loop iteration misses, so SIMD width buys little (Figure 6
    shows art's speedup as the lowest of all benchmarks).
    """
    trip = 4096

    f1_layer = LoopBuilder("art_f1", trip=trip, elem="f32")
    inp = f1_layer.load("art_i")
    w = f1_layer.load("art_w")
    act = f1_layer.mul(inp, w)
    act = deepen_float(f1_layer, act, [inp], 2)
    f1_layer.store("art_y", act)
    f1_layer.reduce("sum", act, acc="f1", init=0.0, store_to="art_match")

    f2_layer = LoopBuilder("art_f2", trip=trip, elem="f32")
    y = f2_layer.load("art_y")
    w2 = f2_layer.load("art_w")
    f2_layer.store("art_w", f2_layer.add(w2, f2_layer.mul(y, f2_layer.imm(0.01))))

    schedule = ["art_f1", "art_scan", "art_f2", "art_scan"]
    return Kernel(
        name="179.art",
        description="adaptive resonance matching over cache-hostile arrays",
        arrays=[
            float_data("art_i", trip, seed=111),
            float_data("art_w", trip, seed=112),
            zeros("art_y", trip),
            zeros("art_match", 1),
            chase_indices("art_idx", 16384, seed=113),
        ],
        stages=[f1_layer.build(), f2_layer.build(),
                chase_block("art_scan", 4500, "art_idx")],
        schedule=schedule,
        repeats=6,
    )
