"""MediaBench-style workloads: MPEG2 encode/decode, GSM encode/decode.

These are the paper's integer benchmarks and exercise the parts of the
scalar representation floats never touch: saturating-arithmetic idioms
(``vqadd``/``vqsub``), absolute-difference accumulation, and integer
reductions.  The MPEG2 kernels work on 8-element block rows, which is
why the paper sees no gain from widening the accelerator from 8 to 16 —
the translator's effective width is capped by the 8-element trip count.
MPEG2 hot loops are also called back-to-back (macroblock after
macroblock), producing the paper's only sub-300-cycle call distances in
Table 6.
"""

from __future__ import annotations

from repro.core.scalarize.loop_ir import Kernel
from repro.kernels.depth import deepen_int
from repro.kernels.dsl import LoopBuilder
from repro.kernels.scalarwork import (
    app_ballast,
    counting_block,
    int_data,
    recurrence_block,
    zeros,
)


def mpeg2_decode_kernel() -> Kernel:
    """MPEG2 decode: IDCT row pass + saturating prediction add (8-wide)."""
    trip = 8  # one block row: caps the effective SIMD width at 8

    idct = LoopBuilder("mdec_idct", trip=trip, elem="i16")
    coef = idct.load("md_blk")
    mirrored = idct.rev(idct.load("md_blk"), 4, inplace=True)
    t = idct.add(idct.mul(coef, idct.imm(5)), mirrored)
    t = idct.shr(t, idct.imm(3), inplace=True)
    idct.store("md_row", t)

    addpred = LoopBuilder("mdec_addpred", trip=trip, elem="i16")
    pred = addpred.load("md_pred")
    resid = addpred.load("md_row")
    addpred.store("md_pix", addpred.qadd(pred, resid))

    schedule = ["mdec_idct", "mdec_tick", "mdec_addpred", "mdec_tick"]
    return Kernel(
        name="MPEG2 Dec.",
        description="IDCT row pass + saturating prediction add on 8-wide rows",
        arrays=[
            int_data("md_blk", trip, seed=121, lo=-100, hi=100),
            int_data("md_pred", trip, seed=122, lo=-120, hi=120),
            zeros("md_row", trip, elem="i16"),
            zeros("md_pix", trip, elem="i16"),
            app_ballast("md_tables", 6144),  # VLC/quantizer tables
        ],
        stages=[idct.build(), addpred.build(), counting_block("mdec_tick", 2)],
        schedule=schedule,
        repeats=24,  # one pair of calls per macroblock row
    )


def mpeg2_encode_kernel() -> Kernel:
    """MPEG2 encode: SAD motion estimation + saturating quantization."""
    sad = LoopBuilder("menc_sad", trip=8, elem="i16")
    cur = sad.load("me_cur")
    ref = sad.load("me_ref")
    diff = sad.abd(cur, ref)
    sad.reduce("sum", diff, acc="r1", init=0, store_to="me_sad")

    quant = LoopBuilder("menc_quant", trip=8, elem="i16")
    x = quant.load("me_dct")
    t = quant.shr(quant.mul(x, quant.imm(3), inplace=True), quant.imm(2),
                  inplace=True)
    quant.store("me_q", quant.qsub(t, quant.imm(2)))

    schedule = ["menc_sad", "menc_tick", "menc_quant", "menc_tick"]
    return Kernel(
        name="MPEG2 Enc.",
        description="SAD motion estimation + saturating quantizer",
        arrays=[
            int_data("me_cur", 8, seed=131, lo=-120, hi=120),
            int_data("me_ref", 8, seed=132, lo=-120, hi=120),
            int_data("me_dct", 8, seed=133, lo=-150, hi=150),
            zeros("me_q", 8, elem="i16"),
            zeros("me_sad", 1, elem="i32"),
            app_ballast("me_tables", 6144),
        ],
        stages=[sad.build(), quant.build(), counting_block("menc_tick", 2)],
        schedule=schedule,
        repeats=20,
    )


def gsm_decode_kernel() -> Kernel:
    """GSM decode: long-term-prediction filter + de-emphasis (160 samples)."""
    trip = 160  # one GSM frame; largest power-of-two factor is 32

    ltp = LoopBuilder("gdec_ltp", trip=trip, elem="i16")
    x = ltp.load("gd_x")
    d = ltp.load("gd_d")
    t = ltp.shr(ltp.mul(x, ltp.imm(29), inplace=True), ltp.imm(5),
                inplace=True)
    t = deepen_int(ltp, t, [d], 3)
    ltp.store("gd_y", ltp.qadd(t, d))

    post = LoopBuilder("gdec_post", trip=trip, elem="i16")
    y = post.load("gd_y")
    emphasized = post.qadd(y, y)
    emphasized = deepen_int(post, emphasized, [y], 2)
    post.store("gd_out", emphasized)

    schedule = ["gdec_ltp", "gdec_work", "gdec_post", "gdec_work"]
    return Kernel(
        name="GSM Dec.",
        description="long-term prediction filter + de-emphasis",
        arrays=[
            int_data("gd_x", trip, seed=141, lo=-150, hi=150),
            int_data("gd_d", trip, seed=142, lo=-150, hi=150),
            zeros("gd_y", trip, elem="i16"),
            zeros("gd_out", trip, elem="i16"),
            app_ballast("gd_tables", 4096),  # RPE/LTP codebooks
        ],
        stages=[ltp.build(), post.build(), recurrence_block("gdec_work", 180)],
        schedule=schedule,
        repeats=8,
    )


def gsm_encode_kernel() -> Kernel:
    """GSM encode: frame maximum-amplitude scan + saturating downscale."""
    trip = 160

    amax = LoopBuilder("genc_amax", trip=trip, elem="i16")
    s = amax.load("ge_s")
    mag = amax.abs(s)
    amax.reduce("max", mag, acc="r1", init=0, store_to="ge_amax")

    scale = LoopBuilder("genc_scale", trip=trip, elem="i16")
    x = scale.load("ge_s")
    t = scale.shr(x, scale.imm(1))
    t = deepen_int(scale, t, [x], 2)
    scale.store("ge_scaled", scale.qsub(t, scale.imm(1)))

    schedule = ["genc_amax", "genc_work", "genc_scale", "genc_work"]
    return Kernel(
        name="GSM Enc.",
        description="amplitude scan + saturating downscale of one frame",
        arrays=[
            int_data("ge_s", trip, seed=151, lo=-150, hi=150),
            zeros("ge_scaled", trip, elem="i16"),
            zeros("ge_amax", 1, elem="i32"),
            app_ballast("ge_tables", 4096),
        ],
        stages=[amax.build(), scale.build(), recurrence_block("genc_work", 200)],
        schedule=schedule,
        repeats=8,
    )
