"""Signal-processing kernels: FIR, FFT, LU.

These model the paper's three hand-written kernels.  FIR is the paper's
best case — ~94% of its runtime in one fully vectorizable, cache-friendly
hot loop.  FFT is the paper's worked example (Figure 2/4): a butterfly
stage whose mid-dataflow permutation forces loop fission in the scalar
representation.  LU is a sequence of small row-elimination loops.
"""

from __future__ import annotations

from repro.core.scalarize.loop_ir import Kernel
from repro.kernels.depth import deepen_float
from repro.kernels.dsl import LoopBuilder
from repro.kernels.scalarwork import float_data, recurrence_block, zeros


def fir_kernel() -> Kernel:
    """FIR filter: windowed dot products plus a tap-scaled output tap.

    One hot loop computes the elementwise product ``x*h``, stores the
    scaled signal, and accumulates the dot product (the filter response
    at the current offset).
    """
    trip = 512
    builder = LoopBuilder("fir_mac", trip=trip, elem="f32")
    x = builder.load("fir_x")
    h = builder.load("fir_h")
    prod = builder.mul(x, h)
    builder.store("fir_scaled", prod)
    builder.reduce("sum", prod, acc="f1", init=0.0, store_to="fir_out")
    loop = builder.build()

    schedule = ["fir_mac", "fir_tick"]
    return Kernel(
        name="FIR",
        description="finite impulse response filter (paper kernel, best case)",
        arrays=[
            float_data("fir_x", trip, seed=11),
            float_data("fir_h", trip, seed=12),
            zeros("fir_scaled", trip),
            zeros("fir_out", 1),
        ],
        stages=[loop, recurrence_block("fir_tick", 24)],
        schedule=schedule,
        repeats=24,
    )


def fft_kernel() -> Kernel:
    """FFT butterfly stage — the paper's running example (Figures 2-4).

    Loads shuffled real/imaginary vectors (load-side butterfly, category
    7), computes the twiddle product, and recombines the halves through a
    mid-loop butterfly that the scalarizer must fission (category 8 +
    temporaries), exactly as Figure 4(B) does with its two loops,
    ``bfly`` offset array and ``mask`` arrays.
    """
    trip = 128
    builder = LoopBuilder("fft_stage", trip=trip, elem="f32")
    # Mirrors Figure 4(A) line by line: shuffled loads of RealOut/ImagOut
    # (the butterfly folds into the load, category 7), twiddle products,
    # then a mid-dataflow butterfly on the masked result that forces the
    # scalarizer to fission the loop, exactly as Figure 4(B) shows.
    real_shuf = builder.bfly(builder.load("RealOut"), 8, inplace=True)
    imag_shuf = builder.bfly(builder.load("ImagOut"), 8, inplace=True)
    ar = builder.load("fft_ar")
    ai = builder.load("fft_ai")
    t_real = builder.mul(ar, real_shuf, inplace=True)
    t_imag = builder.mul(ai, imag_shuf, inplace=True)
    tr = builder.sub(t_real, t_imag)
    real = builder.load("RealOut")
    lower = builder.sub(real, tr)
    upper = builder.add(real, tr)
    # Both masks keep the upper group half (the paper's 0xF0): the lower
    # result's kept half is butterflied into the low lanes, the upper
    # result's kept half stays high, and the OR rebuilds a full vector.
    keep_high = builder.lanes([0, 0, 0, 0, -1, -1, -1, -1])
    masked_lo = builder.mask(lower, keep_high, inplace=True)
    folded = builder.bfly(masked_lo, 8, inplace=True)  # mid-dataflow: fission
    masked_hi = builder.mask(upper, keep_high, inplace=True)
    combined = builder.or_(folded, masked_hi)
    builder.store("RealOut", combined)
    stage = builder.build()

    scale = LoopBuilder("fft_scale", trip=trip, elem="f32")
    out = scale.load("RealOut")
    imag = scale.load("ImagOut")
    scaled = scale.mul(out, scale.imm(0.5))
    scaled = deepen_float(scale, scaled, [out, imag], 18)
    scale.store("RealOut", scaled)
    scale_loop = scale.build()

    schedule = ["fft_stage", "fft_index", "fft_scale", "fft_index"]
    return Kernel(
        name="FFT",
        description="FFT butterfly stage (the paper's worked example)",
        arrays=[
            float_data("RealOut", trip, seed=21),
            float_data("ImagOut", trip, seed=22),
            float_data("fft_ar", trip, seed=23),
            float_data("fft_ai", trip, seed=24),
        ],
        stages=[stage, scale_loop, recurrence_block("fft_index", 160)],
        schedule=schedule,
        repeats=7,  # log2(128) stages
    )


def lu_kernel() -> Kernel:
    """LU decomposition row updates: ``row -= factor * pivot_row``.

    Four elimination steps, each a small (≈11-instruction) outlined loop
    — the paper's smallest hot loops (Table 5 reports 11 for LU).
    """
    trip = 256
    stages = []
    schedule = []
    factors = (0.25, 0.5, 0.125, 0.75)
    arrays = [float_data("lu_pivot", trip, seed=31)]
    for step, factor in enumerate(factors):
        row = f"lu_row{step}"
        arrays.append(float_data(row, trip, seed=32 + step))
        builder = LoopBuilder(f"lu_elim{step}", trip=trip, elem="f32")
        pivot = builder.load("lu_pivot")
        target = builder.load(row)
        update = builder.mul(pivot, builder.imm(factor))
        builder.store(row, builder.sub(target, update))
        stages.append(builder.build())
    stages.append(recurrence_block("lu_bookkeep", 120))
    for step in range(len(factors)):
        schedule.extend([f"lu_elim{step}", "lu_bookkeep"])
    return Kernel(
        name="LU",
        description="LU decomposition row elimination",
        arrays=arrays,
        stages=stages,
        schedule=schedule,
        repeats=6,
    )
