"""Lifting pass: decoded fragments and superblocks into the shared IR.

:func:`lift_fragment` raises one translated microcode fragment into
:mod:`repro.codegen.ir` nodes — every canonical counted loop
(:func:`lift_loop`), the nested counted-loop shape
(:func:`lift_nested_loop`), and, when the *entire* fragment is
alternating scalar segments and counted loops with statically known
trip counts, a whole-fragment :class:`~repro.codegen.ir.ChainNode`
(:func:`lift_chain`) — the shape the paper's fissioned permutation
loops take after translation (§3, loop fission), and the one that lets
the macro engine run a whole fragment invocation as a single kernel.

:func:`lift_superblock` is the superblock-side lift: it scans one
straight-line run of a decoded program (the discovery previously
inlined in ``repro/interp/turbo.py``) into a
:class:`~repro.codegen.ir.BlockSpec` ready for the superblock backend.

Lifting is purely structural — it never builds closures — and
deterministic: the same fragment bytes yield the same IR.  Rejections
are counted per reason on the ``macro.plan.rejected.<reason>``
telemetry family and recognized shapes on ``macro.plan.shape.<shape>``
(docs/observability.md); both are no-ops through the disabled shim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro import arith
from repro.codegen.ir import (
    AluNode,
    BlockSpec,
    ChainNode,
    ChainSite,
    IRKind,
    LoadNode,
    LoopNode,
    PermNode,
    ReduceNode,
    ScalarNode,
    StoreNode,
)
from repro.isa.decoded import (
    VEC_BINARY_OPS,
    VEC_PERM_OPS,
    VEC_RED_OPS,
    VEC_UNARY_OPS,
    _resolve_target,
)
from repro.isa.instructions import Imm, Mem, Reg, Sym
from repro.isa.opcodes import STORE_ELEM, InstrClass
from repro.isa.registers import is_float_reg, is_int_reg, is_vector_reg
from repro.observability import telemetry as _telemetry
from repro.pipeline.core import _INSTR_BYTES

#: Values the induction variable may reach without 32-bit wrap concerns.
_INT31 = 1 << 31

#: Upper bound on fused superblock length (defensive; real blocks are
#: short).
MAX_BLOCK = 200


def _reject(reason: str):
    """Record one recognition rejection and return None.

    Plan construction is memoized per fragment bytes (cold), so the
    telemetry call — a no-op through the disabled shim — costs nothing
    on the execution path.  Reasons form the
    ``macro.plan.rejected.<reason>`` counter family
    (docs/observability.md).
    """
    _telemetry.get().count("macro.plan.rejected." + reason)
    return None


def _affine_sym(mem: Optional[Mem], induction: str) -> Optional[str]:
    """Symbol name of a ``[sym + induction]`` operand, else None."""
    if mem is None or not isinstance(mem.base, Sym):
        return None
    index = mem.index
    if not (isinstance(index, Reg) and index.name == induction):
        return None
    return mem.base.name


def _kind(elem: Optional[str]) -> str:
    return "f" if elem == "f32" else "i"


# ---------------------------------------------------------------------------
# Canonical counted loop
# ---------------------------------------------------------------------------


def _parse_loop_header(instrs, head: int, branch_pc: int):
    """(induction, step, trip) of an ``add``/``cmp``/``blt`` closer, or
    None when the three-instruction header is not canonical."""
    if branch_pc - head < 3:
        return _reject("loop-too-short")
    cmp_i = instrs[branch_pc - 1]
    add_i = instrs[branch_pc - 2]
    if (cmp_i.opcode != "cmp" or len(cmp_i.srcs) != 2
            or add_i.opcode != "add" or add_i.dst is None
            or len(add_i.srcs) != 2):
        return _reject("bad-header")
    ind_op = add_i.srcs[0]
    if not (isinstance(ind_op, Reg) and is_int_reg(ind_op.name)
            and add_i.dst.name == ind_op.name):
        return _reject("bad-header")
    induction = ind_op.name
    step_op = add_i.srcs[1]
    if not (isinstance(step_op, Imm) and isinstance(step_op.value, int)):
        return _reject("bad-header")
    if not (isinstance(cmp_i.srcs[0], Reg)
            and cmp_i.srcs[0].name == induction
            and isinstance(cmp_i.srcs[1], Imm)
            and isinstance(cmp_i.srcs[1].value, int)):
        return _reject("bad-header")
    return induction, int(step_op.value), int(cmp_i.srcs[1].value)


def lift_loop(fragment, head: int, branch_pc: int,
              width: int) -> Optional[LoopNode]:
    """A canonical-loop :class:`LoopNode` for the loop closed by the
    ``blt`` at *branch_pc* targeting *head*, or None when any
    instruction falls outside the translator's canonical form."""
    instrs = fragment.instructions
    header = _parse_loop_header(instrs, head, branch_pc)
    if header is None:
        return None
    induction, step, trip = header
    if step != width:
        return _reject("step-not-width")

    # Vector registers written anywhere in the body: a read before the
    # body's (re)definition would be loop-carried — unsupported.
    written: Set[str] = set()
    for pc in range(head, branch_pc - 2):
        dst = instrs[pc].dst
        if dst is not None and is_vector_reg(dst.name):
            written.add(dst.name)

    body: List[object] = []
    sites: List[Tuple[str, int, bool]] = []
    defined: Dict[str, str] = {}     # body-defined vreg -> kind
    invariants: Dict[str, str] = {}  # loop-invariant input vreg -> kind
    finals: Dict[str, Optional[str]] = {}  # written vreg -> last elem
    accs: Dict[str, bool] = {}       # reduction accumulator scalars

    def use_vec(operand, kind: str) -> Optional[str]:
        """Vector register name readable as *kind* here, or None."""
        if not (isinstance(operand, Reg) and is_vector_reg(operand.name)):
            return None
        name = operand.name
        have = defined.get(name)
        if have is not None:
            return name if have == kind else None
        if name in written:
            return None  # read of a later definition: loop-carried
        prior = invariants.get(name)
        if prior is None:
            invariants[name] = kind
        elif prior != kind:
            return None
        return name

    for pc in range(head, branch_pc - 2):
        ins = instrs[pc]
        op = ins.opcode
        elem = ins.elem
        if op == "vld":
            if elem is None or ins.dst is None \
                    or not is_vector_reg(ins.dst.name):
                return _reject("bad-operand")
            sym = _affine_sym(ins.mem, induction)
            if sym is None:
                return _reject("non-affine-address")
            site = len(sites)
            sites.append((sym, _elem_size(elem), False))
            dname = ins.dst.name
            body.append(LoadNode(pc, dname, sym, elem, site))
            defined[dname] = _kind(elem)
            finals[dname] = elem
        elif op == "vst":
            if elem is None or not ins.srcs:
                return _reject("bad-operand")
            src = use_vec(ins.srcs[0], _kind(elem))
            sym = _affine_sym(ins.mem, induction)
            if sym is None:
                return _reject("non-affine-address")
            if src is None:
                return _reject("vector-dataflow")
            site = len(sites)
            sites.append((sym, _elem_size(elem), True))
            body.append(StoreNode(pc, src, sym, elem, site))
        elif op in VEC_BINARY_OPS:
            if ins.dst is None or len(ins.srcs) != 2 \
                    or not is_vector_reg(ins.dst.name):
                return _reject("bad-operand")
            kind = _kind(elem)
            a = use_vec(ins.srcs[0], kind)
            if a is None:
                return _reject("vector-dataflow")
            b_operand = ins.srcs[1]
            if isinstance(b_operand, Reg):
                b = use_vec(b_operand, kind)
                if b is None:
                    return _reject("vector-dataflow")
            else:
                b = None
            body.append(AluNode(pc, ins.dst.name, op, elem, a, b,
                                False, ins))
            defined[ins.dst.name] = kind
            finals[ins.dst.name] = elem
        elif op in VEC_UNARY_OPS:
            if ins.dst is None or not ins.srcs \
                    or not is_vector_reg(ins.dst.name):
                return _reject("bad-operand")
            kind = _kind(elem)
            a = use_vec(ins.srcs[0], kind)
            if a is None:
                return _reject("vector-dataflow")
            body.append(AluNode(pc, ins.dst.name, op, elem, a, None,
                                True, ins))
            defined[ins.dst.name] = kind
            finals[ins.dst.name] = elem
        elif op in VEC_PERM_OPS:
            if ins.dst is None or not ins.srcs \
                    or not is_vector_reg(ins.dst.name):
                return _reject("bad-operand")
            kind = _kind(elem)
            a = use_vec(ins.srcs[0], kind)
            if a is None:
                return _reject("vector-dataflow")
            body.append(PermNode(pc, ins.dst.name, op, elem, a, ins))
            defined[ins.dst.name] = kind
            finals[ins.dst.name] = elem
        elif op in VEC_RED_OPS:
            if ins.dst is None or len(ins.srcs) != 2:
                return _reject("bad-operand")
            dname = ins.dst.name
            acc_op = ins.srcs[0]
            # Canonical accumulator form only: dst == srcs[0], a scalar
            # register of the reduction's kind, distinct from the
            # induction and from every other accumulator.
            if (is_vector_reg(dname) or dname == induction
                    or dname in accs
                    or not (isinstance(acc_op, Reg)
                            and acc_op.name == dname)):
                return _reject("bad-accumulator")
            kind = _kind(elem)
            if kind == "f" and not is_float_reg(dname):
                return _reject("bad-accumulator")
            if kind == "i" and not is_int_reg(dname):
                return _reject("bad-accumulator")
            vsrc = use_vec(ins.srcs[1], kind)
            if vsrc is None:
                return _reject("vector-dataflow")
            accs[dname] = True
            body.append(ReduceNode(pc, dname, op, elem, vsrc))
        else:
            return _reject("unsupported-op")

    # Memory-ordering precondition for whole-array execution: every
    # trip's windows are disjoint across trips (stride == width
    # elements), which holds per symbol only when all its sites share
    # one element size once a store is involved.
    store_syms = {sym for (sym, _esz, w) in sites if w}
    for sym in store_syms:
        if len({esz for (s, esz, _w) in sites if s == sym}) != 1:
            return _reject("mixed-elem-store")

    return LoopNode(head, branch_pc, width, induction, trip, width,
                    tuple(body), tuple(sites),
                    tuple(invariants.items()), tuple(finals.items()),
                    tuple(accs))


def _elem_size(elem: str) -> int:
    from repro.isa.opcodes import ELEM_SIZES
    return ELEM_SIZES[elem]


# ---------------------------------------------------------------------------
# Nested counted loop
# ---------------------------------------------------------------------------


def _mentions_reg(ins, name: str) -> bool:
    if ins.dst is not None and ins.dst.name == name:
        return True
    for src in ins.srcs:
        if isinstance(src, Reg) and src.name == name:
            return True
    mem = ins.mem
    if mem is not None:
        if isinstance(mem.base, Reg) and mem.base.name == name:
            return True
        if isinstance(mem.index, Reg) and mem.index.name == name:
            return True
    return False


def static_loop_trips(node: LoopNode) -> Optional[int]:
    """Whole trip count of *node* entered with its induction at 0, or
    None when the count would be illegal (negative trip, 32-bit wrap)."""
    trip = node.trip
    width = node.width
    if trip < 0:
        return None
    n = ((trip + width - 1) // width) if trip > 0 else 1
    if n * width >= _INT31:
        return None
    return n


def lift_nested_loop(fragment, head: int, branch_pc: int, width: int,
                     loops: Dict[int, LoopNode]) -> Optional[LoopNode]:
    """The nested counted-loop shape: an outer ``add``/``cmp``/``blt``
    loop whose body is exactly an induction reset (``mov rI, #0``)
    followed by one canonical inner vector loop, with the outer
    induction untouched by the body.  *loops* holds already-lifted
    canonical loops (the inner one lifts first — its back-branch sits
    at a lower pc)."""
    instrs = fragment.instructions
    header = _parse_loop_header(instrs, head, branch_pc)
    if header is None:
        return None
    outer_ind, step, trip = header
    if step <= 0:
        return _reject("bad-header")
    inner = loops.get(head + 1)
    if inner is None or inner.inner is not None \
            or inner.branch_pc != branch_pc - 3:
        return _reject("nested-body")
    reset = instrs[head]
    if not (reset.opcode == "mov" and reset.dst is not None
            and reset.dst.name == inner.induction
            and len(reset.srcs) == 1 and isinstance(reset.srcs[0], Imm)
            and reset.srcs[0].value == 0):
        return _reject("nested-body")
    if outer_ind == inner.induction:
        return _reject("nested-body")
    for pc in range(head, branch_pc - 2):
        if _mentions_reg(instrs[pc], outer_ind):
            return _reject("nested-outer-induction-used")
    inner_trips = static_loop_trips(inner)
    if inner_trips is None or inner_trips < 2:
        return _reject("nested-inner-trips")
    body = (ScalarNode(pc=head, op="mov-imm", dst=inner.induction,
                       value=0),
            inner)
    return LoopNode(head, branch_pc, width, outer_ind, trip, step, body)


# ---------------------------------------------------------------------------
# Whole-fragment chains
# ---------------------------------------------------------------------------


def _lift_scalar(pc: int, ins, sites: List[ChainSite]):
    """A :class:`ScalarNode` for one straight-line scalar op, or None."""
    op = ins.opcode
    if op == "mov":
        if ins.dst is None or len(ins.srcs) != 1 \
                or not is_int_reg(ins.dst.name):
            return None
        src = ins.srcs[0]
        if isinstance(src, Imm):
            if not isinstance(src.value, int):
                return None
            return ScalarNode(pc=pc, op="mov-imm", dst=ins.dst.name,
                              value=arith.wrap_int(src.value))
        if isinstance(src, Reg) and is_int_reg(src.name):
            return ScalarNode(pc=pc, op="mov-reg", dst=ins.dst.name,
                              src=src.name)
        return None
    if op == "fmov":
        if ins.dst is None or len(ins.srcs) != 1 \
                or not is_float_reg(ins.dst.name):
            return None
        src = ins.srcs[0]
        if isinstance(src, Imm):
            try:
                value = arith.f32(float(src.value))
            except (TypeError, ValueError):
                return None
            return ScalarNode(pc=pc, op="fmov-imm", dst=ins.dst.name,
                              value=value)
        if isinstance(src, Reg) and is_float_reg(src.name):
            return ScalarNode(pc=pc, op="fmov-reg", dst=ins.dst.name,
                              src=src.name)
        return None
    elem = STORE_ELEM.get(op)
    if elem is not None and op != "vst":
        if len(ins.srcs) != 1 or ins.mem is None \
                or not isinstance(ins.mem.base, Sym):
            return None
        index = ins.mem.index
        if index is None:
            offset = 0
        elif isinstance(index, Imm) and isinstance(index.value, int):
            offset = int(index.value)
        else:
            return None
        src = ins.srcs[0]
        want_float = elem == "f32"
        if isinstance(src, Reg):
            ok = is_float_reg(src.name) if want_float \
                else is_int_reg(src.name)
            if not ok:
                return None
            src_name, value = src.name, None
        elif isinstance(src, Imm):
            if want_float:
                try:
                    src_name, value = None, float(src.value)
                except (TypeError, ValueError):
                    return None
            else:
                if not isinstance(src.value, int):
                    return None
                src_name, value = None, int(src.value)
        else:
            return None
        site = len(sites)
        sites.append(ChainSite(ins.mem.base.name, _elem_size(elem),
                               True, True, offset, 1))
        return ScalarNode(pc=pc, op="store", src=src_name, value=value,
                          sym=ins.mem.base.name, offset=offset,
                          elem=elem, site=site)
    return None


def lift_chain(fragment, width: int,
               loops: Dict[int, LoopNode]) -> Optional[ChainNode]:
    """A whole-fragment :class:`ChainNode`, or None when the fragment
    is not exactly alternating scalar segments and canonical counted
    loops whose inductions are statically reset to zero."""
    instrs = fragment.instructions
    count = len(instrs)
    if count == 0:
        return None
    regions: List[object] = []
    sites: List[ChainSite] = []
    trips: List[Tuple[int, int, int]] = []  # (region idx, trips, site base)
    static_ints: Dict[str, Optional[int]] = {}
    total = 0
    pc = 0
    while pc < count:
        loop = loops.get(pc)
        if loop is not None and loop.inner is None:
            if static_ints.get(loop.induction) != 0:
                return _reject("chain-induction-not-zero")
            nloop = static_loop_trips(loop)
            if nloop is None:
                return _reject("chain-trip-count")
            site_base = len(sites)
            for sym, esz, is_store in loop.sites:
                sites.append(ChainSite(sym, esz, is_store, False, 0,
                                       nloop * width))
            trips.append((len(regions), nloop, site_base))
            regions.append(loop)
            total += nloop * loop.blen
            static_ints[loop.induction] = nloop * width
            for acc in loop.accs:
                static_ints.pop(acc, None)
            pc = loop.branch_pc + 1
            continue
        node = _lift_scalar(pc, instrs[pc], sites)
        if node is None:
            return _reject("chain-scalar-op")
        if node.op == "mov-imm":
            static_ints[node.dst] = node.value
        elif node.op == "mov-reg":
            known = static_ints.get(node.src)
            if known is None:
                static_ints.pop(node.dst, None)
            else:
                static_ints[node.dst] = known
        regions.append(node)
        total += 1
        pc += 1
    if not trips:
        return _reject("chain-no-loop")
    return ChainNode(width, tuple(regions), tuple(sites), tuple(trips),
                     total)


# ---------------------------------------------------------------------------
# Whole-fragment lift
# ---------------------------------------------------------------------------


@dataclass
class FragmentIR:
    """Every lifted region of one fragment at one hardware width."""

    width: int
    loops: Dict[int, LoopNode]
    chain: Optional[ChainNode]

    def node_kinds(self) -> Set[IRKind]:
        """All :class:`IRKind` members appearing anywhere in this IR."""
        kinds: Set[IRKind] = set()

        def visit(node) -> None:
            kinds.add(node.kind)
            if isinstance(node, LoopNode):
                for child in node.body:
                    visit(child)
            elif isinstance(node, ChainNode):
                for child in node.regions:
                    visit(child)

        for loop in self.loops.values():
            visit(loop)
        if self.chain is not None:
            visit(self.chain)
        return kinds


def lift_fragment(fragment, width: int) -> FragmentIR:
    """Lift every recognizable region of *fragment* into IR nodes.

    Returns a :class:`FragmentIR` whose ``loops`` map loop-head pc to
    the lifted :class:`LoopNode` (canonical loops and nested outer
    loops), and whose ``chain`` is the whole-fragment
    :class:`ChainNode` when the fragment matches the chain shape.
    """
    tel = _telemetry.get()
    loops: Dict[int, LoopNode] = {}
    instrs = fragment.instructions
    for pc, ins in enumerate(instrs):
        if ins.opcode != "blt" or ins.target is None:
            continue
        head = fragment.labels.get(ins.target)
        if head is None or not 0 <= head < pc:
            continue
        node = lift_loop(fragment, head, pc, width)
        if node is not None:
            loops[head] = node
            tel.count("macro.plan.shape.canonical-loop")
            continue
        node = lift_nested_loop(fragment, head, pc, width, loops)
        if node is not None:
            loops[head] = node
            tel.count("macro.plan.shape.nested-loop")
    chain = lift_chain(fragment, width, loops)
    if chain is not None:
        tel.count("macro.plan.shape.chain")
        if len(chain.loops) >= 2:
            tel.count("macro.plan.shape.fission-chain")
        if any(n == 1 for (_ri, n, _sb) in chain.trips):
            tel.count("macro.plan.shape.single-trip-loop")
    return FragmentIR(width, loops, chain)


# ---------------------------------------------------------------------------
# Superblock lift
# ---------------------------------------------------------------------------


def _timing_row(table, pc: int, meta) -> tuple:
    """One :class:`~repro.pipeline.core.BlockTiming` row for *pc*."""
    if table.fetch_mode == 1:
        fetch_key = (table.code_base
                     + pc * _INSTR_BYTES) // table.iline_bytes
    elif table.fetch_mode == 2:
        fetch_key = table.code_base + pc * _INSTR_BYTES
    else:
        fetch_key = 0
    cls = meta.cls
    if meta.is_load:
        mem_kind = 1
    elif cls is InstrClass.STORE or cls is InstrClass.VSTORE:
        mem_kind = 2
    else:
        mem_kind = 0
    nbytes = meta.elem_bytes
    if meta.is_vector and table.vector_width:
        nbytes *= table.vector_width
    return (fetch_key, meta.reads, meta.reads_flags, meta.writes,
            meta.sets_flags, meta.latency, mem_kind, nbytes)


def lift_superblock(table, entry: int) -> BlockSpec:
    """Scan the straight-line run at *entry* of a
    :class:`~repro.interp.turbo.SuperblockTable` into a
    :class:`BlockSpec`: the discovery pass plus the pre-extracted
    timing rows and resolved branch facts the backend emitters consume.
    """
    instructions = table.instructions
    metas = table.metas
    marked = table.marked
    n = len(instructions)
    limit = min(n, entry + MAX_BLOCK)

    pcs: List[int] = []
    term = 0          # 0 none, 1 branch, 2 call/ret, 3 halt
    i = entry
    exit_pc = entry
    while True:
        if i >= limit:
            exit_pc = i
            break
        if i > entry and marked is not None and marked[i]:
            exit_pc = i
            break
        meta = metas[i]
        if meta is None:
            # Unknown opcode: executable only as the entry, where its
            # deferred decode error must fire (rows stay unused).
            if i == entry:
                pcs.append(i)
            exit_pc = i
            break
        cls = meta.cls
        pcs.append(i)
        if cls is InstrClass.BRANCH:
            term = 1
            break
        if cls is InstrClass.CALL or cls is InstrClass.RET:
            term = 2
            break
        if instructions[i].opcode == "halt":
            term = 3
            break
        i += 1
        exit_pc = i

    rows = []
    simd = 0
    for pc in pcs:
        meta = metas[pc]
        if meta is None:
            continue
        rows.append(_timing_row(table, pc, meta))
        simd += meta.is_vector
    off = table.pc_offset
    branch_pc = branch_target = 0
    if term == 1:
        tpc = pcs[-1]
        branch_pc = tpc + off
        target, _err = _resolve_target(table.program,
                                       instructions[tpc].target)
        branch_target = (target + off) if target is not None \
            else branch_pc
    label = getattr(table.program, "name", "program")
    return BlockSpec(entry, tuple(pcs), term, exit_pc, tuple(rows),
                     len(pcs), simd, table.fetch_mode, branch_pc,
                     branch_target, label)
