"""Pluggable codegen backends behind one small protocol.

A *backend* turns lifted IR (:mod:`repro.codegen.ir`) into executable
closures.  Two ship today:

* ``"numpy"`` (:class:`~repro.codegen.numpy_backend.NumpyBackend`) —
  whole-array kernels for the macro engine's loop/chain/nest shapes;
* ``"superblock"``
  (:class:`~repro.codegen.superblock.SuperblockBackend`) — fused run
  closures and block/loop timing specializations for the turbo engine.

Backends register by name in :data:`BACKENDS`; a future
numexpr/C-emitting backend plugs in through :func:`register_backend`
with the same ``lower_loop``/``lower_chain`` surface as the numpy
backend — callers resolve by name via :func:`get_backend` and never
import a concrete backend class.  A lowering method returning ``None``
means "no bit-identical lowering exists" and the caller falls back
(for the macro engine, to the per-block path).
"""

from __future__ import annotations

from typing import Dict, Protocol

from repro.codegen.numpy_backend import NumpyBackend
from repro.codegen.superblock import SuperblockBackend


class Backend(Protocol):
    """Minimal surface every codegen backend exposes."""

    name: str


#: Registry of available backends, keyed by :attr:`Backend.name`.
BACKENDS: Dict[str, Backend] = {}


def register_backend(backend: Backend) -> Backend:
    """Register *backend* under its name (last registration wins)."""
    BACKENDS[backend.name] = backend
    return backend


def get_backend(name: str) -> Backend:
    """The registered backend called *name*."""
    backend = BACKENDS.get(name)
    if backend is None:
        known = ", ".join(sorted(BACKENDS))
        raise KeyError(f"unknown codegen backend {name!r} (known: {known})")
    return backend


register_backend(NumpyBackend())
register_backend(SuperblockBackend())
