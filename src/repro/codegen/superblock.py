"""Superblock backend: fused-run and timing-closure emission.

Lowers :class:`~repro.codegen.ir.BlockSpec` superblocks (lifted by
:func:`repro.codegen.lift.lift_superblock`) into the turbo engine's two
closure kinds — the fused ``run(state)`` executor and the per-block
``_timing(pipe, mem, taken)`` accounting specialization — plus the
whole-loop ``_loop(pipe, trips, lats)`` timing closure the macro engine
attaches to loop-body blocks.  This is the codegen previously
hand-rolled inline in ``repro/interp/turbo.py`` (fused blocks, block
timing) and ``repro/interp/macro.py`` (loop timing), now behind the
shared ``Backend`` protocol with sources compiled through
:mod:`repro.codegen.emit` (stable filenames, code-object cache).

The emitted code is semantically unchanged from the inline versions:

* the fused block chains quiet handlers and inlines the dominant
  scalar shapes over hoisted register banks, restoring ``state.pc``
  and the retired count on a fault;
* the block-timing closure unrolls
  :meth:`~repro.pipeline.core.PipelineModel.account_block`'s row loop
  with the block's constants baked in, batching same-line instruction
  fetches through :meth:`~repro.memory.cache.Cache.repeat_hits`;
* the loop-timing closure wraps the same row arithmetic in the
  per-trip loop with its deterministic taken/.../not-taken branch
  pattern, consuming pre-replayed d-cache latencies.

Telemetry: ``codegen.superblock.lowered.<kind>`` per emitted closure.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro import arith
from repro.codegen import emit as _emit
from repro.codegen.ir import BlockSpec
from repro.isa.decoded import (
    _INT_ALU_FAST,
    _resolve_target,
)
from repro.isa.instructions import Imm, Instruction, Reg
from repro.isa.opcodes import OPCODES, InstrClass
from repro.isa.registers import LINK_REGISTER, is_float_reg, is_int_reg
from repro.observability import telemetry as _telemetry
from repro.pipeline.core import _FLAGS, _INSTR_BYTES

#: Condition suffix -> Python expression over the hoisted ``flags`` dict,
#: mirroring :data:`repro.isa.decoded.COND_CODES` predicate for predicate.
_COND_EXPRS = {
    "eq": 'flags["eq"]',
    "ne": 'not flags["eq"]',
    "lt": 'flags["lt"]',
    "le": 'flags["lt"] or flags["eq"]',
    "gt": 'flags["gt"]',
    "ge": 'flags["gt"] or flags["eq"]',
}


def _inline_lines(pc: int, instr: Instruction, ns: dict):
    """(source lines, hoisted banks) for one instruction, or None.

    Lines assume ``ints`` / ``floats`` / ``flags`` locals bound to the
    live register banks (dict identity is stable for the whole run:
    :class:`~repro.isa.registers.RegisterFile` mutates its banks in
    place, never rebinding them).  Each inline form is only used under
    exactly the conditions for which the corresponding
    ``repro/isa/decoded.py`` handler specializes, and computes the same
    value by the same (documented) identities.
    """
    spec = OPCODES.get(instr.opcode)
    if spec is None:
        return None
    cls = spec.cls
    opcode = instr.opcode

    if cls in (InstrClass.ALU, InstrClass.MUL):
        fast = _INT_ALU_FAST.get(opcode)
        if (fast is None or len(instr.srcs) != 2 or instr.dst is None
                or not is_int_reg(instr.dst.name)):
            return None
        a_op, b_op = instr.srcs
        if not (isinstance(a_op, Reg) and is_int_reg(a_op.name)):
            return None
        d, a = instr.dst.name, a_op.name
        fn = f"f{pc}"
        if isinstance(b_op, Reg) and is_int_reg(b_op.name):
            ns[fn] = fast
            return ([f"ints[{d!r}] = {fn}(ints[{a!r}], ints[{b_op.name!r}])"],
                    {"ints"})
        if isinstance(b_op, Imm):
            try:
                b_const = int(b_op.value)
            except (TypeError, ValueError):
                return None
            ns[fn] = fast
            return ([f"ints[{d!r}] = {fn}(ints[{a!r}], {b_const})"], {"ints"})
        return None

    if cls is InstrClass.CMP:
        if len(instr.srcs) != 2:
            return None
        a_op, b_op = instr.srcs
        if not (isinstance(a_op, Reg) and is_int_reg(a_op.name)):
            return None
        a = a_op.name
        if isinstance(b_op, Imm):
            lit = _emit.literal(b_op.value)
            if lit is None:
                return None
            return ([f"a = ints[{a!r}]",
                     f'flags["lt"] = a < {lit}',
                     f'flags["eq"] = a == {lit}',
                     f'flags["gt"] = a > {lit}'], {"ints", "flags"})
        if isinstance(b_op, Reg) and is_int_reg(b_op.name):
            return ([f"a = ints[{a!r}]",
                     f"b = ints[{b_op.name!r}]",
                     'flags["lt"] = a < b',
                     'flags["eq"] = a == b',
                     'flags["gt"] = a > b'], {"ints", "flags"})
        return None

    if cls is InstrClass.MOVE:
        if len(instr.srcs) != 1 or instr.dst is None:
            return None
        src = instr.srcs[0]
        d = instr.dst.name
        if opcode == "mov" and is_int_reg(d):
            if isinstance(src, Imm):
                try:
                    value = arith.wrap_int(int(src.value))
                except (TypeError, ValueError):
                    return None
                return ([f"ints[{d!r}] = {value}"], {"ints"})
            if isinstance(src, Reg) and is_int_reg(src.name):
                # The integer bank invariantly holds wrapped ints, so
                # wrap_int(int(x)) is the identity here.
                return ([f"ints[{d!r}] = ints[{src.name!r}]"], {"ints"})
        if opcode == "fmov" and is_float_reg(d):
            if isinstance(src, Imm):
                try:
                    value = arith.f32(float(src.value))
                except (TypeError, ValueError):
                    return None
                lit = _emit.literal(value)
                if lit is None:
                    return None
                return ([f"floats[{d!r}] = {lit}"], {"floats"})
            if isinstance(src, Reg) and is_float_reg(src.name):
                # Float registers invariantly hold exact binary32 values,
                # so f32(float(x)) is the identity here.
                return ([f"floats[{d!r}] = floats[{src.name!r}]"], {"floats"})
        return None

    if cls in (InstrClass.FALU, InstrClass.FMUL):
        py_sym = {"fadd": "+", "fsub": "-", "fmul": "*"}.get(opcode)
        if (py_sym is None or len(instr.srcs) != 2 or instr.dst is None
                or not is_float_reg(instr.dst.name)):
            return None
        a_op, b_op = instr.srcs
        if not (isinstance(a_op, Reg) and is_float_reg(a_op.name)):
            return None
        d, a = instr.dst.name, a_op.name
        # binary64 +/-/* of binary32 operands followed by one rounding
        # to binary32 is correctly rounded (2p+2 <= 53): identical to
        # the reference's float32 arithmetic (see decoded.py).
        if isinstance(b_op, Reg) and is_float_reg(b_op.name):
            return ([f"floats[{d!r}] = float(_f32("
                     f"floats[{a!r}] {py_sym} floats[{b_op.name!r}]))"],
                    {"floats"})
        if isinstance(b_op, Imm):
            try:
                b_const = float(np.float32(float(b_op.value)))
            except (TypeError, ValueError):
                return None
            lit = _emit.literal(b_const)
            if lit is None:
                return None
            return ([f"floats[{d!r}] = float(_f32("
                     f"floats[{a!r}] {py_sym} {lit}))"], {"floats"})
        return None

    return None


def emit_fused_block(spec: BlockSpec, table):
    """(run closure, mem list) for one lifted superblock.

    *table* is the owning :class:`~repro.interp.turbo.SuperblockTable`
    — the emitter pulls quiet handlers and decoded instructions from
    it.  The generated function executes every instruction in the
    block (raising from the faulting pc exactly like the
    per-instruction engines) and returns the terminating branch's
    taken flag (None for other terminators); ``mem`` holds the block's
    effective addresses in execution order after each run.
    """
    instructions = table.instructions
    metas = table.metas
    entry = spec.entry
    pcs = spec.pcs
    term = spec.term
    blen = spec.blen

    mem: List[int] = []
    ns = {"_m": mem.append, "_c": mem.clear, "_f32": np.float32}
    body: List[str] = []
    hoists = set()
    has_mem = False

    def emit_closure(pc: int, handler, mem_kind: int) -> None:
        nonlocal has_mem
        name = f"q{pc}"
        ns[name] = handler
        if mem_kind:
            has_mem = True
            body.append(f"p = {pc}")
            body.append(f"_m({name}(state))")
        else:
            body.append(f"p = {pc}")
            body.append(f"{name}(state)")

    straight = pcs[:-1] if term else pcs
    for pc in straight:
        meta = metas[pc]
        mem_kind = 0
        if meta is not None:
            if meta.is_load:
                mem_kind = 1
            elif meta.cls is InstrClass.STORE \
                    or meta.cls is InstrClass.VSTORE:
                mem_kind = 2
        handler, ok = table.quiet(pc)
        inline = _inline_lines(pc, instructions[pc], ns) if ok else None
        if inline is not None:
            lines, needs = inline
            hoists |= needs
            body.append(f"p = {pc}")
            body.extend(lines)
        else:
            emit_closure(pc, handler, mem_kind)

    retired = f"state.instructions_retired += {blen}"
    if term == 1:
        tpc = pcs[-1]
        instr = instructions[tpc]
        handler, ok = table.quiet(tpc)
        target, terr = _resolve_target(table.program, instr.target)
        cond_expr = (_COND_EXPRS.get(instr.opcode[1:])
                     if instr.opcode != "b" else None)
        if ok and terr is None and instr.opcode == "b":
            body += [f"p = {tpc}", f"state.pc = {target}", retired,
                     "return True"]
        elif ok and terr is None and cond_expr is not None:
            hoists.add("flags")
            body += [f"p = {tpc}",
                     f"if {cond_expr}:",
                     f"    state.pc = {target}",
                     f"    {retired}",
                     "    return True",
                     f"state.pc = {tpc + 1}",
                     retired,
                     "return False"]
        else:
            name = f"q{tpc}"
            ns[name] = handler
            body += [f"p = {tpc}", f"r = {name}(state)", retired,
                     "return r"]
    elif term == 2:
        tpc = pcs[-1]
        instr = instructions[tpc]
        handler, ok = table.quiet(tpc)
        cls = metas[tpc].cls
        if ok and cls is InstrClass.RET:
            hoists.add("ints")
            body += [f"p = {tpc}",
                     f"state.pc = ints[{LINK_REGISTER!r}]",
                     retired, "return None"]
        elif ok and cls is InstrClass.CALL:
            target, terr = _resolve_target(table.program, instr.target)
            if terr is None:
                hoists.add("ints")
                body += [f"p = {tpc}",
                         f"ints[{LINK_REGISTER!r}] = {tpc + 1}",
                         f"state.pc = {target}",
                         retired, "return None"]
            else:
                emit_closure(tpc, handler, 0)
                body += [retired, "return None"]
        else:
            emit_closure(tpc, handler, 0)
            body += [retired, "return None"]
    elif term == 3:
        tpc = pcs[-1]
        body += [f"p = {tpc}",
                 "state.halted = True",
                 f"state.pc = {tpc + 1}",
                 retired, "return None"]
    else:
        body += [f"state.pc = {spec.exit_pc}", retired, "return None"]

    src = ["def _fused(state):"]
    if has_mem:
        src.append("    _c()")
    src.append(f"    p = {entry}")
    src.append("    try:")
    for bank in ("ints", "floats", "flags"):
        if bank in hoists:
            src.append(f"        {bank} = state.regs.{bank}")
    for line in body:
        src.append("        " + line)
    src += ["    except BaseException:",
            "        state.pc = p",
            f"        state.instructions_retired += p - {entry}",
            "        raise"]
    fused = _emit.compile_closure(
        "\n".join(src),
        _emit.closure_filename("superblock", spec.label, entry),
        ns, "_fused", kind="superblock")
    return fused, mem


def emit_block_timing(spec: BlockSpec, *, icache_hit: int,
                      dcache_hit: int, mispredict_penalty: int,
                      call_redirect_penalty: int):
    """Compile :meth:`PipelineModel.account_block`'s loop for *spec*.

    Emits the generic loop's arithmetic with this block's constants
    baked in — fetch line numbers, register names, latencies,
    penalties — so accounting a block is straight-line Python with no
    tuple unpacking or per-row branching.  Two deliberate strength
    reductions, both stats-identical to the generic loop:

    * Consecutive instructions fetched from the *same* I-cache line
      are guaranteed hits after the first (nothing else touches the
      icache mid-block), so the first fetch goes through the cache and
      the rest are batched into one O(1)
      :meth:`~repro.memory.cache.Cache.repeat_hits` call.  Each
      batched access still advances the generation counter and
      re-stamps the line, so recency ordering — and every future
      hit/miss/writeback decision — is unchanged.
    * Config latencies/penalties are literals; the memo key of
      :func:`~repro.interp.turbo.superblock_table_for` includes the
      :class:`~repro.pipeline.core.PipelineConfig`, so a compiled
      closure never outlives its constants.

    Pipeline *instance* state (caches, predictor, hazard map, stats)
    is bound from the ``pipe`` argument at call time, so one compiled
    block serves every pipeline sharing the config.
    """
    rows = spec.rows
    if not rows:
        return None  # entry-raiser block: never accounted
    mode = spec.fetch_mode
    term = spec.timing_term
    ihit = icache_hit
    dhit = dcache_hit
    body: List[str] = []
    emit = body.append
    has_load = has_store = need_repeat = False
    mem_index = 0
    prev_line = None
    rep_count = 0

    def flush_repeats():
        nonlocal rep_count, need_repeat
        if rep_count:
            need_repeat = True
            emit(f"irh({prev_line}, {rep_count})")
            rep_count = 0

    for (fetch_key, reads, reads_flags, writes, sets_flags,
         latency, mem_kind, nbytes) in rows:
        if mode == 1:
            if fetch_key == prev_line:
                rep_count += 1
                if ihit > 1:
                    emit(f"fetch_stall += {ihit - 1}")
                    emit(f"ready = fetch_ready + {ihit - 1}")
                else:
                    emit("ready = fetch_ready")
            else:
                flush_repeats()
                prev_line = fetch_key
                emit(f"fc = ifl({fetch_key}, False)")
                emit("if fc > 1:")
                emit("    fetch_stall += fc - 1")
                emit("ready = fetch_ready + fc - 1")
        elif mode == 2:
            emit(f"fc = ia({fetch_key}, {_INSTR_BYTES}, False)")
            emit("if fc > 1:")
            emit("    fetch_stall += fc - 1")
            emit("ready = fetch_ready + fc - 1")
        else:
            emit("ready = fetch_ready")
        for reg in reads:
            emit(f"t = get({reg!r}, 0)")
            emit("if t > ready: ready = t")
        if reads_flags:
            emit(f"t = get({_FLAGS!r}, 0)")
            emit("if t > ready: ready = t")
        emit("issue = last_issue + 1")
        emit("if ready > issue:")
        emit("    data_stall += ready - issue")
        emit("    issue = ready")
        if mem_kind == 1:
            has_load = True
            emit(f"a = da(mem[{mem_index}], {nbytes}, False)")
            emit("completion = issue + a")
            emit(f"if a > {dhit}:")
            emit(f"    load_miss += a - {dhit}")
            mem_index += 1
        elif mem_kind == 2:
            has_store = True
            emit(f"completion = issue + {latency}")
            emit(f"da(mem[{mem_index}], {nbytes}, True)")
            mem_index += 1
        else:
            emit(f"completion = issue + {latency}")
        for reg in writes:
            emit(f"reg_ready[{reg!r}] = completion")
        if sets_flags:
            emit(f"reg_ready[{_FLAGS!r}] = completion")
        emit("last_issue = issue")
        emit("fetch_ready = issue")
        emit("if completion > last_completion: "
             "last_completion = completion")
    if mode == 1:
        flush_repeats()
    if term == 1:
        penalty = mispredict_penalty
        emit("stats.branches += 1")
        emit("pred = pipe.predictor")
        emit(f"predicted = pred.predict({spec.branch_pc}, "
             f"{spec.branch_target} if taken else {spec.branch_pc})")
        emit(f"pred.update({spec.branch_pc}, taken)")
        emit("if predicted != taken:")
        emit("    stats.mispredicts += 1")
        emit(f"    fetch_ready = issue + 1 + {penalty}")
        emit(f"    stats.branch_penalty_cycles += {penalty}")
    elif term == 2:
        penalty = call_redirect_penalty
        emit(f"fetch_ready = issue + 1 + {penalty}")
        emit(f"stats.branch_penalty_cycles += {penalty}")
    emit("pipe._last_issue = last_issue")
    emit("pipe._fetch_ready = fetch_ready")
    emit("pipe._last_completion = last_completion")
    emit(f"stats.instructions += {spec.blen}")
    if spec.simd:
        emit(f"stats.simd_instructions += {spec.simd}")
    emit("stats.data_stall_cycles += data_stall")
    if mode:
        emit("stats.fetch_stall_cycles += fetch_stall")
    if has_load:
        emit("stats.load_miss_cycles += load_miss")

    prologue = [
        "reg_ready = pipe._reg_ready",
        "get = reg_ready.get",
        "stats = pipe.stats",
        "fetch_ready = pipe._fetch_ready",
        "last_issue = pipe._last_issue",
        "last_completion = pipe._last_completion",
        "data_stall = 0",
    ]
    if mode:
        prologue.append("fetch_stall = 0")
    if mode == 1:
        prologue.append("ifl = pipe._ifetch_line")
    elif mode == 2:
        prologue.append("ia = pipe.icache.access")
    if need_repeat:
        prologue.append("irh = pipe.icache.repeat_hits")
    if has_load or has_store:
        prologue.append("da = pipe.dcache.access")
    if has_load:
        prologue.append("load_miss = 0")
    source = _emit.assemble("def _timing(pipe, mem, taken):",
                            prologue + body)
    return _emit.compile_closure(
        source,
        _emit.closure_filename("sbtiming", spec.label, spec.entry),
        {}, "_timing", kind="block-timing")


def emit_loop_timing(timing, pipeline, label: str, entry: int):
    """``exec()``-generated specialization of
    :meth:`~repro.pipeline.core.PipelineModel.account_loop` for one
    loop-body block: the generic row loop unrolled with constants baked
    (same style as the per-block ``compiled`` closures), wrapped in the
    per-trip loop with its deterministic branch pattern.
    """
    dcache_hit = pipeline._dcache_hit
    penalty = pipeline.config.mispredict_penalty
    body: List[str] = [
        "reg_ready = pipe._reg_ready",
        "get = reg_ready.get",
        "stats = pipe.stats",
        "fetch_ready = pipe._fetch_ready",
        "last_issue = pipe._last_issue",
        "last_completion = pipe._last_completion",
        "predict = pipe.predictor.predict",
        "update = pipe.predictor.update",
        "data_stall = 0",
        "load_miss = 0",
        "branch_penalty = 0",
        "mispredicts = 0",
        "k = 0",
        "issue = last_issue",
        "last_trip = trips - 1",
        "for _t in range(trips):",
    ]
    emit = body.append
    for (_fetch_key, reads, reads_flags, writes, sets_flags,
         latency, mem_kind, _nbytes) in timing.rows:
        emit("    ready = fetch_ready")
        for reg in reads:
            emit(f"    t = get({reg!r}, 0)")
            emit("    if t > ready:")
            emit("        ready = t")
        if reads_flags:
            emit(f"    t = get({_FLAGS!r}, 0)")
            emit("    if t > ready:")
            emit("        ready = t")
        emit("    issue = last_issue + 1")
        emit("    if ready > issue:")
        emit("        data_stall += ready - issue")
        emit("        issue = ready")
        if mem_kind == 1:
            emit("    a = lats[k]")
            emit("    k += 1")
            emit("    completion = issue + a")
            emit(f"    if a > {dcache_hit}:")
            emit(f"        load_miss += a - {dcache_hit}")
        else:
            # Stores and ALU rows: the d-cache was pre-advanced by
            # access_stream; the write buffer hides store latency.
            emit(f"    completion = issue + {latency}")
        for reg in writes:
            emit(f"    reg_ready[{reg!r}] = completion")
        if sets_flags:
            emit(f"    reg_ready[{_FLAGS!r}] = completion")
        emit("    last_issue = issue")
        emit("    fetch_ready = issue")
        emit("    if completion > last_completion:")
        emit("        last_completion = completion")
    branch_pc = timing.branch_pc
    branch_target = timing.branch_target
    body += [
        "    taken = _t != last_trip",
        f"    predicted = predict({branch_pc}, "
        f"{branch_target} if taken else {branch_pc})",
        f"    update({branch_pc}, taken)",
        "    if predicted != taken:",
        "        mispredicts += 1",
        f"        fetch_ready = issue + 1 + {penalty}",
        f"        branch_penalty += {penalty}",
        "pipe._last_issue = last_issue",
        "pipe._fetch_ready = fetch_ready",
        "pipe._last_completion = last_completion",
        f"stats.instructions += {timing.count} * trips",
        f"stats.simd_instructions += {timing.simd} * trips",
        "stats.branches += trips",
        "stats.mispredicts += mispredicts",
        "stats.branch_penalty_cycles += branch_penalty",
        "stats.data_stall_cycles += data_stall",
        "stats.load_miss_cycles += load_miss",
    ]
    source = _emit.assemble("def _loop(pipe, trips, lats):", body)
    return _emit.compile_closure(
        source,
        _emit.closure_filename("macro-loop-timing", label, entry),
        {}, "_loop", kind="loop-timing")


class SuperblockBackend:
    """The superblock/timing-closure backend behind the ``Backend``
    protocol."""

    name = "superblock"

    def lower_block(self, spec: BlockSpec, table):
        """(run closure, mem list) for one fused superblock."""
        result = emit_fused_block(spec, table)
        _telemetry.get().count("codegen.superblock.lowered.block")
        return result

    def lower_block_timing(self, spec: BlockSpec, *, icache_hit: int,
                           dcache_hit: int, mispredict_penalty: int,
                           call_redirect_penalty: int):
        """The compiled per-block timing closure (None for rowless
        entry-raiser blocks)."""
        compiled = emit_block_timing(
            spec, icache_hit=icache_hit, dcache_hit=dcache_hit,
            mispredict_penalty=mispredict_penalty,
            call_redirect_penalty=call_redirect_penalty)
        if compiled is not None:
            _telemetry.get().count("codegen.superblock.lowered.block-timing")
        return compiled

    def lower_loop_timing(self, timing, pipeline, label: str, entry: int):
        """The compiled whole-loop timing closure for one loop-body
        block."""
        compiled = emit_loop_timing(timing, pipeline, label, entry)
        _telemetry.get().count("codegen.superblock.lowered.loop-timing")
        return compiled
