"""Typed fragment IR shared by the pluggable codegen backends.

The dynamic translator emits microcode fragments in a small, regular
language (``repro/core/translate/translator.py``); the execution engines
used to re-derive its structure independently — turbo scanning for
superblocks, macro pattern-matching one loop shape inline with its
numpy lowering.  This module is the shared vocabulary between them: a
lifting pass (:mod:`repro.codegen.lift`) raises decoded instructions
into these nodes once, and each backend (:mod:`repro.codegen.backend`)
lowers the nodes into its closure kind.

Node kinds (:class:`IRKind`) mirror the fragment language:

========  ==================================================================
LOAD      vector load at an affine address ``sym + induction`` (one
          slab per loop trip; the lane gather is implicit in the elem)
STORE     vector store at an affine address
ALU       elementwise vector ALU op (binary or unary) over registers,
          immediates, or broadcast vector immediates
PERM      permutation gather (``vbfly``/``vrev``/``vrot``) with a
          statically known lane map
REDUCE    sequential-fold reduction into a scalar accumulator
SCALAR    straight-line scalar op between loop regions: ``mov``/
          ``fmov`` (immediate or register) or a scalar store at a
          static symbol offset
LOOP      counted do-while region (``add``/``cmp``/``blt`` header);
          its body holds vector nodes — or, for the nested shape, a
          SCALAR induction reset followed by an inner LOOP
CHAIN     a whole fragment as alternating SCALAR segments and LOOP
          regions (the paper's fissioned loops appear as a CHAIN with
          several LOOPs), with statically known trip counts
========  ==================================================================

Nodes are frozen and carry only decode-time facts (pcs, register
names, symbols, static trips), so lifting is deterministic: the same
fragment bytes produce the same IR, and backends emit byte-identical
source from it (``tests/test_codegen_ir.py`` pins this).  Nodes that
need operand details the IR does not re-model (immediate baking,
permutation periods) carry their decoded :class:`Instruction`.

:class:`BlockSpec` is the superblock-side IR: one straight-line run of
any program (not just fragments) plus its pre-extracted timing rows,
consumed by the superblock backend's fused-block and block-timing
emitters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional, Tuple

from repro.isa.instructions import Instruction


class IRKind(Enum):
    """Discriminator for every fragment-IR node type."""

    LOAD = "load"
    STORE = "store"
    ALU = "alu"
    PERM = "perm"
    REDUCE = "reduce"
    SCALAR = "scalar"
    LOOP = "loop"
    CHAIN = "chain"


@dataclass(frozen=True)
class LoadNode:
    """``vld`` at ``[sym + induction]`` into vector register *dst*."""

    pc: int
    dst: str
    sym: str
    elem: str
    site: int  #: index into the owning loop's site table

    kind = IRKind.LOAD


@dataclass(frozen=True)
class StoreNode:
    """``vst`` of vector register *src* at ``[sym + induction]``."""

    pc: int
    src: str
    sym: str
    elem: str
    site: int

    kind = IRKind.STORE


@dataclass(frozen=True)
class AluNode:
    """Elementwise vector op: binary (``b`` names the register rhs, or
    the decoded instruction's second source is an immediate) or unary
    (``unary`` set, ``b`` is None)."""

    pc: int
    dst: str
    opcode: str
    elem: Optional[str]
    a: str
    b: Optional[str]
    unary: bool
    instr: Instruction = field(repr=False)

    kind = IRKind.ALU


@dataclass(frozen=True)
class PermNode:
    """Permutation gather with a compile-time lane map."""

    pc: int
    dst: str
    opcode: str
    elem: Optional[str]
    a: str
    instr: Instruction = field(repr=False)

    kind = IRKind.PERM


@dataclass(frozen=True)
class ReduceNode:
    """Sequential fold of vector *src* into scalar accumulator *dst*."""

    pc: int
    dst: str
    opcode: str
    elem: Optional[str]
    src: str

    kind = IRKind.REDUCE


@dataclass(frozen=True)
class ScalarNode:
    """One straight-line scalar op in a chain segment.

    ``op`` selects the form:

    * ``"mov-imm"`` / ``"fmov-imm"``: *dst* := *value* (pre-wrapped /
      pre-rounded constant).
    * ``"mov-reg"`` / ``"fmov-reg"``: *dst* := register *src* of the
      same bank.
    * ``"store"``: scalar store of register *src* (or constant *value*)
      to ``sym + offset`` elements of *elem*; *site* indexes the
      chain's site table.
    """

    pc: int
    op: str
    dst: Optional[str] = None
    src: Optional[str] = None
    value: Optional[object] = None
    sym: Optional[str] = None
    offset: int = 0
    elem: Optional[str] = None
    site: Optional[int] = None

    kind = IRKind.SCALAR


@dataclass(frozen=True)
class LoopNode:
    """One counted do-while region (``add rI, rI, #step`` / ``cmp rI,
    #trip`` / ``blt head``).

    For the canonical vector loop, *body* holds LOAD/STORE/ALU/PERM/
    REDUCE nodes, *step* equals the SIMD width, and the bookkeeping
    tuples describe the loop's dataflow facets: *sites* are the memory
    sites in program order (``(sym, elem_size, is_store)``),
    *invariants* the loop-invariant vector inputs (``(name, kind)``),
    *finals* the architecturally visible last values of written vector
    registers (``(name, elem)``), *accs* the reduction accumulators.

    For the nested shape, *body* is ``(ScalarNode(mov rInner, #0),
    LoopNode(inner))`` and *step* is the outer induction step.
    """

    head: int
    branch_pc: int
    width: int
    induction: str
    trip: int
    step: int
    body: Tuple[object, ...]
    sites: Tuple[Tuple[str, int, bool], ...] = ()
    invariants: Tuple[Tuple[str, str], ...] = ()
    finals: Tuple[Tuple[str, Optional[str]], ...] = ()
    accs: Tuple[str, ...] = ()

    kind = IRKind.LOOP

    @property
    def blen(self) -> int:
        return self.branch_pc - self.head + 1

    @property
    def inner(self) -> Optional["LoopNode"]:
        """The inner loop of a nested region, or None."""
        for node in self.body:
            if isinstance(node, LoopNode):
                return node
        return None


@dataclass(frozen=True)
class ChainSite:
    """One memory site of a chain, with statically known extent.

    Loop sites (``scalar`` False) span ``count_elems`` elements from
    ``sym`` (the loop enters with its induction at 0); scalar sites
    span one element at ``sym + offset`` elements.
    """

    sym: str
    esz: int
    is_store: bool
    scalar: bool
    offset: int
    count_elems: int


@dataclass(frozen=True)
class ChainNode:
    """A whole fragment as alternating scalar segments and counted
    loops, every trip count static (each loop's induction is reset by
    a ``mov rI, #0`` earlier in the chain).

    *regions* holds ScalarNodes and LoopNodes in program order;
    *trips* holds one ``(region index, whole-loop trip count, first
    site index)`` triple per LOOP region, where the site index points
    at that loop's first entry in *sites*; *total_retired* is the
    exact instruction count one full chain execution retires.
    """

    width: int
    regions: Tuple[object, ...]
    sites: Tuple[ChainSite, ...]
    trips: Tuple[Tuple[int, int], ...]
    total_retired: int

    kind = IRKind.CHAIN

    @property
    def loops(self) -> Tuple[Tuple[int, "LoopNode"], ...]:
        return tuple((i, r) for i, r in enumerate(self.regions)
                     if isinstance(r, LoopNode))


@dataclass(frozen=True)
class BlockSpec:
    """One straight-line superblock plus its timing rows.

    ``term`` is 0 for a fall-through/unknown-op exit, 1 for a branch,
    2 for call/ret, 3 for halt; ``rows`` are
    :class:`~repro.pipeline.core.BlockTiming` rows in pc order (pcs
    whose decode failed contribute no row); ``branch_pc`` /
    ``branch_target`` are pre-offset pcs for the predictor.
    """

    entry: int
    pcs: Tuple[int, ...]
    term: int
    exit_pc: int
    rows: Tuple[tuple, ...]
    blen: int
    simd: int
    fetch_mode: int
    branch_pc: int
    branch_target: int
    label: str

    @property
    def timing_term(self) -> int:
        return 1 if self.term == 1 else (2 if self.term == 2 else 0)
