"""Shared ``exec()``-compile helpers for every generated closure.

All runtime code generation in the repo — turbo's fused superblocks and
per-block timing closures, macro's whole-loop numpy kernels and
whole-chain kernels, and the compiled loop-timing specializations —
funnels through :func:`compile_closure`.  The helpers standardize the
three idioms the engines used to hand-roll separately:

* **Source assembly** (:func:`assemble`): a ``def`` header plus body
  lines carrying their own relative indentation, joined under one
  level of function indentation.
* **Stable synthetic filenames** (:func:`closure_filename`):
  ``<kind:label@entry>`` — e.g. ``<macro-kernel:fir_mac_fn_ucode_w16@2>``
  — so profiler output and tracebacks attribute time to a named kernel
  instead of ``<string>``.
* **Compiled-code caching**: code objects are memoized on
  ``(filename, source)``.  Fragment sources are pure functions of the
  fragment's encoded bytes (plus width/config facets already embedded
  in the source), so byte-identical fragments compiled for different
  pc offsets or in different runs share one ``compile()`` pass; only
  the cheap ``exec`` into a fresh namespace repeats.

Telemetry: every real ``compile()`` bumps ``codegen.compile.<kind>``
and every cache hit bumps ``codegen.compile-cached.<kind>``
(docs/observability.md).
"""

from __future__ import annotations

import math
from collections import OrderedDict
from typing import Iterable, List, Optional, Tuple

from repro.observability import telemetry as _telemetry

#: Bounded code-object memo; generous — a full fifteen-kernel sweep
#: compiles well under a hundred distinct sources per width.
_CODE_CACHE_CAP = 512

_code_cache: "OrderedDict[Tuple[str, str], object]" = OrderedDict()


def closure_filename(kind: str, label: str, entry) -> str:
    """The stable synthetic filename for one generated closure."""
    return f"<{kind}:{label}@{entry}>"


def literal(value) -> Optional[str]:
    """An exact source literal for *value*, or None if there isn't one."""
    if value is True or value is False:
        return repr(value)
    if isinstance(value, int):
        return repr(value)
    if isinstance(value, float) and math.isfinite(value):
        return repr(value)  # repr round-trips binary64 exactly
    return None


def assemble(header: str, body: Iterable[str], indent: str = "    ") -> str:
    """One function's source: *header* plus indented *body* lines.

    Body lines may carry additional relative indentation of their own
    (nested ``if``/``for`` bodies); an empty body becomes ``pass``.
    """
    lines: List[str] = [header]
    lines.extend(indent + line for line in body)
    if len(lines) == 1:
        lines.append(indent + "pass")
    return "\n".join(lines)


def compile_closure(source: str, filename: str, namespace: dict,
                    fn_name: str, kind: str = "closure"):
    """``exec()``-compile *source* and return ``namespace[fn_name]``.

    The compiled code object is cached on ``(filename, source)``; the
    ``exec`` into *namespace* always runs, so each call gets closures
    bound to its own namespace constants.
    """
    key = (filename, source)
    code = _code_cache.get(key)
    if code is None:
        code = compile(source, filename, "exec")
        _code_cache[key] = code
        if len(_code_cache) > _CODE_CACHE_CAP:
            _code_cache.popitem(last=False)
        _telemetry.get().count("codegen.compile." + kind)
    else:
        _code_cache.move_to_end(key)
        _telemetry.get().count("codegen.compile-cached." + kind)
    exec(code, namespace)
    return namespace[fn_name]
