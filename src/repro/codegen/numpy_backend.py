"""Numpy kernel backend: whole-array lowering of fragment IR.

Lowers :class:`~repro.codegen.ir.LoopNode` bodies — and whole
:class:`~repro.codegen.ir.ChainNode` fragments — into ``exec()``-
compiled kernels over 2-D ``(trips, width)`` numpy arrays, replacing
the hand-rolled compiler that used to live inline in
``repro/interp/macro.py``.  Each per-instruction builder mirrors the
corresponding ``*_fast_fn`` of :mod:`repro.simd.vector_ops` on 2-D
arrays: integer lanes computed in int64 and truncated with ``astype``
(== ``wrap_int``), saturation clipped against ``INT_BOUNDS``, float
lanes in float32 with one rounding per op, float min/max via
``np.where`` (Python tie/NaN order), float bitwise through
``view(uint32)``.  Anything the whole-array form cannot reproduce
bit-identically makes the lowering return None and the caller counts a
``macro.plan.rejected.unsupported-lowering`` (per-block fallback).

Loop kernels have the signature ``(memory, vregs, regs, bases, n)``;
chain kernels bake every region's static trip count and run the whole
fragment as ``(memory, vregs, regs, bases)`` — scalar segments become
direct register-bank assignments, each loop region inlines its
whole-array body, and induction finals are materialized between
regions so later segments read the architecturally correct values.

Sources are assembled and compiled through :mod:`repro.codegen.emit`
(stable filenames, code-object cache) and are deterministic functions
of the lifted IR — the hypothesis suite pins byte-identical source for
byte-identical fragments.  Telemetry: ``codegen.numpy.lowered.<shape>``
per successful lowering, ``codegen.numpy.unsupported`` per refusal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro import arith
from repro.codegen import emit as _emit
from repro.codegen.ir import (
    AluNode,
    ChainNode,
    LoadNode,
    LoopNode,
    PermNode,
    ReduceNode,
    ScalarNode,
    StoreNode,
)
from repro.isa.instructions import Imm, VImm
from repro.observability import telemetry as _telemetry
from repro.simd import vector_ops
from repro.simd.permutations import PermPattern


def _kind(elem: Optional[str]) -> str:
    return "f" if elem == "f32" else "i"


def _full(arr: np.ndarray, n: int) -> np.ndarray:
    """Broadcast a loop-invariant ``(1, width)`` row to ``(n, width)``."""
    if arr.shape[0] == n:
        return arr
    return np.broadcast_to(arr, (n,) + arr.shape[1:])


# ---------------------------------------------------------------------------
# Per-instruction numpy lowerings over (trips, width) arrays.
# ---------------------------------------------------------------------------


def _make_load(elem: str, width: int):
    def load(memory, base, n, _elem=elem, _w=width):
        return memory.load_array(base, _elem, n * _w).reshape(n, _w)
    return load


def _make_store(elem: str):
    def store(memory, base, arr, _elem=elem):
        memory.store_array(base, _elem, arr)
    return store


def _bake_vector_imm(operand, elem: Optional[str], width: int):
    """Prepared rhs array for an ``Imm``/``VImm`` operand, or None."""
    kind = _kind(elem or "i32")
    if isinstance(operand, Imm):
        value = operand.value
        if kind == "f":
            return np.float32(value)
        if not isinstance(value, int):
            return None
        return np.int64(value)
    if isinstance(operand, VImm):
        lanes = list(operand.lanes)
        if len(lanes) != width:
            return None  # reference raises; per-block path reproduces it
        if kind == "f":
            return np.asarray(lanes, dtype=np.float32).reshape(1, width)
        if not all(isinstance(v, int) for v in lanes):
            return None
        return np.asarray(lanes, dtype=np.int64).reshape(1, width)
    return None


def _bake_mask_imm(operand, width: int):
    """uint32 mask patterns for a float-bitwise ``Imm``/``VImm`` rhs."""
    if isinstance(operand, Imm):
        lanes = [operand.value] * width
    elif isinstance(operand, VImm):
        lanes = list(operand.lanes)
        if len(lanes) != width:
            return None
    else:
        return None
    try:
        masks = vector_ops._mask_lanes(lanes)
    except (TypeError, ValueError, OverflowError):
        return None
    return masks.reshape(1, width)


def _make_binary(opcode: str, elem: Optional[str], b_operand, width: int):
    """Whole-array closure for one binary vector op; None when the
    lowering cannot be bit-identical.  ``b_operand`` is None for a
    register rhs — the closure then takes ``(a, b)`` — or the
    ``Imm``/``VImm`` operand to pre-bake, making the closure unary."""
    elem = elem or "i32"
    if elem == "f32":
        if opcode in vector_ops._FLOAT_BITWISE:
            want_and = opcode in ("vand", "vmask")
            if b_operand is None:
                def fn(a, b, _and=want_and):
                    bits = a.view(np.uint32)
                    masks = b.view(np.uint32)
                    out = (bits & masks) if _and else (bits | masks)
                    return out.view(np.float32)
                return fn
            masks = _bake_mask_imm(b_operand, width)
            if masks is None:
                return None

            def fn(a, _m=masks, _and=want_and):
                bits = a.view(np.uint32)
                out = (bits & _m) if _and else (bits | _m)
                return out.view(np.float32)
            return fn
        if opcode == "vabd":
            if b_operand is None:
                return lambda a, b: np.abs(a - b)
            bb = _bake_vector_imm(b_operand, elem, width)
            if bb is None:
                return None
            return lambda a, _b=bb: np.abs(a - _b)
        if opcode in ("vmin", "vmax"):
            want_min = opcode == "vmin"
            if b_operand is None:
                def fn(a, b, _min=want_min):
                    return np.where(b < a, b, a) if _min \
                        else np.where(b > a, b, a)
                return fn
            bb = _bake_vector_imm(b_operand, elem, width)
            if bb is None:
                return None

            def fn(a, _b=bb, _min=want_min):
                return np.where(_b < a, _b, a) if _min \
                    else np.where(_b > a, _b, a)
            return fn
        np_op = vector_ops._NP_FLOAT_BINARY.get(opcode)
        if np_op is None:
            return None
        if b_operand is None:
            return lambda a, b, _op=np_op: _op(a, b)
        bb = _bake_vector_imm(b_operand, elem, width)
        if bb is None:
            return None
        return lambda a, _b=bb, _op=np_op: _op(a, _b)

    dtype = vector_ops._NP_INT_DTYPE.get(elem)
    if dtype is None:
        return None
    if opcode in ("vqadd", "vqsub"):
        lo, hi = arith.INT_BOUNDS[elem]
        want_add = opcode == "vqadd"
        if b_operand is None:
            def fn(a, b, _lo=lo, _hi=hi, _add=want_add, _dtype=dtype):
                aa = a.astype(np.int64)
                bb = b.astype(np.int64)
                raw = aa + bb if _add else aa - bb
                return np.clip(raw, _lo, _hi).astype(_dtype)
            return fn
        bb = _bake_vector_imm(b_operand, elem, width)
        if bb is None:
            return None

        def fn(a, _b=bb, _lo=lo, _hi=hi, _add=want_add, _dtype=dtype):
            aa = a.astype(np.int64)
            raw = aa + _b if _add else aa - _b
            return np.clip(raw, _lo, _hi).astype(_dtype)
        return fn
    np_op = vector_ops._NP_INT_BINARY.get(opcode)
    if np_op is None:
        return None
    if b_operand is None:
        def fn(a, b, _op=np_op, _dtype=dtype):
            return _op(a.astype(np.int64), b.astype(np.int64)).astype(_dtype)
        return fn
    bb = _bake_vector_imm(b_operand, elem, width)
    if bb is None:
        return None

    def fn(a, _b=bb, _op=np_op, _dtype=dtype):
        return _op(a.astype(np.int64), _b).astype(_dtype)
    return fn


def _make_unary(opcode: str, elem: Optional[str]):
    elem = elem or "i32"
    np_op = {"vabs": np.abs, "vneg": np.negative}.get(opcode)
    if np_op is None:
        return None
    if elem == "f32":
        return lambda a, _op=np_op: _op(a)
    dtype = vector_ops._NP_INT_DTYPE.get(elem)
    if dtype is None:
        return None
    return lambda a, _op=np_op, _dtype=dtype: \
        _op(a.astype(np.int64)).astype(_dtype)


def _make_perm(instr, width: int):
    """Precomputed index gather for one vbfly/vrev/vrot, or None."""
    try:
        period_operand = instr.srcs[1] if len(instr.srcs) > 1 else Imm(width)
        if not isinstance(period_operand, Imm):
            return None
        period = int(period_operand.value)
        if instr.opcode == "vbfly":
            pattern = PermPattern("bfly", period)
        elif instr.opcode == "vrev":
            pattern = PermPattern("rev", period)
        else:
            if len(instr.srcs) < 3 or not isinstance(instr.srcs[2], Imm):
                return None
            pattern = PermPattern("rot", period, int(instr.srcs[2].value))
        if width % pattern.period != 0:
            return None
        lane_map = np.asarray(pattern.lane_map(width), dtype=np.intp)
    except (ValueError, TypeError):
        return None
    return lambda a, _map=lane_map: a[:, _map]


def _make_reduce(opcode: str, elem: Optional[str]):
    """Whole-stream reduction fold, bit-exact vs. the per-trip chain.

    f32 ``vredsum`` uses ``np.add.accumulate`` — a strictly sequential
    left fold in float32, i.e. the reference's one-rounding-per-element
    chain; f32 min/max fold through ``arith.float_op`` for its Python
    tie/NaN ordering.  Integer sums are computed wide and wrapped once
    (congruent mod 2**32 to the per-step wrap); integer min/max never
    leave the 32-bit range, so per-step wraps are the identity.
    """
    elem = elem or "i32"
    if elem == "f32":
        if opcode == "vredsum":
            def fn(acc, arr):
                flat = np.empty(arr.size + 1, dtype=np.float32)
                flat[0] = acc
                flat[1:] = arr.reshape(-1)
                return float(np.add.accumulate(flat)[-1])
            return fn
        if opcode in ("vredmin", "vredmax"):
            op = "fmin" if opcode == "vredmin" else "fmax"

            def fn(acc, arr, _op=op):
                result = float(acc)
                for lane in arr.reshape(-1).tolist():
                    result = arith.float_op(_op, result, lane)
                return result
            return fn
        return None
    if opcode == "vredsum":
        def fn(acc, arr):
            return arith.wrap_int(int(acc) + int(arr.sum(dtype=np.int64)))
        return fn
    if opcode in ("vredmin", "vredmax"):
        want_min = opcode == "vredmin"
        pick = min if want_min else max

        def fn(acc, arr, _pick=pick, _min=want_min):
            best = arr.min() if _min else arr.max()
            return arith.wrap_int(_pick(int(acc), int(best)))
        return fn
    return None


def _make_invariant(name: str, kind: str):
    """Reader for a loop-invariant vector register input."""
    dtype = np.float32 if kind == "f" else np.int64

    def read(vregs, _n=name, _dtype=dtype):
        return np.asarray(vregs.read(_n), dtype=_dtype).reshape(1, -1)
    return read


# ---------------------------------------------------------------------------
# IR -> source emission
# ---------------------------------------------------------------------------


def _emit_loop_body(node: LoopNode, ns: dict, width: int, prefix: str,
                    site_base: int, n_expr: str,
                    emits: List[str]) -> bool:
    """Emit one loop body's whole-array lines into *emits*.

    Value names are ``v{prefix}_{reg}`` / ``acc{prefix}_{reg}`` so chain
    lowering can inline several loop regions into one function without
    collisions; namespace keys use the node pc, unique per fragment.
    Returns False when any node has no bit-identical lowering.
    """
    for nd in node.body:
        if isinstance(nd, LoadNode):
            key = f"ld{nd.pc}"
            ns[key] = _make_load(nd.elem, width)
            emits.append(f"v{prefix}_{nd.dst} = {key}(memory, "
                         f"bases[{site_base + nd.site}], {n_expr})")
        elif isinstance(nd, StoreNode):
            key = f"st{nd.pc}"
            ns[key] = _make_store(nd.elem)
            emits.append(f"{key}(memory, bases[{site_base + nd.site}], "
                         f"_full(v{prefix}_{nd.src}, {n_expr}))")
        elif isinstance(nd, AluNode):
            key = f"op{nd.pc}"
            if nd.unary:
                fn = _make_unary(nd.opcode, nd.elem)
            elif nd.b is not None:
                fn = _make_binary(nd.opcode, nd.elem, None, width)
            else:
                fn = _make_binary(nd.opcode, nd.elem, nd.instr.srcs[1],
                                  width)
            if fn is None:
                return False
            ns[key] = fn
            if nd.b is not None:
                emits.append(f"v{prefix}_{nd.dst} = "
                             f"{key}(v{prefix}_{nd.a}, v{prefix}_{nd.b})")
            else:
                emits.append(f"v{prefix}_{nd.dst} = {key}(v{prefix}_{nd.a})")
        elif isinstance(nd, PermNode):
            fn = _make_perm(nd.instr, width)
            if fn is None:
                return False
            key = f"op{nd.pc}"
            ns[key] = fn
            emits.append(f"v{prefix}_{nd.dst} = {key}(v{prefix}_{nd.a})")
        elif isinstance(nd, ReduceNode):
            fn = _make_reduce(nd.opcode, nd.elem)
            if fn is None:
                return False
            key = f"red{nd.pc}"
            ns[key] = fn
            emits.append(f"acc{prefix}_{nd.dst} = {key}(acc{prefix}_{nd.dst},"
                         f" _full(v{prefix}_{nd.src}, {n_expr}))")
        else:
            return False
    return True


def _loop_prologue(node: LoopNode, ns: dict, prefix: str) -> List[str]:
    lines = [f"acc{prefix}_{name} = regs.read({name!r})"
             for name in node.accs]
    for name, kind in node.invariants:
        key = f"inv{prefix}_{name}"
        ns[key] = _make_invariant(name, kind)
        lines.append(f"v{prefix}_{name} = {key}(vregs)")
    return lines


def _loop_epilogue(node: LoopNode, prefix: str) -> List[str]:
    lines = [f"regs.write({name!r}, acc{prefix}_{name})"
             for name in node.accs]
    for name, last_elem in node.finals:
        lines.append(f"vregs.write({name!r}, "
                     f"v{prefix}_{name}[-1].tolist(), {last_elem!r})")
    return lines


def _scalar_line(node: ScalarNode) -> Optional[str]:
    """One generated line for a chain scalar op, or None."""
    op = node.op
    if op == "mov-imm":
        return f"ints[{node.dst!r}] = {node.value!r}"
    if op == "mov-reg":
        return f"ints[{node.dst!r}] = ints[{node.src!r}]"
    if op == "fmov-imm":
        lit = _emit.literal(node.value)
        if lit is None:
            return None
        return f"floats[{node.dst!r}] = {lit}"
    if op == "fmov-reg":
        return f"floats[{node.dst!r}] = floats[{node.src!r}]"
    if op == "store":
        if node.src is not None:
            expr = (f"floats[{node.src!r}]" if node.elem == "f32"
                    else f"ints[{node.src!r}]")
        else:
            expr = _emit.literal(node.value)
            if expr is None:
                return None
        return f"memory.store(bases[{node.site}], {node.elem!r}, {expr})"
    return None


@dataclass(frozen=True)
class LoweredKernel:
    """One compiled kernel plus the exact source it was built from."""

    kernel: object
    source: str


class NumpyBackend:
    """The whole-array numpy backend behind the ``Backend`` protocol."""

    name = "numpy"

    def lower_loop(self, node: LoopNode,
                   label: str) -> Optional[LoweredKernel]:
        """Kernel ``(memory, vregs, regs, bases, n)`` running *n* trips
        of one canonical loop, or None when unsupported."""
        ns = {"np": np, "_full": _full}
        emits: List[str] = []
        if not _emit_loop_body(node, ns, node.width, "", 0, "n", emits):
            _telemetry.get().count("codegen.numpy.unsupported")
            return None
        body = _loop_prologue(node, ns, "") + emits \
            + _loop_epilogue(node, "")
        source = _emit.assemble("def _kernel(memory, vregs, regs, bases, n):",
                                body)
        kernel = _emit.compile_closure(
            source,
            _emit.closure_filename("macro-kernel", label, node.head),
            ns, "_kernel", kind="numpy-kernel")
        _telemetry.get().count("codegen.numpy.lowered.loop")
        return LoweredKernel(kernel, source)

    def lower_chain(self, node: ChainNode,
                    label: str) -> Optional[LoweredKernel]:
        """Kernel ``(memory, vregs, regs, bases)`` running one whole
        chain-shaped fragment, or None when any region is unsupported."""
        tel = _telemetry.get()
        ns = {"np": np, "_full": _full}
        body: List[str] = ["ints = regs.ints", "floats = regs.floats"]
        trips = {ri: (n, sb) for (ri, n, sb) in node.trips}
        for ri, region in enumerate(node.regions):
            if isinstance(region, LoopNode):
                nloop, site_base = trips[ri]
                prefix = str(ri)
                emits: List[str] = []
                if not _emit_loop_body(region, ns, node.width, prefix,
                                       site_base, str(nloop), emits):
                    tel.count("codegen.numpy.unsupported")
                    return None
                body += _loop_prologue(region, ns, prefix)
                body += emits
                body += _loop_epilogue(region, prefix)
                # Materialize the induction final between regions: a
                # later scalar segment may read it.
                body.append(f"ints[{region.induction!r}] = "
                            f"{nloop * node.width}")
            else:
                line = _scalar_line(region)
                if line is None:
                    tel.count("codegen.numpy.unsupported")
                    return None
                body.append(line)
        source = _emit.assemble("def _chain(memory, vregs, regs, bases):",
                                body)
        kernel = _emit.compile_closure(
            source, _emit.closure_filename("macro-chain", label, 0),
            ns, "_chain", kind="numpy-kernel")
        tel.count("codegen.numpy.lowered.chain")
        return LoweredKernel(kernel, source)
