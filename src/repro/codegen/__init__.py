"""Unified fragment IR + pluggable codegen backends.

The package splits runtime code generation into three layers:

* :mod:`repro.codegen.ir` — the typed fragment IR (loads/stores,
  vector ALU, permutation gathers, reductions, counted/nested loops,
  scalar segments, whole-fragment chains) plus the superblock spec;
* :mod:`repro.codegen.lift` — recognition: decoded fragments and
  superblocks into IR;
* :mod:`repro.codegen.backend` — pluggable lowering: IR into the
  engines' closure kinds, all compiled through
  :mod:`repro.codegen.emit`.

See ``docs/codegen.md`` for the node catalog and backend protocol.
"""

from repro.codegen.backend import BACKENDS, Backend, get_backend, \
    register_backend
from repro.codegen.ir import IRKind
from repro.codegen.lift import FragmentIR, lift_fragment, lift_superblock

__all__ = [
    "BACKENDS",
    "Backend",
    "FragmentIR",
    "IRKind",
    "get_backend",
    "lift_fragment",
    "lift_superblock",
    "register_backend",
]
