"""Program loader: places data arrays into simulated memory.

Arrays are aligned to the maximum vectorizable length the binary was
compiled for (paper section 3.1's alignment requirement) and to the
cache line size, so vector accesses at any hardware width up to the MVL
are legal.  Read-only arrays (``bfly`` offsets, lane constants, masks)
are write-protected, so a buggy translation that scribbles over its own
metadata faults loudly instead of corrupting results.
"""

from __future__ import annotations

from typing import Tuple

from repro.interp.state import SymbolInfo, SymbolTable
from repro.isa.program import Program
from repro.memory.alignment import align_up
from repro.memory.memory import Memory

#: Where the data segment begins (code is fetched from PipelineConfig.code_base).
DATA_BASE = 0x0001_0000


def load_program(program: Program, *, mvl: int = 16,
                 memory_size: int = 1 << 22,
                 line_bytes: int = 32) -> Tuple[Memory, SymbolTable]:
    """Materialize *program*'s data segment; return (memory, symbol table)."""
    memory = Memory(memory_size)
    symbols = SymbolTable()
    addr = DATA_BASE
    for arr in program.data.values():
        alignment = max(line_bytes, mvl * arr.elem_size)
        addr = align_up(addr, alignment)
        symbols.add(SymbolInfo(name=arr.name, addr=addr, elem=arr.elem,
                               count=len(arr), read_only=arr.read_only))
        if arr.values:
            memory.store_vector(addr, arr.elem, arr.values)
        end = addr + arr.size_bytes
        if arr.read_only:
            memory.protect(addr, end)
        addr = end
    if addr >= memory_size:
        raise MemoryError(
            f"data segment ({addr} bytes) exceeds memory size {memory_size}"
        )
    return memory, symbols


def snapshot_arrays(program: Program, memory: Memory,
                    symbols: SymbolTable) -> dict:
    """Read back every (writable) array's final contents, keyed by name.

    Used by tests and the harness to prove that the scalar baseline, the
    native SIMD binary, and the dynamically translated execution leave
    bit-identical results in memory.
    """
    out = {}
    for arr in program.data.values():
        if arr.read_only:
            continue
        info = symbols.lookup(arr.name)
        out[arr.name] = memory.load_vector(info.addr, info.elem, info.count)
    return out
