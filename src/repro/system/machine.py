"""The full Liquid SIMD machine: pipeline + translator + microcode cache.

:class:`Machine` wires every substrate together following Figure 1 of
the paper: a scalar in-order pipeline, a SIMD accelerator, a
post-retirement dynamic translator, and a microcode cache whose entries
the front end injects when a marked call's translation is ready.

Execution of one Liquid binary proceeds exactly as the paper describes:

1. The first time a marked (``blo``) call retires, the translator starts
   observing the outlined function's retire stream while the function
   runs in scalar form.
2. At the function's ``ret`` the translation finalizes; after a
   configurable latency (cycles per observed instruction) the microcode
   becomes available in the cache.  Aborted translations blacklist the
   function — it simply keeps running in scalar form forever.
3. Subsequent calls whose microcode is resident and ready skip the
   scalar body entirely: the fragment's SIMD instructions are injected
   into the pipeline (bypassing instruction fetch) and executed on the
   accelerator at the translation's effective width.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.translate.translator import (
    AbortReason,
    DynamicTranslator,
    TranslationResult,
    TranslatorConfig,
)
from repro.core.translate.ucode_cache import MicrocodeCache, MicrocodeEntry
from repro.interp.events import RetireEvent
from repro.interp.executor import ENGINES, ExecutionError, make_executor
from repro.interp.turbo import (
    fragment_tables_for_entry,
    superblock_table_for,
)
from repro.isa.decoded import predecode
from repro.memory.memory import MemoryError_
from repro.interp.state import MachineState
from repro.observability import telemetry as _telemetry
from repro.isa.program import Program
from repro.pipeline.core import PipelineConfig, PipelineModel
from repro.simd.accelerator import AcceleratorConfig
from repro.system.loader import load_program, snapshot_arrays
from repro.system.metrics import FunctionStats, RunResult


class MachineError(Exception):
    """Simulation-level failure (runaway program, execution fault)."""


@dataclass(frozen=True)
class MachineConfig:
    """One machine configuration (a point in the paper's design space).

    ``accelerator=None`` models the plain ARM-926EJ-S (no SIMD); Liquid
    binaries then simply execute their scalar representation.
    """

    accelerator: Optional[AcceleratorConfig] = None
    pipeline: PipelineConfig = field(default_factory=PipelineConfig)
    translation_enabled: bool = True
    ucode_cache_entries: int = 8
    max_ucode_instructions: int = 64
    translation_cycles_per_instruction: int = 1
    collapse_offset_loads: bool = True
    const_immediates: bool = True
    #: attempt translation of plain ``bl`` calls too (the paper's
    #: unmarked-call variant, relying on legality checks against false
    #: positives).
    attempt_plain_bl: bool = False
    #: Pre-populate the microcode cache before timing starts, modelling the
    #: paper's "built-in ISA support" comparison point: the simulator is
    #: "modified to eliminate control generation" and treats every outlined
    #: function as native SIMD code from its first call.
    pretranslate: bool = False
    #: If set, deliver an external abort (context switch / interrupt) to the
    #: translator every N cycles — the paper's "abort signal from the base
    #: pipeline to stop translation in the event of a context switch".
    #: External aborts are transient: the machine retries translation on a
    #: later call instead of blacklisting the function.
    interrupt_interval: Optional[int] = None
    #: "hardware" (paper's design: post-retirement logic off the critical
    #: path, costing only latency) or "software" (the paper's JIT
    #: alternative: translation runs on the main core, stalling it for
    #: ``software_cycles_per_instruction`` per observed instruction, but
    #: the microcode is ready the moment the JIT finishes).
    translation_mode: str = "hardware"
    software_cycles_per_instruction: int = 30
    #: Where the hardware translator taps the pipeline.  "retirement"
    #: (the paper's choice) sees instructions *and* the data values they
    #: produced, enabling permutation/constant recognition, and is far
    #: off the critical path.  "decode" sees only the instructions: it
    #: finishes with zero extra latency but must abort any loop whose
    #: translation needs observed values (permutations) — the trade-off
    #: the paper's section 4 discussion weighs.
    observation_point: str = "retirement"
    #: Self-checking mode: before caching a completed translation, replay
    #: the scalar function and the microcode on cloned machine state and
    #: require bit-identical memory; a mismatch discards the translation
    #: (defense in depth against translator bugs and the paper's
    #: false-positive scenario).
    verify_translations: bool = False
    #: Execution engine: "fast" (pre-decoded handler tables + numpy
    #: vector lowerings — the production default), "turbo" (superblock
    #: fusion over the fast tables with batched timing and a
    #: zero-allocation retire path), "macro" (turbo plus whole-loop
    #: numpy kernels for translated SIMD fragments with batched d-cache
    #: and pipeline replay — repro/interp/macro.py), or "reference"
    #: (the canonical per-step interpreter).  All four are
    #: bit-identical; see docs/execution-engines.md and
    #: tests/test_engine_differential.py.
    engine: str = "fast"
    mvl: int = 16
    max_steps: int = 80_000_000

    def __post_init__(self) -> None:
        if self.engine not in ENGINES:
            raise ValueError(
                f"engine must be one of {ENGINES}, got {self.engine!r}"
            )
        if self.translation_mode not in ("hardware", "software"):
            raise ValueError(
                f"translation_mode must be 'hardware' or 'software', "
                f"got {self.translation_mode!r}"
            )
        if self.observation_point not in ("retirement", "decode"):
            raise ValueError(
                f"observation_point must be 'retirement' or 'decode', "
                f"got {self.observation_point!r}"
            )

    @property
    def name(self) -> str:
        if self.accelerator is None:
            return "scalar"
        mode = "liquid" if self.translation_enabled else "simd-off"
        return f"{mode}-w{self.accelerator.width}"

    def translator_config(self) -> TranslatorConfig:
        if self.accelerator is None:
            raise MachineError("no accelerator: nothing to translate for")
        return TranslatorConfig(
            width=self.accelerator.width,
            max_ucode_instructions=self.max_ucode_instructions,
            cycles_per_instruction=self.translation_cycles_per_instruction,
            collapse_offset_loads=self.collapse_offset_loads,
            const_immediates=self.const_immediates,
            supports_saturation=self.accelerator.supports_saturation,
            permutations=self.accelerator.permutations,
            supported_vector_ops=self.accelerator.effective_vector_ops(),
        )


#: PC offset applied to microcode events so the branch predictor and any
#: PC-indexed structure see a distinct address space per cached fragment.
_FRAGMENT_PC_BASE = 1 << 20
_FRAGMENT_PC_STRIDE = 1 << 12


class Machine:
    """Executes programs under one :class:`MachineConfig`.

    Pass a :class:`~repro.system.trace.TraceRecorder` as *tracer* to
    capture the interleaved scalar/microcode retirement stream.

    *preloaded_microcode* seeds the microcode cache with completed
    translations before execution starts (ready at cycle 0) — the
    mechanism behind cross-width retranslation and the persistent
    fragment store: a fragment translated elsewhere (another process,
    another width) runs here without the scalar observation pass.
    Preloading is deliberately **not** a :class:`MachineConfig` field:
    run-cache keys fingerprint the config, and a preloaded fragment must
    produce the same result as translating it locally, so it must not
    perturb the key.
    """

    def __init__(self, config: MachineConfig, tracer=None,
                 preloaded_microcode=None) -> None:
        self.config = config
        self.tracer = tracer
        self.preloaded_microcode = list(preloaded_microcode or ())
        if self.preloaded_microcode:
            if config.accelerator is None or not config.translation_enabled:
                raise MachineError(
                    "preloaded microcode needs an accelerator with "
                    "translation enabled")
            for entry in self.preloaded_microcode:
                if entry.width > config.accelerator.width:
                    raise MachineError(
                        f"preloaded microcode for {entry.function} is "
                        f"{entry.width} lanes wide; accelerator has "
                        f"{config.accelerator.width}")

    def run(self, program: Program) -> RunResult:
        """Run *program* to its ``halt``; return the collected metrics."""
        config = self.config
        # Observability (docs/observability.md): everything below is
        # gated on ``tel.enabled`` — the disabled shim costs one local
        # bool per *run*, never anything per instruction or per block.
        tel = _telemetry.get()
        tel_on = tel.enabled
        run_mark = tel.marker() if tel_on else None
        run_start = time.perf_counter() if tel_on else 0.0
        if tel_on:
            tel.count("machine.runs")
        memory, symbols = load_program(program, mvl=config.mvl)
        hw_width = (config.accelerator.width
                    if config.accelerator is not None else None)
        state = MachineState(program, memory, symbols, vector_width=hw_width)
        executor = make_executor(state, config.engine)
        metas = executor.metas        # fast engine only; None for reference
        handlers = executor.handlers  # fast engine only; None for reference
        pipeline = PipelineModel(config.pipeline)
        use_translation = (config.accelerator is not None
                           and config.translation_enabled)
        ucache = MicrocodeCache(config.ucode_cache_entries) if use_translation \
            else None
        if ucache is not None and config.pretranslate:
            scout = Machine(dataclasses.replace(config, pretranslate=False))
            for result in scout.run(program).translations:
                if result.ok and result.entry is not None:
                    ucache.insert(result.entry.with_ready_cycle(0))
        if ucache is not None and self.preloaded_microcode:
            for entry in self.preloaded_microcode:
                ucache.insert(entry.with_ready_cycle(0))
            if tel_on:
                tel.count("machine.preloaded_fragments",
                          len(self.preloaded_microcode))
        functions: Dict[str, FunctionStats] = {}
        translations: List[TranslationResult] = []
        blacklist = set()
        translating: Optional[DynamicTranslator] = None
        fragment_offsets: Dict[str, int] = {}
        #: (function, width, encoded bytes) -> (program, DecodedProgram),
        #: so repeated microcode runs under the fast/turbo/macro engines
        #: pay the decode pass once.  Content keys, not ``id(fragment)``:
        #: fragments are per-run objects and a recycled address must not
        #: resurrect another fragment's tables.
        fragment_tables: Dict[tuple, tuple] = {}
        #: same key -> (program, DecodedProgram, SuperblockTable, plan)
        #: from repro.interp.turbo.fragment_tables_for (turbo/macro).
        fragment_blocks: Dict[tuple, tuple] = {}
        next_interrupt = (config.interrupt_interval
                          if config.interrupt_interval is not None else 0)

        steps = 0
        instructions = program.instructions
        n_instr = len(instructions)
        # Hot-loop locals: bound once, used every iteration.
        account = pipeline.account
        tracer = self.tracer
        max_steps = config.max_steps
        #: per-pc flag for the marked-call slow path, so the loop skips
        #: two string compares per instruction.
        marked_call = [
            (ins.opcode == "blo"
             or (ins.opcode == "bl" and config.attempt_plain_bl))
            and ins.target is not None
            for ins in instructions
        ]
        # Turbo engine: fuse straight-line runs into superblocks executed
        # with one dispatch and one account_block() call.  A tracer needs
        # every RetireEvent, so tracing disables fusion wholesale; an
        # active translation disables it temporarily (checked per
        # iteration below) — both then take the identical per-instruction
        # fast path, whose events are eager.
        superblocks = None
        block_lookup = None
        sb_lookups0 = sb_compiles0 = 0
        if config.engine in ("turbo", "macro") and tracer is None:
            superblocks = superblock_table_for(executor.table, pipeline,
                                               marked_call, hw_width)
            # Telemetry swaps in the counted lookup; the plain hot path
            # is untouched when disabled.  Tables are memoized across
            # runs, so per-run attribution needs a snapshot.
            block_lookup = (superblocks.block_at_counted if tel_on
                            else superblocks.block_at)
            sb_lookups0 = superblocks.lookups
            sb_compiles0 = superblocks.compiles
        account_block = pipeline.account_block
        while not state.halted:
            if superblocks is not None and translating is None:
                pc = state.pc
                if 0 <= pc < n_instr and not marked_call[pc]:
                    block = block_lookup(pc)
                    # Near max_steps, fall through to the per-instruction
                    # path so the step-limit error fires at the exact
                    # instruction it would under the other engines.
                    if steps + block.count <= max_steps:
                        steps += block.count
                        try:
                            taken = block.run(state)
                        except (ExecutionError, MemoryError_) as exc:
                            raise MachineError(
                                f"{program.name} @pc={state.pc}: {exc}"
                            ) from exc
                        account_block(block.timing, block.mem, taken)
                        continue
            steps += 1
            if steps > max_steps:
                raise MachineError(
                    f"{program.name}: exceeded {config.max_steps} steps"
                )
            pc = state.pc
            if not 0 <= pc < n_instr:
                raise MachineError(f"{program.name}: pc {pc} out of range")
            instr = instructions[pc]

            if marked_call[pc]:
                target = instr.target
                stats = functions.setdefault(target, FunctionStats(target))
                stats.calls += 1
                stats.call_cycles.append(pipeline.now)
                if ucache is not None:
                    entry = ucache.lookup(target, pipeline.now)
                    if entry is not None:
                        # Front-end injection: charge the call, run microcode,
                        # resume after the call.
                        event = executor.execute(instr)  # sets lr, jumps
                        pipeline.account(
                            event, metas[pc] if metas is not None else None)
                        if self.tracer is not None:
                            self.tracer.record(event, source="scalar")
                        self._run_fragment(entry, state, pipeline,
                                           fragment_offsets, fragment_tables,
                                           fragment_blocks)
                        stats.simd_runs += 1
                        state.pc = pc + 1
                        continue
                    if translating is None and target not in blacklist \
                            and not ucache.contains(target):
                        translating = DynamicTranslator(
                            config.translator_config(),
                            resolve_label=program.label_index,
                        )
                        translating.begin(target)
                stats.scalar_runs += 1
                event = executor.execute(instr)
                pipeline.account(
                    event, metas[pc] if metas is not None else None)
                if self.tracer is not None:
                    self.tracer.record(event, source="scalar")
                continue

            try:
                if handlers is not None:
                    event = handlers[pc](state)
                    meta = metas[pc]
                else:
                    event = executor.execute(instr)
                    meta = None
            except (ExecutionError, MemoryError_) as exc:
                raise MachineError(f"{program.name} @pc={pc}: {exc}") from exc
            account(event, meta)
            if tracer is not None:
                tracer.record(event, source="scalar")
            if translating is not None:
                if config.interrupt_interval is not None \
                        and pipeline.now >= next_interrupt:
                    translating.abort_external()
                    next_interrupt = pipeline.now + config.interrupt_interval
                if config.observation_point == "decode":
                    # The decode stage never sees produced data values.
                    translating.observe(dataclasses.replace(event, value=None))
                else:
                    translating.observe(event)
                if translating.done or event.instr.opcode == "ret":
                    if config.translation_mode == "software":
                        # The JIT runs on the core itself: charge its work
                        # as a pipeline stall, after which the microcode is
                        # immediately available.
                        work = (config.software_cycles_per_instruction
                                * (len(translating.seen) + 1))
                        pipeline.stall(work)
                    result = translating.finish(ret_cycle=pipeline.now)
                    if result.ok and (config.translation_mode == "software"
                                      or config.observation_point == "decode"):
                        result.entry.ready_cycle = pipeline.now
                    translations.append(result)
                    target = result.function
                    if target in functions:
                        functions[target].translation = result
                    if result.ok and config.verify_translations \
                            and not self._verify_translation(
                                result, program, state):
                        result.ok = False
                        result.reason = AbortReason.INCONSISTENT
                        result.detail = "verification replay mismatch"
                        result.entry = None
                        tel.count("translate.verify-mismatch")
                    if result.ok and ucache is not None:
                        ucache.insert(result.entry)
                    elif result.reason is not AbortReason.EXTERNAL:
                        # Interrupt-induced aborts are transient; real rule
                        # violations are permanent.
                        blacklist.add(target)
                    translating = None

        run_telemetry = None
        if tel_on:
            run_telemetry = self._flush_telemetry(
                tel, run_mark, run_start, pipeline, superblocks,
                sb_lookups0, sb_compiles0)

        return RunResult(
            program=program.name,
            config=config.name,
            cycles=pipeline.total_cycles(),
            instructions=pipeline.stats.instructions,
            pipeline=pipeline.stats,
            icache=pipeline.icache.stats,
            dcache=pipeline.dcache.stats,
            functions=functions,
            ucode_cache=ucache.stats if ucache is not None else None,
            arrays=snapshot_arrays(program, memory, symbols),
            translations=translations,
            telemetry=run_telemetry,
        )

    def _flush_telemetry(self, tel, run_mark, run_start: float,
                         pipeline: PipelineModel, superblocks,
                         sb_lookups0: int, sb_compiles0: int) -> dict:
        """Fold end-of-run totals into the registry; return this run's slice.

        The pipeline and cache models keep their own per-run statistics;
        mirroring them into the telemetry registry once per run gives
        the ``repro telemetry`` dump one uniform counter namespace
        (docs/observability.md) without touching their hot paths.
        """
        stats = pipeline.stats
        tel.count("machine.cycles", pipeline.total_cycles())
        tel.count("pipeline.instructions", stats.instructions)
        tel.count("pipeline.simd_instructions", stats.simd_instructions)
        tel.count("pipeline.data_stall_cycles", stats.data_stall_cycles)
        tel.count("pipeline.fetch_stall_cycles", stats.fetch_stall_cycles)
        tel.count("pipeline.load_miss_cycles", stats.load_miss_cycles)
        tel.count("pipeline.branch_penalty_cycles",
                  stats.branch_penalty_cycles)
        tel.count("pipeline.branches", stats.branches)
        tel.count("pipeline.mispredicts", stats.mispredicts)
        for prefix, cache in (("icache", pipeline.icache),
                              ("dcache", pipeline.dcache)):
            cstats = cache.stats
            tel.count(f"{prefix}.reads", cstats.reads)
            tel.count(f"{prefix}.writes", cstats.writes)
            tel.count(f"{prefix}.read_misses", cstats.read_misses)
            tel.count(f"{prefix}.write_misses", cstats.write_misses)
            tel.count(f"{prefix}.writebacks", cstats.writebacks)
        if superblocks is not None:
            tel.count("turbo.superblock.lookups",
                      superblocks.lookups - sb_lookups0)
            tel.count("turbo.superblock.compiles",
                      superblocks.compiles - sb_compiles0)
        elapsed = time.perf_counter() - run_start
        tel.record_span("machine.run", elapsed)
        return {"counters": tel.delta_since(run_mark),
                "wall_seconds": elapsed}

    # -- translation verification --------------------------------------------------

    def _verify_translation(self, result, program: Program,
                            state: MachineState) -> bool:
        """Replay scalar body vs. microcode on cloned state; compare memory.

        Runs functionally (no timing).  Both replays start from the
        machine's *current* architectural state, i.e. right after the
        observed execution returned — any state works, since the two
        representations must agree from every reachable state.
        """
        entry = result.entry
        target = entry.function

        def replay(fragment: bool):
            memory = state.memory.clone()
            clone = MachineState(program, memory, state.symbols,
                                 vector_width=None)
            for name, value in state.regs.snapshot().items():
                clone.regs.write(name, value)
            if fragment:
                frag_state = MachineState(entry.fragment, memory,
                                          state.symbols,
                                          vector_width=entry.width)
                frag_state.regs = clone.regs
                executor = make_executor(frag_state, self.config.engine)
                count = len(entry.fragment.instructions)
                guard = 0
                while frag_state.pc < count:
                    guard += 1
                    if guard > self.config.max_steps:
                        raise MachineError("verification replay diverged")
                    executor.execute(
                        entry.fragment.instructions[frag_state.pc])
            else:
                clone.pc = program.label_index(target)
                clone.regs.write("r14", len(program.instructions))
                executor = make_executor(clone, self.config.engine)
                guard = 0
                while True:
                    guard += 1
                    if guard > self.config.max_steps:
                        raise MachineError("verification replay diverged")
                    instr = program.instructions[clone.pc]
                    executor.execute(instr)
                    if instr.opcode == "ret":
                        break
            return memory

        scalar_memory = replay(fragment=False)
        simd_memory = replay(fragment=True)
        return scalar_memory.read_bytes(0, scalar_memory.size) == \
            simd_memory.read_bytes(0, simd_memory.size)

    # -- microcode execution ----------------------------------------------------

    def _run_fragment(self, entry: MicrocodeEntry, state: MachineState,
                      pipeline: PipelineModel,
                      offsets: Dict[str, int],
                      tables: Optional[Dict[tuple, tuple]] = None,
                      block_tables: Optional[Dict[tuple, tuple]] = None,
                      ) -> None:
        """Execute one cached translation on the SIMD accelerator."""
        fragment = entry.fragment
        if entry.function not in offsets:
            offsets[entry.function] = (_FRAGMENT_PC_BASE
                                       + len(offsets) * _FRAGMENT_PC_STRIDE)
        offset = offsets[entry.function]
        engine = self.config.engine
        table = None
        blocks = None
        plan = None
        # Turbo/macro: fuse the fragment too (same rules as the main
        # loop — tracing forces the per-instruction path).  Fragment
        # rows skip instruction fetch and carry offset PCs, exactly like
        # the per-event path below.  Fragments are rebuilt each run, so
        # the fused tables are memoized by encoded bytes across runs; a
        # hit substitutes the canonical (byte-identical) fragment
        # program the tables were built over.  The per-run dicts are
        # keyed by entry identity (function, width, bytes) for the same
        # reason — see their declarations in :meth:`run`.
        if engine in ("turbo", "macro") and self.tracer is None \
                and tables is not None and block_tables is not None:
            key = entry.table_key
            cached = block_tables.get(key)
            if cached is None:
                cached = fragment_tables_for_entry(
                    entry, pipeline, offset, macro=engine == "macro")
                block_tables[key] = cached
            fragment, table, blocks, plan = cached
        elif engine in ("fast", "turbo", "macro") and tables is not None:
            key = entry.table_key
            cached = tables.get(key)
            if cached is None:
                cached = (fragment, predecode(fragment))
                tables[key] = cached
            fragment, table = cached
        frag_state = MachineState(fragment, state.memory, state.symbols,
                                  vector_width=entry.width)
        frag_state.regs = state.regs  # architectural scalar state is shared
        # The per-event executor is built lazily: macro/turbo fragments
        # that run entirely through plan kernels and fused blocks never
        # reach the per-event path, so its construction cost (decode
        # table wiring, handler binding) is skipped on the hot path.
        frag_executor = None
        metas = handlers = None
        count = len(fragment.instructions)
        guard = 0
        max_steps = self.config.max_steps
        account_block = pipeline.account_block
        # Telemetry: counted block lookups plus a snapshot for per-run
        # attribution (fragment tables are memoized across runs).  One
        # bool load per fragment invocation when disabled.
        tel = _telemetry.get()
        tel_on = tel.enabled
        block_lookup = None
        fb_lookups0 = fb_compiles0 = 0
        if blocks is not None:
            block_lookup = (blocks.block_at_counted if tel_on
                            else blocks.block_at)
            fb_lookups0 = blocks.lookups
            fb_compiles0 = blocks.compiles
        while frag_state.pc < count:
            if plan is not None:
                # Macro engine: a recognized counted loop headed here is
                # executed whole — all remaining trips as one numpy
                # kernel plus one batched timing call.  trips()/run()
                # return None/False for anything the whole-array form
                # cannot reproduce bit-identically; the per-block path
                # below then takes over, raising any error that is
                # actually due at its exact instruction.  The guard uses
                # the same near-max_steps fallback as the block path.
                kernel = plan.get(frag_state.pc)
                if kernel is not None:
                    trips = kernel.trips(frag_state)
                    if trips is not None \
                            and guard + trips * kernel.blen <= max_steps:
                        if kernel.run(frag_state, pipeline, trips):
                            if tel_on:
                                tel.count("macro.kernel.invocations")
                                tel.observe("macro.kernel.trips", trips)
                            guard += trips * kernel.blen
                            continue
                        elif tel_on:
                            tel.count(
                                "macro.fallback.runtime-precondition")
                    elif tel_on:
                        tel.count("macro.fallback.trips-window"
                                  if trips is None
                                  else "macro.fallback.step-limit")
            if blocks is not None:
                block = block_lookup(frag_state.pc)
                if guard + block.count <= max_steps:
                    guard += block.count
                    try:
                        taken = block.run(frag_state)
                    except (ExecutionError, MemoryError_) as exc:
                        raise MachineError(
                            f"microcode for {entry.function}: {exc}"
                        ) from exc
                    account_block(block.timing, block.mem, taken)
                    continue
            guard += 1
            if guard > self.config.max_steps:
                raise MachineError(
                    f"microcode for {entry.function} did not terminate"
                )
            frag_pc = frag_state.pc
            instr = fragment.instructions[frag_pc]
            if frag_executor is None:
                frag_executor = make_executor(frag_state,
                                              self.config.engine, table)
                metas = frag_executor.metas
                handlers = frag_executor.handlers
            try:
                if handlers is not None:
                    event = handlers[frag_pc](frag_state)
                    meta = metas[frag_pc]
                else:
                    event = frag_executor.execute(instr)
                    meta = None
            except (ExecutionError, MemoryError_) as exc:
                raise MachineError(
                    f"microcode for {entry.function}: {exc}"
                ) from exc
            # Direct construction (not dataclasses.replace): this runs once
            # per injected microcode instruction and replace() is ~3x the
            # cost of the frozen-dataclass constructor.
            pipeline.account(
                RetireEvent(
                    pc=event.pc + offset,
                    instr=event.instr,
                    value=event.value,
                    mem_addr=event.mem_addr,
                    taken=event.taken,
                    next_pc=event.next_pc + offset,
                    in_vector_unit=True,
                    vector_width=event.vector_width,
                ),
                meta,
            )
            if self.tracer is not None:
                self.tracer.record(event, source="ucode")
        if tel_on and blocks is not None:
            tel.count("turbo.fragment.lookups",
                      blocks.lookups - fb_lookups0)
            tel.count("turbo.fragment.compiles",
                      blocks.compiles - fb_compiles0)
