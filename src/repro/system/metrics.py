"""Run results and statistics gathered by the machine.

:class:`RunResult` is the single artifact every experiment consumes: it
carries cycle counts, pipeline/cache statistics, per-outlined-function
call tracking (Table 6's call distances), translation outcomes and abort
reasons, microcode cache statistics, and a snapshot of final array
contents for correctness comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.translate.translator import AbortReason, TranslationResult
from repro.core.translate.ucode_cache import MicrocodeCacheStats
from repro.isa.program import Program
from repro.memory.cache import CacheStats
from repro.pipeline.core import PipelineStats


@dataclass
class FunctionStats:
    """Per-outlined-function tracking."""

    name: str
    calls: int = 0
    scalar_runs: int = 0
    simd_runs: int = 0
    call_cycles: List[int] = field(default_factory=list)
    translation: Optional[TranslationResult] = None

    @property
    def first_two_call_distance(self) -> Optional[int]:
        """Cycles between the first two calls (the paper's Table 6)."""
        if len(self.call_cycles) < 2:
            return None
        return self.call_cycles[1] - self.call_cycles[0]

    def to_dict(self) -> dict:
        """JSON-safe representation (inverse of :meth:`from_dict`)."""
        return {
            "name": self.name,
            "calls": self.calls,
            "scalar_runs": self.scalar_runs,
            "simd_runs": self.simd_runs,
            "call_cycles": list(self.call_cycles),
            "translation": (self.translation.to_dict()
                            if self.translation is not None else None),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FunctionStats":
        return cls(
            name=data["name"],
            calls=data["calls"],
            scalar_runs=data["scalar_runs"],
            simd_runs=data["simd_runs"],
            call_cycles=list(data["call_cycles"]),
            translation=(TranslationResult.from_dict(data["translation"])
                         if data["translation"] is not None else None),
        )


@dataclass
class RunResult:
    """Everything measured during one program execution."""

    program: str
    config: str
    cycles: int
    instructions: int
    pipeline: PipelineStats
    icache: CacheStats
    dcache: CacheStats
    functions: Dict[str, FunctionStats]
    ucode_cache: Optional[MicrocodeCacheStats]
    arrays: Dict[str, list]
    translations: List[TranslationResult] = field(default_factory=list)
    #: Per-run observability data (docs/observability.md), populated
    #: only while telemetry is enabled: the run's counter deltas plus
    #: its wall-clock seconds.  Purely additive to the wire format —
    #: ``to_dict`` omits the key when None, the run cache strips it
    #: before persisting, and it never affects run-cache keys.
    telemetry: Optional[dict] = None

    def speedup_over(self, baseline: "RunResult") -> float:
        """Baseline cycles / this run's cycles."""
        return baseline.cycles / self.cycles if self.cycles else float("inf")

    def to_dict(self) -> dict:
        """JSON-safe representation (inverse of :meth:`from_dict`).

        This is the wire format of the persistent run cache
        (:mod:`repro.evaluation.runcache`) and of process-pool transport
        in :mod:`repro.evaluation.runner`, so it must round-trip every
        field bit-exactly — including microcode fragments and final
        array contents (floats survive JSON via repr round-tripping).
        """
        data = {
            "program": self.program,
            "config": self.config,
            "cycles": self.cycles,
            "instructions": self.instructions,
            "pipeline": self.pipeline.to_dict(),
            "icache": self.icache.to_dict(),
            "dcache": self.dcache.to_dict(),
            "functions": {name: stats.to_dict()
                          for name, stats in self.functions.items()},
            "ucode_cache": (self.ucode_cache.to_dict()
                            if self.ucode_cache is not None else None),
            "arrays": {name: list(values)
                       for name, values in self.arrays.items()},
            "translations": [t.to_dict() for t in self.translations],
        }
        # Additive: present only when a telemetry-enabled run populated
        # it, so payloads (and the run cache, which strips it anyway)
        # are unchanged for telemetry-off runs.
        if self.telemetry is not None:
            data["telemetry"] = self.telemetry
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "RunResult":
        return cls(
            program=data["program"],
            config=data["config"],
            cycles=data["cycles"],
            instructions=data["instructions"],
            pipeline=PipelineStats.from_dict(data["pipeline"]),
            icache=CacheStats.from_dict(data["icache"]),
            dcache=CacheStats.from_dict(data["dcache"]),
            functions={name: FunctionStats.from_dict(stats)
                       for name, stats in data["functions"].items()},
            ucode_cache=(MicrocodeCacheStats.from_dict(data["ucode_cache"])
                         if data["ucode_cache"] is not None else None),
            arrays={name: list(values)
                    for name, values in data["arrays"].items()},
            translations=[TranslationResult.from_dict(t)
                          for t in data["translations"]],
            telemetry=data.get("telemetry"),
        )

    @property
    def abort_counts(self) -> Dict[AbortReason, int]:
        counts: Dict[AbortReason, int] = {}
        for result in self.translations:
            if not result.ok and result.reason is not None:
                counts[result.reason] = counts.get(result.reason, 0) + 1
        return counts

    @property
    def successful_translations(self) -> int:
        return sum(1 for r in self.translations if r.ok)

    @property
    def cpi(self) -> float:
        """Cycles per retired instruction."""
        return self.cycles / self.instructions if self.instructions else 0.0

    def summary(self) -> str:
        """Human-readable run report (cycles, stalls, caches, hot loops)."""
        p = self.pipeline
        lines = [
            f"run: {self.program} on {self.config}",
            f"  cycles              {self.cycles:>12,}",
            f"  instructions        {self.instructions:>12,}"
            f"   (SIMD: {p.simd_instructions:,})",
            f"  CPI                 {self.cpi:>12.2f}",
            f"  stalls: data        {p.data_stall_cycles:>12,}",
            f"          fetch       {p.fetch_stall_cycles:>12,}",
            f"          load miss   {p.load_miss_cycles:>12,}",
            f"          branch      {p.branch_penalty_cycles:>12,}",
            f"  icache miss rate    {self.icache.miss_rate:>12.1%}",
            f"  dcache miss rate    {self.dcache.miss_rate:>12.1%}",
        ]
        if self.functions:
            lines.append("  outlined hot loops:")
            for name, stats in sorted(self.functions.items()):
                outcome = "?"
                if stats.translation is not None:
                    outcome = ("translated" if stats.translation.ok
                               else f"aborted ({stats.translation.reason.value})")
                lines.append(
                    f"    {name:<22} calls={stats.calls:<4} "
                    f"scalar={stats.scalar_runs:<4} simd={stats.simd_runs:<4} "
                    f"{outcome}"
                )
        if self.ucode_cache is not None:
            uc = self.ucode_cache
            lines.append(
                f"  microcode cache: {uc.hits}/{uc.lookups} hits, "
                f"{uc.not_ready} not-ready, {uc.evictions} evictions"
            )
        return "\n".join(lines)


def arrays_equal(a: RunResult, b: RunResult, *, only: Optional[list] = None,
                 tolerance: float = 0.0) -> bool:
    """Compare final array contents of two runs (bit-exact by default)."""
    names = only if only is not None else sorted(set(a.arrays) & set(b.arrays))
    for name in names:
        va, vb = a.arrays.get(name), b.arrays.get(name)
        if va is None or vb is None or len(va) != len(vb):
            return False
        for x, y in zip(va, vb):
            if tolerance:
                if abs(x - y) > tolerance:
                    return False
            elif x != y:
                return False
    return True


def array_mismatches(a: RunResult, b: RunResult) -> List[str]:
    """Names of arrays whose final contents differ between two runs."""
    bad = []
    for name in sorted(set(a.arrays) & set(b.arrays)):
        if a.arrays[name] != b.arrays[name]:
            bad.append(name)
    return bad


def outlined_function_sizes(program: Program) -> Dict[str, int]:
    """Static scalar instruction count per outlined function (Table 5).

    Counts every instruction from the function label through its ``ret``.
    """
    return {
        label: len(program.function_body(label))
        for label in program.outlined_functions
    }
