"""Run results and statistics gathered by the machine.

:class:`RunResult` is the single artifact every experiment consumes: it
carries cycle counts, pipeline/cache statistics, per-outlined-function
call tracking (Table 6's call distances), translation outcomes and abort
reasons, microcode cache statistics, and a snapshot of final array
contents for correctness comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.translate.translator import AbortReason, TranslationResult
from repro.core.translate.ucode_cache import MicrocodeCacheStats
from repro.isa.program import Program
from repro.memory.cache import CacheStats
from repro.pipeline.core import PipelineStats


@dataclass
class FunctionStats:
    """Per-outlined-function tracking."""

    name: str
    calls: int = 0
    scalar_runs: int = 0
    simd_runs: int = 0
    call_cycles: List[int] = field(default_factory=list)
    translation: Optional[TranslationResult] = None

    @property
    def first_two_call_distance(self) -> Optional[int]:
        """Cycles between the first two calls (the paper's Table 6)."""
        if len(self.call_cycles) < 2:
            return None
        return self.call_cycles[1] - self.call_cycles[0]


@dataclass
class RunResult:
    """Everything measured during one program execution."""

    program: str
    config: str
    cycles: int
    instructions: int
    pipeline: PipelineStats
    icache: CacheStats
    dcache: CacheStats
    functions: Dict[str, FunctionStats]
    ucode_cache: Optional[MicrocodeCacheStats]
    arrays: Dict[str, list]
    translations: List[TranslationResult] = field(default_factory=list)

    def speedup_over(self, baseline: "RunResult") -> float:
        """Baseline cycles / this run's cycles."""
        return baseline.cycles / self.cycles if self.cycles else float("inf")

    @property
    def abort_counts(self) -> Dict[AbortReason, int]:
        counts: Dict[AbortReason, int] = {}
        for result in self.translations:
            if not result.ok and result.reason is not None:
                counts[result.reason] = counts.get(result.reason, 0) + 1
        return counts

    @property
    def successful_translations(self) -> int:
        return sum(1 for r in self.translations if r.ok)

    @property
    def cpi(self) -> float:
        """Cycles per retired instruction."""
        return self.cycles / self.instructions if self.instructions else 0.0

    def summary(self) -> str:
        """Human-readable run report (cycles, stalls, caches, hot loops)."""
        p = self.pipeline
        lines = [
            f"run: {self.program} on {self.config}",
            f"  cycles              {self.cycles:>12,}",
            f"  instructions        {self.instructions:>12,}"
            f"   (SIMD: {p.simd_instructions:,})",
            f"  CPI                 {self.cpi:>12.2f}",
            f"  stalls: data        {p.data_stall_cycles:>12,}",
            f"          fetch       {p.fetch_stall_cycles:>12,}",
            f"          load miss   {p.load_miss_cycles:>12,}",
            f"          branch      {p.branch_penalty_cycles:>12,}",
            f"  icache miss rate    {self.icache.miss_rate:>12.1%}",
            f"  dcache miss rate    {self.dcache.miss_rate:>12.1%}",
        ]
        if self.functions:
            lines.append("  outlined hot loops:")
            for name, stats in sorted(self.functions.items()):
                outcome = "?"
                if stats.translation is not None:
                    outcome = ("translated" if stats.translation.ok
                               else f"aborted ({stats.translation.reason.value})")
                lines.append(
                    f"    {name:<22} calls={stats.calls:<4} "
                    f"scalar={stats.scalar_runs:<4} simd={stats.simd_runs:<4} "
                    f"{outcome}"
                )
        if self.ucode_cache is not None:
            uc = self.ucode_cache
            lines.append(
                f"  microcode cache: {uc.hits}/{uc.lookups} hits, "
                f"{uc.not_ready} not-ready, {uc.evictions} evictions"
            )
        return "\n".join(lines)


def arrays_equal(a: RunResult, b: RunResult, *, only: Optional[list] = None,
                 tolerance: float = 0.0) -> bool:
    """Compare final array contents of two runs (bit-exact by default)."""
    names = only if only is not None else sorted(set(a.arrays) & set(b.arrays))
    for name in names:
        va, vb = a.arrays.get(name), b.arrays.get(name)
        if va is None or vb is None or len(va) != len(vb):
            return False
        for x, y in zip(va, vb):
            if tolerance:
                if abs(x - y) > tolerance:
                    return False
            elif x != y:
                return False
    return True


def array_mismatches(a: RunResult, b: RunResult) -> List[str]:
    """Names of arrays whose final contents differ between two runs."""
    bad = []
    for name in sorted(set(a.arrays) & set(b.arrays)):
        if a.arrays[name] != b.arrays[name]:
            bad.append(name)
    return bad


def outlined_function_sizes(program: Program) -> Dict[str, int]:
    """Static scalar instruction count per outlined function (Table 5).

    Counts every instruction from the function label through its ``ret``.
    """
    return {
        label: len(program.function_body(label))
        for label in program.outlined_functions
    }
