"""Execution tracing: a bounded recorder for debugging translations.

A :class:`TraceRecorder` passed to :class:`~repro.system.machine.Machine`
captures retired instructions from both the scalar pipeline and injected
microcode, with opcode/PC filters and a ring buffer so long runs stay
bounded.  The rendered trace interleaves the two streams, which is the
fastest way to see *where* a translation diverged or aborted::

    tracer = TraceRecorder(limit=200, opcodes={"vld", "vst", "blo"})
    Machine(config, tracer=tracer).run(program)
    print(tracer.render())
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Iterable, List, Optional, Set

from repro.interp.events import RetireEvent


@dataclass(frozen=True)
class TraceRecord:
    """One captured retirement."""

    index: int           # global retirement order
    source: str          # "scalar" or "ucode"
    pc: int
    text: str
    value: object
    mem_addr: Optional[int]


class TraceRecorder:
    """Bounded, filtered recorder of retirement events."""

    def __init__(self, limit: int = 1000,
                 opcodes: Optional[Iterable[str]] = None,
                 pc_range: Optional[tuple] = None) -> None:
        if limit <= 0:
            raise ValueError("trace limit must be positive")
        self.limit = limit
        self.opcodes: Optional[Set[str]] = set(opcodes) if opcodes else None
        self.pc_range = pc_range
        self._records: Deque[TraceRecord] = deque(maxlen=limit)
        self._count = 0
        self.dropped = 0

    def record(self, event: RetireEvent, source: str = "scalar") -> None:
        """Capture one event (subject to filters and the ring limit)."""
        self._count += 1
        if self.opcodes is not None and event.instr.opcode not in self.opcodes:
            return
        if self.pc_range is not None:
            lo, hi = self.pc_range
            if not lo <= event.pc < hi:
                return
        if len(self._records) == self.limit:
            self.dropped += 1
        self._records.append(TraceRecord(
            index=self._count,
            source=source,
            pc=event.pc,
            text=str(event.instr),
            value=event.value,
            mem_addr=event.mem_addr,
        ))

    @property
    def records(self) -> List[TraceRecord]:
        return list(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def render(self, show_values: bool = False) -> str:
        """Human-readable interleaved trace."""
        lines = [f"trace: {len(self._records)} records "
                 f"({self._count} retirements seen, {self.dropped} rotated out)"]
        for rec in self._records:
            tag = "U" if rec.source == "ucode" else " "
            line = f"{rec.index:>8} {tag} pc={rec.pc:<6} {rec.text}"
            if show_values and rec.value is not None:
                line += f"    = {rec.value}"
            lines.append(line)
        return "\n".join(lines)

    def opcode_histogram(self) -> dict:
        """Captured-opcode frequency (useful for quick mix checks)."""
        hist: dict = {}
        for rec in self._records:
            opcode = rec.text.split()[0].split(".")[0]
            hist[opcode] = hist.get(opcode, 0) + 1
        return hist
