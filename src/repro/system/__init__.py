"""Full-system glue: loader, machine, metrics."""

from repro.system.loader import DATA_BASE, load_program, snapshot_arrays
from repro.system.machine import Machine, MachineConfig, MachineError
from repro.system.trace import TraceRecord, TraceRecorder
from repro.system.metrics import (
    FunctionStats,
    RunResult,
    array_mismatches,
    arrays_equal,
    outlined_function_sizes,
)

__all__ = [
    "DATA_BASE",
    "load_program",
    "snapshot_arrays",
    "Machine",
    "MachineConfig",
    "MachineError",
    "TraceRecord",
    "TraceRecorder",
    "FunctionStats",
    "RunResult",
    "array_mismatches",
    "arrays_equal",
    "outlined_function_sizes",
]
