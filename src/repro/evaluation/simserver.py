"""Simulation-as-a-service: the ``repro serve`` async run farm.

``repro serve`` exposes the whole evaluation stack — request
construction, content-addressed run caching, and machine simulation —
behind one asyncio HTTP endpoint, so many clients (CI jobs, notebook
sessions, sweep fleets) share a single simulation farm instead of each
simulating locally.  Clients POST ``(benchmark, program_kind, width,
engine, repeat_factor)`` jobs to ``/v1/runs`` and get back the exact
:meth:`~repro.system.metrics.RunResult.to_dict` wire format the run
cache and process pool already speak.

The handler answers each request from the cheapest possible source:

1. **memo / cache hit** — the key (the same engine-invariant
   :func:`~repro.evaluation.runcache.run_key_for_bytes` address every
   other consumer uses) is already answered: O(1), zero simulation.
2. **coalesced** — an identical request is *in flight*: the handler
   awaits the existing run instead of starting a second one
   (single-flight, keyed by run key).  A thousand simultaneous
   identical cold requests cost exactly one machine-run.
3. **cold** — the request is fanned out to a bounded, persistent
   ``ProcessPoolExecutor`` (``--jobs``) through the same
   ``_pool_worker`` transport the :class:`~repro.evaluation.runner
   .RunScheduler` uses, and the result is stored back into the cache
   (first-writer-wins) so every later consumer — this server, a
   ``repro sweep`` shard, a plain ``evaluate`` — answers warm.

Protocol (all bodies JSON):

==========================  ============================================
``POST /v1/runs``           ``{"benchmark", "program_kind", "width",
                            "engine", "repeat_factor"}`` ->
                            ``{service, key, source, seconds, result}``
                            where ``source`` is ``hit`` | ``coalesced``
                            | ``cold`` and ``result`` is the telemetry-
                            stripped ``RunResult.to_dict()`` payload —
                            byte-identical to a direct scheduler run
``GET /stats``              ``{service, format_version, jobs, backend,
                            stats}`` — also the readiness probe
==========================  ============================================

Failure modes: malformed or unknown-benchmark requests get a 400
without touching the pool; a crashed worker (the pool dies with it)
gets a clean 500 and the pool is rebuilt for the next request; a client
that disconnects mid-run abandons only its *reply* — the simulation
completes, is cached, and answers the next identical request warm.
``serve.*`` telemetry (docs/observability.md) attributes every request,
and ``GET /stats`` serves the same counts unconditionally (telemetry
off included) for load tests and CI smoke gates.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import os
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.evaluation.runcache import CACHE_FORMAT_VERSION, RunCache
from repro.evaluation.runner import (
    PROGRAM_KINDS,
    RunRequest,
    RunScheduler,
    _pool_worker,
)
from repro.interp.executor import ENGINES
from repro.kernels.suite import BENCHMARK_ORDER
from repro.observability import telemetry as _telemetry
from repro.simd.accelerator import config_for_width
from repro.system.machine import MachineConfig
from repro.system.metrics import RunResult

#: Value of the ``service`` field in responses; clients check it so a
#: ``--url`` pointed at some unrelated HTTP server reads as unreachable.
SERVICE_NAME = "repro-sim-server"

#: Widths a request may ask for.  Anything in this range simulates
#: correctly (non-power-of-two widths simply abort translation and run
#: scalar); the bound exists so a request cannot ask for an absurd
#: vector file.
MAX_WIDTH = 64

#: In-process memo of recently answered keys (wire dicts), so a warm
#: storm of identical requests never re-reads the cache entry from
#: disk.  Bounded FIFO — the persistent cache remains the real store.
MEMO_ENTRIES = 256


class ServeRequestError(ValueError):
    """A client request that cannot be turned into a RunRequest."""


def parse_run_request(payload: dict) -> RunRequest:
    """Validate one ``POST /v1/runs`` body into a :class:`RunRequest`.

    Raises :class:`ServeRequestError` with a client-facing message on
    anything malformed; nothing here touches the pool or the cache.
    """
    if not isinstance(payload, dict):
        raise ServeRequestError("request body must be a JSON object")
    unknown = set(payload) - {"benchmark", "program_kind", "width",
                              "engine", "repeat_factor"}
    if unknown:
        raise ServeRequestError(
            f"unknown field{'s' if len(unknown) > 1 else ''}: "
            f"{', '.join(sorted(unknown))}")
    benchmark = payload.get("benchmark")
    if benchmark not in BENCHMARK_ORDER:
        raise ServeRequestError(
            f"unknown benchmark {benchmark!r}; "
            f"choices: {', '.join(BENCHMARK_ORDER)}")
    kind = payload.get("program_kind", "liquid")
    if kind not in PROGRAM_KINDS:
        raise ServeRequestError(
            f"program_kind must be one of {PROGRAM_KINDS}, got {kind!r}")
    engine = payload.get("engine", "fast")
    if engine not in ENGINES:
        raise ServeRequestError(
            f"engine must be one of {ENGINES}, got {engine!r}")
    repeat = payload.get("repeat_factor", 1)
    if not isinstance(repeat, int) or isinstance(repeat, bool) \
            or not 1 <= repeat <= 16:
        raise ServeRequestError(
            f"repeat_factor must be an integer in [1, 16], got {repeat!r}")
    width = payload.get("width")
    if kind == "baseline":
        if width is not None:
            raise ServeRequestError(
                "baseline runs take no accelerator; omit 'width'")
        accelerator = None
    else:
        if width is None:
            width = 8
        if not isinstance(width, int) or isinstance(width, bool) \
                or not 2 <= width <= MAX_WIDTH:
            raise ServeRequestError(
                f"width must be an integer in [2, {MAX_WIDTH}], "
                f"got {width!r}")
        accelerator = config_for_width(width)
    config = MachineConfig(accelerator=accelerator, engine=engine)
    return RunRequest(benchmark, kind, config, repeat_factor=repeat)


@dataclass
class ServeStats:
    """Where every ``/v1/runs`` request was answered from.

    Served unconditionally through ``GET /stats`` (telemetry may be
    off), so load tests and CI gates can assert "cold ran exactly once,
    warm simulated nothing" without instrumenting the server.
    """

    requests: int = 0
    hits: int = 0          # answered from memo or persistent cache
    coalesced: int = 0     # awaited an identical in-flight run
    cold: int = 0          # started a new simulation
    executed: int = 0      # machine-runs completed by the pool
    errors: int = 0        # 5xx responses (worker crash, pool failure)
    bad_requests: int = 0  # 4xx responses (malformed job)
    max_queue_depth: int = 0

    def to_dict(self) -> dict:
        return {
            "requests": self.requests,
            "hits": self.hits,
            "coalesced": self.coalesced,
            "cold": self.cold,
            "executed": self.executed,
            "errors": self.errors,
            "bad_requests": self.bad_requests,
            "max_queue_depth": self.max_queue_depth,
        }


@dataclass
class _Inflight:
    """One cold run in flight: the task plus its waiter count."""

    task: asyncio.Task
    waiters: int = 0
    submitted: float = field(default_factory=time.perf_counter)


class SimServer:
    """The ``repro serve`` daemon: asyncio front end, process-pool back.

    One event loop accepts and parses requests; cache reads/writes run
    on the default thread executor (so a slow disk or a remote
    ``--cache-url`` backend never stalls accept), and simulations run
    on a bounded persistent :class:`ProcessPoolExecutor`.  ``port=0``
    binds an ephemeral port — read the real one back from :attr:`url`
    after :meth:`start`.

    *worker* is a test seam: the pool entry point, defaulting to the
    scheduler's ``_pool_worker`` (crash tests inject one that dies).
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 jobs: Optional[int] = None,
                 cache: Optional[RunCache] = None,
                 worker=None) -> None:
        if jobs is None:
            jobs = os.cpu_count() or 1
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.host = host
        self.port = port
        self.jobs = jobs
        self.cache = cache
        self.stats = ServeStats()
        #: Key/encode memoization only — programs are built and encoded
        #: once per program_id, exactly as a sweep does; this scheduler
        #: never simulates (the pool below does).
        self.scheduler = RunScheduler(jobs=1, cache=cache)
        self._worker = worker or _pool_worker
        self._memo: Dict[str, dict] = {}
        self._inflight: Dict[str, _Inflight] = {}
        self._pool: Optional[ProcessPoolExecutor] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stopping: Optional[asyncio.Event] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle ---------------------------------------------------------

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def serve_forever(self) -> None:
        """Run the event loop in this thread (the CLI path)."""
        asyncio.run(self._main())

    def start(self) -> "SimServer":
        """Serve on a daemon thread (the in-process/test harness path)."""
        self._thread = threading.Thread(target=self._thread_main,
                                        daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout=15.0):
            raise RuntimeError("sim server failed to start in time")
        if self._startup_error is not None:
            raise RuntimeError("sim server failed to start") \
                from self._startup_error
        return self

    def shutdown(self) -> None:
        loop = self._loop
        if loop is not None and loop.is_running() \
                and self._stopping is not None:
            loop.call_soon_threadsafe(self._stopping.set)
        if self._thread is not None:
            self._thread.join(timeout=15.0)
            self._thread = None

    def _thread_main(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # noqa: BLE001 - reported to start()
            self._startup_error = exc
            self._ready.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stopping = asyncio.Event()
        server = await asyncio.start_server(self._handle_client,
                                            self.host, self.port)
        self.port = server.sockets[0].getsockname()[1]
        self._ready.set()
        try:
            async with server:
                await self._stopping.wait()
        finally:
            pool, self._pool = self._pool, None
            if pool is not None:
                pool.shutdown(wait=True, cancel_futures=True)

    # -- pool --------------------------------------------------------------

    def _executor(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.jobs)
        return self._pool

    def _reset_pool(self) -> None:
        """Replace a broken pool so one crashed worker cannot wedge the
        farm — the next cold request gets a fresh executor."""
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)

    # -- HTTP plumbing -----------------------------------------------------

    async def _handle_client(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                request_line = await reader.readline()
                if not request_line:
                    break
                try:
                    method, path, _version = \
                        request_line.decode("latin-1").split(None, 2)
                except ValueError:
                    break
                headers = {}
                while True:
                    line = await reader.readline()
                    if line in (b"\r\n", b"\n", b""):
                        break
                    name, _, value = line.decode("latin-1").partition(":")
                    headers[name.strip().lower()] = value.strip()
                length = int(headers.get("content-length") or 0)
                body = await reader.readexactly(length) if length else b""
                close = headers.get("connection", "").lower() == "close"
                status, payload = await self._route(method, path, body)
                data = json.dumps(payload,
                                  separators=(",", ":")).encode("utf-8")
                head_lines = [
                    f"HTTP/1.1 {status} {_REASONS.get(status, 'Status')}",
                    "Content-Type: application/json",
                    f"Content-Length: {len(data)}",
                ]
                if close:
                    head_lines.append("Connection: close")
                head = "\r\n".join(head_lines) + "\r\n\r\n"
                writer.write(head.encode("latin-1") + data)
                await writer.drain()
                if close:
                    break
        except (ConnectionError, asyncio.IncompleteReadError, OSError):
            # The client went away.  Any run it started keeps going —
            # other coalesced waiters (and the cache) still want it.
            pass
        except asyncio.CancelledError:
            # Server shutdown cancelled this connection's handler while
            # it waited for a next request; end the task quietly (the
            # loop is exiting) instead of tripping the stream
            # protocol's exception callback.
            pass
        finally:
            with contextlib.suppress(OSError):
                writer.close()
                await writer.wait_closed()

    async def _route(self, method: str, path: str,
                     body: bytes) -> Tuple[int, dict]:
        if method == "POST" and path == "/v1/runs":
            return await self._handle_run(body)
        if method == "GET" and path == "/stats":
            return 200, self._stats_payload()
        return 404, {"error": "unknown endpoint"}

    def _stats_payload(self) -> dict:
        return {
            "service": SERVICE_NAME,
            "format_version": CACHE_FORMAT_VERSION,
            "jobs": self.jobs,
            "inflight": len(self._inflight),
            "backend": (self.cache.describe()
                        if self.cache is not None else None),
            "stats": self.stats.to_dict(),
        }

    # -- the run endpoint --------------------------------------------------

    async def _handle_run(self, body: bytes) -> Tuple[int, dict]:
        start = time.perf_counter()
        tel = _telemetry.get()
        self.stats.requests += 1
        tel.count("serve.requests")
        try:
            payload = json.loads(body.decode("utf-8"))
            request = parse_run_request(payload)
        except (UnicodeDecodeError, ValueError) as exc:
            self.stats.bad_requests += 1
            tel.count("serve.bad_requests")
            return 400, {"error": str(exc) or "malformed JSON body"}

        key = self.scheduler.key_for(request)
        wire = await self._load_warm(key)
        if wire is not None:
            self.stats.hits += 1
            tel.count("serve.hits")
            return 200, self._envelope(key, "hit", start, wire)

        entry = self._inflight.get(key)
        if entry is not None:
            self.stats.coalesced += 1
            tel.count("serve.coalesced")
            source = "coalesced"
        else:
            loop = asyncio.get_running_loop()
            entry = _Inflight(loop.create_task(self._simulate(key, request)))
            self._inflight[key] = entry
            self.stats.cold += 1
            tel.count("serve.cold")
            depth = len(self._inflight)
            if depth > self.stats.max_queue_depth:
                self.stats.max_queue_depth = depth
            tel.observe("serve.queue_depth", depth)
            source = "cold"
        entry.waiters += 1
        try:
            # shield(): a dropped client must never cancel a run other
            # waiters (and the cache) are counting on.
            wire = await asyncio.shield(entry.task)
        except Exception as exc:  # noqa: BLE001 - mapped to a clean 5xx
            self.stats.errors += 1
            tel.count("serve.errors")
            return 500, {"error": f"simulation failed: {exc}"}
        return 200, self._envelope(key, source, start, wire)

    def _envelope(self, key: str, source: str, start: float,
                  wire: dict) -> dict:
        return {
            "service": SERVICE_NAME,
            "key": key,
            "source": source,
            "seconds": round(time.perf_counter() - start, 6),
            "result": wire,
        }

    async def _load_warm(self, key: str) -> Optional[dict]:
        """The memoized or cached wire dict for *key*, else None.

        Cache reads go through the default thread executor so a remote
        backend's round-trip never blocks the accept loop.  The
        in-flight re-check is unnecessary for correctness (the inflight
        map is only touched from the loop thread) but keeps the warm
        path strictly read-only.
        """
        wire = self._memo.get(key)
        if wire is not None:
            return wire
        if self.cache is None:
            return None
        loop = asyncio.get_running_loop()
        hit = await loop.run_in_executor(None, self.cache.load, key)
        if hit is None:
            return None
        wire = hit.to_dict()
        wire.pop("telemetry", None)
        self._remember(key, wire)
        return wire

    def _remember(self, key: str, wire: dict) -> None:
        if len(self._memo) >= MEMO_ENTRIES:
            # FIFO bound: drop the oldest insertion (dicts preserve
            # insertion order); the persistent cache still has it.
            self._memo.pop(next(iter(self._memo)))
        self._memo[key] = wire

    async def _simulate(self, key: str, request: RunRequest) -> dict:
        """Run one cold request on the pool, cache it, return the wire.

        Exactly one of these exists per key at a time (the single-flight
        map); every error path removes the key so a failed run can be
        retried cold instead of poisoning the key forever.
        """
        loop = asyncio.get_running_loop()
        try:
            encoded = self.scheduler.encoded_for(request)
            try:
                wire = await loop.run_in_executor(
                    self._executor(), self._worker, request, encoded)
            except BrokenProcessPool:
                self._reset_pool()
                raise
            self.stats.executed += 1
            _telemetry.get().count("serve.executed")
            wire.pop("telemetry", None)
            if self.cache is not None:
                result = RunResult.from_dict(wire)
                await loop.run_in_executor(None, self.cache.store,
                                           key, result)
            self._remember(key, wire)
            return wire
        finally:
            self._inflight.pop(key, None)


_REASONS = {200: "OK", 400: "Bad Request", 404: "Not Found",
            500: "Internal Server Error"}
