"""Shared run-cache service: HTTP daemon + client backend.

``repro cache serve`` exposes one run-cache directory over HTTP so N
sweep workers — CI matrix jobs, separate hosts, parallel ``evaluate``
invocations — share a single result store instead of each warming its
own.  The daemon is a stdlib :class:`http.server.ThreadingHTTPServer`
in front of the same :class:`~repro.evaluation.runcache
.LocalDirectoryBackend` layout the in-process cache uses, so the two
backends answer each other's entries byte-identically: pointing
``--cache-dir`` at a served directory and ``--cache-url`` at its
daemon read and write the very same files.

Protocol (keys are 64-hex-digit SHA-256 content addresses):

==========================  ============================================
``GET /runs/<key>``         entry bytes, or 404
``HEAD /runs/<key>``        presence probe for one key
``PUT /runs/<key>``         store (201), or 409 when an entry already
                            exists — **first writer wins**; results are
                            deterministic, so the loser's bytes were
                            identical and losing is not an error
``DELETE /runs/<key>``      best-effort removal (corrupt-entry path)
``POST /contains``          ``{"keys": [...]}`` -> ``{"present": [...]}``
                            — the whole sweep probed in one round-trip
``GET /stats``              ``{service, format_version, entries,
                            size_bytes}`` — also the reachability probe
                            ``repro cache info`` uses
``POST /clear``             delete every entry -> ``{"removed": n}``
==========================  ============================================

:class:`HTTPCacheBackend` is the thin client side of the
:class:`~repro.evaluation.runcache.CacheBackend` protocol.  It **fails
open**: any network error degrades to a miss (load), a skipped write
(store), or an all-absent probe (contains_many) — the sweep then
re-simulates locally rather than crashing, and every failure is counted
under ``runcache.http.errors`` (docs/observability.md).
"""

from __future__ import annotations

import json
import logging
import re
import threading
import urllib.error
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Iterable, Iterator, Optional, Set, Union

from repro.evaluation.runcache import (
    CACHE_FORMAT_VERSION,
    LocalDirectoryBackend,
)
from repro.observability import telemetry as _telemetry

#: Entry keys are SHA-256 hex digests; anything else is rejected with
#: 400 before touching the filesystem (no path traversal).
KEY_RE = re.compile(r"^[0-9a-f]{64}$")

#: Value of the ``service`` field in ``GET /stats`` responses; the
#: client checks it so ``--cache-url`` pointed at some unrelated HTTP
#: server reads as unreachable instead of corrupting probes.
SERVICE_NAME = "repro-run-cache"

DEFAULT_TIMEOUT = 10.0

#: Consecutive transport failures after which :class:`HTTPCacheBackend`
#: logs one warning and counts ``runcache.http.failopen`` — the "your
#: cache daemon is dead and every run is silently re-simulating" alarm.
#: A successful reply re-arms the detector.
FAILOPEN_THRESHOLD = 3

_log = logging.getLogger(__name__)


class _CacheRequestHandler(BaseHTTPRequestHandler):
    """One request against the served directory; quiet by default."""

    server_version = "repro-cache/1"
    protocol_version = "HTTP/1.1"

    # -- plumbing ----------------------------------------------------------

    def log_message(self, fmt, *args):  # noqa: ARG002 - stdlib signature
        if self.server.verbose:
            super().log_message(fmt, *args)

    def _backend(self) -> LocalDirectoryBackend:
        return self.server.backend

    def _count(self, method: str) -> None:
        self.server.request_counts[method] = \
            self.server.request_counts.get(method, 0) + 1

    def _reply(self, status: int, body: bytes = b"",
               content_type: str = "application/json") -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        if self.command != "HEAD":
            self.wfile.write(body)

    def _reply_json(self, status: int, payload: dict) -> None:
        self._reply(status, json.dumps(payload).encode("utf-8"))

    def _entry_key(self) -> Optional[str]:
        """The validated key of a ``/runs/<key>`` path, else None."""
        prefix, _, key = self.path.partition("/runs/")
        if prefix == "" and KEY_RE.fullmatch(key):
            return key
        return None

    def _read_body(self) -> bytes:
        length = int(self.headers.get("Content-Length") or 0)
        return self.rfile.read(length) if length > 0 else b""

    # -- verbs -------------------------------------------------------------

    def do_GET(self) -> None:
        self._count("GET")
        if self.path == "/stats":
            backend = self._backend()
            paths = list(backend.entry_paths())
            self._reply_json(200, {
                "service": SERVICE_NAME,
                "format_version": CACHE_FORMAT_VERSION,
                "root": str(backend.root),
                "entries": len(paths),
                "size_bytes": sum(p.stat().st_size for p in paths),
            })
            return
        key = self._entry_key()
        if key is None:
            self._reply_json(400, {"error": "bad key"})
            return
        payload = self._backend().load(key)
        if payload is None:
            self._reply_json(404, {"error": "not found"})
            return
        self._reply(200, payload)

    def do_HEAD(self) -> None:
        self._count("HEAD")
        key = self._entry_key()
        if key is None:
            self._reply(400)
        elif self._backend().path_for(key).exists():
            self._reply(200)
        else:
            self._reply(404)

    def do_PUT(self) -> None:
        self._count("PUT")
        key = self._entry_key()
        if key is None:
            self._reply_json(400, {"error": "bad key"})
            return
        payload = self._read_body()
        if self._backend().store(key, payload):
            self._reply_json(201, {"stored": True})
        else:
            # First writer won; deterministic results make this benign.
            self._reply_json(409, {"stored": False})

    def do_DELETE(self) -> None:
        self._count("DELETE")
        key = self._entry_key()
        if key is None:
            self._reply_json(400, {"error": "bad key"})
            return
        self._backend().delete(key)
        self._reply(204)

    def do_POST(self) -> None:
        self._count("POST")
        if self.path == "/contains":
            try:
                keys = json.loads(self._read_body().decode("utf-8"))["keys"]
                if not isinstance(keys, list):
                    raise TypeError("keys must be a list")
            except (UnicodeDecodeError, ValueError, KeyError, TypeError):
                self._reply_json(400, {"error": "bad probe body"})
                return
            valid = [k for k in keys if isinstance(k, str)
                     and KEY_RE.fullmatch(k)]
            present = self._backend().contains_many(valid)
            self._reply_json(200, {"present": sorted(present)})
            return
        if self.path == "/clear":
            self._reply_json(200, {"removed": self._backend().clear()})
            return
        self._reply_json(404, {"error": "unknown endpoint"})


class CacheServer:
    """A ``repro cache serve`` daemon over one cache directory.

    Threaded (each request gets a handler thread over the shared
    directory backend; first-writer-wins stores keep concurrent PUTs of
    one key safe).  ``port=0`` binds an ephemeral port — read the real
    one back from :attr:`url`.
    """

    def __init__(self, root: Union[str, Path], host: str = "127.0.0.1",
                 port: int = 0, verbose: bool = False) -> None:
        self.backend = LocalDirectoryBackend(root)
        self.httpd = ThreadingHTTPServer((host, port), _CacheRequestHandler)
        self.httpd.backend = self.backend
        self.httpd.verbose = verbose
        self.httpd.request_counts = {}
        self._thread: Optional[threading.Thread] = None

    @property
    def url(self) -> str:
        host, port = self.httpd.server_address[:2]
        return f"http://{host}:{port}"

    @property
    def request_counts(self) -> dict:
        """Requests handled so far, by HTTP method (test observability)."""
        return self.httpd.request_counts

    def serve_forever(self) -> None:
        self.httpd.serve_forever()

    def start(self) -> "CacheServer":
        """Serve on a daemon thread (the in-process/test harness path)."""
        self._thread = threading.Thread(target=self.serve_forever,
                                        daemon=True)
        self._thread.start()
        return self

    def shutdown(self) -> None:
        self.httpd.shutdown()
        self.httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None


class HTTPCacheBackend:
    """Client half of the protocol: a :class:`CacheBackend` over HTTP.

    Every operation fails open on network trouble — the caller sees a
    miss / skipped store / empty probe and falls back to simulating
    locally, so a dead or flaky cache daemon can never fail a sweep,
    only slow it down.  ``runcache.http.*`` telemetry counts traffic
    and failures, and :data:`FAILOPEN_THRESHOLD` consecutive transport
    failures log one warning (plus one ``runcache.http.failopen``
    count) per outage so a dead daemon is loud instead of silently
    turning every warm sweep cold.
    """

    kind = "http"

    def __init__(self, url: str, timeout: float = DEFAULT_TIMEOUT) -> None:
        self.url = url.rstrip("/")
        self.timeout = timeout
        #: Transport failures since the last successful reply; at
        #: :data:`FAILOPEN_THRESHOLD` the backend warns once (and counts
        #: ``runcache.http.failopen``) that it is failing open — a dead
        #: daemon should be loud in logs/CI, not just slow.
        self.consecutive_failures = 0
        self._failopen_reported = False

    # -- request plumbing --------------------------------------------------

    def _request(self, method: str, path: str,
                 body: Optional[bytes] = None,
                 ok_statuses: Iterable[int] = (200,)
                 ) -> Optional[tuple]:
        """(status, body) for one request, or None on network failure."""
        req = urllib.request.Request(
            f"{self.url}{path}", data=body, method=method,
            headers={"Content-Type": "application/json"} if body else {})
        tel = _telemetry.get()
        tel.count("runcache.http.requests")
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                status, reply = resp.status, resp.read()
        except urllib.error.HTTPError as exc:
            # An HTTP-level status is a *reply*, not a transport failure
            # (404 miss, 409 lost race); drain it and let callers map it.
            body = exc.read()
            if exc.code not in ok_statuses:
                tel.count("runcache.http.errors")
            self._note_reply()
            return exc.code, body
        except (urllib.error.URLError, OSError, TimeoutError):
            tel.count("runcache.http.errors")
            self._note_failure()
            return None
        self._note_reply()
        return status, reply

    def _note_reply(self) -> None:
        """Any reply from the daemon re-arms the fail-open detector."""
        self.consecutive_failures = 0
        self._failopen_reported = False

    def _note_failure(self) -> None:
        """Track a transport failure; warn once at the threshold.

        Individual failures are already counted per request under
        ``runcache.http.errors``; this detects the *dead daemon* case —
        every request failing open and re-simulating locally — and
        raises exactly one warning (plus one ``runcache.http.failopen``
        count) per outage so CI logs show it without being flooded.
        """
        self.consecutive_failures += 1
        if self.consecutive_failures >= FAILOPEN_THRESHOLD \
                and not self._failopen_reported:
            self._failopen_reported = True
            _telemetry.get().count("runcache.http.failopen")
            _log.warning(
                "run-cache daemon at %s failed %d consecutive requests; "
                "failing open (every miss re-simulates locally until it "
                "answers again)",
                self.url, self.consecutive_failures)

    # -- CacheBackend protocol --------------------------------------------

    def load(self, key: str) -> Optional[bytes]:
        reply = self._request("GET", f"/runs/{key}",
                              ok_statuses=(200, 404))
        if reply is None or reply[0] != 200:
            return None
        return reply[1]

    def store(self, key: str, payload: bytes) -> bool:
        reply = self._request("PUT", f"/runs/{key}", body=payload,
                              ok_statuses=(201, 409))
        return reply is not None and reply[0] == 201

    def contains_many(self, keys: Iterable[str]) -> Set[str]:
        keys = list(keys)
        if not keys:
            return set()
        body = json.dumps({"keys": keys}).encode("utf-8")
        reply = self._request("POST", "/contains", body=body)
        if reply is None or reply[0] != 200:
            return set()
        try:
            return set(json.loads(reply[1].decode("utf-8"))["present"])
        except (UnicodeDecodeError, ValueError, KeyError, TypeError):
            _telemetry.get().count("runcache.http.errors")
            return set()

    def delete(self, key: str) -> None:
        self._request("DELETE", f"/runs/{key}", ok_statuses=(200, 204))

    def entry_paths(self) -> Iterator[Path]:
        return iter(())

    def describe(self) -> dict:
        info = {"backend": self.kind, "location": self.url,
                "reachable": False}
        reply = self._request("GET", "/stats")
        if reply is None or reply[0] != 200:
            return info
        try:
            stats = json.loads(reply[1].decode("utf-8"))
            if stats.get("service") != SERVICE_NAME:
                return info
        except (UnicodeDecodeError, ValueError, TypeError):
            return info
        info["reachable"] = True
        info["entries"] = stats.get("entries", 0)
        info["size_bytes"] = stats.get("size_bytes", 0)
        info["format_version"] = stats.get("format_version")
        return info

    def clear(self) -> int:
        reply = self._request("POST", "/clear")
        if reply is None or reply[0] != 200:
            return 0
        try:
            return int(json.loads(reply[1].decode("utf-8"))["removed"])
        except (UnicodeDecodeError, ValueError, KeyError, TypeError):
            return 0
