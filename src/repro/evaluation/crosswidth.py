"""Cross-width retranslation orchestration and differential verdicts.

This module ties the tentpole pieces together for the CLI
(``repro retranslate``) and the conformance suite
(``tests/test_crosswidth_differential.py``):

1. translate a benchmark's Liquid binary at a **source** width ``W``
   (or pull the translations from the persistent fragment store),
2. re-lower every successful entry to a **target** width ``T`` with
   :func:`~repro.core.translate.retranslate.retranslate_entry`
   (store-backed as well, keyed by the source fragment's bytes),
3. run the benchmark at ``T`` twice per engine — once translating
   fresh at runtime, once with the retranslated fragments *preloaded*
   into the microcode cache — and compare against each other and
   against the reference engine.

The verdict is **array-based**, not fragment-byte-based, on purpose: a
fresh translation at ``2W`` may legitimately differ in form from a
retranslation (it can materialize a lane constant the retranslation
keeps in register form, or cap at a smaller effective width), but both
must compute exactly the same memory image.  Functions whose
retranslation is rejected simply translate at runtime in the preloaded
run — the same fallback the translator's own abort path guarantees.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.core.scalarize import build_liquid_program
from repro.core.translate.fragstore import FragmentStore, fragment_key
from repro.core.translate.retranslate import (
    RetranslationResult,
    retranslate_entry,
)
from repro.core.translate.translator import TranslationResult
from repro.core.translate.ucode_cache import MicrocodeEntry
from repro.isa.encoding import encode_program
from repro.isa.program import Program
from repro.kernels.suite import build_kernel
from repro.simd.accelerator import config_for_width
from repro.system.machine import Machine, MachineConfig
from repro.system.metrics import arrays_equal

#: Engine sweep order for differential verdicts (reference first: it is
#: the oracle the other engines are compared against).
ENGINE_ORDER = ("reference", "fast", "turbo", "macro")


def translate_at_width(program: Program, config: MachineConfig,
                       store: Optional[FragmentStore] = None,
                       ) -> Dict[str, TranslationResult]:
    """Translation results for every outlined function of *program*.

    With a *store*, results are content-addressed by the encoded scalar
    program + function + ``(W, W)`` + translator fingerprint; when every
    outlined function hits, **no machine run happens at all** — the
    warm-fleet path the fragment store exists for.  Misses fall back to
    one scout run whose results are then persisted (aborts too: a loop
    the translator rejects once is rejected forever under that config).
    """
    tcfg = config.translator_config()
    width = config.accelerator.width
    keys: Dict[str, str] = {}
    if store is not None:
        source = encode_program(program)
        results: Dict[str, TranslationResult] = {}
        for function in program.outlined_functions:
            keys[function] = fragment_key(source, width, width, tcfg,
                                          function=function)
            payload = store.load(keys[function])
            if payload is not None:
                results[function] = TranslationResult.from_dict(payload)
        if len(results) == len(program.outlined_functions):
            return results
    run = Machine(config).run(program)
    results = {t.function: t for t in run.translations}
    if store is not None:
        for function, result in results.items():
            if function in keys:
                store.store(keys[function], result.to_dict())
    return results


def retranslate_at_width(entries: Iterable[MicrocodeEntry],
                         target_width: int, target_config,
                         store: Optional[FragmentStore] = None,
                         ) -> Dict[str, RetranslationResult]:
    """Re-lower *entries* to *target_width*, store-backed when possible.

    Retranslations are keyed by the **source fragment's** canonical
    bytes (plus source/target widths and the target translator
    fingerprint), so the same entry retranslated by any process in a
    fleet hits the same slot.
    """
    results: Dict[str, RetranslationResult] = {}
    for entry in entries:
        key = None
        if store is not None:
            key = fragment_key(entry.encoded_bytes(), entry.width,
                               target_width, target_config,
                               function=entry.function)
            payload = store.load(key)
            if payload is not None:
                results[entry.function] = \
                    RetranslationResult.from_dict(payload)
                continue
        result = retranslate_entry(entry, target_width, target_config)
        if key is not None:
            store.store(key, result.to_dict())
        results[entry.function] = result
    return results


def crosswidth_differential(benchmark: str, from_width: int, to_width: int,
                            engines: Sequence[str] = ENGINE_ORDER,
                            store: Optional[FragmentStore] = None,
                            source_engine: str = "fast") -> dict:
    """The cross-width differential verdict for one benchmark.

    Returns a JSON-safe report; ``report["ok"]`` holds exactly when, on
    every requested engine, the preloaded-retranslation run is
    element-for-element identical to the fresh-translation run *and* to
    the reference engine, and every preloaded function actually executed
    its microcode (``simd_runs > 0`` with no scalar fallback runs beyond
    the injected first call — preloads are ready at cycle 0, so there
    are none).
    """
    program = build_liquid_program(build_kernel(benchmark))
    source_config = MachineConfig(
        accelerator=config_for_width(from_width), engine=source_engine)
    translations = translate_at_width(program, source_config, store)
    target_machine_config = MachineConfig(
        accelerator=config_for_width(to_width))
    target_tcfg = target_machine_config.translator_config()
    retranslations = retranslate_at_width(
        [t.entry for t in translations.values()
         if t.ok and t.entry is not None],
        to_width, target_tcfg, store)
    preload: List[MicrocodeEntry] = [
        r.entry for r in retranslations.values()
        if r.ok and r.entry is not None]

    functions = {}
    for function in program.outlined_functions:
        translation = translations.get(function)
        retrans = retranslations.get(function)
        functions[function] = {
            "source_ok": bool(translation is not None and translation.ok),
            "source_reason": (
                translation.reason.value
                if translation is not None and translation.reason is not None
                else None),
            "retranslate_ok": bool(retrans is not None and retrans.ok),
            "retranslate_reason": (
                retrans.reason.value
                if retrans is not None and retrans.reason is not None
                else None),
        }
    preloaded_functions = sorted(entry.function for entry in preload)

    def run(engine: str, preloaded):
        config = MachineConfig(accelerator=config_for_width(to_width),
                               engine=engine)
        return Machine(config, preloaded_microcode=preloaded).run(program)

    reference_fresh = None
    per_engine = {}
    ok = True
    for engine in engines:
        fresh = run(engine, None)
        if engine == "reference":
            reference_fresh = fresh
        retr = run(engine, preload)
        if reference_fresh is None:
            # "reference" not in the sweep: oracle it explicitly.
            reference_fresh = run("reference", None)
        microcode_ran = all(
            retr.functions[fn].simd_runs > 0
            and retr.functions[fn].scalar_runs == 0
            for fn in preloaded_functions)
        report = {
            "arrays_match_fresh": arrays_equal(retr, fresh),
            "arrays_match_reference": arrays_equal(retr, reference_fresh),
            "microcode_ran": microcode_ran,
            "cycles_fresh": fresh.cycles,
            "cycles_retranslated": retr.cycles,
        }
        ok = ok and report["arrays_match_fresh"] \
            and report["arrays_match_reference"] and microcode_ran
        per_engine[engine] = report

    return {
        "benchmark": benchmark,
        "from_width": from_width,
        "to_width": to_width,
        "functions": functions,
        "preloaded": preloaded_functions,
        "engines": per_engine,
        "ok": ok,
    }
