"""Load-test harness for the ``repro serve`` simulation farm.

``repro loadtest`` hammers a sim server with a realistic mixed
workload — warm repeats, distinct cold runs, and an identical-request
*storm* that every request-dedup claim lives or dies on — at a
configurable connection count, and reduces the observations to one
BENCH-schema payload (``benchmarks/conftest.py``'s
``{machine, records, speedups}`` shape) so `repro bench compare` can
gate it exactly like every other ``BENCH_*.json``.

Three phases, each measured against the server's own ``/stats``
counters (deltas bracket each phase, so the numbers are the *server's*
account of what simulated, not the client's guess):

1. **warmup** — every key in the warm set is requested once, so the
   following phases have a genuinely warm cache to hit.
2. **storm** — N identical requests for one deliberately un-warmed key,
   all in flight together.  Single-flight dedup means the whole storm
   must cost **one** machine-run: the first request goes cold, the rest
   coalesce onto it (or hit the cache if they arrive after it lands).
   ``dedup_ratio = 1 - machine_runs/requests``.
3. **mixed** — the main volume: every request drawn from the warm set,
   answered entirely without simulation.  Per-request latencies from
   this phase produce the p50/p99/throughput records and a log2-bucket
   latency histogram (the artifact CI nightly uploads).

The gated records are deterministic *machine-run* ratios (requests
answered per simulation paid), immune to shared-runner timing noise;
wall-clock latency and throughput ride along ungated, exactly the
BENCH_shard precedent.

The harness drives any server URL (``repro loadtest --url``); without
one it boots a private :class:`~repro.evaluation.simserver.SimServer`
over a temporary cache and tears it down afterwards.
"""

from __future__ import annotations

import asyncio
import json
import math
import random
import time
import urllib.request
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple
from urllib.parse import urlsplit

from repro.evaluation.simserver import SERVICE_NAME

DEFAULT_BENCHMARKS = ("FIR", "LU")
DEFAULT_WIDTHS = (4, 8)

#: The storm targets this request — present in no warm set, so the
#: burst is genuinely cold when it starts.
STORM_REQUEST = {"benchmark": "FFT", "width": 8, "repeat_factor": 2}


class LoadtestError(RuntimeError):
    """The target server is unreachable or not a sim server."""


def _machine_info() -> dict:
    """The same hardware/software context ``benchmarks/conftest.py``
    stamps on every BENCH payload (duplicated here so the CLI path has
    no dependency on the pytest harness)."""
    import os
    import platform
    import sys
    return {
        "platform": platform.platform(),
        "python": sys.version.split()[0],
        "cpu_count": os.cpu_count(),
        "processor": platform.processor() or platform.machine(),
    }


@dataclass
class _Observation:
    """One request as the client saw it."""

    seconds: float
    source: str   # hit | coalesced | cold
    status: int


@dataclass
class _PhaseResult:
    """Client observations plus the server-side stats delta."""

    observations: List[_Observation]
    stats_delta: Dict[str, int]
    wall_seconds: float

    @property
    def latencies(self) -> List[float]:
        return [o.seconds for o in self.observations]

    def source_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for o in self.observations:
            counts[o.source] = counts.get(o.source, 0) + 1
        return counts


def percentile(latencies: Sequence[float], q: float) -> float:
    """The *q*-quantile (0..1) by the nearest-rank method."""
    if not latencies:
        return 0.0
    ranked = sorted(latencies)
    rank = max(1, math.ceil(q * len(ranked)))
    return ranked[rank - 1]


def latency_histogram(latencies: Sequence[float]) -> Dict[str, int]:
    """Log2 milliseconds buckets: ``<1ms``, ``<2ms``, ``<4ms``, ...

    Coarse on purpose — the buckets survive runner-to-runner noise and
    diff cleanly across CI artifact uploads.
    """
    buckets: Dict[str, int] = {}
    for seconds in latencies:
        ms = seconds * 1000.0
        bound = 1
        while ms >= bound:
            bound *= 2
        label = f"<{bound}ms"
        buckets[label] = buckets.get(label, 0) + 1
    return dict(sorted(buckets.items(),
                       key=lambda kv: int(kv[0][1:-2])))


# -- the async client ------------------------------------------------------

async def _fire(host: str, port: int, payloads: Sequence[dict],
                concurrency: int) -> List[_Observation]:
    """POST every payload over *concurrency* keep-alive connections.

    Workers share one index counter, so the load is work-stealing: a
    connection stuck behind a cold run does not idle the others.
    """
    observations: List[Optional[_Observation]] = [None] * len(payloads)
    next_index = 0

    async def worker() -> None:
        nonlocal next_index
        reader, writer = await asyncio.open_connection(host, port)
        try:
            while True:
                index = next_index
                if index >= len(payloads):
                    return
                next_index = index + 1
                body = json.dumps(payloads[index]).encode("utf-8")
                head = (f"POST /v1/runs HTTP/1.1\r\nHost: {host}\r\n"
                        "Content-Type: application/json\r\n"
                        f"Content-Length: {len(body)}\r\n\r\n")
                start = time.perf_counter()
                writer.write(head.encode("latin-1") + body)
                await writer.drain()
                status, reply = await _read_response(reader)
                elapsed = time.perf_counter() - start
                source = reply.get("source", "error") \
                    if status == 200 else "error"
                observations[index] = _Observation(elapsed, source, status)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except OSError:
                pass

    workers = [asyncio.create_task(worker())
               for _ in range(min(concurrency, max(1, len(payloads))))]
    await asyncio.gather(*workers)
    return [o for o in observations if o is not None]


async def _read_response(reader: asyncio.StreamReader) -> Tuple[int, dict]:
    status_line = await reader.readline()
    status = int(status_line.split()[1])
    length = 0
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        if name.strip().lower() == "content-length":
            length = int(value.strip())
    body = await reader.readexactly(length) if length else b""
    try:
        return status, json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, ValueError):
        return status, {}


# -- server bookkeeping ----------------------------------------------------

def fetch_stats(url: str, timeout: float = 10.0) -> dict:
    """The server's ``/stats`` payload; raises LoadtestError otherwise."""
    try:
        with urllib.request.urlopen(f"{url.rstrip('/')}/stats",
                                    timeout=timeout) as resp:
            payload = json.loads(resp.read().decode("utf-8"))
    except (OSError, ValueError) as exc:
        raise LoadtestError(f"no sim server at {url}: {exc}") from None
    if payload.get("service") != SERVICE_NAME:
        raise LoadtestError(
            f"{url} is not a {SERVICE_NAME} (service="
            f"{payload.get('service')!r})")
    return payload


def _stats_delta(before: dict, after: dict) -> Dict[str, int]:
    b, a = before["stats"], after["stats"]
    return {name: a[name] - b.get(name, 0) for name in a}


def _run_phase(url: str, payloads: Sequence[dict],
               concurrency: int) -> _PhaseResult:
    host, port = urlsplit(url).hostname, urlsplit(url).port
    before = fetch_stats(url)
    start = time.perf_counter()
    observations = asyncio.run(_fire(host, port, payloads, concurrency))
    wall = time.perf_counter() - start
    after = fetch_stats(url)
    return _PhaseResult(observations, _stats_delta(before, after), wall)


# -- the harness -----------------------------------------------------------

@dataclass
class LoadtestPlan:
    """Knobs for one loadtest session (CLI flags map 1:1)."""

    requests: int = 400
    concurrency: int = 32
    storm: int = 48
    benchmarks: Sequence[str] = DEFAULT_BENCHMARKS
    widths: Sequence[int] = DEFAULT_WIDTHS
    seed: int = 20070212  # the paper's conference date; any constant works
    warm_set: List[dict] = field(init=False)

    def __post_init__(self) -> None:
        if self.requests < 1 or self.storm < 2 or self.concurrency < 1:
            raise ValueError("requests >= 1, storm >= 2, concurrency >= 1")
        self.warm_set = [
            {"benchmark": benchmark, "width": width}
            for benchmark in self.benchmarks for width in self.widths
        ] + [{"benchmark": self.benchmarks[0], "program_kind": "baseline"}]

    def mixed_payloads(self) -> List[dict]:
        rng = random.Random(self.seed)
        return [rng.choice(self.warm_set) for _ in range(self.requests)]


def run_loadtest(url: str, plan: LoadtestPlan,
                 machine_info: Optional[dict] = None) -> dict:
    """Drive the three phases against *url*; return the BENCH payload."""
    fetch_stats(url)  # fail fast on a wrong or dead target

    warmup = _run_phase(url, plan.warm_set, plan.concurrency)
    bad = [o for o in warmup.observations if o.status != 200]
    if bad:
        raise LoadtestError(
            f"{len(bad)} warmup request(s) failed with "
            f"{sorted({o.status for o in bad})}")

    storm_payloads = [dict(STORM_REQUEST)] * plan.storm
    storm = _run_phase(url, storm_payloads,
                       min(plan.concurrency, plan.storm))
    storm_runs = storm.stats_delta["executed"]
    dedup_ratio = 1.0 - storm_runs / plan.storm

    mixed = _run_phase(url, plan.mixed_payloads(), plan.concurrency)
    mixed_runs = mixed.stats_delta["executed"]

    latencies = mixed.latencies
    throughput = (len(latencies) / mixed.wall_seconds
                  if mixed.wall_seconds else 0.0)
    errors = sum(1 for phase in (warmup, storm, mixed)
                 for o in phase.observations if o.status != 200)

    records = {
        "serve_dedup": {
            "storm_requests": plan.storm,
            "machine_runs": storm_runs,
            "duplicate_machine_runs": max(0, storm_runs - 1),
            "dedup_ratio": round(dedup_ratio, 4),
            "sources": storm.source_counts(),
            # Deterministic gate: requests answered per simulation paid
            # for the identical-request storm ((N+1)/2 when exactly one
            # runs) — not a wall-clock.
            "speedup": round((plan.storm + 1) / (storm_runs + 1), 2),
        },
        "serve_warm": {
            "requests": len(mixed.observations),
            "machine_runs": mixed_runs,
            "sources": mixed.source_counts(),
            # Warm requests answered per simulation paid; (N+1) when the
            # warm phase simulates nothing.
            "speedup": round(
                (len(mixed.observations) + 1) / (mixed_runs + 1), 2),
        },
        "serve_latency": {
            "concurrency": plan.concurrency,
            "requests": len(latencies),
            "p50_ms": round(percentile(latencies, 0.50) * 1000, 3),
            "p99_ms": round(percentile(latencies, 0.99) * 1000, 3),
            "max_ms": round(max(latencies) * 1000, 3) if latencies else 0,
            "throughput_rps": round(throughput, 1),
            "wall_seconds": round(mixed.wall_seconds, 3),
            "histogram": latency_histogram(latencies),
        },
        "serve_errors": {"errors": errors},
    }
    payload = {
        "machine": (machine_info if machine_info is not None
                    else _machine_info()),
        "records": records,
        "speedups": {name: record["speedup"]
                     for name, record in records.items()
                     if "speedup" in record},
        "plan": {
            "url": url,
            "requests": plan.requests,
            "concurrency": plan.concurrency,
            "storm": plan.storm,
            "benchmarks": list(plan.benchmarks),
            "widths": list(plan.widths),
            "warm_set": len(plan.warm_set),
        },
    }
    return payload


def render_summary(payload: dict) -> str:
    """Human-readable verdict for the CLI."""
    dedup = payload["records"]["serve_dedup"]
    warm = payload["records"]["serve_warm"]
    latency = payload["records"]["serve_latency"]
    errors = payload["records"]["serve_errors"]["errors"]
    lines = [
        f"storm: {dedup['storm_requests']} identical requests -> "
        f"{dedup['machine_runs']} machine-run(s), "
        f"dedup ratio {dedup['dedup_ratio']:.3f}",
        f"mixed: {warm['requests']} warm requests -> "
        f"{warm['machine_runs']} machine-run(s) "
        f"({latency['throughput_rps']:,.0f} req/s "
        f"over {latency['concurrency']} connections)",
        f"latency: p50 {latency['p50_ms']:.2f}ms  "
        f"p99 {latency['p99_ms']:.2f}ms  max {latency['max_ms']:.2f}ms",
        f"errors: {errors}",
    ]
    ok = (errors == 0 and dedup["duplicate_machine_runs"] == 0
          and warm["machine_runs"] == 0)
    lines.append("verdict: " + ("OK" if ok else "FAILED "
                 "(duplicate machine-runs, warm simulations, or errors)"))
    return "\n".join(lines)


def loadtest_ok(payload: dict) -> bool:
    """The pass/fail bar the CLI exits on: zero duplicate machine-runs
    in the storm, zero simulations in the warm phase, zero errors."""
    records = payload["records"]
    return (records["serve_errors"]["errors"] == 0
            and records["serve_dedup"]["duplicate_machine_runs"] == 0
            and records["serve_warm"]["machine_runs"] == 0)
