"""Text rendering of experiment results in the paper's table formats."""

from __future__ import annotations

from typing import Dict, List, Sequence


def _rule(widths: Sequence[int]) -> str:
    return "-" * (14 + 9 * len(widths))


def render_table2(rows: List[dict]) -> str:
    """Table 2: synthesis results for the dynamic translator."""
    lines = ["Table 2: dynamic translator hardware cost (calibrated model)",
             f"{'Description':<22}{'Crit. Path':>12}{'Delay':>10}"
             f"{'Area':>12}{'mm^2':>8}"]
    for row in rows:
        lines.append(
            f"{row['description']:<22}{row['crit_path_gates']:>9} gates"
            f"{row['delay_ns']:>7.2f} ns{row['area_cells']:>12,}"
            f"{row['area_mm2']:>8.3f}"
        )
    return "\n".join(lines)


def render_table5(rows: List[dict]) -> str:
    """Table 5: scalar instructions in outlined functions."""
    lines = ["Table 5: scalar instructions per outlined function",
             f"{'Benchmark':<14}{'Mean':>8}{'Max':>6}"]
    for row in rows:
        lines.append(f"{row['benchmark']:<14}{row['mean']:>8}{row['max']:>6}")
    return "\n".join(lines)


def render_table6(rows: List[dict]) -> str:
    """Table 6: cycles between the first two calls of outlined hot loops."""
    lines = ["Table 6: distance between first two calls of hot loops",
             f"{'Benchmark':<14}{'<150':>6}{'<300':>6}{'>300':>6}{'Mean':>10}"]
    for row in rows:
        lines.append(
            f"{row['benchmark']:<14}{row['lt150']:>6}{row['lt300']:>6}"
            f"{row['gt300']:>6}{row['mean']:>10,}"
        )
    return "\n".join(lines)


def render_figure6(rows: List[dict], widths: Sequence[int]) -> str:
    """Figure 6 as a table: speedup per vector width."""
    header = f"{'Benchmark':<14}" + "".join(f"w={w:<7}" for w in widths)
    lines = ["Figure 6: speedup over scalar baseline per vector width",
             header, _rule(widths)]
    for row in rows:
        cells = "".join(f"{row['speedups'][w]:<9.2f}" for w in widths)
        lines.append(f"{row['benchmark']:<14}{cells}")
    return "\n".join(lines)


def render_native_overhead(rows: List[dict]) -> str:
    """Figure 6 callout: dynamic translation overhead vs. built-in ISA."""
    lines = ["Figure 6 callout: Liquid SIMD vs. built-in ISA support",
             f"{'Benchmark':<14}{'Liquid':>9}{'Native':>9}{'Delta':>9}"
             f"{'OneTimeCyc':>12}{'Steady%':>9}"]
    for row in rows:
        lines.append(
            f"{row['benchmark']:<14}{row['liquid_speedup']:>9.3f}"
            f"{row['native_speedup']:>9.3f}{row['overhead']:>9.3f}"
            f"{row['one_time_cycles']:>12,}{row['steady_slowdown_pct']:>9.3f}"
        )
    return "\n".join(lines)


def render_code_size(rows: List[dict]) -> str:
    """Section 5 text: code size overhead of the Liquid binaries."""
    lines = ["Code size overhead (baseline vs Liquid binary)",
             f"{'Benchmark':<14}{'Base B':>10}{'Liquid B':>10}{'Overhead':>10}"]
    for row in rows:
        lines.append(
            f"{row['benchmark']:<14}{row['baseline_bytes']:>10,}"
            f"{row['liquid_bytes']:>10,}{row['overhead_pct']:>9.2f}%"
        )
    return "\n".join(lines)


def render_ablation(rows: List[dict], key: str, title: str) -> str:
    """Generic two-column ablation rendering."""
    lines = [title, f"{key:<24}{'Cycles':>12}{'Detail':>22}"]
    for row in rows:
        detail = ""
        if "simd_run_fraction" in row:
            detail = f"simd_frac={row['simd_run_fraction']:.2f}"
        elif "slowdown_pct" in row:
            detail = f"slowdown={row['slowdown_pct']:.2f}%"
        lines.append(f"{str(row[key]):<24}{row['cycles']:>12,}{detail:>22}")
    return "\n".join(lines)


def render_breakdown(breakdown: Dict[str, int]) -> str:
    """Translator area breakdown (section 4.1 percentages)."""
    total = sum(breakdown.values())
    lines = ["Translator area breakdown:"]
    for block, cells in breakdown.items():
        lines.append(f"  {block:<20}{cells:>10,} cells"
                     f"  ({100.0 * cells / total:5.1f}%)")
    return "\n".join(lines)
