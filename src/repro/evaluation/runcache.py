"""Persistent content-addressed cache of machine runs.

Simulations are pure functions of (program, machine configuration), so
their results can be cached across processes: a second ``evaluate``
invocation — or the benchmarks/ suite after an ``evaluate --all`` —
skips simulation entirely on hits.  Entries are addressed by the
SHA-256 of

* the canonical program bytes (:func:`repro.isa.encoding.encode_program`,
  a fully reversible serialization, so two structurally identical
  programs share a key no matter how they were built),
* a canonical JSON rendering of every result-relevant
  :class:`~repro.system.machine.MachineConfig` field
  (:func:`config_fingerprint`),
* :data:`CACHE_FORMAT_VERSION`.

The execution engine is deliberately **not** part of the key: the
engines are bit-identical by contract (the differential conformance
suite enforces it), so a result simulated under any engine is valid for
all of them and cache entries are shared across engines.

Invalidation therefore never needs timestamps: change the program or
any config knob and the key changes; change what a simulation *means*
(timing model, translator semantics, serialization layout) and
``CACHE_FORMAT_VERSION`` must be bumped, which orphans every old entry.
Orphaned and corrupted entries are simply misses — the scheduler falls
back to re-simulation and overwrites them.

Storage is pluggable: :class:`RunCache` handles keys, (de)serialization
and corruption fall-back, and delegates raw byte storage to a
:class:`CacheBackend` —

* :class:`LocalDirectoryBackend` (the default) keeps two-level sharded
  JSON files under ``~/.cache/repro-liquid-simd/`` (overridable with
  ``--cache-dir`` or ``REPRO_CACHE_DIR``);
* :class:`~repro.evaluation.cacheserver.HTTPCacheBackend` talks to a
  ``repro cache serve`` daemon (``--cache-url`` / ``REPRO_CACHE_URL``)
  so many worker processes or hosts share one result store.

Both backends answer each other's entries byte-identically: the server
stores the exact payload bytes the local backend writes, under the same
key.  See ``docs/evaluation-runner.md``.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Iterator, Optional, Protocol, Set, Union

from repro.isa.encoding import encode_program
from repro.isa.program import Program
from repro.observability import telemetry as _telemetry
from repro.system.machine import MachineConfig
from repro.system.metrics import RunResult

#: Bump whenever simulation semantics or the RunResult wire format
#: change in a way that makes old cached results wrong or unreadable.
#: 2: keys became engine-invariant (entries shared across engines).
CACHE_FORMAT_VERSION = 2

#: Environment variable overriding the default cache location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Environment variable selecting a shared ``repro cache serve`` daemon
#: (e.g. ``http://127.0.0.1:8023``); takes precedence over the local
#: directory when set.
CACHE_URL_ENV = "REPRO_CACHE_URL"

_DEFAULT_SUBDIR = Path(".cache") / "repro-liquid-simd"


def default_cache_dir() -> Path:
    """Resolution order: ``REPRO_CACHE_DIR`` env var, then ``~/.cache``."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env)
    return Path.home() / _DEFAULT_SUBDIR


def config_fingerprint(config: MachineConfig) -> dict:
    """Canonical JSON-safe dict of every result-relevant config field.

    Display-only fields (``AcceleratorConfig.name``) are excluded so a
    renamed generation still hits; everything that can change a
    simulation outcome — widths, repertoires, latencies, cache
    geometries, translator knobs — is included.
    """
    accel = None
    if config.accelerator is not None:
        a = config.accelerator
        accel = {
            "width": a.width,
            "permutations": [p.name for p in a.permutations],
            "vector_ops": sorted(a.vector_ops),
            "supports_saturation": a.supports_saturation,
        }

    def cache_cfg(c) -> dict:
        return {
            "size_bytes": c.size_bytes,
            "assoc": c.assoc,
            "line_bytes": c.line_bytes,
            "hit_latency": c.hit_latency,
            "miss_penalty": c.miss_penalty,
        }

    pipe = config.pipeline
    return {
        "accelerator": accel,
        "pipeline": {
            "icache": cache_cfg(pipe.icache),
            "dcache": cache_cfg(pipe.dcache),
            "mispredict_penalty": pipe.mispredict_penalty,
            "call_redirect_penalty": pipe.call_redirect_penalty,
            "pipeline_depth": pipe.pipeline_depth,
            "code_base": pipe.code_base,
        },
        "translation_enabled": config.translation_enabled,
        "ucode_cache_entries": config.ucode_cache_entries,
        "max_ucode_instructions": config.max_ucode_instructions,
        "translation_cycles_per_instruction":
            config.translation_cycles_per_instruction,
        "collapse_offset_loads": config.collapse_offset_loads,
        "const_immediates": config.const_immediates,
        "attempt_plain_bl": config.attempt_plain_bl,
        "pretranslate": config.pretranslate,
        "interrupt_interval": config.interrupt_interval,
        "translation_mode": config.translation_mode,
        "software_cycles_per_instruction":
            config.software_cycles_per_instruction,
        "observation_point": config.observation_point,
        "verify_translations": config.verify_translations,
        # config.engine is intentionally omitted: engines are
        # bit-identical, so results are engine-invariant.
        "mvl": config.mvl,
        "max_steps": config.max_steps,
    }


def run_key_for_bytes(encoded: bytes, config: MachineConfig,
                      format_version: int = CACHE_FORMAT_VERSION) -> str:
    """Content address of one simulation given pre-encoded program bytes.

    Splitting this out of :func:`run_key` lets the scheduler encode a
    program once per ``program_id`` and key many configs against the
    same bytes (a width sweep shares one program across every width).
    """
    header = json.dumps(
        {
            "format_version": format_version,
            "config": config_fingerprint(config),
        },
        sort_keys=True, separators=(",", ":"),
    ).encode("utf-8")
    h = hashlib.sha256()
    h.update(header)
    h.update(b"\x00")
    h.update(encoded)
    return h.hexdigest()


def run_key(program: Program, config: MachineConfig,
            format_version: int = CACHE_FORMAT_VERSION) -> str:
    """Content address of one simulation: SHA-256 hex digest."""
    return run_key_for_bytes(encode_program(program), config, format_version)


def entry_payload(key: str, result: RunResult) -> bytes:
    """The canonical serialized cache entry for (*key*, *result*).

    This is exactly what every backend persists, so digesting these
    bytes (the sweep manifests in :mod:`repro.evaluation.shard` do)
    compares stored entries without re-reading them.  Telemetry is
    observational metadata about *how* a run was simulated, not part of
    the (engine-invariant, deterministic) result — it is stripped so
    telemetry-on and telemetry-off runs persist byte-identical entries
    under the same key.
    """
    wire = result.to_dict()
    wire.pop("telemetry", None)
    return json.dumps(
        {"format_version": CACHE_FORMAT_VERSION, "key": key, "result": wire},
        separators=(",", ":"),
    ).encode("utf-8")


class CacheBackend(Protocol):
    """Raw byte storage under content keys; shared by N processes/hosts.

    Implementations must be safe for concurrent writers of the *same*
    key: entries are outputs of deterministic simulations, so racing
    writers hold identical bytes and first-writer-wins (``store``
    returning False for the loser) is always correct.  Backends deal in
    opaque payload bytes — validation, corruption fall-back, and
    telemetry accounting live in :class:`RunCache`.
    """

    def load(self, key: str) -> Optional[bytes]:
        """Stored bytes for *key*, or None (absent or unreachable)."""
        ...

    def store(self, key: str, payload: bytes) -> bool:
        """Persist atomically; False when an entry already won the race
        (or, for remote backends, the store failed open)."""
        ...

    def contains_many(self, keys: Iterable[str]) -> Set[str]:
        """The subset of *keys* with stored entries, in one round-trip
        (one directory scan locally, one HTTP request remotely)."""
        ...

    def delete(self, key: str) -> None:
        """Best-effort removal (corrupt-entry fall-back); never raises."""
        ...

    def entry_paths(self) -> Iterator[Path]:
        """Paths of every entry, for maintenance; empty for remote
        backends, which report only counts via :meth:`describe`."""
        ...

    def describe(self) -> dict:
        """Backend type/location/health for ``repro cache info``."""
        ...

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        ...


class LocalDirectoryBackend:
    """Two-level sharded JSON files: ``<root>/<key[:2]>/<key>.json``.

    Writes are atomic (temp file + rename) and first-writer-wins, so
    concurrent writers — several ``evaluate`` processes or sweep shards
    sharing one directory — never expose partial entries, and a losing
    writer simply skips its (byte-identical) store.
    """

    kind = "local"

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def load(self, key: str) -> Optional[bytes]:
        try:
            return self.path_for(key).read_bytes()
        except OSError:
            return None

    def store(self, key: str, payload: bytes) -> bool:
        path = self.path_for(key)
        if path.exists():
            # First writer wins: the result is deterministic, so the
            # existing entry already holds these bytes.
            return False
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(payload)
            # link() is the atomic arbiter: unlike replace(), it fails
            # when the destination exists, so exactly one of N racing
            # writers (processes or server threads) observes a win.
            os.link(tmp, path)
        except FileExistsError:
            return False
        finally:
            try:
                os.unlink(tmp)
            except OSError:
                pass
        return True

    def contains_many(self, keys: Iterable[str]) -> Set[str]:
        # One listdir per touched two-hex-digit shard instead of a
        # stat() per key: a 15-benchmark width sweep touches at most
        # 256 shards however many keys it probes.
        by_shard: Dict[str, list] = {}
        for key in keys:
            by_shard.setdefault(key[:2], []).append(key)
        present: Set[str] = set()
        for shard, shard_keys in by_shard.items():
            try:
                names = set(os.listdir(self.root / shard))
            except OSError:
                continue
            present.update(k for k in shard_keys if f"{k}.json" in names)
        return present

    def delete(self, key: str) -> None:
        try:
            self.path_for(key).unlink()
        except OSError:
            pass

    def entry_paths(self) -> Iterator[Path]:
        if not self.root.is_dir():
            return
        for shard in sorted(self.root.iterdir()):
            if shard.is_dir():
                yield from sorted(shard.glob("*.json"))

    def describe(self) -> dict:
        return {"backend": self.kind, "location": str(self.root),
                "reachable": True}

    def clear(self) -> int:
        removed = 0
        for path in list(self.entry_paths()):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed


@dataclass
class RunCacheStats:
    """Hit/miss accounting for one :class:`RunCache` instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    races: int = 0   # store skipped because an entry already existed
    errors: int = 0  # corrupted or unreadable entries encountered
    probe_calls: int = 0  # contains_many round-trips
    probed: int = 0       # keys covered by those round-trips


class RunCache:
    """Store of serialized :class:`RunResult`\\ s, keyed by content.

    Owns key semantics, (de)serialization, corruption fall-back, and
    telemetry; raw byte storage is delegated to a :class:`CacheBackend`
    (a local sharded directory by default, or an HTTP client against a
    ``repro cache serve`` daemon).
    """

    def __init__(self, root: Union[str, Path, None] = None,
                 backend: Optional[CacheBackend] = None) -> None:
        if backend is None:
            if root is None:
                raise ValueError("RunCache needs a root directory "
                                 "or an explicit backend")
            backend = LocalDirectoryBackend(root)
        self.backend = backend
        self.stats = RunCacheStats()

    @classmethod
    def default(cls, cache_dir: Optional[Union[str, Path]] = None,
                cache_url: Optional[str] = None) -> "RunCache":
        """Cache for the standard knobs, in precedence order:
        *cache_url*, ``$REPRO_CACHE_URL``, *cache_dir*,
        ``$REPRO_CACHE_DIR``, ``~/.cache``.
        """
        url = cache_url or os.environ.get(CACHE_URL_ENV)
        if url:
            from repro.evaluation.cacheserver import HTTPCacheBackend
            return cls(backend=HTTPCacheBackend(url))
        return cls(Path(cache_dir) if cache_dir else default_cache_dir())

    @property
    def root(self) -> Optional[Path]:
        """The local directory root, or None for remote backends."""
        return getattr(self.backend, "root", None)

    def path_for(self, key: str) -> Path:
        return self.backend.path_for(key)

    def load(self, key: str) -> Optional[RunResult]:
        """The cached result for *key*, or None (miss / corrupt entry).

        A corrupted entry — truncated write from a killed process,
        hand-edited JSON, wrong format version — is deleted best-effort
        and reported as a miss so the scheduler re-simulates.
        """
        raw = self.backend.load(key)
        if raw is None:
            self.stats.misses += 1
            _telemetry.get().count("runcache.misses")
            return None
        try:
            payload = json.loads(raw.decode("utf-8"))
            if payload.get("format_version") != CACHE_FORMAT_VERSION:
                raise ValueError("format version mismatch")
            result = RunResult.from_dict(payload["result"])
        except (UnicodeDecodeError, ValueError, KeyError, TypeError):
            self.stats.errors += 1
            self.stats.misses += 1
            tel = _telemetry.get()
            tel.count("runcache.errors")
            tel.count("runcache.misses")
            self.backend.delete(key)
            return None
        self.stats.hits += 1
        _telemetry.get().count("runcache.hits")
        return result

    def store(self, key: str, result: RunResult) -> None:
        """Atomically persist *result* under *key* (first writer wins)."""
        if self.backend.store(key, entry_payload(key, result)):
            self.stats.stores += 1
            _telemetry.get().count("runcache.stores")
        else:
            self.stats.races += 1
            _telemetry.get().count("runcache.races")

    def contains_many(self, keys: Iterable[str]) -> Set[str]:
        """The subset of *keys* with entries, probed in one round-trip.

        The scheduler batch-probes a whole sweep through this before
        fanning out, instead of paying a per-key ``load`` probe;
        ``runcache.probe.batched`` counts the per-key round-trips that
        batching saved.
        """
        keys = list(keys)
        present = self.backend.contains_many(keys)
        self.stats.probe_calls += 1
        self.stats.probed += len(keys)
        if keys:
            tel = _telemetry.get()
            tel.count("runcache.probe.calls")
            tel.count("runcache.probe.batched", len(keys))
        return present

    def describe(self) -> dict:
        """Backend type, location, and health (``repro cache info``)."""
        return self.backend.describe()

    # -- maintenance (the ``repro cache`` subcommand) -------------------------

    def entry_paths(self):
        yield from self.backend.entry_paths()

    def entry_count(self) -> int:
        described = self.backend.describe()
        if "entries" in described:
            return described["entries"]
        return sum(1 for _ in self.entry_paths())

    def size_bytes(self) -> int:
        described = self.backend.describe()
        if "size_bytes" in described:
            return described["size_bytes"]
        return sum(p.stat().st_size for p in self.entry_paths())

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        return self.backend.clear()
