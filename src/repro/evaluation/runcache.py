"""Persistent content-addressed cache of machine runs.

Simulations are pure functions of (program, machine configuration), so
their results can be cached across processes: a second ``evaluate``
invocation — or the benchmarks/ suite after an ``evaluate --all`` —
skips simulation entirely on hits.  Entries are addressed by the
SHA-256 of

* the canonical program bytes (:func:`repro.isa.encoding.encode_program`,
  a fully reversible serialization, so two structurally identical
  programs share a key no matter how they were built),
* a canonical JSON rendering of every result-relevant
  :class:`~repro.system.machine.MachineConfig` field
  (:func:`config_fingerprint`),
* :data:`CACHE_FORMAT_VERSION`.

The execution engine is deliberately **not** part of the key: the
engines are bit-identical by contract (the differential conformance
suite enforces it), so a result simulated under any engine is valid for
all of them and cache entries are shared across engines.

Invalidation therefore never needs timestamps: change the program or
any config knob and the key changes; change what a simulation *means*
(timing model, translator semantics, serialization layout) and
``CACHE_FORMAT_VERSION`` must be bumped, which orphans every old entry.
Orphaned and corrupted entries are simply misses — the scheduler falls
back to re-simulation and overwrites them.

The cache lives under ``~/.cache/repro-liquid-simd/`` by default,
overridable with ``--cache-dir`` or the ``REPRO_CACHE_DIR`` environment
variable, and ``python -m repro cache clear`` empties it.  See
``docs/evaluation-runner.md``.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

from repro.isa.encoding import encode_program
from repro.isa.program import Program
from repro.observability import telemetry as _telemetry
from repro.system.machine import MachineConfig
from repro.system.metrics import RunResult

#: Bump whenever simulation semantics or the RunResult wire format
#: change in a way that makes old cached results wrong or unreadable.
#: 2: keys became engine-invariant (entries shared across engines).
CACHE_FORMAT_VERSION = 2

#: Environment variable overriding the default cache location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

_DEFAULT_SUBDIR = Path(".cache") / "repro-liquid-simd"


def default_cache_dir() -> Path:
    """Resolution order: ``REPRO_CACHE_DIR`` env var, then ``~/.cache``."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env)
    return Path.home() / _DEFAULT_SUBDIR


def config_fingerprint(config: MachineConfig) -> dict:
    """Canonical JSON-safe dict of every result-relevant config field.

    Display-only fields (``AcceleratorConfig.name``) are excluded so a
    renamed generation still hits; everything that can change a
    simulation outcome — widths, repertoires, latencies, cache
    geometries, translator knobs — is included.
    """
    accel = None
    if config.accelerator is not None:
        a = config.accelerator
        accel = {
            "width": a.width,
            "permutations": [p.name for p in a.permutations],
            "vector_ops": sorted(a.vector_ops),
            "supports_saturation": a.supports_saturation,
        }

    def cache_cfg(c) -> dict:
        return {
            "size_bytes": c.size_bytes,
            "assoc": c.assoc,
            "line_bytes": c.line_bytes,
            "hit_latency": c.hit_latency,
            "miss_penalty": c.miss_penalty,
        }

    pipe = config.pipeline
    return {
        "accelerator": accel,
        "pipeline": {
            "icache": cache_cfg(pipe.icache),
            "dcache": cache_cfg(pipe.dcache),
            "mispredict_penalty": pipe.mispredict_penalty,
            "call_redirect_penalty": pipe.call_redirect_penalty,
            "pipeline_depth": pipe.pipeline_depth,
            "code_base": pipe.code_base,
        },
        "translation_enabled": config.translation_enabled,
        "ucode_cache_entries": config.ucode_cache_entries,
        "max_ucode_instructions": config.max_ucode_instructions,
        "translation_cycles_per_instruction":
            config.translation_cycles_per_instruction,
        "collapse_offset_loads": config.collapse_offset_loads,
        "const_immediates": config.const_immediates,
        "attempt_plain_bl": config.attempt_plain_bl,
        "pretranslate": config.pretranslate,
        "interrupt_interval": config.interrupt_interval,
        "translation_mode": config.translation_mode,
        "software_cycles_per_instruction":
            config.software_cycles_per_instruction,
        "observation_point": config.observation_point,
        "verify_translations": config.verify_translations,
        # config.engine is intentionally omitted: engines are
        # bit-identical, so results are engine-invariant.
        "mvl": config.mvl,
        "max_steps": config.max_steps,
    }


def run_key(program: Program, config: MachineConfig,
            format_version: int = CACHE_FORMAT_VERSION) -> str:
    """Content address of one simulation: SHA-256 hex digest."""
    header = json.dumps(
        {
            "format_version": format_version,
            "config": config_fingerprint(config),
        },
        sort_keys=True, separators=(",", ":"),
    ).encode("utf-8")
    h = hashlib.sha256()
    h.update(header)
    h.update(b"\x00")
    h.update(encode_program(program))
    return h.hexdigest()


@dataclass
class RunCacheStats:
    """Hit/miss accounting for one :class:`RunCache` instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    errors: int = 0  # corrupted or unreadable entries encountered


class RunCache:
    """On-disk store of serialized :class:`RunResult`\\ s, keyed by content.

    Entries are two-level sharded JSON files
    (``<root>/<key[:2]>/<key>.json``) written atomically (temp file +
    rename), so concurrent writers — the parallel scheduler's workers
    all report through one parent, but several ``evaluate`` processes
    may share a cache dir — never expose partial entries.
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.stats = RunCacheStats()

    @classmethod
    def default(cls, cache_dir: Optional[Union[str, Path]] = None
                ) -> "RunCache":
        """Cache at *cache_dir*, ``$REPRO_CACHE_DIR``, or ``~/.cache``."""
        return cls(Path(cache_dir) if cache_dir else default_cache_dir())

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def load(self, key: str) -> Optional[RunResult]:
        """The cached result for *key*, or None (miss / corrupt entry).

        A corrupted entry — truncated write from a killed process,
        hand-edited JSON, wrong format version — is deleted best-effort
        and reported as a miss so the scheduler re-simulates.
        """
        path = self.path_for(key)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
            if payload.get("format_version") != CACHE_FORMAT_VERSION:
                raise ValueError("format version mismatch")
            result = RunResult.from_dict(payload["result"])
        except FileNotFoundError:
            self.stats.misses += 1
            _telemetry.get().count("runcache.misses")
            return None
        except (OSError, ValueError, KeyError, TypeError):
            self.stats.errors += 1
            self.stats.misses += 1
            tel = _telemetry.get()
            tel.count("runcache.errors")
            tel.count("runcache.misses")
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self.stats.hits += 1
        _telemetry.get().count("runcache.hits")
        return result

    def store(self, key: str, result: RunResult) -> None:
        """Atomically persist *result* under *key*."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        # Telemetry is observational metadata about *how* a run was
        # simulated, not part of the (engine-invariant, deterministic)
        # result — strip it so telemetry-on and telemetry-off runs
        # persist byte-identical entries under the same key.
        wire = result.to_dict()
        wire.pop("telemetry", None)
        payload = json.dumps(
            {"format_version": CACHE_FORMAT_VERSION, "key": key,
             "result": wire},
            separators=(",", ":"),
        )
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(payload, encoding="utf-8")
        os.replace(tmp, path)
        self.stats.stores += 1
        _telemetry.get().count("runcache.stores")

    # -- maintenance (the ``repro cache`` subcommand) -------------------------

    def entry_paths(self):
        if not self.root.is_dir():
            return
        for shard in sorted(self.root.iterdir()):
            if shard.is_dir():
                yield from sorted(shard.glob("*.json"))

    def entry_count(self) -> int:
        return sum(1 for _ in self.entry_paths())

    def size_bytes(self) -> int:
        return sum(p.stat().st_size for p in self.entry_paths())

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for path in list(self.entry_paths()):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed
