"""Evaluation harness: experiment drivers and report rendering."""

from repro.evaluation.experiments import (
    DEFAULT_WIDTHS,
    EvalContext,
    code_size_overhead,
    figure6_speedups,
    memory_sensitivity,
    native_overhead,
    observation_point_comparison,
    software_translation_comparison,
    table2_hw_cost,
    table5_outlined_sizes,
    table6_call_distances,
    translation_latency_ablation,
    ucode_cache_ablation,
)
from repro.evaluation import report

__all__ = [
    "DEFAULT_WIDTHS",
    "EvalContext",
    "code_size_overhead",
    "figure6_speedups",
    "memory_sensitivity",
    "native_overhead",
    "observation_point_comparison",
    "software_translation_comparison",
    "table2_hw_cost",
    "table5_outlined_sizes",
    "table6_call_distances",
    "translation_latency_ablation",
    "ucode_cache_ablation",
    "report",
]
