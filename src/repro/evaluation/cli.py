"""Command-line driver for the evaluation harness.

Used by ``python -m repro evaluate`` and ``examples/run_evaluation.py``.

Execution goes through the parallel run scheduler and the persistent
run cache (docs/evaluation-runner.md): before any experiment runs, the
CLI collects every experiment's declared :class:`RunRequest`\\ s and
prefetches their deduplicated union — fanned out over ``--jobs`` worker
processes on cold cache, answered from ``~/.cache/repro-liquid-simd``
(or ``$REPRO_CACHE_DIR`` / ``--cache-dir``) on warm.  Rendered tables
are byte-identical whatever the job count or cache state.
"""

from __future__ import annotations

import argparse
import cProfile
import os
import pstats
import sys
import time
from typing import List, Optional

from repro.evaluation import experiments, report
from repro.evaluation.runcache import RunCache
from repro.evaluation.runner import RunScheduler
from repro.interp.executor import ENGINES
from repro.kernels.suite import BENCHMARK_ORDER

FAST_SUBSET = ["MPEG2 Dec.", "GSM Enc.", "LU", "FFT", "FIR"]

EXPERIMENTS = ("table2", "table5", "table6", "figure6", "overhead",
               "codesize", "ucache", "latency", "jit")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        description="Regenerate the paper's evaluation tables and figures.",
    )
    parser.add_argument("--benchmarks", nargs="*", default=None,
                        metavar="NAME",
                        help="benchmark subset (default: a fast subset; "
                             f"choices: {', '.join(BENCHMARK_ORDER)})")
    parser.add_argument("--experiments", nargs="*",
                        default=["table2", "table5"],
                        choices=EXPERIMENTS, metavar="EXP",
                        help=f"which experiments to run {EXPERIMENTS}")
    parser.add_argument("--all", action="store_true",
                        help="all experiments over all fifteen benchmarks")
    parser.add_argument("--engine", choices=ENGINES,
                        default="fast",
                        help="execution engine (results are bit-identical; "
                             "'turbo' fuses superblocks, 'reference' is the "
                             "slow canonical interpreter)")
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="worker processes for simulations (default: "
                             "os.cpu_count(); 1 = in-process/sequential)")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="persistent run-cache directory (default: "
                             "$REPRO_CACHE_DIR or ~/.cache/repro-liquid-simd)")
    parser.add_argument("--cache-url", default=None, metavar="URL",
                        help="shared run-cache daemon (`repro cache "
                             "serve`) to use instead of a local directory "
                             "(default: $REPRO_CACHE_URL)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the persistent run cache "
                             "(always re-simulate)")
    parser.add_argument("--ucache-benchmark", default="LU", metavar="NAME",
                        help="benchmark for the microcode-cache sweep "
                             "(default: LU, the suite's largest hot-loop "
                             "working set)")
    parser.add_argument("--profile", action="store_true",
                        default=bool(os.environ.get("REPRO_PROFILE")),
                        help="profile the evaluation with cProfile and dump "
                             "the top cumulative-time functions (also "
                             "enabled by REPRO_PROFILE=1); forces --jobs 1 "
                             "so simulations stay in-process and visible "
                             "to the profiler")
    parser.add_argument("--profile-limit", type=int, default=25, metavar="N",
                        help="rows of cProfile output with --profile "
                             "(default: 25)")
    return parser


def _validate_benchmarks(parser: argparse.ArgumentParser,
                         names: Optional[List[str]], flag: str) -> None:
    """Reject unknown benchmark names up front with the valid choices."""
    unknown = [n for n in names or [] if n not in BENCHMARK_ORDER]
    if unknown:
        parser.error(
            f"unknown benchmark{'s' if len(unknown) > 1 else ''} for {flag}: "
            f"{', '.join(repr(n) for n in unknown)}.\n"
            f"Valid choices: {', '.join(BENCHMARK_ORDER)}"
        )


def _prefetch_requests(ctx: experiments.EvalContext, selected,
                       ucache_benchmark: str) -> list:
    """The deduplicated union of every selected experiment's runs."""
    requests = []
    if "table6" in selected:
        requests += experiments.table6_requests(ctx)
    if "figure6" in selected:
        requests += experiments.figure6_requests(ctx)
    if "overhead" in selected:
        requests += experiments.native_overhead_requests(ctx)
    if "ucache" in selected:
        requests += experiments.ucode_cache_ablation_requests(
            ctx, ucache_benchmark)
    if "jit" in selected:
        requests += experiments.software_translation_requests(ctx)
    if "latency" in selected:
        requests += experiments.translation_latency_requests(ctx)
    return requests


def run(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    _validate_benchmarks(parser, args.benchmarks, "--benchmarks")
    _validate_benchmarks(parser, [args.ucache_benchmark], "--ucache-benchmark")
    if args.jobs is not None and args.jobs < 1:
        parser.error(f"--jobs must be >= 1, got {args.jobs}")
    if args.profile:
        # Worker processes would hide the simulation frames; profile the
        # whole evaluation in-process and report where the time goes
        # (so perf PRs can cite cumulative hotspots per run).
        args.jobs = 1
        profiler = cProfile.Profile()
        profiler.enable()
        try:
            return _run_evaluation(args)
        finally:
            profiler.disable()
            stats = pstats.Stats(profiler, stream=sys.stdout)
            stats.strip_dirs().sort_stats("cumulative")
            print(f"\n[cProfile: top {args.profile_limit} by cumulative time]")
            stats.print_stats(args.profile_limit)
    return _run_evaluation(args)


def _run_evaluation(args) -> int:
    if args.all:
        benchmarks = BENCHMARK_ORDER
        selected = list(EXPERIMENTS)
    else:
        benchmarks = args.benchmarks or FAST_SUBSET
        selected = args.experiments

    cache = (None if args.no_cache
             else RunCache.default(args.cache_dir,
                                   cache_url=args.cache_url))
    scheduler = RunScheduler(jobs=args.jobs, cache=cache)
    ctx = experiments.EvalContext(benchmarks, engine=args.engine,
                                  scheduler=scheduler)
    start = time.time()
    ctx.prefetch(_prefetch_requests(ctx, selected, args.ucache_benchmark))

    if "table2" in selected:
        rows = experiments.table2_hw_cost((2, 4, 8, 16))
        print(report.render_table2(rows))
        print(report.render_breakdown(rows[2]["breakdown"]))
        print()
    if "table5" in selected:
        print(report.render_table5(experiments.table5_outlined_sizes(ctx)))
        print()
    if "table6" in selected:
        print(report.render_table6(experiments.table6_call_distances(ctx)))
        print()
    if "figure6" in selected:
        from repro.evaluation.figures import render_figure6_chart
        rows = experiments.figure6_speedups(ctx)
        print(report.render_figure6(rows, experiments.DEFAULT_WIDTHS))
        print()
        print(render_figure6_chart(rows, experiments.DEFAULT_WIDTHS))
        print()
    if "overhead" in selected:
        print(report.render_native_overhead(experiments.native_overhead(ctx)))
        print()
    if "codesize" in selected:
        print(report.render_code_size(experiments.code_size_overhead(ctx)))
        print()
    if "ucache" in selected:
        rows = experiments.ucode_cache_ablation(args.ucache_benchmark,
                                                ctx=ctx)
        print(report.render_ablation(
            rows, "entries",
            f"Microcode cache entries sweep ({args.ucache_benchmark})"))
        print()
    if "jit" in selected:
        rows = experiments.software_translation_comparison(ctx=ctx)
        print(f"{'Benchmark':<14}{'HW cycles':>12}{'JIT cycles':>12}"
              f"{'JIT cost':>10}")
        for row in rows:
            print(f"{row['benchmark']:<14}{row['hardware_cycles']:>12,}"
                  f"{row['software_cycles']:>12,}"
                  f"{row['jit_cost_pct']:>9.2f}%")
        print()
    if "latency" in selected:
        rows = experiments.translation_latency_ablation("171.swim", ctx=ctx)
        print(report.render_ablation(
            rows, "cycles_per_instruction",
            "Translation latency sweep (171.swim)"))
        print()

    stats = scheduler.stats
    cache_note = ""
    if cache is not None:
        cache_note = (f", cache: {stats.cache_hits} hits / "
                      f"{stats.executed} simulated")
    print(f"[{time.time() - start:.1f}s, jobs: {scheduler.jobs}"
          f"{cache_note}, benchmarks: {', '.join(benchmarks)}]")
    return 0
