"""Command-line driver for the evaluation harness.

Used by ``python -m repro evaluate`` and ``examples/run_evaluation.py``.
"""

from __future__ import annotations

import argparse
import time
from typing import List, Optional

from repro.evaluation import experiments, report
from repro.kernels.suite import BENCHMARK_ORDER

FAST_SUBSET = ["MPEG2 Dec.", "GSM Enc.", "LU", "FFT", "FIR"]

EXPERIMENTS = ("table2", "table5", "table6", "figure6", "overhead",
               "codesize", "ucache", "latency", "jit")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        description="Regenerate the paper's evaluation tables and figures.",
    )
    parser.add_argument("--benchmarks", nargs="*", default=None,
                        metavar="NAME",
                        help="benchmark subset (default: a fast subset; "
                             f"choices: {', '.join(BENCHMARK_ORDER)})")
    parser.add_argument("--experiments", nargs="*",
                        default=["table2", "table5"],
                        choices=EXPERIMENTS, metavar="EXP",
                        help=f"which experiments to run {EXPERIMENTS}")
    parser.add_argument("--all", action="store_true",
                        help="all experiments over all fifteen benchmarks")
    parser.add_argument("--engine", choices=("fast", "reference"),
                        default="fast",
                        help="execution engine (results are bit-identical; "
                             "'reference' is the slow canonical interpreter)")
    return parser


def run(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.all:
        benchmarks = BENCHMARK_ORDER
        selected = list(EXPERIMENTS)
    else:
        benchmarks = args.benchmarks or FAST_SUBSET
        selected = args.experiments

    ctx = experiments.EvalContext(benchmarks, engine=args.engine)
    start = time.time()

    if "table2" in selected:
        rows = experiments.table2_hw_cost((2, 4, 8, 16))
        print(report.render_table2(rows))
        print(report.render_breakdown(rows[2]["breakdown"]))
        print()
    if "table5" in selected:
        print(report.render_table5(experiments.table5_outlined_sizes(ctx)))
        print()
    if "table6" in selected:
        print(report.render_table6(experiments.table6_call_distances(ctx)))
        print()
    if "figure6" in selected:
        from repro.evaluation.figures import render_figure6_chart
        rows = experiments.figure6_speedups(ctx)
        print(report.render_figure6(rows, experiments.DEFAULT_WIDTHS))
        print()
        print(render_figure6_chart(rows, experiments.DEFAULT_WIDTHS))
        print()
    if "overhead" in selected:
        print(report.render_native_overhead(experiments.native_overhead(ctx)))
        print()
    if "codesize" in selected:
        print(report.render_code_size(experiments.code_size_overhead(ctx)))
        print()
    if "ucache" in selected:
        rows = experiments.ucode_cache_ablation("LU", engine=args.engine)
        print(report.render_ablation(rows, "entries",
                                     "Microcode cache entries sweep (LU)"))
        print()
    if "jit" in selected:
        rows = experiments.software_translation_comparison(engine=args.engine)
        print(f"{'Benchmark':<14}{'HW cycles':>12}{'JIT cycles':>12}"
              f"{'JIT cost':>10}")
        for row in rows:
            print(f"{row['benchmark']:<14}{row['hardware_cycles']:>12,}"
                  f"{row['software_cycles']:>12,}"
                  f"{row['jit_cost_pct']:>9.2f}%")
        print()
    if "latency" in selected:
        rows = experiments.translation_latency_ablation(
            "171.swim", engine=args.engine)
        print(report.render_ablation(
            rows, "cycles_per_instruction",
            "Translation latency sweep (171.swim)"))
        print()

    print(f"[{time.time() - start:.1f}s, benchmarks: {', '.join(benchmarks)}]")
    return 0
