"""The parallel run scheduler: deduplicated, cached machine runs.

Every experiment reduces to a set of independent, deterministic
simulations — ``Machine(config).run(program)`` with no shared state —
so the evaluation layer funnels them all through one
:class:`RunScheduler`:

1. Experiments declare :class:`RunRequest`\\ s (benchmark, program kind,
   machine config) up front; the scheduler deduplicates the union, so a
   run shared by several experiments (Figure 6 and Table 6 both need
   the width-8 Liquid runs) is simulated once.
2. Requests already answered this process (memo) or by a previous
   process (the persistent :class:`~repro.evaluation.runcache.RunCache`)
   are skipped.  Cache presence is probed for the whole batch in **one**
   ``contains_many`` round-trip — one directory scan locally, one HTTP
   request against a shared ``repro cache serve`` daemon — instead of a
   per-key probe loop.
3. The remainder fans out across a ``ProcessPoolExecutor``
   (``--jobs N``, default ``os.cpu_count()``).  ``--jobs 1`` keeps
   everything in-process — today's sequential behavior, the right mode
   for pdb and profiling.  Programs are built and encoded once per
   ``program_id`` in the parent (a width sweep shares one program
   across every width) and shipped to workers as their canonical
   encoded bytes; workers ship the result back as its ``to_dict``
   form, the same wire format the cache persists.

Results are bit-identical whichever path produced them, so rendered
tables never depend on ``--jobs`` or cache state; a determinism test
(``tests/test_runner.py``) and the acceptance benchmark
(``benchmarks/test_parallel_speedup.py``) both enforce this.
"""

from __future__ import annotations

import os
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.scalarize import (
    DEFAULT_MVL,
    build_baseline_program,
    build_liquid_program,
)
from repro.evaluation.runcache import RunCache, run_key_for_bytes
from repro.isa.encoding import decode_program, encode_program
from repro.isa.program import Program
from repro.observability import telemetry as _telemetry
from repro.kernels.suite import build_kernel
from repro.system.machine import Machine, MachineConfig
from repro.system.metrics import RunResult

PROGRAM_KINDS = ("baseline", "liquid")


@dataclass(frozen=True)
class RunRequest:
    """One simulation to perform: what to build and how to run it.

    ``program_kind`` selects the scalar baseline binary or the Liquid
    (outlined, translatable) binary; ``repeat_factor`` scales the
    kernel's schedule length (the overhead experiment's 2x runs).
    Requests are frozen and hashable — they are dict keys in the
    scheduler's memo and dedup set.
    """

    benchmark: str
    program_kind: str
    config: MachineConfig
    repeat_factor: int = 1

    def __post_init__(self) -> None:
        if self.program_kind not in PROGRAM_KINDS:
            raise ValueError(
                f"program_kind must be one of {PROGRAM_KINDS}, "
                f"got {self.program_kind!r}"
            )
        if self.repeat_factor < 1:
            raise ValueError(
                f"repeat_factor must be >= 1, got {self.repeat_factor}"
            )

    @property
    def program_id(self) -> Tuple[str, str, int]:
        """Key identifying the program this request needs."""
        return (self.benchmark, self.program_kind, self.repeat_factor)


def build_request_program(request: RunRequest) -> Program:
    """Construct the program a request runs (deterministic per request)."""
    kernel = build_kernel(request.benchmark)
    if request.repeat_factor != 1:
        kernel.repeats *= request.repeat_factor
    if request.program_kind == "baseline":
        return build_baseline_program(kernel, DEFAULT_MVL)
    return build_liquid_program(kernel, DEFAULT_MVL)


def execute_request(request: RunRequest,
                    program: Optional[Program] = None) -> RunResult:
    """Simulate one request (building its program unless provided)."""
    if program is None:
        program = build_request_program(request)
    return Machine(request.config).run(program)


def _pool_worker(request: RunRequest,
                 encoded_program: Optional[bytes] = None) -> dict:
    """Process-pool entry point: simulate and return the wire form.

    The parent ships the program as its canonical encoded bytes —
    built and encoded once per ``program_id`` — so workers decode
    instead of rebuilding the kernel (falling back to a rebuild when no
    bytes were shipped).  Returning ``to_dict()`` rather than the live
    object keeps transport on the same serialization path the cache
    uses (and exercises it on every parallel run).
    """
    program = (decode_program(encoded_program)
               if encoded_program is not None else None)
    return execute_request(request, program).to_dict()


@dataclass
class SchedulerStats:
    """Where each scheduled request was answered from."""

    requested: int = 0
    deduplicated: int = 0
    memo_hits: int = 0
    cache_hits: int = 0
    executed: int = 0
    parallel_executed: int = 0


@dataclass
class RunScheduler:
    """Deduplicates, caches, and fans out machine runs.

    Attributes:
        jobs: worker-process budget; ``1`` means strictly in-process.
        cache: persistent run cache, or None to always simulate.
    """

    jobs: Optional[int] = None
    cache: Optional[RunCache] = None
    stats: SchedulerStats = field(default_factory=SchedulerStats)

    def __post_init__(self) -> None:
        if self.jobs is None:
            self.jobs = os.cpu_count() or 1
        if self.jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {self.jobs}")
        #: Where each request of the most recent ``run_many`` batch was
        #: answered from: ``"memo"`` | ``"cache"`` | ``"simulated"``.
        #: Sweep manifests (:mod:`repro.evaluation.shard`) read this to
        #: attribute per-key provenance without a second cache probe.
        self.last_batch: Dict[RunRequest, str] = {}
        self._memo: Dict[RunRequest, RunResult] = {}
        self._programs: Dict[Tuple[str, str, int], Program] = {}
        self._encoded: Dict[Tuple[str, str, int], bytes] = {}

    # -- public API -----------------------------------------------------------

    def run(self, request: RunRequest) -> RunResult:
        """Answer one request (memo -> cache -> simulate in-process)."""
        return self.run_many([request])[request]

    def run_many(self, requests: Iterable[RunRequest]
                 ) -> Dict[RunRequest, RunResult]:
        """Answer a batch of requests, simulating misses in parallel."""
        ordered = list(requests)
        unique: List[RunRequest] = list(dict.fromkeys(ordered))
        self.stats.requested += len(ordered)
        self.stats.deduplicated += len(ordered) - len(unique)

        # Spans (docs/observability.md): one per batch plus a nested one
        # around the simulate phase — memo/cache lookups stay untimed so
        # "scheduler.batch.simulate" isolates actual simulation time.
        tel = _telemetry.get()
        results: Dict[RunRequest, RunResult] = {}
        self.last_batch = {}
        with tel.span("scheduler.batch"):
            missing: List[RunRequest] = []
            for request in unique:
                memo = self._memo.get(request)
                if memo is not None:
                    self.stats.memo_hits += 1
                    self.last_batch[request] = "memo"
                    results[request] = memo
                    continue
                missing.append(request)

            # One batched presence probe for everything the memo could
            # not answer — a single directory scan (or HTTP round-trip
            # against a shared cache daemon) instead of a per-key load
            # probe; only keys the probe reports present are then read.
            keys: Dict[RunRequest, str] = {}
            present: set = set()
            if self.cache is not None and missing:
                keys = {request: self.key_for(request)
                        for request in missing}
                present = self.cache.contains_many(keys.values())

            pending: List[Tuple[RunRequest, Optional[str]]] = []
            for request in missing:
                key = keys.get(request)
                if key is not None and key in present:
                    hit = self.cache.load(key)
                    if hit is not None:
                        self.stats.cache_hits += 1
                        self.last_batch[request] = "cache"
                        self._memo[request] = hit
                        results[request] = hit
                        continue
                pending.append((request, key))

            with tel.span("simulate"):
                if len(pending) > 1 and self.jobs > 1:
                    self._execute_parallel(pending, results)
                else:
                    for request, key in pending:
                        program = self._program_for(request)
                        self._finish(request, key,
                                     execute_request(request, program),
                                     results)
        return results

    # -- internals ------------------------------------------------------------

    def _program_for(self, request: RunRequest) -> Program:
        program = self._programs.get(request.program_id)
        if program is None:
            program = build_request_program(request)
            self._programs[request.program_id] = program
        return program

    def encoded_for(self, request: RunRequest) -> bytes:
        """Canonical program bytes, built/encoded once per program_id.

        A width sweep issues many requests against the same program;
        memoizing the encoded form means one kernel build and one
        encode serve every key computation and every worker shipment.
        The sim server (:mod:`repro.evaluation.simserver`) rides the
        same memo to ship cold requests to its persistent pool.
        """
        encoded = self._encoded.get(request.program_id)
        if encoded is None:
            encoded = encode_program(self._program_for(request))
            self._encoded[request.program_id] = encoded
        return encoded

    def key_for(self, request: RunRequest) -> str:
        """The run-cache key a request resolves to (memoized encode)."""
        return run_key_for_bytes(self.encoded_for(request), request.config)

    def _finish(self, request: RunRequest, key: Optional[str],
                result: RunResult,
                results: Dict[RunRequest, RunResult]) -> None:
        self.stats.executed += 1
        self.last_batch[request] = "simulated"
        if key is not None and self.cache is not None:
            self.cache.store(key, result)
        self._memo[request] = result
        results[request] = result

    def _execute_parallel(self, pending, results) -> None:
        workers = min(self.jobs, len(pending))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {pool.submit(_pool_worker, request,
                                   self.encoded_for(request)):
                       (request, key)
                       for request, key in pending}
            remaining = set(futures)
            while remaining:
                done, remaining = wait(remaining,
                                       return_when=FIRST_COMPLETED)
                for future in done:
                    request, key = futures[future]
                    result = RunResult.from_dict(future.result())
                    self.stats.parallel_executed += 1
                    self._finish(request, key, result, results)
