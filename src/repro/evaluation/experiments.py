"""Experiment drivers: one function per table/figure of the paper.

Each driver returns plain data (lists of row dicts) so tests can assert
on it and the benchmark harness can print it.  Machine runs are memoized
in an :class:`EvalContext` because several experiments share the same
underlying simulations (e.g. Figure 6 and Table 6 both need the width-8
Liquid runs).

All simulation flows through the context's
:class:`~repro.evaluation.runner.RunScheduler`, which deduplicates
requests, consults the persistent run cache, and can fan work out
across worker processes.  Each driver has a matching ``*_requests``
declaration function returning the exact :class:`RunRequest`\\ s it will
need, so a caller (the CLI's prefetch phase, the benchmark harness) can
execute the deduplicated union in parallel up front and the driver then
reads memoized results; see docs/evaluation-runner.md.

Experiment index (see DESIGN.md section 4):

========  =========================================================
E1        :func:`table2_hw_cost` — translator synthesis estimates
E2        :func:`table5_outlined_sizes` — instructions per function
E3        :func:`table6_call_distances` — first-two-call distances
E4        :func:`figure6_speedups` — speedup vs. width
E5        :func:`native_overhead` — Liquid vs. built-in-ISA callout
E6        :func:`code_size_overhead` — binary growth
E7        :func:`ucode_cache_ablation` — cache entries sweep
E8        :func:`translation_latency_ablation` — cycles/instr sweep
========  =========================================================
"""

from __future__ import annotations

import statistics
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.scalarize import (
    DEFAULT_MVL,
    build_baseline_program,
    build_liquid_program,
)
from repro.core.translate.hw_model import TranslatorHardwareModel
from repro.evaluation.runner import RunRequest, RunScheduler
from repro.isa.encoding import encoded_size
from repro.isa.program import Program
from repro.kernels.suite import BENCHMARK_ORDER, build_kernel
from repro.memory.cache import CacheConfig
from repro.pipeline.core import PipelineConfig
from repro.simd.accelerator import config_for_width
from repro.system.machine import MachineConfig
from repro.system.metrics import RunResult, outlined_function_sizes

DEFAULT_WIDTHS: Tuple[int, ...] = (2, 4, 8, 16)


class EvalContext:
    """Builds programs and memoizes machine runs across experiments.

    ``engine`` selects the execution engine for every machine run made
    through this context (see docs/execution-engines.md); results are
    bit-identical either way, only wall-clock time differs.

    Every run goes through *scheduler* (default: in-process, no
    persistent cache — bit-identical to simulating directly).  Pass a
    :class:`~repro.evaluation.runner.RunScheduler` with ``jobs > 1``
    and/or a :class:`~repro.evaluation.runcache.RunCache` to parallelize
    and persist, and call :meth:`prefetch` with the declared requests of
    the experiments about to run so the scheduler executes their
    deduplicated union in one batch.
    """

    def __init__(self, benchmarks: Optional[Sequence[str]] = None,
                 engine: str = "fast",
                 scheduler: Optional[RunScheduler] = None) -> None:
        self.benchmarks = list(benchmarks or BENCHMARK_ORDER)
        self.engine = engine
        self.scheduler = scheduler if scheduler is not None \
            else RunScheduler(jobs=1)
        self._programs: Dict[Tuple[str, str], Program] = {}
        self._runs: Dict[RunRequest, RunResult] = {}

    # -- program construction -------------------------------------------------

    def baseline_program(self, benchmark: str) -> Program:
        key = (benchmark, "baseline")
        if key not in self._programs:
            kernel = build_kernel(benchmark)
            self._programs[key] = build_baseline_program(kernel, DEFAULT_MVL)
        return self._programs[key]

    def liquid_program(self, benchmark: str) -> Program:
        key = (benchmark, "liquid")
        if key not in self._programs:
            kernel = build_kernel(benchmark)
            self._programs[key] = build_liquid_program(kernel, DEFAULT_MVL)
        return self._programs[key]

    # -- request construction ----------------------------------------------------

    def baseline_request(self, benchmark: str) -> RunRequest:
        return RunRequest(benchmark, "baseline",
                          MachineConfig(engine=self.engine))

    def liquid_request(self, benchmark: str, width: int, *,
                       pretranslate: bool = False,
                       factor: int = 1, **config_kwargs) -> RunRequest:
        config = MachineConfig(accelerator=config_for_width(width),
                               pretranslate=pretranslate,
                               engine=self.engine, **config_kwargs)
        return RunRequest(benchmark, "liquid", config, repeat_factor=factor)

    # -- machine runs ------------------------------------------------------------

    def run_request(self, request: RunRequest) -> RunResult:
        """Answer one request (memo -> scheduler -> cache -> simulate)."""
        result = self._runs.get(request)
        if result is None:
            result = self.scheduler.run(request)
            self._runs[request] = result
        return result

    def prefetch(self, requests: Iterable[RunRequest]) -> int:
        """Execute the deduplicated union of *requests* in one batch.

        With a multi-job scheduler this is where the fan-out happens;
        subsequent per-experiment code then reads memoized results.
        Returns the number of requests that were not already memoized.
        """
        todo = [r for r in dict.fromkeys(requests) if r not in self._runs]
        if todo:
            self._runs.update(self.scheduler.run_many(todo))
        return len(todo)

    def baseline_run(self, benchmark: str) -> RunResult:
        return self.run_request(self.baseline_request(benchmark))

    def liquid_run(self, benchmark: str, width: int) -> RunResult:
        return self.run_request(self.liquid_request(benchmark, width))

    def pretranslated_run(self, benchmark: str, width: int) -> RunResult:
        """The paper's 'built-in ISA support' point: microcode from call 1."""
        return self.run_request(
            self.liquid_request(benchmark, width, pretranslate=True))

    def scaled_run(self, benchmark: str, width: int, factor: int,
                   pretranslate: bool = False) -> RunResult:
        """A Liquid run whose schedule repeats *factor* x longer."""
        return self.run_request(
            self.liquid_request(benchmark, width, pretranslate=pretranslate,
                                factor=factor))


# --------------------------------------------------------------------------
# E1 — Table 2
# --------------------------------------------------------------------------


def table2_hw_cost(widths: Iterable[int] = (8,)) -> List[dict]:
    """Translator synthesis estimates (paper Table 2 + width ablation)."""
    rows = []
    for width in widths:
        model = TranslatorHardwareModel(width=width)
        row = model.table2_row()
        row["breakdown"] = model.breakdown()
        rows.append(row)
    return rows


# --------------------------------------------------------------------------
# E2 — Table 5
# --------------------------------------------------------------------------


def table5_outlined_sizes(ctx: Optional[EvalContext] = None) -> List[dict]:
    """Scalar instructions per outlined hot loop (mean and max)."""
    ctx = ctx or EvalContext()
    rows = []
    for benchmark in ctx.benchmarks:
        sizes = outlined_function_sizes(ctx.liquid_program(benchmark))
        values = list(sizes.values())
        rows.append({
            "benchmark": benchmark,
            "mean": round(statistics.mean(values), 1),
            "max": max(values),
            "functions": sizes,
        })
    return rows


# --------------------------------------------------------------------------
# E3 — Table 6
# --------------------------------------------------------------------------


def table6_requests(ctx: EvalContext, width: int = 8) -> List[RunRequest]:
    """Runs :func:`table6_call_distances` will need."""
    return [ctx.liquid_request(b, width) for b in ctx.benchmarks]


def table6_call_distances(ctx: Optional[EvalContext] = None,
                          width: int = 8) -> List[dict]:
    """Cycles between the first two calls of each outlined hot loop.

    Reported in the paper's buckets: <150, <300 (i.e. 150-300), >300,
    plus the mean distance over all hot loops.
    """
    ctx = ctx or EvalContext()
    rows = []
    for benchmark in ctx.benchmarks:
        run = ctx.liquid_run(benchmark, width)
        distances = [
            stats.first_two_call_distance
            for stats in run.functions.values()
            if stats.first_two_call_distance is not None
        ]
        rows.append({
            "benchmark": benchmark,
            "lt150": sum(1 for d in distances if d < 150),
            "lt300": sum(1 for d in distances if 150 <= d < 300),
            "gt300": sum(1 for d in distances if d >= 300),
            "mean": round(statistics.mean(distances)) if distances else 0,
            "distances": distances,
        })
    return rows


# --------------------------------------------------------------------------
# E4 — Figure 6
# --------------------------------------------------------------------------


def figure6_requests(ctx: EvalContext,
                     widths: Iterable[int] = DEFAULT_WIDTHS
                     ) -> List[RunRequest]:
    """Runs :func:`figure6_speedups` will need."""
    requests = []
    for benchmark in ctx.benchmarks:
        requests.append(ctx.baseline_request(benchmark))
        requests.extend(ctx.liquid_request(benchmark, width)
                        for width in widths)
    return requests


def figure6_speedups(ctx: Optional[EvalContext] = None,
                     widths: Iterable[int] = DEFAULT_WIDTHS) -> List[dict]:
    """Speedup of the Liquid binary over the no-SIMD scalar baseline."""
    ctx = ctx or EvalContext()
    rows = []
    for benchmark in ctx.benchmarks:
        base = ctx.baseline_run(benchmark)
        speedups = {}
        for width in widths:
            run = ctx.liquid_run(benchmark, width)
            speedups[width] = round(run.speedup_over(base), 3)
        rows.append({"benchmark": benchmark, "speedups": speedups,
                     "baseline_cycles": base.cycles})
    return rows


# --------------------------------------------------------------------------
# E5 — Figure 6 callout (native vs Liquid overhead)
# --------------------------------------------------------------------------


def native_overhead_requests(ctx: EvalContext,
                             width: int = 16) -> List[RunRequest]:
    """Runs :func:`native_overhead` will need (incl. the 2x schedules)."""
    requests = []
    for benchmark in ctx.benchmarks:
        requests.append(ctx.baseline_request(benchmark))
        for pretranslate in (False, True):
            for factor in (1, 2):
                requests.append(ctx.liquid_request(
                    benchmark, width, pretranslate=pretranslate,
                    factor=factor))
    return requests


def native_overhead(ctx: Optional[EvalContext] = None,
                    width: int = 16) -> List[dict]:
    """Speedup lost to dynamic translation vs. built-in ISA support.

    The paper measures this by treating outlined functions as native
    SIMD from their first call ("the simulator was modified to eliminate
    control generation") and reports a worst-case delta of 0.001 speedup
    (FIR).  Its hot loops execute many thousands of times, so the
    translation cost — which is *one-time* (the first call or two of each
    loop runs scalar) — amortizes to nothing.  Our schedules repeat far
    fewer times for simulation-time reasons, so this experiment separates
    the two components the paper's single number conflates:

    * ``one_time_cycles`` — the entire measured cost of dynamic
      translation (extra cycles of the Liquid run over the
      pretranslated run),
    * ``steady_slowdown_pct`` — the *per-repetition* cost once microcode
      is cached, measured as the slope between a 1x and a 2x schedule;
      by construction the injected microcode is identical, so this is
      the paper-comparable number and should be ~0,
    * ``overhead`` — the raw speedup delta at our (short) schedule
      lengths, for completeness.
    """
    ctx = ctx or EvalContext()
    rows = []
    for benchmark in ctx.benchmarks:
        base = ctx.baseline_run(benchmark)
        liquid = ctx.liquid_run(benchmark, width)
        native = ctx.pretranslated_run(benchmark, width)
        liquid2 = ctx.scaled_run(benchmark, width, factor=2,
                                 pretranslate=False)
        native2 = ctx.scaled_run(benchmark, width, factor=2,
                                 pretranslate=True)
        liquid_slope = liquid2.cycles - liquid.cycles
        native_slope = native2.cycles - native.cycles
        s_liquid = liquid.speedup_over(base)
        s_native = native.speedup_over(base)
        rows.append({
            "benchmark": benchmark,
            "liquid_speedup": round(s_liquid, 4),
            "native_speedup": round(s_native, 4),
            "overhead": round(s_native - s_liquid, 4),
            "one_time_cycles": liquid.cycles - native.cycles,
            "steady_slowdown_pct": round(
                100.0 * (liquid_slope - native_slope) / native_slope, 4)
            if native_slope else 0.0,
        })
    return rows


# --------------------------------------------------------------------------
# E6 — code size overhead
# --------------------------------------------------------------------------


def code_size_overhead(ctx: Optional[EvalContext] = None,
                       mvl: int = DEFAULT_MVL) -> List[dict]:
    """Binary size growth of the Liquid binary over the baseline.

    Counts the three sources the paper names: outlining (bl/ret),
    idiom expansion, and data alignment to the MVL.  The paper's maximum
    was <1% (hydro2d).
    """
    ctx = ctx or EvalContext()
    rows = []
    for benchmark in ctx.benchmarks:
        base = encoded_size(ctx.baseline_program(benchmark), mvl=mvl)
        liquid = encoded_size(ctx.liquid_program(benchmark), mvl=mvl)
        rows.append({
            "benchmark": benchmark,
            "baseline_bytes": base,
            "liquid_bytes": liquid,
            "overhead_pct": round(100.0 * (liquid - base) / base, 3),
        })
    return rows


# --------------------------------------------------------------------------
# E7 — microcode cache sizing
# --------------------------------------------------------------------------


def ucode_cache_ablation_requests(ctx: EvalContext, benchmark: str = "FFT",
                                  width: int = 8,
                                  entry_counts: Iterable[int] =
                                  (1, 2, 4, 8, 16)) -> List[RunRequest]:
    """Runs :func:`ucode_cache_ablation` will need."""
    return [ctx.liquid_request(benchmark, width, ucode_cache_entries=entries)
            for entries in entry_counts]


def ucode_cache_ablation(benchmark: str = "FFT", width: int = 8,
                         entry_counts: Iterable[int] = (1, 2, 4, 8, 16),
                         engine: str = "fast",
                         ctx: Optional[EvalContext] = None) -> List[dict]:
    """Sweep microcode cache entries; 8 should capture every working set.

    Reports SIMD-run fraction and cycles per geometry.  The paper found
    "eight or more SIMD code sequences ... is sufficient to capture the
    working set in all of the benchmarks".

    Default benchmarks differ by entry point on purpose: this driver
    defaults to FFT (two hot loops — shows the 1-entry thrash cleanly),
    while the CLI's ``--ucache-benchmark`` defaults to LU, whose four
    elimination loops are the largest working set in the suite and the
    sharpest demonstration of the paper's 8-entry sufficiency claim.
    """
    ctx = ctx or EvalContext(engine=engine)
    rows = []
    for entries in entry_counts:
        run = ctx.run_request(ctx.liquid_request(
            benchmark, width, ucode_cache_entries=entries))
        calls = sum(s.calls for s in run.functions.values())
        simd = sum(s.simd_runs for s in run.functions.values())
        rows.append({
            "benchmark": benchmark,
            "entries": entries,
            "cycles": run.cycles,
            "simd_run_fraction": round(simd / calls, 3) if calls else 0.0,
            "evictions": run.ucode_cache.evictions,
        })
    return rows


# --------------------------------------------------------------------------
# E8 — translation latency tolerance
# --------------------------------------------------------------------------


def software_translation_requests(ctx: EvalContext,
                                  benchmarks: Optional[Sequence[str]] = None,
                                  width: int = 8,
                                  software_cpi: int = 30
                                  ) -> List[RunRequest]:
    """Runs :func:`software_translation_comparison` will need."""
    requests = []
    for benchmark in benchmarks or _JIT_DEFAULT_BENCHMARKS:
        requests.append(ctx.liquid_request(benchmark, width))
        requests.append(ctx.liquid_request(
            benchmark, width, translation_mode="software",
            software_cycles_per_instruction=software_cpi))
    return requests


_JIT_DEFAULT_BENCHMARKS = ("MPEG2 Dec.", "GSM Enc.", "LU", "FIR")


def software_translation_comparison(benchmarks: Optional[Sequence[str]] = None,
                                    width: int = 8,
                                    software_cpi: int = 30,
                                    engine: str = "fast",
                                    ctx: Optional[EvalContext] = None
                                    ) -> List[dict]:
    """Extension E9: hardware vs. software (JIT) dynamic translation.

    The paper chooses hardware translation but notes "nothing about our
    virtualization technique precludes software-based translation"
    (section 2).  This experiment runs both: the JIT variant charges its
    work to the main core as a stall (``software_cpi`` cycles per
    observed instruction) but makes microcode available immediately.
    Both are one-time costs, so both amortize to zero — the measured
    difference is the (small) constant the paper's hardware buys.
    """
    ctx = ctx or EvalContext(engine=engine)
    rows = []
    for benchmark in benchmarks or _JIT_DEFAULT_BENCHMARKS:
        hw = ctx.run_request(ctx.liquid_request(benchmark, width))
        sw = ctx.run_request(ctx.liquid_request(
            benchmark, width, translation_mode="software",
            software_cycles_per_instruction=software_cpi))
        rows.append({
            "benchmark": benchmark,
            "hardware_cycles": hw.cycles,
            "software_cycles": sw.cycles,
            "jit_cost_pct": round(100.0 * (sw.cycles - hw.cycles) / hw.cycles,
                                  3),
            "hw_simd_runs": sum(s.simd_runs for s in hw.functions.values()),
            "sw_simd_runs": sum(s.simd_runs for s in sw.functions.values()),
        })
    return rows


def _memory_pipeline(penalty: int) -> PipelineConfig:
    return PipelineConfig(
        icache=CacheConfig(miss_penalty=penalty),
        dcache=CacheConfig(miss_penalty=penalty),
    )


def memory_sensitivity_requests(ctx: EvalContext,
                                benchmarks: Optional[Sequence[str]] = None,
                                width: int = 8,
                                miss_penalties: Iterable[int] = (0, 30, 100)
                                ) -> List[RunRequest]:
    """Runs :func:`memory_sensitivity` will need."""
    requests = []
    for benchmark in benchmarks or ("179.art", "FIR"):
        for penalty in miss_penalties:
            pipe = _memory_pipeline(penalty)
            requests.append(RunRequest(
                benchmark, "baseline",
                MachineConfig(pipeline=pipe, engine=ctx.engine)))
            requests.append(ctx.liquid_request(benchmark, width,
                                               pipeline=pipe))
    return requests


def memory_sensitivity(benchmarks: Optional[Sequence[str]] = None,
                       width: int = 8,
                       miss_penalties: Iterable[int] = (0, 30, 100),
                       engine: str = "fast",
                       ctx: Optional[EvalContext] = None) -> List[dict]:
    """Extension E11: how much of each speedup the memory system gates.

    The paper attributes 179.art's poor speedup to "many cache misses in
    its hot loops" and FIR's record speedup partly to having "very few
    cache misses".  Sweeping the miss penalty makes that attribution
    causal: on an ideal memory system art's SIMD speedup should open up,
    while FIR's should barely move.
    """
    ctx = ctx or EvalContext(engine=engine)
    rows = []
    for benchmark in benchmarks or ("179.art", "FIR"):
        speedups = {}
        for penalty in miss_penalties:
            pipe = _memory_pipeline(penalty)
            base = ctx.run_request(RunRequest(
                benchmark, "baseline",
                MachineConfig(pipeline=pipe, engine=ctx.engine)))
            liquid = ctx.run_request(ctx.liquid_request(benchmark, width,
                                                        pipeline=pipe))
            speedups[penalty] = round(liquid.speedup_over(base), 3)
        rows.append({"benchmark": benchmark, "speedups": speedups})
    return rows


def observation_point_requests(ctx: EvalContext,
                               benchmarks: Optional[Sequence[str]] = None,
                               width: int = 8) -> List[RunRequest]:
    """Runs :func:`observation_point_comparison` will need."""
    requests = []
    for benchmark in benchmarks or _OBSERVATION_DEFAULT_BENCHMARKS:
        requests.append(ctx.liquid_request(benchmark, width))
        requests.append(ctx.liquid_request(benchmark, width,
                                           observation_point="decode"))
    return requests


_OBSERVATION_DEFAULT_BENCHMARKS = ("FFT", "FIR", "093.nasa7", "MPEG2 Dec.")


def observation_point_comparison(benchmarks: Optional[Sequence[str]] = None,
                                 width: int = 8,
                                 engine: str = "fast",
                                 ctx: Optional[EvalContext] = None
                                 ) -> List[dict]:
    """Extension E10: decode-time vs. post-retirement translation.

    Section 4 weighs the two hardware tap points.  Decode-time
    translation finishes with zero post-retirement latency, but it never
    sees produced data values, so loops whose translation needs them —
    permutations, lane-constant materialization — must stay scalar.
    Post-retirement (the paper's choice) sees everything and its latency
    is hidden by Table 6's call distances.
    """
    ctx = ctx or EvalContext(engine=engine)
    rows = []
    for benchmark in benchmarks or _OBSERVATION_DEFAULT_BENCHMARKS:
        retire = ctx.run_request(ctx.liquid_request(benchmark, width))
        decode = ctx.run_request(ctx.liquid_request(
            benchmark, width, observation_point="decode"))
        rows.append({
            "benchmark": benchmark,
            "retirement_cycles": retire.cycles,
            "decode_cycles": decode.cycles,
            "retirement_translated": retire.successful_translations,
            "decode_translated": decode.successful_translations,
            "decode_penalty_pct": round(
                100.0 * (decode.cycles - retire.cycles) / retire.cycles, 2),
        })
    return rows


def translation_latency_requests(ctx: EvalContext,
                                 benchmark: str = "171.swim", width: int = 8,
                                 cycles_per_instruction: Iterable[int] =
                                 (1, 10, 50, 100, 500, 5000)
                                 ) -> List[RunRequest]:
    """Runs :func:`translation_latency_ablation` will need."""
    return [ctx.liquid_request(benchmark, width,
                               translation_cycles_per_instruction=cpi)
            for cpi in cycles_per_instruction]


def translation_latency_ablation(benchmark: str = "171.swim", width: int = 8,
                                 cycles_per_instruction: Iterable[int] =
                                 (1, 10, 50, 100, 500, 5000),
                                 engine: str = "fast",
                                 ctx: Optional[EvalContext] = None
                                 ) -> List[dict]:
    """Sweep translator speed; performance should degrade only slowly.

    The paper argues post-retirement translation "could have taken tens
    of cycles per scalar instruction without affecting performance"
    because outlined calls are >300 cycles apart (Table 6).
    """
    ctx = ctx or EvalContext(engine=engine)
    rows = []
    baseline_cycles = None
    for cpi in cycles_per_instruction:
        run = ctx.run_request(ctx.liquid_request(
            benchmark, width, translation_cycles_per_instruction=cpi))
        if baseline_cycles is None:
            baseline_cycles = run.cycles
        rows.append({
            "benchmark": benchmark,
            "cycles_per_instruction": cpi,
            "cycles": run.cycles,
            "slowdown_pct": round(
                100.0 * (run.cycles - baseline_cycles) / baseline_cycles, 3),
            "scalar_runs": sum(s.scalar_runs for s in run.functions.values()),
        })
    return rows
