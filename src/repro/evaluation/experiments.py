"""Experiment drivers: one function per table/figure of the paper.

Each driver returns plain data (lists of row dicts) so tests can assert
on it and the benchmark harness can print it.  Machine runs are memoized
in an :class:`EvalContext` because several experiments share the same
underlying simulations (e.g. Figure 6 and Table 6 both need the width-8
Liquid runs).

Experiment index (see DESIGN.md section 4):

========  =========================================================
E1        :func:`table2_hw_cost` — translator synthesis estimates
E2        :func:`table5_outlined_sizes` — instructions per function
E3        :func:`table6_call_distances` — first-two-call distances
E4        :func:`figure6_speedups` — speedup vs. width
E5        :func:`native_overhead` — Liquid vs. built-in-ISA callout
E6        :func:`code_size_overhead` — binary growth
E7        :func:`ucode_cache_ablation` — cache entries sweep
E8        :func:`translation_latency_ablation` — cycles/instr sweep
========  =========================================================
"""

from __future__ import annotations

import statistics
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.scalarize import (
    DEFAULT_MVL,
    build_baseline_program,
    build_liquid_program,
)
from repro.core.translate.hw_model import TranslatorHardwareModel
from repro.isa.encoding import encoded_size
from repro.isa.program import Program
from repro.kernels.suite import BENCHMARK_ORDER, build_kernel
from repro.simd.accelerator import config_for_width
from repro.system.machine import Machine, MachineConfig
from repro.system.metrics import RunResult, outlined_function_sizes

DEFAULT_WIDTHS: Tuple[int, ...] = (2, 4, 8, 16)


class EvalContext:
    """Builds programs and memoizes machine runs across experiments.

    ``engine`` selects the execution engine for every machine run made
    through this context (see docs/execution-engines.md); results are
    bit-identical either way, only wall-clock time differs.
    """

    def __init__(self, benchmarks: Optional[Sequence[str]] = None,
                 engine: str = "fast") -> None:
        self.benchmarks = list(benchmarks or BENCHMARK_ORDER)
        self.engine = engine
        self._programs: Dict[Tuple[str, str], Program] = {}
        self._runs: Dict[Tuple[str, str], RunResult] = {}

    # -- program construction -------------------------------------------------

    def baseline_program(self, benchmark: str) -> Program:
        key = (benchmark, "baseline")
        if key not in self._programs:
            kernel = build_kernel(benchmark)
            self._programs[key] = build_baseline_program(kernel, DEFAULT_MVL)
        return self._programs[key]

    def liquid_program(self, benchmark: str) -> Program:
        key = (benchmark, "liquid")
        if key not in self._programs:
            kernel = build_kernel(benchmark)
            self._programs[key] = build_liquid_program(kernel, DEFAULT_MVL)
        return self._programs[key]

    # -- machine runs ------------------------------------------------------------

    def run(self, benchmark: str, config: MachineConfig,
            tag: str) -> RunResult:
        key = (benchmark, tag)
        if key not in self._runs:
            program = (self.baseline_program(benchmark) if tag == "baseline"
                       else self.liquid_program(benchmark))
            self._runs[key] = Machine(config).run(program)
        return self._runs[key]

    def baseline_run(self, benchmark: str) -> RunResult:
        return self.run(benchmark, MachineConfig(engine=self.engine),
                        "baseline")

    def liquid_run(self, benchmark: str, width: int) -> RunResult:
        config = MachineConfig(accelerator=config_for_width(width),
                               engine=self.engine)
        return self.run(benchmark, config, f"liquid-w{width}")

    def pretranslated_run(self, benchmark: str, width: int) -> RunResult:
        """The paper's 'built-in ISA support' point: microcode from call 1."""
        config = MachineConfig(accelerator=config_for_width(width),
                               pretranslate=True, engine=self.engine)
        return self.run(benchmark, config, f"native-w{width}")


# --------------------------------------------------------------------------
# E1 — Table 2
# --------------------------------------------------------------------------


def table2_hw_cost(widths: Iterable[int] = (8,)) -> List[dict]:
    """Translator synthesis estimates (paper Table 2 + width ablation)."""
    rows = []
    for width in widths:
        model = TranslatorHardwareModel(width=width)
        row = model.table2_row()
        row["breakdown"] = model.breakdown()
        rows.append(row)
    return rows


# --------------------------------------------------------------------------
# E2 — Table 5
# --------------------------------------------------------------------------


def table5_outlined_sizes(ctx: Optional[EvalContext] = None) -> List[dict]:
    """Scalar instructions per outlined hot loop (mean and max)."""
    ctx = ctx or EvalContext()
    rows = []
    for benchmark in ctx.benchmarks:
        sizes = outlined_function_sizes(ctx.liquid_program(benchmark))
        values = list(sizes.values())
        rows.append({
            "benchmark": benchmark,
            "mean": round(statistics.mean(values), 1),
            "max": max(values),
            "functions": sizes,
        })
    return rows


# --------------------------------------------------------------------------
# E3 — Table 6
# --------------------------------------------------------------------------


def table6_call_distances(ctx: Optional[EvalContext] = None,
                          width: int = 8) -> List[dict]:
    """Cycles between the first two calls of each outlined hot loop.

    Reported in the paper's buckets: <150, <300 (i.e. 150-300), >300,
    plus the mean distance over all hot loops.
    """
    ctx = ctx or EvalContext()
    rows = []
    for benchmark in ctx.benchmarks:
        run = ctx.liquid_run(benchmark, width)
        distances = [
            stats.first_two_call_distance
            for stats in run.functions.values()
            if stats.first_two_call_distance is not None
        ]
        rows.append({
            "benchmark": benchmark,
            "lt150": sum(1 for d in distances if d < 150),
            "lt300": sum(1 for d in distances if 150 <= d < 300),
            "gt300": sum(1 for d in distances if d >= 300),
            "mean": round(statistics.mean(distances)) if distances else 0,
            "distances": distances,
        })
    return rows


# --------------------------------------------------------------------------
# E4 — Figure 6
# --------------------------------------------------------------------------


def figure6_speedups(ctx: Optional[EvalContext] = None,
                     widths: Iterable[int] = DEFAULT_WIDTHS) -> List[dict]:
    """Speedup of the Liquid binary over the no-SIMD scalar baseline."""
    ctx = ctx or EvalContext()
    rows = []
    for benchmark in ctx.benchmarks:
        base = ctx.baseline_run(benchmark)
        speedups = {}
        for width in widths:
            run = ctx.liquid_run(benchmark, width)
            speedups[width] = round(run.speedup_over(base), 3)
        rows.append({"benchmark": benchmark, "speedups": speedups,
                     "baseline_cycles": base.cycles})
    return rows


# --------------------------------------------------------------------------
# E5 — Figure 6 callout (native vs Liquid overhead)
# --------------------------------------------------------------------------


def native_overhead(ctx: Optional[EvalContext] = None,
                    width: int = 16) -> List[dict]:
    """Speedup lost to dynamic translation vs. built-in ISA support.

    The paper measures this by treating outlined functions as native
    SIMD from their first call ("the simulator was modified to eliminate
    control generation") and reports a worst-case delta of 0.001 speedup
    (FIR).  Its hot loops execute many thousands of times, so the
    translation cost — which is *one-time* (the first call or two of each
    loop runs scalar) — amortizes to nothing.  Our schedules repeat far
    fewer times for simulation-time reasons, so this experiment separates
    the two components the paper's single number conflates:

    * ``one_time_cycles`` — the entire measured cost of dynamic
      translation (extra cycles of the Liquid run over the
      pretranslated run),
    * ``steady_slowdown_pct`` — the *per-repetition* cost once microcode
      is cached, measured as the slope between a 1x and a 2x schedule;
      by construction the injected microcode is identical, so this is
      the paper-comparable number and should be ~0,
    * ``overhead`` — the raw speedup delta at our (short) schedule
      lengths, for completeness.
    """
    ctx = ctx or EvalContext()
    rows = []
    for benchmark in ctx.benchmarks:
        base = ctx.baseline_run(benchmark)
        liquid = ctx.liquid_run(benchmark, width)
        native = ctx.pretranslated_run(benchmark, width)
        liquid2 = _scaled_run(benchmark, width, factor=2, pretranslate=False,
                              engine=ctx.engine)
        native2 = _scaled_run(benchmark, width, factor=2, pretranslate=True,
                              engine=ctx.engine)
        liquid_slope = liquid2.cycles - liquid.cycles
        native_slope = native2.cycles - native.cycles
        s_liquid = liquid.speedup_over(base)
        s_native = native.speedup_over(base)
        rows.append({
            "benchmark": benchmark,
            "liquid_speedup": round(s_liquid, 4),
            "native_speedup": round(s_native, 4),
            "overhead": round(s_native - s_liquid, 4),
            "one_time_cycles": liquid.cycles - native.cycles,
            "steady_slowdown_pct": round(
                100.0 * (liquid_slope - native_slope) / native_slope, 4)
            if native_slope else 0.0,
        })
    return rows


def _scaled_run(benchmark: str, width: int, factor: int,
                pretranslate: bool, engine: str = "fast") -> RunResult:
    """Run a Liquid binary whose schedule repeats *factor*x longer."""
    kernel = build_kernel(benchmark)
    kernel.repeats *= factor
    program = build_liquid_program(kernel, DEFAULT_MVL)
    config = MachineConfig(accelerator=config_for_width(width),
                           pretranslate=pretranslate, engine=engine)
    return Machine(config).run(program)


# --------------------------------------------------------------------------
# E6 — code size overhead
# --------------------------------------------------------------------------


def code_size_overhead(ctx: Optional[EvalContext] = None,
                       mvl: int = DEFAULT_MVL) -> List[dict]:
    """Binary size growth of the Liquid binary over the baseline.

    Counts the three sources the paper names: outlining (bl/ret),
    idiom expansion, and data alignment to the MVL.  The paper's maximum
    was <1% (hydro2d).
    """
    ctx = ctx or EvalContext()
    rows = []
    for benchmark in ctx.benchmarks:
        base = encoded_size(ctx.baseline_program(benchmark), mvl=mvl)
        liquid = encoded_size(ctx.liquid_program(benchmark), mvl=mvl)
        rows.append({
            "benchmark": benchmark,
            "baseline_bytes": base,
            "liquid_bytes": liquid,
            "overhead_pct": round(100.0 * (liquid - base) / base, 3),
        })
    return rows


# --------------------------------------------------------------------------
# E7 — microcode cache sizing
# --------------------------------------------------------------------------


def ucode_cache_ablation(benchmark: str = "FFT", width: int = 8,
                         entry_counts: Iterable[int] = (1, 2, 4, 8, 16),
                         engine: str = "fast") -> List[dict]:
    """Sweep microcode cache entries; 8 should capture every working set.

    Reports SIMD-run fraction and cycles per geometry.  The paper found
    "eight or more SIMD code sequences ... is sufficient to capture the
    working set in all of the benchmarks".
    """
    program = build_liquid_program(build_kernel(benchmark), DEFAULT_MVL)
    rows = []
    for entries in entry_counts:
        config = MachineConfig(accelerator=config_for_width(width),
                               ucode_cache_entries=entries, engine=engine)
        run = Machine(config).run(program)
        calls = sum(s.calls for s in run.functions.values())
        simd = sum(s.simd_runs for s in run.functions.values())
        rows.append({
            "benchmark": benchmark,
            "entries": entries,
            "cycles": run.cycles,
            "simd_run_fraction": round(simd / calls, 3) if calls else 0.0,
            "evictions": run.ucode_cache.evictions,
        })
    return rows


# --------------------------------------------------------------------------
# E8 — translation latency tolerance
# --------------------------------------------------------------------------


def software_translation_comparison(benchmarks: Optional[Sequence[str]] = None,
                                    width: int = 8,
                                    software_cpi: int = 30,
                                    engine: str = "fast") -> List[dict]:
    """Extension E9: hardware vs. software (JIT) dynamic translation.

    The paper chooses hardware translation but notes "nothing about our
    virtualization technique precludes software-based translation"
    (section 2).  This experiment runs both: the JIT variant charges its
    work to the main core as a stall (``software_cpi`` cycles per
    observed instruction) but makes microcode available immediately.
    Both are one-time costs, so both amortize to zero — the measured
    difference is the (small) constant the paper's hardware buys.
    """
    rows = []
    for benchmark in benchmarks or ("MPEG2 Dec.", "GSM Enc.", "LU", "FIR"):
        program = build_liquid_program(build_kernel(benchmark), DEFAULT_MVL)
        hw = Machine(MachineConfig(
            accelerator=config_for_width(width), engine=engine)).run(program)
        sw = Machine(MachineConfig(
            accelerator=config_for_width(width),
            translation_mode="software",
            software_cycles_per_instruction=software_cpi,
            engine=engine)).run(program)
        rows.append({
            "benchmark": benchmark,
            "hardware_cycles": hw.cycles,
            "software_cycles": sw.cycles,
            "jit_cost_pct": round(100.0 * (sw.cycles - hw.cycles) / hw.cycles,
                                  3),
            "hw_simd_runs": sum(s.simd_runs for s in hw.functions.values()),
            "sw_simd_runs": sum(s.simd_runs for s in sw.functions.values()),
        })
    return rows


def memory_sensitivity(benchmarks: Optional[Sequence[str]] = None,
                       width: int = 8,
                       miss_penalties: Iterable[int] = (0, 30, 100),
                       engine: str = "fast") -> List[dict]:
    """Extension E11: how much of each speedup the memory system gates.

    The paper attributes 179.art's poor speedup to "many cache misses in
    its hot loops" and FIR's record speedup partly to having "very few
    cache misses".  Sweeping the miss penalty makes that attribution
    causal: on an ideal memory system art's SIMD speedup should open up,
    while FIR's should barely move.
    """
    from repro.memory.cache import CacheConfig
    from repro.pipeline.core import PipelineConfig
    rows = []
    for benchmark in benchmarks or ("179.art", "FIR"):
        kernel = build_kernel(benchmark)
        baseline_prog = build_baseline_program(kernel, DEFAULT_MVL)
        liquid_prog = build_liquid_program(build_kernel(benchmark),
                                           DEFAULT_MVL)
        speedups = {}
        for penalty in miss_penalties:
            pipe = PipelineConfig(
                icache=CacheConfig(miss_penalty=penalty),
                dcache=CacheConfig(miss_penalty=penalty),
            )
            base = Machine(MachineConfig(pipeline=pipe,
                                         engine=engine)).run(baseline_prog)
            liquid = Machine(MachineConfig(
                accelerator=config_for_width(width),
                pipeline=pipe, engine=engine)).run(liquid_prog)
            speedups[penalty] = round(liquid.speedup_over(base), 3)
        rows.append({"benchmark": benchmark, "speedups": speedups})
    return rows


def observation_point_comparison(benchmarks: Optional[Sequence[str]] = None,
                                 width: int = 8,
                                 engine: str = "fast") -> List[dict]:
    """Extension E10: decode-time vs. post-retirement translation.

    Section 4 weighs the two hardware tap points.  Decode-time
    translation finishes with zero post-retirement latency, but it never
    sees produced data values, so loops whose translation needs them —
    permutations, lane-constant materialization — must stay scalar.
    Post-retirement (the paper's choice) sees everything and its latency
    is hidden by Table 6's call distances.
    """
    rows = []
    for benchmark in benchmarks or ("FFT", "FIR", "093.nasa7", "MPEG2 Dec."):
        program = build_liquid_program(build_kernel(benchmark), DEFAULT_MVL)
        retire = Machine(MachineConfig(
            accelerator=config_for_width(width), engine=engine)).run(program)
        decode = Machine(MachineConfig(
            accelerator=config_for_width(width),
            observation_point="decode", engine=engine)).run(program)
        rows.append({
            "benchmark": benchmark,
            "retirement_cycles": retire.cycles,
            "decode_cycles": decode.cycles,
            "retirement_translated": retire.successful_translations,
            "decode_translated": decode.successful_translations,
            "decode_penalty_pct": round(
                100.0 * (decode.cycles - retire.cycles) / retire.cycles, 2),
        })
    return rows


def translation_latency_ablation(benchmark: str = "171.swim", width: int = 8,
                                 cycles_per_instruction: Iterable[int] =
                                 (1, 10, 50, 100, 500, 5000),
                                 engine: str = "fast") -> List[dict]:
    """Sweep translator speed; performance should degrade only slowly.

    The paper argues post-retirement translation "could have taken tens
    of cycles per scalar instruction without affecting performance"
    because outlined calls are >300 cycles apart (Table 6).
    """
    program = build_liquid_program(build_kernel(benchmark), DEFAULT_MVL)
    rows = []
    baseline_cycles = None
    for cpi in cycles_per_instruction:
        config = MachineConfig(accelerator=config_for_width(width),
                               translation_cycles_per_instruction=cpi,
                               engine=engine)
        run = Machine(config).run(program)
        if baseline_cycles is None:
            baseline_cycles = run.cycles
        rows.append({
            "benchmark": benchmark,
            "cycles_per_instruction": cpi,
            "cycles": run.cycles,
            "slowdown_pct": round(
                100.0 * (run.cycles - baseline_cycles) / baseline_cycles, 3),
            "scalar_runs": sum(s.scalar_runs for s in run.functions.values()),
        })
    return rows
