"""Plain-text chart rendering for the paper's figures.

The evaluation is terminal-first (no plotting dependencies), so Figure 6
is rendered as grouped horizontal bar charts.  Each benchmark gets one
bar per accelerator width, scaled to the figure-wide maximum — the same
visual shape as the paper's clustered columns.
"""

from __future__ import annotations

from typing import List, Sequence

#: Bar glyph per width, cycling if more widths than glyphs.
_GLYPHS = ("░", "▒", "▓", "█")


def render_figure6_chart(rows: List[dict], widths: Sequence[int],
                         bar_width: int = 44) -> str:
    """Render Figure 6 as grouped ASCII bars.

    *rows* are :func:`repro.evaluation.experiments.figure6_speedups`
    output.  Bars are scaled so the figure's maximum speedup spans
    *bar_width* characters; a ``|`` marks speedup 1.0 (the baseline).
    """
    peak = max(row["speedups"][w] for row in rows for w in widths)
    if peak <= 0:
        raise ValueError("no positive speedups to chart")
    scale = bar_width / peak
    one_mark = round(1.0 * scale)

    lines = ["Figure 6: speedup over scalar baseline (bar per vector width)",
             ""]
    for row in rows:
        lines.append(row["benchmark"])
        for index, width in enumerate(widths):
            value = row["speedups"][width]
            length = max(1, round(value * scale))
            glyph = _GLYPHS[index % len(_GLYPHS)]
            bar = glyph * length
            if one_mark < len(bar):
                bar = bar[:one_mark] + "|" + bar[one_mark + 1:]
            lines.append(f"  w={width:<3}{bar} {value:.2f}")
        lines.append("")
    legend = "  ".join(f"{_GLYPHS[i % len(_GLYPHS)]} w={w}"
                       for i, w in enumerate(widths))
    lines.append(f"legend: {legend}   ('|' marks speedup 1.0)")
    return "\n".join(lines)


def render_sweep_chart(rows: List[dict], key: str, value_key: str,
                       title: str, bar_width: int = 40) -> str:
    """Render a one-dimensional sweep (ablation) as ASCII bars."""
    peak = max(abs(float(row[value_key])) for row in rows) or 1.0
    scale = bar_width / peak
    lines = [title, ""]
    for row in rows:
        value = float(row[value_key])
        bar = "█" * max(0, round(abs(value) * scale))
        lines.append(f"  {str(row[key]):>10}  {bar} {value:,.2f}")
    return "\n".join(lines)
