"""Sharded sweep execution and incremental re-bench.

A *sweep* is the materialized request set behind the paper's figures:
for every benchmark, the scalar baseline plus one Liquid run per SIMD
width.  This module turns that set into a cache-coherent fleet job:

* **Sharding** — :func:`shard_for_key` hash-partitions the sweep's
  run-cache keys, so ``K`` independent invocations (``repro sweep
  --shard K/N`` in CI matrix jobs or on separate hosts) each simulate a
  **disjoint** slice against a shared cache backend (a common
  ``REPRO_CACHE_DIR`` or a ``repro cache serve`` daemon).  The
  partition is a pure function of the content-addressed key, so every
  shard agrees on the assignment without coordination.
* **Manifests** — each invocation emits a JSON manifest recording, per
  key, the request metadata, the result's cycle count, and the SHA-256
  digest of the canonical cache entry bytes
  (:func:`~repro.evaluation.runcache.entry_payload`), plus provenance
  (simulated here vs. answered warm) and scheduler/cache statistics.
* **Merging** — :func:`merge_sweeps` verifies the shards: full
  coverage of the expected key set, no key simulated by two shards
  (zero duplicate machine-runs), and byte-identical results wherever
  shards overlap.  The merged manifest carries the same per-key digest
  table as an unsharded run, so "sharded == unsharded" is a dict
  comparison.
* **Incremental re-bench** — ``repro sweep --incremental`` runs the
  same pipeline expecting a warm cache: all keys are probed in one
  ``contains_many`` round-trip and only the misses are simulated, so a
  full figure regeneration after a small change costs exactly the
  delta.  Merged and incremental manifests embed a BENCH-style
  ``speedups`` map, so ``repro bench compare OLD NEW`` gates one sweep
  against another directly.
"""

from __future__ import annotations

import hashlib
import re
import time
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.evaluation.runcache import CACHE_FORMAT_VERSION, entry_payload
from repro.evaluation.runner import RunRequest, RunScheduler
from repro.kernels.suite import BENCHMARK_ORDER
from repro.simd.accelerator import config_for_width
from repro.system.machine import MachineConfig

#: ``kind`` field of every sweep manifest; the merge step refuses
#: anything else.
SWEEP_MANIFEST_KIND = "repro-sweep"

DEFAULT_SWEEP_WIDTHS: Tuple[int, ...] = (2, 4, 8, 16)

_SHARD_SPEC_RE = re.compile(r"^(\d+)/(\d+)$")


class SweepError(ValueError):
    """A sweep invariant failed: bad shard spec, coverage gap,
    divergent shard results, or duplicate simulation."""


@dataclass(frozen=True)
class ShardSpec:
    """One slice of a sweep: shard *index* (1-based) of *count*."""

    index: int
    count: int

    def __post_init__(self) -> None:
        if self.count < 1:
            raise SweepError(f"shard count must be >= 1, got {self.count}")
        if not 1 <= self.index <= self.count:
            raise SweepError(
                f"shard index must be in 1..{self.count}, got {self.index}")

    def __str__(self) -> str:
        return f"{self.index}/{self.count}"


def parse_shard_spec(spec: str) -> ShardSpec:
    """``"K/N"`` -> :class:`ShardSpec` (1-based K, e.g. ``1/2``)."""
    match = _SHARD_SPEC_RE.match(spec.strip())
    if not match:
        raise SweepError(
            f"shard spec must look like K/N (e.g. 1/2), got {spec!r}")
    return ShardSpec(int(match.group(1)), int(match.group(2)))


def shard_for_key(key: str, count: int) -> int:
    """The 1-based shard owning run-cache key *key* among *count*.

    A pure function of the content address, so independent invocations
    partition identically with no coordination; the leading 16 hex
    digits of a SHA-256 are already uniformly distributed, no rehash
    needed.
    """
    return int(key[:16], 16) % count + 1


def sweep_requests(benchmarks: Sequence[str],
                   widths: Iterable[int] = DEFAULT_SWEEP_WIDTHS,
                   engine: str = "fast") -> List[RunRequest]:
    """Materialize the sweep: baseline + one Liquid run per width."""
    requests = []
    for benchmark in benchmarks:
        requests.append(RunRequest(benchmark, "baseline",
                                   MachineConfig(engine=engine)))
        for width in widths:
            requests.append(RunRequest(
                benchmark, "liquid",
                MachineConfig(accelerator=config_for_width(width),
                              engine=engine)))
    return requests


def _request_meta(request: RunRequest) -> dict:
    accel = request.config.accelerator
    return {
        "benchmark": request.benchmark,
        "program_kind": request.program_kind,
        "width": accel.width if accel is not None else None,
        "repeat_factor": request.repeat_factor,
    }


def sweep_keys(requests: Sequence[RunRequest],
               scheduler: RunScheduler) -> Dict[str, RunRequest]:
    """key -> request for the whole sweep (programs built/encoded once)."""
    return {scheduler.key_for(request): request for request in requests}


def sweep_speedups(entries: Dict[str, dict]) -> Dict[str, float]:
    """BENCH-style ``{"<benchmark>/w<width>": speedup}`` map.

    Derived purely from the manifest's cycle counts (baseline cycles /
    liquid cycles, the Figure 6 quantity), so two merged sweeps can be
    gated against each other with ``repro bench compare``.
    """
    baselines: Dict[str, int] = {}
    liquids: Dict[Tuple[str, int], int] = {}
    for meta in entries.values():
        if meta["program_kind"] == "baseline":
            baselines[meta["benchmark"]] = meta["cycles"]
        elif meta["repeat_factor"] == 1:
            liquids[(meta["benchmark"], meta["width"])] = meta["cycles"]
    speedups = {}
    for (benchmark, width), cycles in liquids.items():
        base = baselines.get(benchmark)
        if base and cycles:
            speedups[f"{benchmark}/w{width}"] = round(base / cycles, 3)
    return speedups


def run_sweep(benchmarks: Sequence[str],
              widths: Iterable[int] = DEFAULT_SWEEP_WIDTHS,
              engine: str = "fast",
              scheduler: Optional[RunScheduler] = None,
              shard: Optional[ShardSpec] = None,
              incremental: bool = False) -> dict:
    """Execute (one shard of) a sweep and return its manifest.

    ``shard`` restricts execution to that hash-slice of the key set;
    ``incremental`` asserts a shared cache is configured and reports
    the warm/delta split (the execution path is identical — the
    scheduler always batch-probes and simulates only misses).
    """
    scheduler = scheduler if scheduler is not None else RunScheduler(jobs=1)
    if shard is not None and scheduler.cache is None:
        raise SweepError("sharded sweeps need a shared cache backend "
                         "(--cache-dir/--cache-url), not --no-cache")
    if incremental and scheduler.cache is None:
        raise SweepError("--incremental needs a cache backend to diff "
                         "against, not --no-cache")

    widths = tuple(widths)
    requests = sweep_requests(benchmarks, widths, engine)
    keys = sweep_keys(requests, scheduler)
    selected = keys
    if shard is not None:
        selected = {key: request for key, request in keys.items()
                    if shard_for_key(key, shard.count) == shard.index}

    cache_stats_before = None
    if scheduler.cache is not None:
        s = scheduler.cache.stats
        cache_stats_before = (s.probe_calls, s.probed)
    executed_before = scheduler.stats.executed
    cache_hits_before = scheduler.stats.cache_hits

    start = time.perf_counter()
    results = scheduler.run_many(list(selected.values()))
    wall = time.perf_counter() - start

    entries = {}
    sources = {}
    for key, request in selected.items():
        result = results[request]
        meta = _request_meta(request)
        meta["cycles"] = result.cycles
        meta["digest"] = hashlib.sha256(
            entry_payload(key, result)).hexdigest()
        entries[key] = meta
        sources[key] = scheduler.last_batch.get(request, "memo")

    stats = {
        "machine_runs": scheduler.stats.executed - executed_before,
        "cache_hits": scheduler.stats.cache_hits - cache_hits_before,
        "wall_seconds": round(wall, 6),
    }
    if cache_stats_before is not None:
        s = scheduler.cache.stats
        stats["probe_calls"] = s.probe_calls - cache_stats_before[0]
        stats["probed_keys"] = s.probed - cache_stats_before[1]

    manifest = {
        "kind": SWEEP_MANIFEST_KIND,
        "format_version": CACHE_FORMAT_VERSION,
        "sweep": {
            "benchmarks": list(benchmarks),
            "widths": list(widths),
            "engine": engine,
            "shard": str(shard) if shard is not None else None,
            "incremental": incremental,
        },
        "coverage": {"total_requests": len(keys),
                     "selected": len(selected)},
        "backend": (scheduler.cache.describe()
                    if scheduler.cache is not None
                    else {"backend": "none"}),
        "entries": entries,
        "sources": sources,
        "stats": stats,
    }
    if len(selected) == len(keys):
        # Complete sweeps (unsharded or merged) are directly gateable.
        manifest["speedups"] = sweep_speedups(entries)
    return manifest


def _check_manifest(manifest: dict, label: str) -> None:
    if manifest.get("kind") != SWEEP_MANIFEST_KIND:
        raise SweepError(f"{label}: not a sweep manifest "
                         f"(kind={manifest.get('kind')!r})")
    if manifest.get("format_version") != CACHE_FORMAT_VERSION:
        raise SweepError(
            f"{label}: cache format {manifest.get('format_version')!r} "
            f"does not match this build ({CACHE_FORMAT_VERSION})")


def _sweep_params(manifest: dict) -> dict:
    sweep = dict(manifest.get("sweep") or {})
    sweep.pop("shard", None)
    sweep.pop("incremental", None)
    return sweep


def merge_sweeps(manifests: Sequence[dict],
                 verify_coverage: bool = True) -> dict:
    """Merge shard manifests into one, verifying the fleet contract.

    Raises :class:`SweepError` when

    * manifests describe different sweeps (benchmarks/widths/engine),
    * the same key carries different cycles or entry digests in two
      shards (results must be byte-identical),
    * the same key was *simulated* by two shards (the partition must
      make machine-runs disjoint — warm cache hits may repeat),
    * with *verify_coverage*, the union of entries does not exactly
      cover the sweep's expected key set.
    """
    if not manifests:
        raise SweepError("nothing to merge")
    for i, manifest in enumerate(manifests):
        _check_manifest(manifest, f"manifest #{i + 1}")
    params = _sweep_params(manifests[0])
    for i, manifest in enumerate(manifests[1:], start=2):
        if _sweep_params(manifest) != params:
            raise SweepError(
                f"manifest #{i} describes a different sweep than #1: "
                f"{_sweep_params(manifest)} != {params}")

    entries: Dict[str, dict] = {}
    sources: Dict[str, str] = {}
    simulated_by: Dict[str, int] = {}
    duplicate_runs = []
    for i, manifest in enumerate(manifests, start=1):
        for key, meta in manifest.get("entries", {}).items():
            known = entries.get(key)
            if known is not None and known != meta:
                raise SweepError(
                    f"shard results diverge for key {key[:12]}…: "
                    f"{known} != {meta}")
            entries[key] = meta
            source = manifest.get("sources", {}).get(key, "unknown")
            if source == "simulated":
                if key in simulated_by:
                    duplicate_runs.append(key)
                else:
                    simulated_by[key] = i
            if sources.get(key) != "simulated":
                sources[key] = source
    if duplicate_runs:
        raise SweepError(
            f"{len(duplicate_runs)} key(s) simulated by more than one "
            f"shard (expected disjoint slices): "
            + ", ".join(k[:12] + "…" for k in duplicate_runs[:5]))

    missing: List[str] = []
    unexpected: List[str] = []
    if verify_coverage:
        expected = sweep_keys(
            sweep_requests(params["benchmarks"], params["widths"],
                           params["engine"]),
            RunScheduler(jobs=1))
        missing = sorted(set(expected) - set(entries))
        unexpected = sorted(set(entries) - set(expected))
        if missing or unexpected:
            raise SweepError(
                f"merged sweep does not cover the expected key set: "
                f"{len(missing)} missing, {len(unexpected)} unexpected "
                f"(of {len(expected)} expected)")

    walls = [m.get("stats", {}).get("wall_seconds", 0.0)
             for m in manifests]
    merged_stats = {
        "machine_runs": sum(m.get("stats", {}).get("machine_runs", 0)
                            for m in manifests),
        "cache_hits": sum(m.get("stats", {}).get("cache_hits", 0)
                          for m in manifests),
        "wall_seconds": round(sum(walls), 6),
        "max_shard_wall_seconds": round(max(walls), 6) if walls else 0.0,
        "shards_merged": len(manifests),
    }
    merged = {
        "kind": SWEEP_MANIFEST_KIND,
        "format_version": CACHE_FORMAT_VERSION,
        "sweep": dict(params, shard=None, incremental=False),
        "coverage": {
            "total_requests": manifests[0]["coverage"]["total_requests"],
            "selected": len(entries),
        },
        "backend": manifests[0].get("backend", {"backend": "none"}),
        "entries": entries,
        "sources": sources,
        "stats": merged_stats,
        "speedups": sweep_speedups(entries),
    }
    return merged
