"""Architectural machine state: registers, memory, symbols, PC.

The :class:`SymbolTable` maps data-segment symbol names to their loaded
base addresses; effective addresses follow the paper's element-scaled
``[base + index]`` convention, where the induction variable counts
*elements* and the access's element type supplies the scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.isa.program import Program
from repro.isa.registers import RegisterFile
from repro.memory.memory import Memory
from repro.simd.accelerator import VectorRegisterFile


@dataclass
class SymbolInfo:
    """Placement of one data array."""

    name: str
    addr: int
    elem: str
    count: int
    read_only: bool = False


class SymbolTable:
    """Name -> placement for every loaded data array."""

    def __init__(self) -> None:
        self._symbols: Dict[str, SymbolInfo] = {}

    def add(self, info: SymbolInfo) -> None:
        if info.name in self._symbols:
            raise ValueError(f"duplicate symbol {info.name!r}")
        self._symbols[info.name] = info

    def lookup(self, name: str) -> SymbolInfo:
        try:
            return self._symbols[name]
        except KeyError:
            raise KeyError(f"undefined symbol {name!r}") from None

    def address_of(self, name: str) -> int:
        return self.lookup(name).addr

    def __contains__(self, name: str) -> bool:
        return name in self._symbols

    def __iter__(self):
        return iter(self._symbols.values())


class MachineState:
    """All architectural state of one simulated machine."""

    def __init__(self, program: Program, memory: Memory, symbols: SymbolTable,
                 vector_width: Optional[int] = None) -> None:
        self.program = program
        self.memory = memory
        self.symbols = symbols
        self.regs = RegisterFile()
        self.vregs: Optional[VectorRegisterFile] = (
            VectorRegisterFile(vector_width) if vector_width else None
        )
        self.pc: int = program.label_index(program.entry)
        self.halted: bool = False
        self.instructions_retired: int = 0

    @property
    def has_simd(self) -> bool:
        return self.vregs is not None
