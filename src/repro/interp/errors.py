"""Execution-error types shared by the reference and fast engines.

Kept in a leaf module so :mod:`repro.isa.decoded` (the pre-decode pass)
can raise the same exception type as :mod:`repro.interp.executor`
without creating an import cycle between the two.
"""

from __future__ import annotations


class ExecutionError(Exception):
    """Semantic error during execution (bad operands, misalignment, ...)."""
