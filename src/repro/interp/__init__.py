"""Functional execution: architectural state and the instruction executor."""

from repro.interp.events import RetireEvent
from repro.interp.executor import (
    ENGINES,
    ExecutionError,
    Executor,
    FastExecutor,
    TurboExecutor,
    make_executor,
)
from repro.interp.state import MachineState, SymbolTable

__all__ = [
    "RetireEvent",
    "ENGINES",
    "ExecutionError",
    "Executor",
    "FastExecutor",
    "TurboExecutor",
    "make_executor",
    "MachineState",
    "SymbolTable",
]
