"""Functional execution: architectural state and the instruction executor."""

from repro.interp.events import RetireEvent
from repro.interp.executor import ExecutionError, Executor
from repro.interp.state import MachineState, SymbolTable

__all__ = [
    "RetireEvent",
    "ExecutionError",
    "Executor",
    "MachineState",
    "SymbolTable",
]
