"""Retirement events: the interface between execution, timing, and translation.

Every executed instruction produces one :class:`RetireEvent`.  The event
carries exactly the information the paper's post-retirement translator
taps from the pipeline (section 4.1): the retiring instruction, the data
value it produced, and — for memory operations — the effective address.
The timing model consumes the same stream to charge cycles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.isa.instructions import Instruction

Number = Union[int, float]


@dataclass(frozen=True)
class RetireEvent:
    """One retired instruction.

    Attributes:
        pc: instruction index of the retired instruction.
        instr: the instruction itself.
        value: the value written to the destination register (the
            translator's ``Data`` input), or the stored value for stores;
            ``None`` when nothing was produced.
        mem_addr: effective byte address for loads/stores, else ``None``.
        taken: branch outcome for control-flow instructions.
        next_pc: instruction index control flow proceeds to.
        in_vector_unit: True when this event came from translated SIMD
            microcode rather than the scalar pipeline.
        vector_width: lane count for vector memory operations (so the
            cache model can charge the full access footprint).
    """

    pc: int
    instr: Instruction
    value: Optional[Number] = None
    mem_addr: Optional[int] = None
    taken: bool = False
    next_pc: int = 0
    in_vector_unit: bool = False
    vector_width: Optional[int] = None
