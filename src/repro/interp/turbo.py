"""Superblock-fused execution for the ``turbo`` engine.

The fast engine (:mod:`repro.isa.decoded`) already pre-decodes every
instruction into a handler closure, but still pays three per-instruction
costs on every retirement: a frozen-dataclass
:class:`~repro.interp.events.RetireEvent` allocation, a Python-level
:meth:`~repro.pipeline.core.PipelineModel.account` call, and the
machine's dispatch loop itself.  This module removes all three at
*superblock* granularity, the classic region-specialization move of
interpreter JITs (and of Revec-style region vectorizers): specialize a
straight-line run once, execute it many times.

On top of a :class:`~repro.isa.decoded.DecodedProgram`, a
:class:`SuperblockTable` lazily discovers straight-line handler runs —
basic blocks ending at branches, calls, returns, or ``halt`` (in this
repo, chiefly the bodies of the outlined scalar loops) — and compiles
each into one *fused* closure:

* **One dispatch per block.**  The generated function chains the
  block's "quiet" handlers (event-free twins of the fast engine's
  handlers, defined here) and additionally inlines the dominant
  instruction shapes — integer ALU/compare/move, binary32
  add/sub/mul on float registers, and the block-closing branch — as
  straight Python operating on hoisted register-bank dicts, threading
  register and flag state locally instead of through per-instruction
  accessor round-trips.
* **Zero-allocation retirement.**  No ``RetireEvent`` is built.  Memory
  operations append their effective address to a per-block list (reused
  across executions), branches return their taken flag, and the
  pipeline consumes the pre-extracted per-block
  :class:`~repro.pipeline.core.BlockTiming` via one
  :meth:`~repro.pipeline.core.PipelineModel.account_block` call.
  Observers that genuinely need event objects — the dynamic translator
  while observing an outlined function, or a
  :class:`~repro.system.trace.TraceRecorder` — force the machine onto
  the fast engine's per-instruction path, whose events are eager and
  bit-identical by construction (see ``docs/execution-engines.md``).

Error fidelity is preserved exactly: a fused closure that faults
restores ``state.pc`` to the faulting instruction and
``instructions_retired`` to the completed prefix before re-raising, so
diagnostics match the per-instruction engines; decode-time failures are
deferred into raising handlers just like :func:`repro.isa.decoded.predecode`.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro import arith
from repro.codegen.backend import get_backend
from repro.codegen.lift import lift_superblock
from repro.interp.errors import ExecutionError
from repro.isa.decoded import (
    COND_CODES,
    FLOAT_BITWISE_OPS,
    FLOAT_UNARY_OPS,
    VEC_BINARY_OPS,
    VEC_PERM_OPS,
    VEC_RED_OPS,
    VEC_UNARY_OPS,
    DecodedProgram,
    _addr_getter,
    _FLOAT_ALU_FAST,
    _INT_ALU_FAST,
    _no_accel_error,
    _PY_FLOAT_OPS,
    _resolve_target,
    _scalar_writer,
    _value_getter,
    _vector_getter,
    mask_bits,
    predecode,
)
from repro.interp.macro import build_fragment_plan
from repro.isa.encoding import encode_program
from repro.isa.instructions import Imm, Instruction, Reg
from repro.isa.opcodes import ELEM_SIZES, LOAD_ELEM, OPCODES, STORE_ELEM, InstrClass
from repro.isa.registers import LINK_REGISTER, is_float_reg, is_int_reg
from repro.memory.alignment import vector_alignment_ok
from repro.pipeline.core import BlockTiming
from repro.simd import vector_ops
from repro.simd.permutations import PermPattern


# ---------------------------------------------------------------------------
# Quiet handlers
#
# Event-free twins of the repro.isa.decoded handlers: identical side
# effects, identical checks in identical order, but no RetireEvent, no
# state.pc bookkeeping (control flow excepted) and no retired counter —
# the fused block does those in bulk.  Memory handlers return the
# effective address; branches return the taken flag.
# ---------------------------------------------------------------------------


def _q_raiser(exc: BaseException):
    def handler(state):
        raise exc
    return handler


def _q_sys(pc: int, instr: Instruction):
    if instr.opcode == "halt":
        next_pc = pc + 1

        def halt(state):
            state.halted = True
            state.pc = next_pc
        return halt

    def nop(state):
        return None
    return nop


def _q_move(pc: int, instr: Instruction):
    opcode = instr.opcode
    base = "fmov" if opcode.startswith("fmov") else "mov"
    cond = opcode[len(base):]
    cond_fn = None
    if cond:
        cond_fn = COND_CODES.get(cond)
        if cond_fn is None:
            raise ExecutionError(
                f"unknown condition suffix {cond!r} in opcode {opcode!r}"
            )
    body_error: Optional[ExecutionError] = None
    body = None
    if len(instr.srcs) != 1:
        body_error = ExecutionError(f"{opcode} expects one source")
    elif instr.dst is None:
        body_error = ExecutionError(f"{opcode} needs a destination")
    else:
        get_src = _value_getter(instr.srcs[0])
        dname = instr.dst.name
        write = _scalar_writer(dname)
        if is_int_reg(dname):
            def body(state, _get=get_src, _write=write):
                _write(state, arith.wrap_int(int(_get(state))))
        else:
            def body(state, _get=get_src, _write=write):
                _write(state, arith.f32(float(_get(state))))
    if cond_fn is None and body_error is None:
        return body

    def handler(state):
        if cond_fn is not None and not cond_fn(state.regs.flags):
            return None
        if body_error is not None:
            raise body_error
        return body(state)
    return handler


def _q_int_alu(pc: int, instr: Instruction):
    opcode = instr.opcode
    if len(instr.srcs) != 2:
        raise ExecutionError(f"{opcode} expects two sources")
    get_a = _value_getter(instr.srcs[0])
    get_b = _value_getter(instr.srcs[1])
    if instr.dst is None:
        raise ExecutionError(f"{opcode} needs a destination")
    dname = instr.dst.name
    write = _scalar_writer(dname)

    if is_float_reg(dname):
        if opcode == "and":
            def handler(state):
                a = get_a(state)
                b = get_b(state)
                write(state, arith.float_bitwise("fand", float(a),
                                                 mask_bits(b)))
            return handler
        if opcode == "orr":
            def handler(state):
                a = get_a(state)
                b = get_b(state)
                if isinstance(b, float):
                    value = arith.float_or_floats(float(a), b)
                else:
                    value = arith.float_bitwise("forr", float(a),
                                                mask_bits(b))
                write(state, value)
            return handler
        raise ExecutionError(
            f"integer op {opcode!r} cannot target float register"
        )

    fast = _INT_ALU_FAST.get(opcode)
    if fast is not None:
        a_op, b_op = instr.srcs
        a_name = (a_op.name if isinstance(a_op, Reg)
                  and is_int_reg(a_op.name) else None)
        if a_name is not None and is_int_reg(dname):
            if isinstance(b_op, Reg) and is_int_reg(b_op.name):
                b_name = b_op.name

                def handler(state):
                    ints = state.regs.ints
                    ints[dname] = fast(ints[a_name], ints[b_name])
                return handler
            if isinstance(b_op, Imm):
                b_const = int(b_op.value)

                def handler(state):
                    ints = state.regs.ints
                    ints[dname] = fast(ints[a_name], b_const)
                return handler

        def handler(state):
            write(state, fast(int(get_a(state)), int(get_b(state))))
        return handler

    int_op = arith.int_op

    def handler(state):
        write(state, int_op(opcode, int(get_a(state)), int(get_b(state)),
                            "i32"))
    return handler


def _q_float_alu(pc: int, instr: Instruction):
    opcode = instr.opcode
    if instr.dst is None:
        raise ExecutionError(f"{opcode} needs a destination")
    dname = instr.dst.name
    write = _scalar_writer(dname)
    float_op = arith.float_op
    if not is_float_reg(dname):
        def write(state, value, _n=dname):  # noqa: F811 - intentional
            state.regs.write(_n, value)

    if opcode in FLOAT_UNARY_OPS:
        if len(instr.srcs) != 1:
            raise ExecutionError(f"{opcode} expects one source")
        get_a = _value_getter(instr.srcs[0])

        def handler(state):
            write(state, float_op(opcode, float(get_a(state))))
        return handler

    if opcode in FLOAT_BITWISE_OPS:
        get_a = _value_getter(instr.srcs[0]) if instr.srcs else None
        get_b = _value_getter(instr.srcs[1]) if len(instr.srcs) > 1 else None
        if get_a is None or get_b is None:
            return _q_raiser(IndexError("tuple index out of range"))
        is_and = opcode == "fand"

        def handler(state):
            a = float(get_a(state))
            b = get_b(state)
            if isinstance(b, float):
                value = (arith.float_and_floats(a, b) if is_and
                         else arith.float_or_floats(a, b))
            else:
                value = arith.float_bitwise(opcode, a, int(b))
            write(state, value)
        return handler

    if len(instr.srcs) != 2:
        raise ExecutionError(f"{opcode} expects two sources")
    get_a = _value_getter(instr.srcs[0])
    get_b = _value_getter(instr.srcs[1])

    np_op = _FLOAT_ALU_FAST.get(opcode)
    if np_op is not None:
        f32t = np.float32
        py_op = _PY_FLOAT_OPS.get(opcode)
        a_src, b_src = instr.srcs
        a_name = (a_src.name if isinstance(a_src, Reg)
                  and is_float_reg(a_src.name) else None)
        if py_op is not None and a_name is not None and is_float_reg(dname):
            b_name = (b_src.name if isinstance(b_src, Reg)
                      and is_float_reg(b_src.name) else None)
            if b_name is not None:
                def handler(state):
                    floats = state.regs.floats
                    floats[dname] = float(
                        f32t(py_op(floats[a_name], floats[b_name])))
                return handler
            if isinstance(b_src, Imm):
                b_const = float(f32t(float(b_src.value)))

                def handler(state):
                    floats = state.regs.floats
                    floats[dname] = float(f32t(py_op(floats[a_name],
                                                     b_const)))
                return handler

        def handler(state):
            write(state, float(np_op(f32t(get_a(state)), f32t(get_b(state)))))
        return handler

    def handler(state):
        write(state, float_op(opcode, float(get_a(state)),
                              float(get_b(state))))
    return handler


def _q_cmp(pc: int, instr: Instruction):
    if len(instr.srcs) != 2:
        raise ExecutionError(f"{instr.opcode} expects two operands")
    a_src, b_src = instr.srcs

    a_name = (a_src.name if isinstance(a_src, Reg)
              and is_int_reg(a_src.name) else None)
    if a_name is not None and isinstance(b_src, Imm):
        b_const = b_src.value

        def handler(state):
            regs = state.regs
            a = regs.ints[a_name]
            flags = regs.flags
            flags["lt"] = a < b_const
            flags["eq"] = a == b_const
            flags["gt"] = a > b_const
        return handler
    if a_name is not None and isinstance(b_src, Reg) \
            and is_int_reg(b_src.name):
        b_name = b_src.name

        def handler(state):
            regs = state.regs
            ints = regs.ints
            a = ints[a_name]
            b = ints[b_name]
            flags = regs.flags
            flags["lt"] = a < b
            flags["eq"] = a == b
            flags["gt"] = a > b
        return handler

    get_a = _value_getter(a_src)
    get_b = _value_getter(b_src)

    def handler(state):
        state.regs.set_flags(get_a(state), get_b(state))
    return handler


def _q_load(pc: int, instr: Instruction):
    elem, signed = LOAD_ELEM[instr.opcode]
    get_addr = _addr_getter(instr.mem, elem)
    dname = instr.dst.name
    bad_float_dst = is_float_reg(dname) and elem != "f32"
    is_f32 = elem == "f32"
    if is_f32 and not is_float_reg(dname):
        def write(state, value, _n=dname):
            state.regs.write(_n, value)
    else:
        write = _scalar_writer(dname)

    def handler(state):
        addr = get_addr(state)
        value = state.memory.load(addr, elem, signed=signed)
        if is_f32:
            value = arith.f32(value)
        if bad_float_dst:
            raise ExecutionError("integer load cannot target a float register")
        write(state, value)
        return addr
    return handler


def _q_store(pc: int, instr: Instruction):
    elem = STORE_ELEM[instr.opcode]
    get_addr = _addr_getter(instr.mem, elem)
    get_src = _value_getter(instr.srcs[0])

    def handler(state):
        addr = get_addr(state)
        state.memory.store(addr, elem, get_src(state))
        return addr
    return handler


def _q_branch(pc: int, instr: Instruction, program):
    opcode = instr.opcode
    target_index, target_error = _resolve_target(program, instr.target)
    fall_through = pc + 1
    if opcode == "b":
        def handler(state):
            if target_error is not None:
                raise target_error
            state.pc = target_index
            return True
        return handler

    cond_fn = COND_CODES.get(opcode[1:])
    if cond_fn is None:
        raise ExecutionError(
            f"unknown branch condition {opcode[1:]!r} in opcode {opcode!r}"
        )

    def handler(state):
        taken = cond_fn(state.regs.flags)
        if taken:
            if target_error is not None:
                raise target_error
            state.pc = target_index
        else:
            state.pc = fall_through
        return taken
    return handler


def _q_call(pc: int, instr: Instruction, program):
    target_index, target_error = _resolve_target(program, instr.target)
    return_addr = pc + 1

    def handler(state):
        # Link register is written before target resolution, like the
        # reference, so the side effect survives a bad-target failure.
        state.regs.ints[LINK_REGISTER] = return_addr
        if target_error is not None:
            raise target_error
        state.pc = target_index
    return handler


def _q_ret(pc: int, instr: Instruction):
    def handler(state):
        state.pc = int(state.regs.ints[LINK_REGISTER])
    return handler


def _q_vld(pc: int, instr: Instruction):
    opcode = instr.opcode
    elem = instr.elem
    elem_error = None
    if elem is None:
        elem_error = ExecutionError("vld requires an element type suffix")
        get_addr = None
        elem_size = None
    else:
        get_addr = _addr_getter(instr.mem, elem)
        elem_size = ELEM_SIZES[elem]
    dname = instr.dst.name

    def handler(state):
        vregs = state.vregs
        if vregs is None:
            raise _no_accel_error(opcode)
        if elem_error is not None:
            raise elem_error
        width = vregs.width
        addr = get_addr(state)
        if not vector_alignment_ok(addr, elem_size, width):
            raise ExecutionError(
                f"unaligned vector access at {addr:#x} "
                f"(width {width}, elem {elem})"
            )
        lanes = state.memory.load_vector(addr, elem, width)
        vregs.write(dname, lanes, elem)
        return addr
    return handler


def _q_vst(pc: int, instr: Instruction):
    opcode = instr.opcode
    elem = instr.elem
    elem_error = None
    if elem is None:
        elem_error = ExecutionError("vst requires an element type suffix")
        get_addr = None
        elem_size = None
        get_src = None
    else:
        get_addr = _addr_getter(instr.mem, elem)
        elem_size = ELEM_SIZES[elem]
        get_src = _vector_getter(instr.srcs[0])

    def handler(state):
        vregs = state.vregs
        if vregs is None:
            raise _no_accel_error(opcode)
        if elem_error is not None:
            raise elem_error
        width = vregs.width
        addr = get_addr(state)
        if not vector_alignment_ok(addr, elem_size, width):
            raise ExecutionError(
                f"unaligned vector access at {addr:#x} "
                f"(width {width}, elem {elem})"
            )
        state.memory.store_vector(addr, elem, get_src(state, width))
        return addr
    return handler


def _q_vec_binary(pc: int, instr: Instruction):
    opcode = instr.opcode
    elem = instr.elem
    get_a = _vector_getter(instr.srcs[0])
    b_operand = instr.srcs[1]
    if isinstance(b_operand, Imm):
        b_const = b_operand.value
        get_b = None
    else:
        b_const = None
        get_b = _vector_getter(b_operand)
    lower = vector_ops.binary_fast_fn(opcode, elem or "i32")
    dname = instr.dst.name

    def handler(state):
        vregs = state.vregs
        if vregs is None:
            raise _no_accel_error(opcode)
        width = vregs.width
        a = get_a(state, width)
        b = b_const if get_b is None else get_b(state, width)
        vregs.write(dname, lower(a, b), elem)
    return handler


def _q_vec_unary(pc: int, instr: Instruction):
    opcode = instr.opcode
    elem = instr.elem
    get_a = _vector_getter(instr.srcs[0])
    lower = vector_ops.unary_fast_fn(opcode, elem or "i32")
    dname = instr.dst.name

    def handler(state):
        vregs = state.vregs
        if vregs is None:
            raise _no_accel_error(opcode)
        width = vregs.width
        vregs.write(dname, lower(get_a(state, width)), elem)
    return handler


def _q_vec_perm(pc: int, instr: Instruction):
    opcode = instr.opcode
    elem = instr.elem
    get_src = _vector_getter(instr.srcs[0])
    dname = instr.dst.name

    def build_pattern(width: int) -> PermPattern:
        period_operand = instr.srcs[1] if len(instr.srcs) > 1 else Imm(width)
        if not isinstance(period_operand, Imm):
            raise ExecutionError(f"{opcode} period must be an immediate")
        period = int(period_operand.value)
        if opcode == "vbfly":
            return PermPattern("bfly", period)
        if opcode == "vrev":
            return PermPattern("rev", period)
        if len(instr.srcs) < 3 or not isinstance(instr.srcs[2], Imm):
            raise ExecutionError("vrot expects #period, #amount")
        return PermPattern("rot", period, int(instr.srcs[2].value))

    maps: Dict[int, list] = {}

    def handler(state):
        vregs = state.vregs
        if vregs is None:
            raise _no_accel_error(opcode)
        width = vregs.width
        src = get_src(state, width)
        cached = maps.get(width)
        if cached is None:
            pattern = build_pattern(width)
            if width % pattern.period != 0:
                raise ExecutionError(
                    f"{pattern.name} does not tile hardware width {width}"
                )
            cached = pattern.lane_map(width)
            maps[width] = cached
        vregs.write(dname, [src[i] for i in cached], elem)
    return handler


def _q_vec_reduce(pc: int, instr: Instruction):
    opcode = instr.opcode
    elem = instr.elem
    get_acc = _value_getter(instr.srcs[0])
    get_lanes = _vector_getter(instr.srcs[1])
    lower = vector_ops.reduce_fast_fn(opcode, elem or "i32")
    dname = instr.dst.name

    def handler(state):
        vregs = state.vregs
        if vregs is None:
            raise _no_accel_error(opcode)
        width = vregs.width
        value = lower(get_acc(state), get_lanes(state, width))
        state.regs.write(dname, value)
    return handler


def _quiet_one(pc: int, instr: Instruction, program):
    """Quiet twin of :func:`repro.isa.decoded._decode_one`."""
    opcode = instr.opcode
    spec = OPCODES.get(opcode)
    if spec is None:
        raise ExecutionError(f"unknown opcode {opcode!r} at pc={pc}")
    cls = spec.cls
    if cls is InstrClass.SYS:
        return _q_sys(pc, instr)
    if cls is InstrClass.MOVE:
        return _q_move(pc, instr)
    if cls in (InstrClass.ALU, InstrClass.MUL):
        return _q_int_alu(pc, instr)
    if cls in (InstrClass.FALU, InstrClass.FMUL, InstrClass.FDIV):
        return _q_float_alu(pc, instr)
    if cls is InstrClass.CMP:
        return _q_cmp(pc, instr)
    if cls is InstrClass.LOAD and not spec.is_vector:
        return _q_load(pc, instr)
    if cls is InstrClass.STORE and not spec.is_vector:
        return _q_store(pc, instr)
    if cls is InstrClass.BRANCH:
        return _q_branch(pc, instr, program)
    if cls is InstrClass.CALL:
        return _q_call(pc, instr, program)
    if cls is InstrClass.RET:
        return _q_ret(pc, instr)
    if opcode == "vld":
        return _q_vld(pc, instr)
    if opcode == "vst":
        return _q_vst(pc, instr)
    if opcode in VEC_BINARY_OPS:
        return _q_vec_binary(pc, instr)
    if opcode in VEC_UNARY_OPS:
        return _q_vec_unary(pc, instr)
    if opcode in VEC_PERM_OPS:
        return _q_vec_perm(pc, instr)
    if opcode in VEC_RED_OPS:
        return _q_vec_reduce(pc, instr)
    raise ExecutionError(f"unhandled opcode {opcode!r}")


# ---------------------------------------------------------------------------
# Superblock discovery + fusion
#
# Discovery and codegen live in the shared codegen layer: the lift pass
# (repro.codegen.lift.lift_superblock) scans a straight-line run into a
# BlockSpec, and the "superblock" backend (repro.codegen.superblock)
# emits the fused run closure and the compiled timing specializations.
# This module keeps the per-program tables, memoization, and the quiet
# handlers the emitted code chains.
# ---------------------------------------------------------------------------


class FusedBlock:
    """One compiled superblock: run it, then account its timing.

    ``run(state)`` executes every instruction in the block (raising from
    the faulting pc exactly like the per-instruction engines) and
    returns the terminating branch's taken flag (None for other
    terminators).  ``mem`` then holds the block's effective addresses in
    execution order, ready for
    :meth:`~repro.pipeline.core.PipelineModel.account_block` together
    with ``timing``.
    """

    __slots__ = ("run", "mem", "timing", "count")

    def __init__(self, run, mem: List[int], timing: BlockTiming) -> None:
        self.run = run
        self.mem = mem
        self.timing = timing
        self.count = timing.count


class SuperblockTable:
    """Lazily fuses a :class:`~repro.isa.decoded.DecodedProgram` into
    superblocks, keyed by entry pc.

    ``marked`` (per-pc bools) stops blocks *before* marked calls so the
    machine's microcode-injection path keeps control of them; fragments
    pass ``pc_offset``/``in_vector_unit`` so their
    :class:`~repro.pipeline.core.BlockTiming` rows carry the offset PCs
    and skip instruction fetch, exactly like the per-event fragment path.
    """

    def __init__(self, table: DecodedProgram, pipeline,
                 marked: Optional[List[bool]] = None,
                 vector_width: Optional[int] = None,
                 pc_offset: int = 0,
                 in_vector_unit: bool = False) -> None:
        self.program = table.program
        self.instructions = table.program.instructions
        self.metas = table.metas
        self.marked = marked
        self.vector_width = vector_width
        self.pc_offset = pc_offset
        self.in_vector_unit = in_vector_unit
        direct, code_base, line_bytes = pipeline.fetch_profile()
        self.fetch_mode = 0 if in_vector_unit else (1 if direct else 2)
        self.code_base = code_base
        self.iline_bytes = line_bytes
        # Timing-model constants baked into the compiled timing closures
        # (config-derived, so tables memoized per PipelineConfig — see
        # superblock_table_for — never see them change).
        pconfig = pipeline.config
        self._icache_hit = pconfig.icache.hit_latency
        self._dcache_hit = pconfig.dcache.hit_latency
        self._mispredict_penalty = pconfig.mispredict_penalty
        self._call_redirect_penalty = pconfig.call_redirect_penalty
        n = len(self.instructions)
        self._quiet_cache: List[Optional[tuple]] = [None] * n
        self._blocks: Dict[int, FusedBlock] = {}
        #: telemetry counters (docs/observability.md): every ``_build``
        #: bumps ``compiles``; ``lookups`` advances only through
        #: :meth:`block_at_counted`, which callers bind in place of
        #: :meth:`block_at` when telemetry is enabled — the plain hot
        #: path stays untouched when it is not.
        self.lookups = 0
        self.compiles = 0

    def block_at(self, pc: int) -> FusedBlock:
        block = self._blocks.get(pc)
        if block is None:
            block = self._blocks[pc] = self._build(pc)
        return block

    def block_at_counted(self, pc: int) -> FusedBlock:
        """:meth:`block_at` plus a fusion-table lookup count.

        Tables are memoized across runs, so consumers snapshot
        ``lookups`` / ``compiles`` around a run and report the deltas
        (``turbo.superblock.*`` / ``turbo.fragment.*`` counters); a
        lookup that triggers ``_build`` is the table's "miss".
        """
        self.lookups += 1
        block = self._blocks.get(pc)
        if block is None:
            block = self._blocks[pc] = self._build(pc)
        return block

    # -- internals ----------------------------------------------------------

    def quiet(self, pc: int):
        """(handler, decoded_ok) for one pc, cached.

        Public because the superblock backend's fused-block emitter
        (:func:`repro.codegen.superblock.emit_fused_block`) chains these
        handlers into its generated code.
        """
        cached = self._quiet_cache[pc]
        if cached is None:
            instr = self.instructions[pc]
            try:
                cached = (_quiet_one(pc, instr, self.program), True)
            except Exception as exc:
                cached = (_q_raiser(exc), False)
            self._quiet_cache[pc] = cached
        return cached

    def _build(self, entry: int) -> FusedBlock:
        self.compiles += 1
        backend = get_backend("superblock")
        spec = lift_superblock(self, entry)
        timing = BlockTiming(
            spec.rows, spec.blen, spec.simd, self.fetch_mode,
            spec.timing_term, spec.branch_pc, spec.branch_target,
            backend.lower_block_timing(
                spec,
                icache_hit=self._icache_hit,
                dcache_hit=self._dcache_hit,
                mispredict_penalty=self._mispredict_penalty,
                call_redirect_penalty=self._call_redirect_penalty))
        run, mem = backend.lower_block(spec, self)
        return FusedBlock(run, mem, timing)


# ---------------------------------------------------------------------------
# Cross-run memoization
#
# Every turbo artifact is a pure function of the program object and a
# hashable config slice: the decode table depends on the program alone,
# and a SuperblockTable additionally on the PipelineConfig (fetch
# addressing and the latencies baked into its compiled timing closures),
# the marked-call map, and the hardware vector width.  Re-running the
# same program therefore reuses the fused blocks instead of re-deriving
# them — the per-run decode+fuse cost that would otherwise swamp short
# kernels.  Compiled closures take ``state`` / ``pipe`` as arguments, so
# nothing run-specific is captured.  A small strong-reference LRU bounds
# memory; entries also pin their program, so ``id()`` keys cannot be
# recycled while an entry is live.
# ---------------------------------------------------------------------------

_MEMO_CAP = 32
_decode_memo: "OrderedDict[int, DecodedProgram]" = OrderedDict()
_table_memo: "OrderedDict[tuple, Tuple[DecodedProgram, SuperblockTable]]" \
    = OrderedDict()


def decoded_table_for(program) -> DecodedProgram:
    """The memoized :func:`repro.isa.decoded.predecode` of *program*."""
    key = id(program)
    table = _decode_memo.get(key)
    if table is not None and table.program is program:
        _decode_memo.move_to_end(key)
        return table
    table = predecode(program)
    _decode_memo[key] = table
    if len(_decode_memo) > _MEMO_CAP:
        _decode_memo.popitem(last=False)
    return table


def superblock_table_for(table: DecodedProgram, pipeline,
                         marked: Optional[List[bool]],
                         vector_width: Optional[int]) -> SuperblockTable:
    """The memoized main-program :class:`SuperblockTable` for *table*.

    Fragment tables (``pc_offset`` / ``in_vector_unit``) are per-run
    objects and stay in the machine's per-run dict instead.
    """
    key = (id(table), pipeline.config, vector_width,
           None if marked is None else tuple(marked))
    entry = _table_memo.get(key)
    if entry is not None and entry[0] is table:
        _table_memo.move_to_end(key)
        return entry[1]
    blocks = SuperblockTable(table, pipeline, marked, vector_width)
    _table_memo[key] = (table, blocks)
    if len(_table_memo) > _MEMO_CAP:
        _table_memo.popitem(last=False)
    return blocks


_fragment_memo: "OrderedDict[tuple, tuple]" = OrderedDict()


def fragment_tables_for(fragment, pipeline, width: int, offset: int,
                        encoded: Optional[bytes] = None,
                        macro: bool = False):
    """(program, decode table, SuperblockTable, plan) for a fragment.

    The dynamic translator rebuilds its fragments on every run, so they
    cannot be memoized by object identity; but for a given source
    program and configuration the translation is deterministic, so the
    *bytes* recur — the key is :func:`~repro.isa.encoding.encode_program`
    (which covers labels and data, i.e. everything decode consumes) plus
    the width/offset/config facets baked into the fused blocks.  A hit
    returns the previously fused fragment *program* too: the caller runs
    that canonical object so the decode table's program-identity check
    and the fused closures' resolved targets stay coherent.

    *encoded*, when the caller already holds the fragment's canonical
    bytes (:meth:`~repro.core.translate.ucode_cache.MicrocodeEntry.encoded_bytes`),
    skips re-encoding.  With ``macro=True`` the entry additionally
    carries the fragment's whole-loop plan
    (:func:`repro.interp.macro.build_fragment_plan`), or ``None`` when
    no loop matched; the macro flag is part of the key so turbo and
    macro runs never share ``BlockTiming`` objects.
    """
    if encoded is None:
        encoded = encode_program(fragment)
    key = (encoded, width, offset, pipeline.config, macro)
    entry = _fragment_memo.get(key)
    if entry is not None:
        _fragment_memo.move_to_end(key)
        return entry
    table = predecode(fragment)
    blocks = SuperblockTable(table, pipeline, None, width, offset, True)
    plan = None
    if macro:
        plan = build_fragment_plan(fragment, blocks, pipeline, width) or None
    entry = (fragment, table, blocks, plan)
    _fragment_memo[key] = entry
    if len(_fragment_memo) > _MEMO_CAP:
        _fragment_memo.popitem(last=False)
    return entry


def fragment_tables_for_entry(entry, pipeline, offset: int,
                              macro: bool = False):
    """:func:`fragment_tables_for` keyed by a microcode entry's identity.

    A :class:`~repro.core.translate.ucode_cache.MicrocodeEntry` memoizes
    its canonical bytes (and a store-loaded entry is seeded with the
    wire bytes), so a fresh translation, a cross-width retranslation and
    a persistent-store hit that agree byte-for-byte all land on the same
    memo slot — none of them compiles the fused tables twice.
    """
    return fragment_tables_for(entry.fragment, pipeline, entry.width,
                               offset, encoded=entry.encoded_bytes(),
                               macro=macro)
