"""Superblock-fused execution for the ``turbo`` engine.

The fast engine (:mod:`repro.isa.decoded`) already pre-decodes every
instruction into a handler closure, but still pays three per-instruction
costs on every retirement: a frozen-dataclass
:class:`~repro.interp.events.RetireEvent` allocation, a Python-level
:meth:`~repro.pipeline.core.PipelineModel.account` call, and the
machine's dispatch loop itself.  This module removes all three at
*superblock* granularity, the classic region-specialization move of
interpreter JITs (and of Revec-style region vectorizers): specialize a
straight-line run once, execute it many times.

On top of a :class:`~repro.isa.decoded.DecodedProgram`, a
:class:`SuperblockTable` lazily discovers straight-line handler runs —
basic blocks ending at branches, calls, returns, or ``halt`` (in this
repo, chiefly the bodies of the outlined scalar loops) — and compiles
each into one *fused* closure:

* **One dispatch per block.**  The generated function chains the
  block's "quiet" handlers (event-free twins of the fast engine's
  handlers, defined here) and additionally inlines the dominant
  instruction shapes — integer ALU/compare/move, binary32
  add/sub/mul on float registers, and the block-closing branch — as
  straight Python operating on hoisted register-bank dicts, threading
  register and flag state locally instead of through per-instruction
  accessor round-trips.
* **Zero-allocation retirement.**  No ``RetireEvent`` is built.  Memory
  operations append their effective address to a per-block list (reused
  across executions), branches return their taken flag, and the
  pipeline consumes the pre-extracted per-block
  :class:`~repro.pipeline.core.BlockTiming` via one
  :meth:`~repro.pipeline.core.PipelineModel.account_block` call.
  Observers that genuinely need event objects — the dynamic translator
  while observing an outlined function, or a
  :class:`~repro.system.trace.TraceRecorder` — force the machine onto
  the fast engine's per-instruction path, whose events are eager and
  bit-identical by construction (see ``docs/execution-engines.md``).

Error fidelity is preserved exactly: a fused closure that faults
restores ``state.pc`` to the faulting instruction and
``instructions_retired`` to the completed prefix before re-raising, so
diagnostics match the per-instruction engines; decode-time failures are
deferred into raising handlers just like :func:`repro.isa.decoded.predecode`.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro import arith
from repro.interp.errors import ExecutionError
from repro.isa.decoded import (
    COND_CODES,
    FLOAT_BITWISE_OPS,
    FLOAT_UNARY_OPS,
    VEC_BINARY_OPS,
    VEC_PERM_OPS,
    VEC_RED_OPS,
    VEC_UNARY_OPS,
    DecodedProgram,
    _addr_getter,
    _FLOAT_ALU_FAST,
    _INT_ALU_FAST,
    _no_accel_error,
    _PY_FLOAT_OPS,
    _resolve_target,
    _scalar_writer,
    _value_getter,
    _vector_getter,
    mask_bits,
    predecode,
)
from repro.interp.macro import build_fragment_plan
from repro.isa.encoding import encode_program
from repro.isa.instructions import Imm, Instruction, Reg
from repro.isa.opcodes import ELEM_SIZES, LOAD_ELEM, OPCODES, STORE_ELEM, InstrClass
from repro.isa.registers import LINK_REGISTER, is_float_reg, is_int_reg
from repro.memory.alignment import vector_alignment_ok
from repro.pipeline.core import _FLAGS, _INSTR_BYTES, BlockTiming
from repro.simd import vector_ops
from repro.simd.permutations import PermPattern

#: Upper bound on fused block length (defensive; real blocks are short).
_MAX_BLOCK = 200

#: Condition suffix -> Python expression over the hoisted ``flags`` dict,
#: mirroring :data:`repro.isa.decoded.COND_CODES` predicate for predicate.
_COND_EXPRS = {
    "eq": 'flags["eq"]',
    "ne": 'not flags["eq"]',
    "lt": 'flags["lt"]',
    "le": 'flags["lt"] or flags["eq"]',
    "gt": 'flags["gt"]',
    "ge": 'flags["gt"] or flags["eq"]',
}


# ---------------------------------------------------------------------------
# Quiet handlers
#
# Event-free twins of the repro.isa.decoded handlers: identical side
# effects, identical checks in identical order, but no RetireEvent, no
# state.pc bookkeeping (control flow excepted) and no retired counter —
# the fused block does those in bulk.  Memory handlers return the
# effective address; branches return the taken flag.
# ---------------------------------------------------------------------------


def _q_raiser(exc: BaseException):
    def handler(state):
        raise exc
    return handler


def _q_sys(pc: int, instr: Instruction):
    if instr.opcode == "halt":
        next_pc = pc + 1

        def halt(state):
            state.halted = True
            state.pc = next_pc
        return halt

    def nop(state):
        return None
    return nop


def _q_move(pc: int, instr: Instruction):
    opcode = instr.opcode
    base = "fmov" if opcode.startswith("fmov") else "mov"
    cond = opcode[len(base):]
    cond_fn = None
    if cond:
        cond_fn = COND_CODES.get(cond)
        if cond_fn is None:
            raise ExecutionError(
                f"unknown condition suffix {cond!r} in opcode {opcode!r}"
            )
    body_error: Optional[ExecutionError] = None
    body = None
    if len(instr.srcs) != 1:
        body_error = ExecutionError(f"{opcode} expects one source")
    elif instr.dst is None:
        body_error = ExecutionError(f"{opcode} needs a destination")
    else:
        get_src = _value_getter(instr.srcs[0])
        dname = instr.dst.name
        write = _scalar_writer(dname)
        if is_int_reg(dname):
            def body(state, _get=get_src, _write=write):
                _write(state, arith.wrap_int(int(_get(state))))
        else:
            def body(state, _get=get_src, _write=write):
                _write(state, arith.f32(float(_get(state))))
    if cond_fn is None and body_error is None:
        return body

    def handler(state):
        if cond_fn is not None and not cond_fn(state.regs.flags):
            return None
        if body_error is not None:
            raise body_error
        return body(state)
    return handler


def _q_int_alu(pc: int, instr: Instruction):
    opcode = instr.opcode
    if len(instr.srcs) != 2:
        raise ExecutionError(f"{opcode} expects two sources")
    get_a = _value_getter(instr.srcs[0])
    get_b = _value_getter(instr.srcs[1])
    if instr.dst is None:
        raise ExecutionError(f"{opcode} needs a destination")
    dname = instr.dst.name
    write = _scalar_writer(dname)

    if is_float_reg(dname):
        if opcode == "and":
            def handler(state):
                a = get_a(state)
                b = get_b(state)
                write(state, arith.float_bitwise("fand", float(a),
                                                 mask_bits(b)))
            return handler
        if opcode == "orr":
            def handler(state):
                a = get_a(state)
                b = get_b(state)
                if isinstance(b, float):
                    value = arith.float_or_floats(float(a), b)
                else:
                    value = arith.float_bitwise("forr", float(a),
                                                mask_bits(b))
                write(state, value)
            return handler
        raise ExecutionError(
            f"integer op {opcode!r} cannot target float register"
        )

    fast = _INT_ALU_FAST.get(opcode)
    if fast is not None:
        a_op, b_op = instr.srcs
        a_name = (a_op.name if isinstance(a_op, Reg)
                  and is_int_reg(a_op.name) else None)
        if a_name is not None and is_int_reg(dname):
            if isinstance(b_op, Reg) and is_int_reg(b_op.name):
                b_name = b_op.name

                def handler(state):
                    ints = state.regs.ints
                    ints[dname] = fast(ints[a_name], ints[b_name])
                return handler
            if isinstance(b_op, Imm):
                b_const = int(b_op.value)

                def handler(state):
                    ints = state.regs.ints
                    ints[dname] = fast(ints[a_name], b_const)
                return handler

        def handler(state):
            write(state, fast(int(get_a(state)), int(get_b(state))))
        return handler

    int_op = arith.int_op

    def handler(state):
        write(state, int_op(opcode, int(get_a(state)), int(get_b(state)),
                            "i32"))
    return handler


def _q_float_alu(pc: int, instr: Instruction):
    opcode = instr.opcode
    if instr.dst is None:
        raise ExecutionError(f"{opcode} needs a destination")
    dname = instr.dst.name
    write = _scalar_writer(dname)
    float_op = arith.float_op
    if not is_float_reg(dname):
        def write(state, value, _n=dname):  # noqa: F811 - intentional
            state.regs.write(_n, value)

    if opcode in FLOAT_UNARY_OPS:
        if len(instr.srcs) != 1:
            raise ExecutionError(f"{opcode} expects one source")
        get_a = _value_getter(instr.srcs[0])

        def handler(state):
            write(state, float_op(opcode, float(get_a(state))))
        return handler

    if opcode in FLOAT_BITWISE_OPS:
        get_a = _value_getter(instr.srcs[0]) if instr.srcs else None
        get_b = _value_getter(instr.srcs[1]) if len(instr.srcs) > 1 else None
        if get_a is None or get_b is None:
            return _q_raiser(IndexError("tuple index out of range"))
        is_and = opcode == "fand"

        def handler(state):
            a = float(get_a(state))
            b = get_b(state)
            if isinstance(b, float):
                value = (arith.float_and_floats(a, b) if is_and
                         else arith.float_or_floats(a, b))
            else:
                value = arith.float_bitwise(opcode, a, int(b))
            write(state, value)
        return handler

    if len(instr.srcs) != 2:
        raise ExecutionError(f"{opcode} expects two sources")
    get_a = _value_getter(instr.srcs[0])
    get_b = _value_getter(instr.srcs[1])

    np_op = _FLOAT_ALU_FAST.get(opcode)
    if np_op is not None:
        f32t = np.float32
        py_op = _PY_FLOAT_OPS.get(opcode)
        a_src, b_src = instr.srcs
        a_name = (a_src.name if isinstance(a_src, Reg)
                  and is_float_reg(a_src.name) else None)
        if py_op is not None and a_name is not None and is_float_reg(dname):
            b_name = (b_src.name if isinstance(b_src, Reg)
                      and is_float_reg(b_src.name) else None)
            if b_name is not None:
                def handler(state):
                    floats = state.regs.floats
                    floats[dname] = float(
                        f32t(py_op(floats[a_name], floats[b_name])))
                return handler
            if isinstance(b_src, Imm):
                b_const = float(f32t(float(b_src.value)))

                def handler(state):
                    floats = state.regs.floats
                    floats[dname] = float(f32t(py_op(floats[a_name],
                                                     b_const)))
                return handler

        def handler(state):
            write(state, float(np_op(f32t(get_a(state)), f32t(get_b(state)))))
        return handler

    def handler(state):
        write(state, float_op(opcode, float(get_a(state)),
                              float(get_b(state))))
    return handler


def _q_cmp(pc: int, instr: Instruction):
    if len(instr.srcs) != 2:
        raise ExecutionError(f"{instr.opcode} expects two operands")
    a_src, b_src = instr.srcs

    a_name = (a_src.name if isinstance(a_src, Reg)
              and is_int_reg(a_src.name) else None)
    if a_name is not None and isinstance(b_src, Imm):
        b_const = b_src.value

        def handler(state):
            regs = state.regs
            a = regs.ints[a_name]
            flags = regs.flags
            flags["lt"] = a < b_const
            flags["eq"] = a == b_const
            flags["gt"] = a > b_const
        return handler
    if a_name is not None and isinstance(b_src, Reg) \
            and is_int_reg(b_src.name):
        b_name = b_src.name

        def handler(state):
            regs = state.regs
            ints = regs.ints
            a = ints[a_name]
            b = ints[b_name]
            flags = regs.flags
            flags["lt"] = a < b
            flags["eq"] = a == b
            flags["gt"] = a > b
        return handler

    get_a = _value_getter(a_src)
    get_b = _value_getter(b_src)

    def handler(state):
        state.regs.set_flags(get_a(state), get_b(state))
    return handler


def _q_load(pc: int, instr: Instruction):
    elem, signed = LOAD_ELEM[instr.opcode]
    get_addr = _addr_getter(instr.mem, elem)
    dname = instr.dst.name
    bad_float_dst = is_float_reg(dname) and elem != "f32"
    is_f32 = elem == "f32"
    if is_f32 and not is_float_reg(dname):
        def write(state, value, _n=dname):
            state.regs.write(_n, value)
    else:
        write = _scalar_writer(dname)

    def handler(state):
        addr = get_addr(state)
        value = state.memory.load(addr, elem, signed=signed)
        if is_f32:
            value = arith.f32(value)
        if bad_float_dst:
            raise ExecutionError("integer load cannot target a float register")
        write(state, value)
        return addr
    return handler


def _q_store(pc: int, instr: Instruction):
    elem = STORE_ELEM[instr.opcode]
    get_addr = _addr_getter(instr.mem, elem)
    get_src = _value_getter(instr.srcs[0])

    def handler(state):
        addr = get_addr(state)
        state.memory.store(addr, elem, get_src(state))
        return addr
    return handler


def _q_branch(pc: int, instr: Instruction, program):
    opcode = instr.opcode
    target_index, target_error = _resolve_target(program, instr.target)
    fall_through = pc + 1
    if opcode == "b":
        def handler(state):
            if target_error is not None:
                raise target_error
            state.pc = target_index
            return True
        return handler

    cond_fn = COND_CODES.get(opcode[1:])
    if cond_fn is None:
        raise ExecutionError(
            f"unknown branch condition {opcode[1:]!r} in opcode {opcode!r}"
        )

    def handler(state):
        taken = cond_fn(state.regs.flags)
        if taken:
            if target_error is not None:
                raise target_error
            state.pc = target_index
        else:
            state.pc = fall_through
        return taken
    return handler


def _q_call(pc: int, instr: Instruction, program):
    target_index, target_error = _resolve_target(program, instr.target)
    return_addr = pc + 1

    def handler(state):
        # Link register is written before target resolution, like the
        # reference, so the side effect survives a bad-target failure.
        state.regs.ints[LINK_REGISTER] = return_addr
        if target_error is not None:
            raise target_error
        state.pc = target_index
    return handler


def _q_ret(pc: int, instr: Instruction):
    def handler(state):
        state.pc = int(state.regs.ints[LINK_REGISTER])
    return handler


def _q_vld(pc: int, instr: Instruction):
    opcode = instr.opcode
    elem = instr.elem
    elem_error = None
    if elem is None:
        elem_error = ExecutionError("vld requires an element type suffix")
        get_addr = None
        elem_size = None
    else:
        get_addr = _addr_getter(instr.mem, elem)
        elem_size = ELEM_SIZES[elem]
    dname = instr.dst.name

    def handler(state):
        vregs = state.vregs
        if vregs is None:
            raise _no_accel_error(opcode)
        if elem_error is not None:
            raise elem_error
        width = vregs.width
        addr = get_addr(state)
        if not vector_alignment_ok(addr, elem_size, width):
            raise ExecutionError(
                f"unaligned vector access at {addr:#x} "
                f"(width {width}, elem {elem})"
            )
        lanes = state.memory.load_vector(addr, elem, width)
        vregs.write(dname, lanes, elem)
        return addr
    return handler


def _q_vst(pc: int, instr: Instruction):
    opcode = instr.opcode
    elem = instr.elem
    elem_error = None
    if elem is None:
        elem_error = ExecutionError("vst requires an element type suffix")
        get_addr = None
        elem_size = None
        get_src = None
    else:
        get_addr = _addr_getter(instr.mem, elem)
        elem_size = ELEM_SIZES[elem]
        get_src = _vector_getter(instr.srcs[0])

    def handler(state):
        vregs = state.vregs
        if vregs is None:
            raise _no_accel_error(opcode)
        if elem_error is not None:
            raise elem_error
        width = vregs.width
        addr = get_addr(state)
        if not vector_alignment_ok(addr, elem_size, width):
            raise ExecutionError(
                f"unaligned vector access at {addr:#x} "
                f"(width {width}, elem {elem})"
            )
        state.memory.store_vector(addr, elem, get_src(state, width))
        return addr
    return handler


def _q_vec_binary(pc: int, instr: Instruction):
    opcode = instr.opcode
    elem = instr.elem
    get_a = _vector_getter(instr.srcs[0])
    b_operand = instr.srcs[1]
    if isinstance(b_operand, Imm):
        b_const = b_operand.value
        get_b = None
    else:
        b_const = None
        get_b = _vector_getter(b_operand)
    lower = vector_ops.binary_fast_fn(opcode, elem or "i32")
    dname = instr.dst.name

    def handler(state):
        vregs = state.vregs
        if vregs is None:
            raise _no_accel_error(opcode)
        width = vregs.width
        a = get_a(state, width)
        b = b_const if get_b is None else get_b(state, width)
        vregs.write(dname, lower(a, b), elem)
    return handler


def _q_vec_unary(pc: int, instr: Instruction):
    opcode = instr.opcode
    elem = instr.elem
    get_a = _vector_getter(instr.srcs[0])
    lower = vector_ops.unary_fast_fn(opcode, elem or "i32")
    dname = instr.dst.name

    def handler(state):
        vregs = state.vregs
        if vregs is None:
            raise _no_accel_error(opcode)
        width = vregs.width
        vregs.write(dname, lower(get_a(state, width)), elem)
    return handler


def _q_vec_perm(pc: int, instr: Instruction):
    opcode = instr.opcode
    elem = instr.elem
    get_src = _vector_getter(instr.srcs[0])
    dname = instr.dst.name

    def build_pattern(width: int) -> PermPattern:
        period_operand = instr.srcs[1] if len(instr.srcs) > 1 else Imm(width)
        if not isinstance(period_operand, Imm):
            raise ExecutionError(f"{opcode} period must be an immediate")
        period = int(period_operand.value)
        if opcode == "vbfly":
            return PermPattern("bfly", period)
        if opcode == "vrev":
            return PermPattern("rev", period)
        if len(instr.srcs) < 3 or not isinstance(instr.srcs[2], Imm):
            raise ExecutionError("vrot expects #period, #amount")
        return PermPattern("rot", period, int(instr.srcs[2].value))

    maps: Dict[int, list] = {}

    def handler(state):
        vregs = state.vregs
        if vregs is None:
            raise _no_accel_error(opcode)
        width = vregs.width
        src = get_src(state, width)
        cached = maps.get(width)
        if cached is None:
            pattern = build_pattern(width)
            if width % pattern.period != 0:
                raise ExecutionError(
                    f"{pattern.name} does not tile hardware width {width}"
                )
            cached = pattern.lane_map(width)
            maps[width] = cached
        vregs.write(dname, [src[i] for i in cached], elem)
    return handler


def _q_vec_reduce(pc: int, instr: Instruction):
    opcode = instr.opcode
    elem = instr.elem
    get_acc = _value_getter(instr.srcs[0])
    get_lanes = _vector_getter(instr.srcs[1])
    lower = vector_ops.reduce_fast_fn(opcode, elem or "i32")
    dname = instr.dst.name

    def handler(state):
        vregs = state.vregs
        if vregs is None:
            raise _no_accel_error(opcode)
        width = vregs.width
        value = lower(get_acc(state), get_lanes(state, width))
        state.regs.write(dname, value)
    return handler


def _quiet_one(pc: int, instr: Instruction, program):
    """Quiet twin of :func:`repro.isa.decoded._decode_one`."""
    opcode = instr.opcode
    spec = OPCODES.get(opcode)
    if spec is None:
        raise ExecutionError(f"unknown opcode {opcode!r} at pc={pc}")
    cls = spec.cls
    if cls is InstrClass.SYS:
        return _q_sys(pc, instr)
    if cls is InstrClass.MOVE:
        return _q_move(pc, instr)
    if cls in (InstrClass.ALU, InstrClass.MUL):
        return _q_int_alu(pc, instr)
    if cls in (InstrClass.FALU, InstrClass.FMUL, InstrClass.FDIV):
        return _q_float_alu(pc, instr)
    if cls is InstrClass.CMP:
        return _q_cmp(pc, instr)
    if cls is InstrClass.LOAD and not spec.is_vector:
        return _q_load(pc, instr)
    if cls is InstrClass.STORE and not spec.is_vector:
        return _q_store(pc, instr)
    if cls is InstrClass.BRANCH:
        return _q_branch(pc, instr, program)
    if cls is InstrClass.CALL:
        return _q_call(pc, instr, program)
    if cls is InstrClass.RET:
        return _q_ret(pc, instr)
    if opcode == "vld":
        return _q_vld(pc, instr)
    if opcode == "vst":
        return _q_vst(pc, instr)
    if opcode in VEC_BINARY_OPS:
        return _q_vec_binary(pc, instr)
    if opcode in VEC_UNARY_OPS:
        return _q_vec_unary(pc, instr)
    if opcode in VEC_PERM_OPS:
        return _q_vec_perm(pc, instr)
    if opcode in VEC_RED_OPS:
        return _q_vec_reduce(pc, instr)
    raise ExecutionError(f"unhandled opcode {opcode!r}")


# ---------------------------------------------------------------------------
# Inline specialization
#
# The dominant scalar shapes are emitted as source lines into the fused
# block instead of closure calls, operating on register banks hoisted
# into locals once per block.  Each form is only used under exactly the
# conditions for which the corresponding decoded.py handler specializes,
# and computes the same value by the same (documented) identities.
# ---------------------------------------------------------------------------


def _literal(value) -> Optional[str]:
    """An exact source literal for *value*, or None if there isn't one."""
    if value is True or value is False:
        return repr(value)
    if isinstance(value, int):
        return repr(value)
    if isinstance(value, float) and math.isfinite(value):
        return repr(value)  # repr round-trips binary64 exactly
    return None


def _inline_lines(pc: int, instr: Instruction, ns: dict):
    """(source lines, hoisted banks) for one instruction, or None.

    Lines assume ``ints`` / ``floats`` / ``flags`` locals bound to the
    live register banks (dict identity is stable for the whole run:
    :class:`~repro.isa.registers.RegisterFile` mutates its banks in
    place, never rebinding them).
    """
    spec = OPCODES.get(instr.opcode)
    if spec is None:
        return None
    cls = spec.cls
    opcode = instr.opcode

    if cls in (InstrClass.ALU, InstrClass.MUL):
        fast = _INT_ALU_FAST.get(opcode)
        if (fast is None or len(instr.srcs) != 2 or instr.dst is None
                or not is_int_reg(instr.dst.name)):
            return None
        a_op, b_op = instr.srcs
        if not (isinstance(a_op, Reg) and is_int_reg(a_op.name)):
            return None
        d, a = instr.dst.name, a_op.name
        fn = f"f{pc}"
        if isinstance(b_op, Reg) and is_int_reg(b_op.name):
            ns[fn] = fast
            return ([f"ints[{d!r}] = {fn}(ints[{a!r}], ints[{b_op.name!r}])"],
                    {"ints"})
        if isinstance(b_op, Imm):
            try:
                b_const = int(b_op.value)
            except (TypeError, ValueError):
                return None
            ns[fn] = fast
            return ([f"ints[{d!r}] = {fn}(ints[{a!r}], {b_const})"], {"ints"})
        return None

    if cls is InstrClass.CMP:
        if len(instr.srcs) != 2:
            return None
        a_op, b_op = instr.srcs
        if not (isinstance(a_op, Reg) and is_int_reg(a_op.name)):
            return None
        a = a_op.name
        if isinstance(b_op, Imm):
            lit = _literal(b_op.value)
            if lit is None:
                return None
            return ([f"a = ints[{a!r}]",
                     f'flags["lt"] = a < {lit}',
                     f'flags["eq"] = a == {lit}',
                     f'flags["gt"] = a > {lit}'], {"ints", "flags"})
        if isinstance(b_op, Reg) and is_int_reg(b_op.name):
            return ([f"a = ints[{a!r}]",
                     f"b = ints[{b_op.name!r}]",
                     'flags["lt"] = a < b',
                     'flags["eq"] = a == b',
                     'flags["gt"] = a > b'], {"ints", "flags"})
        return None

    if cls is InstrClass.MOVE:
        if len(instr.srcs) != 1 or instr.dst is None:
            return None
        src = instr.srcs[0]
        d = instr.dst.name
        if opcode == "mov" and is_int_reg(d):
            if isinstance(src, Imm):
                try:
                    value = arith.wrap_int(int(src.value))
                except (TypeError, ValueError):
                    return None
                return ([f"ints[{d!r}] = {value}"], {"ints"})
            if isinstance(src, Reg) and is_int_reg(src.name):
                # The integer bank invariantly holds wrapped ints, so
                # wrap_int(int(x)) is the identity here.
                return ([f"ints[{d!r}] = ints[{src.name!r}]"], {"ints"})
        if opcode == "fmov" and is_float_reg(d):
            if isinstance(src, Imm):
                try:
                    value = arith.f32(float(src.value))
                except (TypeError, ValueError):
                    return None
                lit = _literal(value)
                if lit is None:
                    return None
                return ([f"floats[{d!r}] = {lit}"], {"floats"})
            if isinstance(src, Reg) and is_float_reg(src.name):
                # Float registers invariantly hold exact binary32 values,
                # so f32(float(x)) is the identity here.
                return ([f"floats[{d!r}] = floats[{src.name!r}]"], {"floats"})
        return None

    if cls in (InstrClass.FALU, InstrClass.FMUL):
        py_sym = {"fadd": "+", "fsub": "-", "fmul": "*"}.get(opcode)
        if (py_sym is None or len(instr.srcs) != 2 or instr.dst is None
                or not is_float_reg(instr.dst.name)):
            return None
        a_op, b_op = instr.srcs
        if not (isinstance(a_op, Reg) and is_float_reg(a_op.name)):
            return None
        d, a = instr.dst.name, a_op.name
        # binary64 +/-/* of binary32 operands followed by one rounding
        # to binary32 is correctly rounded (2p+2 <= 53): identical to
        # the reference's float32 arithmetic (see decoded.py).
        if isinstance(b_op, Reg) and is_float_reg(b_op.name):
            return ([f"floats[{d!r}] = float(_f32("
                     f"floats[{a!r}] {py_sym} floats[{b_op.name!r}]))"],
                    {"floats"})
        if isinstance(b_op, Imm):
            try:
                b_const = float(np.float32(float(b_op.value)))
            except (TypeError, ValueError):
                return None
            lit = _literal(b_const)
            if lit is None:
                return None
            return ([f"floats[{d!r}] = float(_f32("
                     f"floats[{a!r}] {py_sym} {lit}))"], {"floats"})
        return None

    return None


# ---------------------------------------------------------------------------
# Superblock discovery + fusion
# ---------------------------------------------------------------------------


class FusedBlock:
    """One compiled superblock: run it, then account its timing.

    ``run(state)`` executes every instruction in the block (raising from
    the faulting pc exactly like the per-instruction engines) and
    returns the terminating branch's taken flag (None for other
    terminators).  ``mem`` then holds the block's effective addresses in
    execution order, ready for
    :meth:`~repro.pipeline.core.PipelineModel.account_block` together
    with ``timing``.
    """

    __slots__ = ("run", "mem", "timing", "count")

    def __init__(self, run, mem: List[int], timing: BlockTiming) -> None:
        self.run = run
        self.mem = mem
        self.timing = timing
        self.count = timing.count


class SuperblockTable:
    """Lazily fuses a :class:`~repro.isa.decoded.DecodedProgram` into
    superblocks, keyed by entry pc.

    ``marked`` (per-pc bools) stops blocks *before* marked calls so the
    machine's microcode-injection path keeps control of them; fragments
    pass ``pc_offset``/``in_vector_unit`` so their
    :class:`~repro.pipeline.core.BlockTiming` rows carry the offset PCs
    and skip instruction fetch, exactly like the per-event fragment path.
    """

    def __init__(self, table: DecodedProgram, pipeline,
                 marked: Optional[List[bool]] = None,
                 vector_width: Optional[int] = None,
                 pc_offset: int = 0,
                 in_vector_unit: bool = False) -> None:
        self.program = table.program
        self.instructions = table.program.instructions
        self.metas = table.metas
        self.marked = marked
        self.vector_width = vector_width
        self.pc_offset = pc_offset
        self.in_vector_unit = in_vector_unit
        direct, code_base, line_bytes = pipeline.fetch_profile()
        self._fetch_mode = 0 if in_vector_unit else (1 if direct else 2)
        self._code_base = code_base
        self._iline_bytes = line_bytes
        # Timing-model constants baked into the compiled timing closures
        # (config-derived, so tables memoized per PipelineConfig — see
        # superblock_table_for — never see them change).
        pconfig = pipeline.config
        self._icache_hit = pconfig.icache.hit_latency
        self._dcache_hit = pconfig.dcache.hit_latency
        self._mispredict_penalty = pconfig.mispredict_penalty
        self._call_redirect_penalty = pconfig.call_redirect_penalty
        n = len(self.instructions)
        self._quiet_cache: List[Optional[tuple]] = [None] * n
        self._blocks: Dict[int, FusedBlock] = {}
        #: telemetry counters (docs/observability.md): every ``_build``
        #: bumps ``compiles``; ``lookups`` advances only through
        #: :meth:`block_at_counted`, which callers bind in place of
        #: :meth:`block_at` when telemetry is enabled — the plain hot
        #: path stays untouched when it is not.
        self.lookups = 0
        self.compiles = 0

    def block_at(self, pc: int) -> FusedBlock:
        block = self._blocks.get(pc)
        if block is None:
            block = self._blocks[pc] = self._build(pc)
        return block

    def block_at_counted(self, pc: int) -> FusedBlock:
        """:meth:`block_at` plus a fusion-table lookup count.

        Tables are memoized across runs, so consumers snapshot
        ``lookups`` / ``compiles`` around a run and report the deltas
        (``turbo.superblock.*`` / ``turbo.fragment.*`` counters); a
        lookup that triggers ``_build`` is the table's "miss".
        """
        self.lookups += 1
        block = self._blocks.get(pc)
        if block is None:
            block = self._blocks[pc] = self._build(pc)
        return block

    # -- internals ----------------------------------------------------------

    def _quiet(self, pc: int):
        """(handler, decoded_ok) for one pc, cached."""
        cached = self._quiet_cache[pc]
        if cached is None:
            instr = self.instructions[pc]
            try:
                cached = (_quiet_one(pc, instr, self.program), True)
            except Exception as exc:
                cached = (_q_raiser(exc), False)
            self._quiet_cache[pc] = cached
        return cached

    def _row(self, pc: int, meta) -> tuple:
        if self._fetch_mode == 1:
            fetch_key = (self._code_base
                         + pc * _INSTR_BYTES) // self._iline_bytes
        elif self._fetch_mode == 2:
            fetch_key = self._code_base + pc * _INSTR_BYTES
        else:
            fetch_key = 0
        cls = meta.cls
        if meta.is_load:
            mem_kind = 1
        elif cls is InstrClass.STORE or cls is InstrClass.VSTORE:
            mem_kind = 2
        else:
            mem_kind = 0
        nbytes = meta.elem_bytes
        if meta.is_vector and self.vector_width:
            nbytes *= self.vector_width
        return (fetch_key, meta.reads, meta.reads_flags, meta.writes,
                meta.sets_flags, meta.latency, mem_kind, nbytes)

    def _compile_timing(self, entry: int, rows, term: int,
                        branch_pc: int, branch_target: int,
                        blen: int, simd: int):
        """Compile :meth:`PipelineModel.account_block`'s loop for *rows*.

        Emits the generic loop's arithmetic with this block's constants
        baked in — fetch line numbers, register names, latencies,
        penalties — so accounting a block is straight-line Python with
        no tuple unpacking or per-row branching.  Two deliberate
        strength reductions, both stats-identical to the generic loop:

        * Consecutive instructions fetched from the *same* I-cache line
          are guaranteed hits after the first (nothing else touches the
          icache mid-block), so the first fetch goes through the cache
          and the rest are batched into one O(1)
          :meth:`~repro.memory.cache.Cache.repeat_hits` call.  Each
          batched access still advances the generation counter and
          re-stamps the line, so recency ordering — and every future
          hit/miss/writeback decision — is unchanged.
        * Config latencies/penalties are literals; the memo key of
          :func:`superblock_table_for` includes the
          :class:`~repro.pipeline.core.PipelineConfig`, so a compiled
          closure never outlives its constants.

        Pipeline *instance* state (caches, predictor, hazard map, stats)
        is bound from the ``pipe`` argument at call time, so one
        compiled block serves every pipeline sharing the config.
        """
        if not rows:
            return None  # entry-raiser block: never accounted
        mode = self._fetch_mode
        ihit = self._icache_hit
        dhit = self._dcache_hit
        body: List[str] = []
        emit = body.append
        has_load = has_store = need_repeat = False
        mem_index = 0
        prev_line = None
        rep_count = 0

        def flush_repeats():
            nonlocal rep_count, need_repeat
            if rep_count:
                need_repeat = True
                emit(f"irh({prev_line}, {rep_count})")
                rep_count = 0

        for (fetch_key, reads, reads_flags, writes, sets_flags,
             latency, mem_kind, nbytes) in rows:
            if mode == 1:
                if fetch_key == prev_line:
                    rep_count += 1
                    if ihit > 1:
                        emit(f"fetch_stall += {ihit - 1}")
                        emit(f"ready = fetch_ready + {ihit - 1}")
                    else:
                        emit("ready = fetch_ready")
                else:
                    flush_repeats()
                    prev_line = fetch_key
                    emit(f"fc = ifl({fetch_key}, False)")
                    emit("if fc > 1:")
                    emit("    fetch_stall += fc - 1")
                    emit("ready = fetch_ready + fc - 1")
            elif mode == 2:
                emit(f"fc = ia({fetch_key}, {_INSTR_BYTES}, False)")
                emit("if fc > 1:")
                emit("    fetch_stall += fc - 1")
                emit("ready = fetch_ready + fc - 1")
            else:
                emit("ready = fetch_ready")
            for reg in reads:
                emit(f"t = get({reg!r}, 0)")
                emit("if t > ready: ready = t")
            if reads_flags:
                emit(f"t = get({_FLAGS!r}, 0)")
                emit("if t > ready: ready = t")
            emit("issue = last_issue + 1")
            emit("if ready > issue:")
            emit("    data_stall += ready - issue")
            emit("    issue = ready")
            if mem_kind == 1:
                has_load = True
                emit(f"a = da(mem[{mem_index}], {nbytes}, False)")
                emit("completion = issue + a")
                emit(f"if a > {dhit}:")
                emit(f"    load_miss += a - {dhit}")
                mem_index += 1
            elif mem_kind == 2:
                has_store = True
                emit(f"completion = issue + {latency}")
                emit(f"da(mem[{mem_index}], {nbytes}, True)")
                mem_index += 1
            else:
                emit(f"completion = issue + {latency}")
            for reg in writes:
                emit(f"reg_ready[{reg!r}] = completion")
            if sets_flags:
                emit(f"reg_ready[{_FLAGS!r}] = completion")
            emit("last_issue = issue")
            emit("fetch_ready = issue")
            emit("if completion > last_completion: "
                 "last_completion = completion")
        if mode == 1:
            flush_repeats()
        if term == 1:
            penalty = self._mispredict_penalty
            emit("stats.branches += 1")
            emit("pred = pipe.predictor")
            emit(f"predicted = pred.predict({branch_pc}, "
                 f"{branch_target} if taken else {branch_pc})")
            emit(f"pred.update({branch_pc}, taken)")
            emit("if predicted != taken:")
            emit("    stats.mispredicts += 1")
            emit(f"    fetch_ready = issue + 1 + {penalty}")
            emit(f"    stats.branch_penalty_cycles += {penalty}")
        elif term == 2:
            penalty = self._call_redirect_penalty
            emit(f"fetch_ready = issue + 1 + {penalty}")
            emit(f"stats.branch_penalty_cycles += {penalty}")
        emit("pipe._last_issue = last_issue")
        emit("pipe._fetch_ready = fetch_ready")
        emit("pipe._last_completion = last_completion")
        emit(f"stats.instructions += {blen}")
        if simd:
            emit(f"stats.simd_instructions += {simd}")
        emit("stats.data_stall_cycles += data_stall")
        if mode:
            emit("stats.fetch_stall_cycles += fetch_stall")
        if has_load:
            emit("stats.load_miss_cycles += load_miss")

        prologue = [
            "reg_ready = pipe._reg_ready",
            "get = reg_ready.get",
            "stats = pipe.stats",
            "fetch_ready = pipe._fetch_ready",
            "last_issue = pipe._last_issue",
            "last_completion = pipe._last_completion",
            "data_stall = 0",
        ]
        if mode:
            prologue.append("fetch_stall = 0")
        if mode == 1:
            prologue.append("ifl = pipe._ifetch_line")
        elif mode == 2:
            prologue.append("ia = pipe.icache.access")
        if need_repeat:
            prologue.append("irh = pipe.icache.repeat_hits")
        if has_load or has_store:
            prologue.append("da = pipe.dcache.access")
        if has_load:
            prologue.append("load_miss = 0")
        src = ["def _timing(pipe, mem, taken):"]
        src.extend("    " + line for line in prologue)
        src.extend("    " + line for line in body)
        tns: dict = {}
        exec(compile("\n".join(src), f"<sbtiming@{entry}>", "exec"), tns)
        return tns["_timing"]

    def _build(self, entry: int) -> FusedBlock:
        self.compiles += 1
        instructions = self.instructions
        metas = self.metas
        marked = self.marked
        n = len(instructions)
        limit = min(n, entry + _MAX_BLOCK)

        # -- discovery: scan the straight-line run from `entry` ------------
        pcs: List[int] = []
        term = 0          # 0 none, 1 branch, 2 call/ret, 3 halt
        i = entry
        exit_pc = entry
        while True:
            if i >= limit:
                exit_pc = i
                break
            if i > entry and marked is not None and marked[i]:
                exit_pc = i
                break
            meta = metas[i]
            if meta is None:
                # Unknown opcode: executable only as the entry, where its
                # deferred decode error must fire (rows stay unused).
                if i == entry:
                    pcs.append(i)
                exit_pc = i
                break
            cls = meta.cls
            pcs.append(i)
            if cls is InstrClass.BRANCH:
                term = 1
                break
            if cls is InstrClass.CALL or cls is InstrClass.RET:
                term = 2
                break
            if instructions[i].opcode == "halt":
                term = 3
                break
            i += 1
            exit_pc = i

        blen = len(pcs)
        off = self.pc_offset

        # -- timing rows ---------------------------------------------------
        rows = []
        simd = 0
        for pc in pcs:
            meta = metas[pc]
            if meta is None:
                continue
            rows.append(self._row(pc, meta))
            simd += meta.is_vector
        branch_pc = branch_target = 0
        if term == 1:
            tpc = pcs[-1]
            branch_pc = tpc + off
            target, _err = _resolve_target(self.program,
                                           instructions[tpc].target)
            branch_target = (target + off) if target is not None \
                else branch_pc
        timing_term = 1 if term == 1 else (2 if term == 2 else 0)
        timing = BlockTiming(tuple(rows), blen, simd, self._fetch_mode,
                             timing_term, branch_pc, branch_target,
                             self._compile_timing(entry, rows, timing_term,
                                                  branch_pc, branch_target,
                                                  blen, simd))

        # -- codegen -------------------------------------------------------
        mem: List[int] = []
        ns = {"_m": mem.append, "_c": mem.clear, "_f32": np.float32}
        body: List[str] = []
        hoists = set()
        has_mem = False

        def emit_closure(pc: int, handler, mem_kind: int) -> None:
            nonlocal has_mem
            name = f"q{pc}"
            ns[name] = handler
            if mem_kind:
                has_mem = True
                body.append(f"p = {pc}")
                body.append(f"_m({name}(state))")
            else:
                body.append(f"p = {pc}")
                body.append(f"{name}(state)")

        straight = pcs[:-1] if term else pcs
        for pc in straight:
            meta = metas[pc]
            mem_kind = 0
            if meta is not None:
                if meta.is_load:
                    mem_kind = 1
                elif meta.cls is InstrClass.STORE \
                        or meta.cls is InstrClass.VSTORE:
                    mem_kind = 2
            handler, ok = self._quiet(pc)
            inline = _inline_lines(pc, instructions[pc], ns) if ok else None
            if inline is not None:
                lines, needs = inline
                hoists |= needs
                body.append(f"p = {pc}")
                body.extend(lines)
            else:
                emit_closure(pc, handler, mem_kind)

        retired = f"state.instructions_retired += {blen}"
        if term == 1:
            tpc = pcs[-1]
            instr = instructions[tpc]
            handler, ok = self._quiet(tpc)
            target, terr = _resolve_target(self.program, instr.target)
            cond_expr = (_COND_EXPRS.get(instr.opcode[1:])
                         if instr.opcode != "b" else None)
            if ok and terr is None and instr.opcode == "b":
                body += [f"p = {tpc}", f"state.pc = {target}", retired,
                         "return True"]
            elif ok and terr is None and cond_expr is not None:
                hoists.add("flags")
                body += [f"p = {tpc}",
                         f"if {cond_expr}:",
                         f"    state.pc = {target}",
                         f"    {retired}",
                         "    return True",
                         f"state.pc = {tpc + 1}",
                         retired,
                         "return False"]
            else:
                name = f"q{tpc}"
                ns[name] = handler
                body += [f"p = {tpc}", f"r = {name}(state)", retired,
                         "return r"]
        elif term == 2:
            tpc = pcs[-1]
            instr = instructions[tpc]
            handler, ok = self._quiet(tpc)
            cls = metas[tpc].cls
            if ok and cls is InstrClass.RET:
                hoists.add("ints")
                body += [f"p = {tpc}",
                         f"state.pc = ints[{LINK_REGISTER!r}]",
                         retired, "return None"]
            elif ok and cls is InstrClass.CALL:
                target, terr = _resolve_target(self.program, instr.target)
                if terr is None:
                    hoists.add("ints")
                    body += [f"p = {tpc}",
                             f"ints[{LINK_REGISTER!r}] = {tpc + 1}",
                             f"state.pc = {target}",
                             retired, "return None"]
                else:
                    emit_closure(tpc, handler, 0)
                    body += [retired, "return None"]
            else:
                emit_closure(tpc, handler, 0)
                body += [retired, "return None"]
        elif term == 3:
            tpc = pcs[-1]
            body += [f"p = {tpc}",
                     "state.halted = True",
                     f"state.pc = {tpc + 1}",
                     retired, "return None"]
        else:
            body += [f"state.pc = {exit_pc}", retired, "return None"]

        src = ["def _fused(state):"]
        if has_mem:
            src.append("    _c()")
        src.append(f"    p = {entry}")
        src.append("    try:")
        for bank in ("ints", "floats", "flags"):
            if bank in hoists:
                src.append(f"        {bank} = state.regs.{bank}")
        for line in body:
            src.append("        " + line)
        src += ["    except BaseException:",
                "        state.pc = p",
                f"        state.instructions_retired += p - {entry}",
                "        raise"]
        exec(compile("\n".join(src), f"<superblock@{entry}>", "exec"), ns)
        return FusedBlock(ns["_fused"], mem, timing)


# ---------------------------------------------------------------------------
# Cross-run memoization
#
# Every turbo artifact is a pure function of the program object and a
# hashable config slice: the decode table depends on the program alone,
# and a SuperblockTable additionally on the PipelineConfig (fetch
# addressing and the latencies baked into its compiled timing closures),
# the marked-call map, and the hardware vector width.  Re-running the
# same program therefore reuses the fused blocks instead of re-deriving
# them — the per-run decode+fuse cost that would otherwise swamp short
# kernels.  Compiled closures take ``state`` / ``pipe`` as arguments, so
# nothing run-specific is captured.  A small strong-reference LRU bounds
# memory; entries also pin their program, so ``id()`` keys cannot be
# recycled while an entry is live.
# ---------------------------------------------------------------------------

_MEMO_CAP = 32
_decode_memo: "OrderedDict[int, DecodedProgram]" = OrderedDict()
_table_memo: "OrderedDict[tuple, Tuple[DecodedProgram, SuperblockTable]]" \
    = OrderedDict()


def decoded_table_for(program) -> DecodedProgram:
    """The memoized :func:`repro.isa.decoded.predecode` of *program*."""
    key = id(program)
    table = _decode_memo.get(key)
    if table is not None and table.program is program:
        _decode_memo.move_to_end(key)
        return table
    table = predecode(program)
    _decode_memo[key] = table
    if len(_decode_memo) > _MEMO_CAP:
        _decode_memo.popitem(last=False)
    return table


def superblock_table_for(table: DecodedProgram, pipeline,
                         marked: Optional[List[bool]],
                         vector_width: Optional[int]) -> SuperblockTable:
    """The memoized main-program :class:`SuperblockTable` for *table*.

    Fragment tables (``pc_offset`` / ``in_vector_unit``) are per-run
    objects and stay in the machine's per-run dict instead.
    """
    key = (id(table), pipeline.config, vector_width,
           None if marked is None else tuple(marked))
    entry = _table_memo.get(key)
    if entry is not None and entry[0] is table:
        _table_memo.move_to_end(key)
        return entry[1]
    blocks = SuperblockTable(table, pipeline, marked, vector_width)
    _table_memo[key] = (table, blocks)
    if len(_table_memo) > _MEMO_CAP:
        _table_memo.popitem(last=False)
    return blocks


_fragment_memo: "OrderedDict[tuple, tuple]" = OrderedDict()


def fragment_tables_for(fragment, pipeline, width: int, offset: int,
                        encoded: Optional[bytes] = None,
                        macro: bool = False):
    """(program, decode table, SuperblockTable, plan) for a fragment.

    The dynamic translator rebuilds its fragments on every run, so they
    cannot be memoized by object identity; but for a given source
    program and configuration the translation is deterministic, so the
    *bytes* recur — the key is :func:`~repro.isa.encoding.encode_program`
    (which covers labels and data, i.e. everything decode consumes) plus
    the width/offset/config facets baked into the fused blocks.  A hit
    returns the previously fused fragment *program* too: the caller runs
    that canonical object so the decode table's program-identity check
    and the fused closures' resolved targets stay coherent.

    *encoded*, when the caller already holds the fragment's canonical
    bytes (:meth:`~repro.core.translate.ucode_cache.MicrocodeEntry.encoded_bytes`),
    skips re-encoding.  With ``macro=True`` the entry additionally
    carries the fragment's whole-loop plan
    (:func:`repro.interp.macro.build_fragment_plan`), or ``None`` when
    no loop matched; the macro flag is part of the key so turbo and
    macro runs never share ``BlockTiming`` objects.
    """
    if encoded is None:
        encoded = encode_program(fragment)
    key = (encoded, width, offset, pipeline.config, macro)
    entry = _fragment_memo.get(key)
    if entry is not None:
        _fragment_memo.move_to_end(key)
        return entry
    table = predecode(fragment)
    blocks = SuperblockTable(table, pipeline, None, width, offset, True)
    plan = None
    if macro:
        plan = build_fragment_plan(fragment, blocks, pipeline, width) or None
    entry = (fragment, table, blocks, plan)
    _fragment_memo[key] = entry
    if len(_fragment_memo) > _MEMO_CAP:
        _fragment_memo.popitem(last=False)
    return entry


def fragment_tables_for_entry(entry, pipeline, offset: int,
                              macro: bool = False):
    """:func:`fragment_tables_for` keyed by a microcode entry's identity.

    A :class:`~repro.core.translate.ucode_cache.MicrocodeEntry` memoizes
    its canonical bytes (and a store-loaded entry is seeded with the
    wire bytes), so a fresh translation, a cross-width retranslation and
    a persistent-store hit that agree byte-for-byte all land on the same
    memo slot — none of them compiles the fused tables twice.
    """
    return fragment_tables_for(entry.fragment, pipeline, entry.width,
                               offset, encoded=entry.encoded_bytes(),
                               macro=macro)
