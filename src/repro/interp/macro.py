"""Whole-loop macro-kernel execution of translated SIMD fragments.

The translator emits fragments of one canonical shape (see
``repro/core/translate/translator.py``): a counted do-while loop whose
body loads vectors at affine addresses in a single induction variable,
applies a loop-invariant chain of vector ALU / permutation operations,
stores results at affine addresses, optionally folds reduction
registers, and closes with ``add rI, rI, #width`` / ``cmp rI, #trip`` /
``blt head``.  The turbo engine (PR 3) already fuses each loop body
into one superblock, but still runs it once per trip.

This module recognizes that shape (:func:`build_fragment_plan` /
:class:`FragmentLoopShape`) and ``exec()``-compiles the *entire
remaining trip count* into one numpy kernel over 2-D ``(trips, width)``
arrays: loads become one :meth:`~repro.memory.memory.Memory.load_array`
slab each, the ALU body becomes whole-array numpy expressions mirroring
the ``binary_fast_fn``/``unary_fast_fn``/``reduce_fast_fn`` lowerings
of :mod:`repro.simd.vector_ops` (translated ``cnst`` vector immediates
are pre-baked operands, permutations are precomputed index gathers),
and reductions fold the flattened stream with bit-exact association
order.  Timing stays bit-identical through two batched APIs: the whole
loop's d-cache stream is replayed by
:meth:`~repro.memory.cache.Cache.access_stream` (trip-major, program
order — the exact sequence the per-block path would have issued), and
the pipeline hazards, per-trip branch prediction, and statistics are
folded by :meth:`~repro.pipeline.core.PipelineModel.account_loop`
(here specialized per loop via an ``exec()``-generated
``BlockTiming.loop_compiled`` closure).

Fallback contract: anything outside the canonical shape — non-affine
addresses, a non-``blt`` or data-dependent branch, loop-carried vector
registers, mixed element sizes on a stored symbol, unsupported
opcodes — produces no plan entry, and runtime conditions (misaligned or
out-of-range slabs, read-only overlap, induction state out of range,
fewer than two remaining trips, step-limit proximity, an attached
tracer or in-flight translation, which disable fused fragments
wholesale in ``Machine._run_fragment``) return the loop to the
per-block path, which raises the identical errors at the identical
instruction.  The four-way differential suite pins all of this.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro import arith
from repro.observability import telemetry as _telemetry
from repro.isa.decoded import (
    VEC_BINARY_OPS,
    VEC_PERM_OPS,
    VEC_RED_OPS,
    VEC_UNARY_OPS,
)
from repro.isa.instructions import Imm, Mem, Reg, VImm, Sym
from repro.isa.opcodes import ELEM_SIZES
from repro.isa.registers import is_float_reg, is_int_reg, is_vector_reg
from repro.pipeline.core import _FLAGS
from repro.simd import vector_ops
from repro.simd.permutations import PermPattern

#: Values the induction variable may reach without 32-bit wrap concerns.
_INT31 = 1 << 31

#: Minimum remaining trips worth the whole-array setup cost.  Below it
#: the per-block path is used; both are bit-identical, so this is a pure
#: speed knob.
MIN_MACRO_TRIPS = 2


def _kind(elem: Optional[str]) -> str:
    return "f" if elem == "f32" else "i"


def _reject(reason: str):
    """Record one recognition rejection and return None.

    Plan construction is memoized per fragment bytes (cold), so the
    telemetry call — a no-op through the disabled shim — costs nothing
    on the execution path.  Reasons form the
    ``macro.plan.rejected.<reason>`` counter family
    (docs/observability.md).
    """
    _telemetry.get().count("macro.plan.rejected." + reason)
    return None


def _full(arr: np.ndarray, n: int) -> np.ndarray:
    """Broadcast a loop-invariant ``(1, width)`` row to ``(n, width)``."""
    if arr.shape[0] == n:
        return arr
    return np.broadcast_to(arr, (n,) + arr.shape[1:])


# ---------------------------------------------------------------------------
# Per-instruction numpy lowerings over (trips, width) arrays.
#
# Each builder mirrors the corresponding *_fast_fn in simd/vector_ops.py
# on 2-D arrays: integer lanes computed in int64 and truncated with
# astype (== wrap_int), saturation clipped against INT_BOUNDS, float
# lanes in float32 with one rounding per op, float min/max via np.where
# (Python tie/NaN order), float bitwise through view(uint32).  Anything
# the whole-array form cannot reproduce bit-identically returns None and
# the loop is rejected (per-block fallback).
# ---------------------------------------------------------------------------


def _make_load(elem: str, width: int):
    def load(memory, base, n, _elem=elem, _w=width):
        return memory.load_array(base, _elem, n * _w).reshape(n, _w)
    return load


def _make_store(elem: str):
    def store(memory, base, arr, _elem=elem):
        memory.store_array(base, _elem, arr)
    return store


def _bake_vector_imm(operand, elem: Optional[str], width: int):
    """Prepared rhs array for an ``Imm``/``VImm`` operand, or None."""
    kind = _kind(elem or "i32")
    if isinstance(operand, Imm):
        value = operand.value
        if kind == "f":
            return np.float32(value)
        if not isinstance(value, int):
            return None
        return np.int64(value)
    if isinstance(operand, VImm):
        lanes = list(operand.lanes)
        if len(lanes) != width:
            return None  # reference raises; per-block path reproduces it
        if kind == "f":
            return np.asarray(lanes, dtype=np.float32).reshape(1, width)
        if not all(isinstance(v, int) for v in lanes):
            return None
        return np.asarray(lanes, dtype=np.int64).reshape(1, width)
    return None


def _bake_mask_imm(operand, width: int):
    """uint32 mask patterns for a float-bitwise ``Imm``/``VImm`` rhs."""
    if isinstance(operand, Imm):
        lanes = [operand.value] * width
    elif isinstance(operand, VImm):
        lanes = list(operand.lanes)
        if len(lanes) != width:
            return None
    else:
        return None
    try:
        masks = vector_ops._mask_lanes(lanes)
    except (TypeError, ValueError, OverflowError):
        return None
    return masks.reshape(1, width)


def _make_binary(opcode: str, elem: Optional[str], b_operand, width: int):
    """Whole-array closure for one binary vector op; None when the
    lowering cannot be bit-identical.  ``b_operand`` is None for a
    register rhs — the closure then takes ``(a, b)`` — or the
    ``Imm``/``VImm`` operand to pre-bake, making the closure unary."""
    elem = elem or "i32"
    if elem == "f32":
        if opcode in vector_ops._FLOAT_BITWISE:
            want_and = opcode in ("vand", "vmask")
            if b_operand is None:
                def fn(a, b, _and=want_and):
                    bits = a.view(np.uint32)
                    masks = b.view(np.uint32)
                    out = (bits & masks) if _and else (bits | masks)
                    return out.view(np.float32)
                return fn
            masks = _bake_mask_imm(b_operand, width)
            if masks is None:
                return None

            def fn(a, _m=masks, _and=want_and):
                bits = a.view(np.uint32)
                out = (bits & _m) if _and else (bits | _m)
                return out.view(np.float32)
            return fn
        if opcode == "vabd":
            if b_operand is None:
                return lambda a, b: np.abs(a - b)
            bb = _bake_vector_imm(b_operand, elem, width)
            if bb is None:
                return None
            return lambda a, _b=bb: np.abs(a - _b)
        if opcode in ("vmin", "vmax"):
            want_min = opcode == "vmin"
            if b_operand is None:
                def fn(a, b, _min=want_min):
                    return np.where(b < a, b, a) if _min \
                        else np.where(b > a, b, a)
                return fn
            bb = _bake_vector_imm(b_operand, elem, width)
            if bb is None:
                return None

            def fn(a, _b=bb, _min=want_min):
                return np.where(_b < a, _b, a) if _min \
                    else np.where(_b > a, _b, a)
            return fn
        np_op = vector_ops._NP_FLOAT_BINARY.get(opcode)
        if np_op is None:
            return None
        if b_operand is None:
            return lambda a, b, _op=np_op: _op(a, b)
        bb = _bake_vector_imm(b_operand, elem, width)
        if bb is None:
            return None
        return lambda a, _b=bb, _op=np_op: _op(a, _b)

    dtype = vector_ops._NP_INT_DTYPE.get(elem)
    if dtype is None:
        return None
    if opcode in ("vqadd", "vqsub"):
        lo, hi = arith.INT_BOUNDS[elem]
        want_add = opcode == "vqadd"
        if b_operand is None:
            def fn(a, b, _lo=lo, _hi=hi, _add=want_add, _dtype=dtype):
                aa = a.astype(np.int64)
                bb = b.astype(np.int64)
                raw = aa + bb if _add else aa - bb
                return np.clip(raw, _lo, _hi).astype(_dtype)
            return fn
        bb = _bake_vector_imm(b_operand, elem, width)
        if bb is None:
            return None

        def fn(a, _b=bb, _lo=lo, _hi=hi, _add=want_add, _dtype=dtype):
            aa = a.astype(np.int64)
            raw = aa + _b if _add else aa - _b
            return np.clip(raw, _lo, _hi).astype(_dtype)
        return fn
    np_op = vector_ops._NP_INT_BINARY.get(opcode)
    if np_op is None:
        return None
    if b_operand is None:
        def fn(a, b, _op=np_op, _dtype=dtype):
            return _op(a.astype(np.int64), b.astype(np.int64)).astype(_dtype)
        return fn
    bb = _bake_vector_imm(b_operand, elem, width)
    if bb is None:
        return None

    def fn(a, _b=bb, _op=np_op, _dtype=dtype):
        return _op(a.astype(np.int64), _b).astype(_dtype)
    return fn


def _make_unary(opcode: str, elem: Optional[str]):
    elem = elem or "i32"
    np_op = {"vabs": np.abs, "vneg": np.negative}.get(opcode)
    if np_op is None:
        return None
    if elem == "f32":
        return lambda a, _op=np_op: _op(a)
    dtype = vector_ops._NP_INT_DTYPE.get(elem)
    if dtype is None:
        return None
    return lambda a, _op=np_op, _dtype=dtype: \
        _op(a.astype(np.int64)).astype(_dtype)


def _make_perm(instr, width: int):
    """Precomputed index gather for one vbfly/vrev/vrot, or None."""
    try:
        period_operand = instr.srcs[1] if len(instr.srcs) > 1 else Imm(width)
        if not isinstance(period_operand, Imm):
            return None
        period = int(period_operand.value)
        if instr.opcode == "vbfly":
            pattern = PermPattern("bfly", period)
        elif instr.opcode == "vrev":
            pattern = PermPattern("rev", period)
        else:
            if len(instr.srcs) < 3 or not isinstance(instr.srcs[2], Imm):
                return None
            pattern = PermPattern("rot", period, int(instr.srcs[2].value))
        if width % pattern.period != 0:
            return None
        lane_map = np.asarray(pattern.lane_map(width), dtype=np.intp)
    except (ValueError, TypeError):
        return None
    return lambda a, _map=lane_map: a[:, _map]


def _make_reduce(opcode: str, elem: Optional[str]):
    """Whole-stream reduction fold, bit-exact vs. the per-trip chain.

    f32 ``vredsum`` uses ``np.add.accumulate`` — a strictly sequential
    left fold in float32, i.e. the reference's one-rounding-per-element
    chain; f32 min/max fold through ``arith.float_op`` for its Python
    tie/NaN ordering.  Integer sums are computed wide and wrapped once
    (congruent mod 2**32 to the per-step wrap); integer min/max never
    leave the 32-bit range, so per-step wraps are the identity.
    """
    elem = elem or "i32"
    if elem == "f32":
        if opcode == "vredsum":
            def fn(acc, arr):
                flat = np.empty(arr.size + 1, dtype=np.float32)
                flat[0] = acc
                flat[1:] = arr.reshape(-1)
                return float(np.add.accumulate(flat)[-1])
            return fn
        if opcode in ("vredmin", "vredmax"):
            op = "fmin" if opcode == "vredmin" else "fmax"

            def fn(acc, arr, _op=op):
                result = float(acc)
                for lane in arr.reshape(-1).tolist():
                    result = arith.float_op(_op, result, lane)
                return result
            return fn
        return None
    if opcode == "vredsum":
        def fn(acc, arr):
            return arith.wrap_int(int(acc) + int(arr.sum(dtype=np.int64)))
        return fn
    if opcode in ("vredmin", "vredmax"):
        want_min = opcode == "vredmin"
        pick = min if want_min else max

        def fn(acc, arr, _pick=pick, _min=want_min):
            best = arr.min() if _min else arr.max()
            return arith.wrap_int(_pick(int(acc), int(best)))
        return fn
    return None


def _make_invariant(name: str, kind: str):
    """Reader for a loop-invariant vector register input."""
    dtype = np.float32 if kind == "f" else np.int64

    def read(vregs, _n=name, _dtype=dtype):
        return np.asarray(vregs.read(_n), dtype=_dtype).reshape(1, -1)
    return read


# ---------------------------------------------------------------------------
# Shape analysis
# ---------------------------------------------------------------------------


def _affine_sym(mem: Optional[Mem], induction: str) -> Optional[str]:
    """Symbol name of a ``[sym + induction]`` operand, else None."""
    if mem is None or not isinstance(mem.base, Sym):
        return None
    index = mem.index
    if not (isinstance(index, Reg) and index.name == induction):
        return None
    return mem.base.name


class FragmentLoopShape:
    """One recognized counted fragment loop, executable whole.

    Instances are built by :func:`build_fragment_plan` per back-branch
    and keyed by the loop-head pc in the fragment plan.  ``trips``
    computes the remaining trip count from live register state (None
    when the macro path must not engage); ``run`` executes and accounts
    all of them at once, returning False — with no state touched — when
    a runtime precondition fails and the per-block path must take over.
    """

    __slots__ = ("head", "branch_pc", "blen", "width", "induction", "trip",
                 "sites", "kernel", "timing",
                 "_bases_stride", "_nbytes", "_writes", "_load_cols")

    def __init__(self, head: int, branch_pc: int, width: int,
                 induction: str, trip: int,
                 sites: List[Tuple[str, int, bool]], kernel) -> None:
        self.head = head
        self.branch_pc = branch_pc
        self.blen = branch_pc - head + 1
        self.width = width
        self.induction = induction
        self.trip = trip
        self.sites = tuple(sites)
        self.kernel = kernel
        self.timing = None  # attached by build_fragment_plan
        strides = [esz * width for (_sym, esz, _w) in sites]
        self._bases_stride = np.asarray(strides, dtype=np.int64)
        self._nbytes = np.asarray(strides, dtype=np.int64)  # one vector/site
        self._writes = np.asarray([w for (_s, _e, w) in sites], dtype=bool)
        self._load_cols = np.asarray(
            [i for i, (_s, _e, w) in enumerate(sites) if not w],
            dtype=np.intp)

    def trips(self, state) -> Optional[int]:
        """Remaining trip count from live state, or None to fall back."""
        i0 = state.regs.ints[self.induction]
        trip = self.trip
        width = self.width
        if i0 < 0 or trip < 0:
            return None
        n = ((trip - i0 + width - 1) // width) if trip > i0 else 1
        if n < MIN_MACRO_TRIPS or i0 + n * width >= _INT31:
            return None
        return n

    def run(self, state, pipeline, trips: int) -> bool:
        """Execute and account *trips* loop iterations in one shot.

        Returns False — before touching any architectural or timing
        state — when a slab fails the runtime preconditions (vector
        alignment, bounds, read-only overlap); the caller then resumes
        the per-block path, which raises the identical error at the
        identical instruction if one is actually due.
        """
        regs = state.regs
        memory = state.memory
        symbols = state.symbols
        i0 = regs.ints[self.induction]
        width = self.width
        span = trips * width
        bases = []
        for sym, esz, is_store in self.sites:
            base = symbols.address_of(sym) + i0 * esz
            nbytes = span * esz
            if base % (esz * width) or base < 0 or base + nbytes > memory.size:
                return False
            if is_store and memory.overlaps_read_only(base, nbytes):
                return False
            bases.append(base)

        self.kernel(memory, state.vregs, regs, bases, trips)

        # Timing: replay the loop's whole d-cache stream (trip-major,
        # program order — identical to the per-block sequence; fragments
        # never touch the i-cache), then fold the pipeline hazards and
        # the taken/.../taken/not-taken branch pattern.
        n_sites = len(bases)
        if n_sites:
            addr_mat = (np.asarray(bases, dtype=np.int64)[None, :]
                        + np.arange(trips, dtype=np.int64)[:, None]
                        * self._bases_stride[None, :])
            lats = pipeline.dcache.access_stream(
                addr_mat.reshape(-1),
                np.tile(self._nbytes, trips),
                np.tile(self._writes, trips))
            load_lats = lats.reshape(trips, n_sites)[:, self._load_cols] \
                .reshape(-1).tolist()
        else:
            load_lats = []
        pipeline.account_loop(self.timing, trips, load_lats)

        # Architectural epilogue: final induction value, cmp flags,
        # fall-through pc, retire count — what the last trip leaves.
        i_final = i0 + trips * width
        regs.ints[self.induction] = i_final
        regs.set_flags(i_final, self.trip)
        state.pc = self.branch_pc + 1
        state.instructions_retired += trips * self.blen
        return True


def _analyze_loop(fragment, head: int, branch_pc: int,
                  width: int) -> Optional[FragmentLoopShape]:
    """A :class:`FragmentLoopShape` for the loop closed by the ``blt``
    at *branch_pc* targeting *head*, or None when any instruction falls
    outside the canonical translated form."""
    instrs = fragment.instructions
    if branch_pc - head < 3:
        return _reject("loop-too-short")
    cmp_i = instrs[branch_pc - 1]
    add_i = instrs[branch_pc - 2]
    if (cmp_i.opcode != "cmp" or len(cmp_i.srcs) != 2
            or add_i.opcode != "add" or add_i.dst is None
            or len(add_i.srcs) != 2):
        return _reject("bad-header")
    ind_op = add_i.srcs[0]
    if not (isinstance(ind_op, Reg) and is_int_reg(ind_op.name)
            and add_i.dst.name == ind_op.name):
        return _reject("bad-header")
    induction = ind_op.name
    step = add_i.srcs[1]
    if not (isinstance(step, Imm) and step.value == width):
        return _reject("step-not-width")
    if not (isinstance(cmp_i.srcs[0], Reg)
            and cmp_i.srcs[0].name == induction
            and isinstance(cmp_i.srcs[1], Imm)
            and isinstance(cmp_i.srcs[1].value, int)):
        return _reject("bad-header")
    trip = int(cmp_i.srcs[1].value)

    # Vector registers written anywhere in the body: a read before the
    # body's (re)definition would be loop-carried — unsupported.
    written = set()
    for pc in range(head, branch_pc - 2):
        dst = instrs[pc].dst
        if dst is not None and is_vector_reg(dst.name):
            written.add(dst.name)

    ns = {"np": np, "_full": _full}
    emits: List[str] = []
    sites: List[Tuple[str, int, bool]] = []
    defined: Dict[str, str] = {}     # body-defined vreg -> kind
    invariants: Dict[str, str] = {}  # loop-invariant input vreg -> kind
    finals: Dict[str, Optional[str]] = {}  # written vreg -> last elem
    accs: Dict[str, bool] = {}       # reduction accumulator scalars

    def use_vec(operand, kind: str) -> Optional[str]:
        """Python expression reading a vector register operand."""
        if not (isinstance(operand, Reg) and is_vector_reg(operand.name)):
            return None
        name = operand.name
        have = defined.get(name)
        if have is not None:
            return f"v_{name}" if have == kind else None
        if name in written:
            return None  # read of a later definition: loop-carried
        prior = invariants.get(name)
        if prior is None:
            invariants[name] = kind
        elif prior != kind:
            return None
        return f"v_{name}"

    for pc in range(head, branch_pc - 2):
        ins = instrs[pc]
        op = ins.opcode
        elem = ins.elem
        if op == "vld":
            if elem is None or ins.dst is None \
                    or not is_vector_reg(ins.dst.name):
                return _reject("bad-operand")
            sym = _affine_sym(ins.mem, induction)
            if sym is None:
                return _reject("non-affine-address")
            key = f"ld{pc}"
            ns[key] = _make_load(elem, width)
            site = len(sites)
            sites.append((sym, ELEM_SIZES[elem], False))
            dname = ins.dst.name
            emits.append(f"v_{dname} = {key}(memory, bases[{site}], n)")
            defined[dname] = _kind(elem)
            finals[dname] = elem
        elif op == "vst":
            if elem is None or not ins.srcs:
                return _reject("bad-operand")
            src = use_vec(ins.srcs[0], _kind(elem))
            sym = _affine_sym(ins.mem, induction)
            if sym is None:
                return _reject("non-affine-address")
            if src is None:
                return _reject("vector-dataflow")
            key = f"st{pc}"
            ns[key] = _make_store(elem)
            site = len(sites)
            sites.append((sym, ELEM_SIZES[elem], True))
            emits.append(f"{key}(memory, bases[{site}], _full({src}, n))")
        elif op in VEC_BINARY_OPS:
            if ins.dst is None or len(ins.srcs) != 2 \
                    or not is_vector_reg(ins.dst.name):
                return _reject("bad-operand")
            kind = _kind(elem)
            a = use_vec(ins.srcs[0], kind)
            if a is None:
                return _reject("vector-dataflow")
            b_operand = ins.srcs[1]
            key = f"op{pc}"
            if isinstance(b_operand, Reg):
                b = use_vec(b_operand, kind)
                if b is None:
                    return _reject("vector-dataflow")
                fn = _make_binary(op, elem, None, width)
                if fn is None:
                    return _reject("unsupported-lowering")
                ns[key] = fn
                emits.append(f"v_{ins.dst.name} = {key}({a}, {b})")
            else:
                fn = _make_binary(op, elem, b_operand, width)
                if fn is None:
                    return _reject("unsupported-lowering")
                ns[key] = fn
                emits.append(f"v_{ins.dst.name} = {key}({a})")
            defined[ins.dst.name] = kind
            finals[ins.dst.name] = elem
        elif op in VEC_UNARY_OPS:
            if ins.dst is None or not ins.srcs \
                    or not is_vector_reg(ins.dst.name):
                return _reject("bad-operand")
            kind = _kind(elem)
            a = use_vec(ins.srcs[0], kind)
            if a is None:
                return _reject("vector-dataflow")
            fn = _make_unary(op, elem)
            if fn is None:
                return _reject("unsupported-lowering")
            key = f"op{pc}"
            ns[key] = fn
            emits.append(f"v_{ins.dst.name} = {key}({a})")
            defined[ins.dst.name] = kind
            finals[ins.dst.name] = elem
        elif op in VEC_PERM_OPS:
            if ins.dst is None or not ins.srcs \
                    or not is_vector_reg(ins.dst.name):
                return _reject("bad-operand")
            kind = _kind(elem)
            a = use_vec(ins.srcs[0], kind)
            if a is None:
                return _reject("vector-dataflow")
            fn = _make_perm(ins, width)
            if fn is None:
                return _reject("unsupported-lowering")
            key = f"op{pc}"
            ns[key] = fn
            emits.append(f"v_{ins.dst.name} = {key}({a})")
            defined[ins.dst.name] = kind
            finals[ins.dst.name] = elem
        elif op in VEC_RED_OPS:
            if ins.dst is None or len(ins.srcs) != 2:
                return _reject("bad-operand")
            dname = ins.dst.name
            acc_op = ins.srcs[0]
            # Canonical accumulator form only: dst == srcs[0], a scalar
            # register of the reduction's kind, distinct from the
            # induction and from every other accumulator.
            if (is_vector_reg(dname) or dname == induction
                    or dname in accs
                    or not (isinstance(acc_op, Reg)
                            and acc_op.name == dname)):
                return _reject("bad-accumulator")
            kind = _kind(elem)
            if kind == "f" and not is_float_reg(dname):
                return _reject("bad-accumulator")
            if kind == "i" and not is_int_reg(dname):
                return _reject("bad-accumulator")
            vsrc = use_vec(ins.srcs[1], kind)
            if vsrc is None:
                return _reject("vector-dataflow")
            fn = _make_reduce(op, elem)
            if fn is None:
                return _reject("unsupported-lowering")
            key = f"red{pc}"
            ns[key] = fn
            accs[dname] = True
            emits.append(
                f"acc_{dname} = {key}(acc_{dname}, _full({vsrc}, n))")
        else:
            return _reject("unsupported-op")

    # Memory-ordering precondition for whole-array execution: every
    # trip's windows are disjoint across trips (stride == width
    # elements), which holds per symbol only when all its sites share
    # one element size once a store is involved.
    store_syms = {sym for (sym, _esz, w) in sites if w}
    for sym in store_syms:
        if len({esz for (s, esz, _w) in sites if s == sym}) != 1:
            return _reject("mixed-elem-store")

    prologue = [f"acc_{name} = regs.read({name!r})" for name in accs]
    for name, kind in invariants.items():
        key = f"inv_{name}"
        ns[key] = _make_invariant(name, kind)
        prologue.append(f"v_{name} = {key}(vregs)")
    epilogue = [f"regs.write({name!r}, acc_{name})" for name in accs]
    for name, last_elem in finals.items():
        epilogue.append(
            f"vregs.write({name!r}, v_{name}[-1].tolist(), {last_elem!r})")

    body = prologue + emits + epilogue
    src = ["def _kernel(memory, vregs, regs, bases, n):"]
    src += ["    " + line for line in body] or ["    pass"]
    exec(compile("\n".join(src), f"<macro-kernel@{head}>", "exec"), ns)

    return FragmentLoopShape(head, branch_pc, width, induction, trip,
                             sites, ns["_kernel"])


# ---------------------------------------------------------------------------
# Compiled whole-loop timing
# ---------------------------------------------------------------------------


def _compile_loop_timing(timing, pipeline):
    """``exec()``-generated specialization of
    :meth:`~repro.pipeline.core.PipelineModel.account_loop` for one
    loop-body block: the generic row loop unrolled with constants baked
    (same style as the turbo engine's per-block ``compiled`` closures),
    wrapped in the per-trip loop with its deterministic branch pattern.
    """
    dcache_hit = pipeline._dcache_hit
    penalty = pipeline.config.mispredict_penalty
    src = [
        "def _loop(pipe, trips, lats):",
        "    reg_ready = pipe._reg_ready",
        "    get = reg_ready.get",
        "    stats = pipe.stats",
        "    fetch_ready = pipe._fetch_ready",
        "    last_issue = pipe._last_issue",
        "    last_completion = pipe._last_completion",
        "    predict = pipe.predictor.predict",
        "    update = pipe.predictor.update",
        "    data_stall = 0",
        "    load_miss = 0",
        "    branch_penalty = 0",
        "    mispredicts = 0",
        "    k = 0",
        "    issue = last_issue",
        "    last_trip = trips - 1",
        "    for _t in range(trips):",
    ]
    emit = src.append
    for (_fetch_key, reads, reads_flags, writes, sets_flags,
         latency, mem_kind, _nbytes) in timing.rows:
        emit("        ready = fetch_ready")
        for reg in reads:
            emit(f"        t = get({reg!r}, 0)")
            emit("        if t > ready:")
            emit("            ready = t")
        if reads_flags:
            emit(f"        t = get({_FLAGS!r}, 0)")
            emit("        if t > ready:")
            emit("            ready = t")
        emit("        issue = last_issue + 1")
        emit("        if ready > issue:")
        emit("            data_stall += ready - issue")
        emit("            issue = ready")
        if mem_kind == 1:
            emit("        a = lats[k]")
            emit("        k += 1")
            emit("        completion = issue + a")
            emit(f"        if a > {dcache_hit}:")
            emit(f"            load_miss += a - {dcache_hit}")
        else:
            # Stores and ALU rows: the d-cache was pre-advanced by
            # access_stream; the write buffer hides store latency.
            emit(f"        completion = issue + {latency}")
        for reg in writes:
            emit(f"        reg_ready[{reg!r}] = completion")
        if sets_flags:
            emit(f"        reg_ready[{_FLAGS!r}] = completion")
        emit("        last_issue = issue")
        emit("        fetch_ready = issue")
        emit("        if completion > last_completion:")
        emit("            last_completion = completion")
    branch_pc = timing.branch_pc
    branch_target = timing.branch_target
    src += [
        "        taken = _t != last_trip",
        f"        predicted = predict({branch_pc}, "
        f"{branch_target} if taken else {branch_pc})",
        f"        update({branch_pc}, taken)",
        "        if predicted != taken:",
        "            mispredicts += 1",
        f"            fetch_ready = issue + 1 + {penalty}",
        f"            branch_penalty += {penalty}",
        "    pipe._last_issue = last_issue",
        "    pipe._fetch_ready = fetch_ready",
        "    pipe._last_completion = last_completion",
        f"    stats.instructions += {timing.count} * trips",
        f"    stats.simd_instructions += {timing.simd} * trips",
        "    stats.branches += trips",
        "    stats.mispredicts += mispredicts",
        "    stats.branch_penalty_cycles += branch_penalty",
        "    stats.data_stall_cycles += data_stall",
        "    stats.load_miss_cycles += load_miss",
    ]
    ns: dict = {}
    exec(compile("\n".join(src), "<macro-loop-timing>", "exec"), ns)
    return ns["_loop"]


# ---------------------------------------------------------------------------
# Plan construction
# ---------------------------------------------------------------------------


def build_fragment_plan(fragment, blocks, pipeline,
                        width: int) -> Dict[int, FragmentLoopShape]:
    """Map loop-head pc -> :class:`FragmentLoopShape` for every
    recognizable counted loop in *fragment*.

    *blocks* is the fragment's :class:`~repro.interp.turbo.SuperblockTable`:
    each recognized loop reuses — and attaches a compiled whole-loop
    timing to — the superblock discovered at its head, guaranteeing the
    macro path and the per-block path account the very same rows.
    """
    tel = _telemetry.get()
    plans: Dict[int, FragmentLoopShape] = {}
    instrs = fragment.instructions
    for pc, ins in enumerate(instrs):
        if ins.opcode != "blt" or ins.target is None:
            continue
        head = fragment.labels.get(ins.target)
        if head is None or not 0 <= head < pc:
            continue
        loop = _analyze_loop(fragment, head, pc, width)
        if loop is None:
            continue  # _analyze_loop counted the per-reason rejection
        timing = blocks.block_at(head).timing
        if (timing.fetch_mode != 0 or timing.term != 1
                or timing.count != loop.blen
                or len(timing.rows) != loop.blen):
            # superblock discovery disagreed: stay per-block
            tel.count("macro.plan.rejected.timing-mismatch")
            continue
        if timing.loop_compiled is None:
            timing.loop_compiled = _compile_loop_timing(timing, pipeline)
        loop.timing = timing
        plans[head] = loop
        tel.count("macro.plan.recognized")
    return plans
